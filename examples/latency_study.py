"""Latency sensitivity study across CPU suites and GPU applications.

Reproduces the experiment behind Figs. 6, 8, and 9: sweep the added
LLC<->memory latency over 25/30/35 ns (photonic) and 85 ns (best
electronic), run every calibrated benchmark through the substrates,
and print suite-level summaries.

Run:  python examples/latency_study.py
"""

import numpy as np

from repro.analysis.report import render_table
from repro.core.slowdown import run_cpu_study, run_gpu_study, suite_summary


def main() -> None:
    rows = []
    for extra_ns in (25.0, 30.0, 35.0, 85.0):
        results = run_cpu_study(extra_ns)
        for s in suite_summary(results):
            rows.append({
                "extra_ns": extra_ns, "suite": s.suite,
                "input": s.input_size, "core": s.core,
                "mean": s.mean_slowdown, "max": s.max_slowdown,
            })
    print(render_table(rows, title="CPU slowdown by suite and latency"))

    gpu_rows = []
    for extra_ns in (25.0, 30.0, 35.0, 85.0):
        results = run_gpu_study(extra_ns)
        by_suite: dict[str, list[float]] = {}
        for g in results:
            by_suite.setdefault(g.suite, []).append(g.slowdown)
        for suite, values in sorted(by_suite.items()):
            gpu_rows.append({
                "extra_ns": extra_ns, "suite": suite,
                "mean": float(np.mean(values)),
                "max": float(np.max(values)),
            })
    print()
    print(render_table(gpu_rows, title="GPU slowdown by suite and latency"))

    print("\nReading: photonics (35 ns) keeps the in-order CPU average "
          "near 15% and GPUs near 5%; the best electronic fabric "
          "(85 ns) roughly doubles the CPU penalty, which is the "
          "Fig. 12 speedup argument.")


if __name__ == "__main__":
    main()
