"""Indirect routing over parallel AWGRs under a hotspot.

Reproduces the §IV mechanism end-to-end: sources that exhaust their
direct wavelengths toward a hot destination borrow bandwidth through
Valiant-chosen intermediates, guided by piggybacked occupancy state.
The demo contrasts always-fresh state with a slow broadcast period to
show the second-intermediate fallback absorbing staleness.

Run:  python examples/indirect_routing_demo.py
"""

from repro.analysis.report import render_table
from repro.network.simulator import AWGRNetworkSimulator
from repro.network.traffic import Flow, uniform_traffic


def run_one(update_period: int, seed: int = 3) -> dict:
    sim = AWGRNetworkSimulator(n_nodes=24, planes=5,
                               flows_per_wavelength=1,
                               state_update_period=update_period,
                               rng_seed=seed)
    batches = []
    for _ in range(8):
        background = uniform_traffic(24, 12, gbps=25.0)
        hotspot = [Flow(src, 0, gbps=25.0)
                   for src in (1, 2, 3, 4) for _ in range(3)]
        batches.append(background + hotspot)
    report = sim.run(batches, duration_slots=2)
    return {"update_period": update_period, **report.as_dict()}


def main() -> None:
    rows = [run_one(period) for period in (1, 10, 100)]
    print(render_table(rows, title="AWGR indirect routing vs staleness"))
    print("\nReading: most traffic rides direct wavelengths; hotspot "
          "overflow goes indirect; stale state adds mispredictions "
          "and double-indirect hops, but acceptance stays high — the "
          "§IV argument that per-source state plus a fallback beats a "
          "centralized scheduler.")


if __name__ == "__main__":
    main()
