"""End-to-end physical-layer feasibility of the disaggregated rack.

Walks the full photonic stack for one CPU-to-DDR4 memory read:
optical power budget through the cascaded AWGR, CXL protocol overhead
on the wavelength, FEC residual BER against the 1e-18 memory target,
and the resulting read latency against the paper's 35 ns adder.

Run:  python examples/photonic_link_budget.py
"""

from repro.analysis.report import render_kv, render_table
from repro.core.latency import PHOTONIC_BUDGET
from repro.photonics.cxl import CXLLink, memory_channel_over_cxl
from repro.photonics.fec import CXL_LIGHTWEIGHT_FEC
from repro.photonics.linkbudget import LinkBudget, fabric_feasibility
from repro.photonics.switches import switch_by_name


def main() -> None:
    # 1. Does the optical path close through each switch family?
    print(render_table(fabric_feasibility(),
                       title="Optical power budget per switch family"))

    # 2. The AWGR path in detail.
    budget = LinkBudget()
    awgr = switch_by_name("cascaded-awgr-370")
    print()
    print(render_kv({
        "launch power (dBm/wavelength)": budget.laser_dbm_per_wavelength,
        "path loss through cascaded AWGR (dB)":
            budget.path_loss_db(awgr.insertion_loss_db,
                                crosstalk_db=awgr.crosstalk_db),
        "received power (dBm)":
            budget.received_dbm(awgr.insertion_loss_db,
                                crosstalk_db=awgr.crosstalk_db),
        "margin above sensitivity+design (dB)":
            budget.margin_db(awgr.insertion_loss_db,
                             crosstalk_db=awgr.crosstalk_db),
    }, title="CPU -> DDR4 path through the 370-port cascaded AWGR"))

    # 3. Error rate: raw photonic BER -> post-FEC residual.
    raw_ber = 1e-6
    print()
    print(render_kv({
        "raw link BER": raw_ber,
        "post-FEC residual BER":
            CXL_LIGHTWEIGHT_FEC.residual_ber(raw_ber),
        "meets 1e-18 memory target":
            CXL_LIGHTWEIGHT_FEC.meets_memory_ber(raw_ber),
    }, title="BER budget (§III-C3)"))

    # 4. Protocol overhead and latency on one wavelength session.
    print()
    print(render_kv(memory_channel_over_cxl(25.6),
                    title="One DDR4 channel over CXL (§V-A)"))
    link = CXLLink(wire_gbps=225.0)  # a 9-wavelength session
    print()
    print(render_kv({
        "full protocol round trip (ns)":
            link.read_latency_ns(fabric_latency_ns=20.0),
        "controller+FEC+serialization share (ns)":
            link.read_latency_ns(fabric_latency_ns=0.0),
        "propagation share, round trip (ns)": 40.0,
        "paper's modeled one-way adder (ns)": PHOTONIC_BUDGET.total_ns,
    }, title="Read round trip decomposition"))
    print("\nReading: the paper's 35 ns is the *one-way marginal* cost "
          "(15 ns EOE + 20 ns fiber) added on top of the memory access "
          "a local read would also perform; the protocol round trip "
          "above additionally counts flit serialization and the "
          "request direction explicitly.")


if __name__ == "__main__":
    main()
