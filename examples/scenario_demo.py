"""Scenario-engine walkthrough.

Four stops:

1. run the built-in demo scenario (uniform background + bursty
   hotspot + mid-run plane failure) on the AWGR backend and watch the
   per-epoch metric stream;
2. run the registered *diurnal Cori replay* — §II-A utilization
   profiles under a day-shaped envelope, with a plane failure at noon
   — head-to-head on the AWGR and WSS backends;
3. compose a custom scenario from episode/event parts and replicate
   it across seeds with a 95% confidence interval;
4. replay the registered scenario sweep through the result cache and
   watch the second run come back bit-identical for free.

Run:  python examples/scenario_demo.py
"""

import tempfile

from repro.analysis.report import render_kv, render_table
from repro.experiments import ResultCache, SweepRunner, get_experiment
from repro.scenarios import (
    Episode,
    Scenario,
    ScenarioEvent,
    ScenarioRunner,
    demo_scenario,
    get_scenario,
    make_backend,
    run_replicated,
)


def main() -> None:
    # 1. The demo scenario, epoch by epoch.
    scenario = demo_scenario()
    backend = make_backend("awgr", scenario.n_nodes, seed=1)
    report = ScenarioRunner(scenario, backend).run(seed=1)
    print(render_table(report.rows(),
                       title="Demo scenario on AWGR — per-epoch"))
    print()

    # 2. Diurnal Cori replay with a noon plane failure, both fabrics.
    rows = []
    for name in ("awgr", "wss"):
        diurnal = get_scenario("diurnal_cori")
        run = ScenarioRunner(
            diurnal, make_backend(name, diurnal.n_nodes, seed=7)
        ).run(seed=7)
        rows.append(run.as_dict())
    print(render_table(
        rows, columns=["fabric", "offered_gbps", "carried_gbps",
                       "blocked_gbps", "indirect_fraction",
                       "slowdown_p50", "slowdown_p99"],
        title="Diurnal Cori replay + noon plane failure"))
    print()

    # 3. Compose your own: a ramping GPU collective that collides with
    # a checkpoint hotspot while a plane is dark, multi-seed with CI.
    custom = Scenario(
        name="custom_burst",
        n_nodes=12,
        n_epochs=10,
        episodes=(
            Episode(kind="uniform",
                    flows={"dist": "poisson", "mean": 8}, gbps=25.0),
            Episode(kind="collective", start=2, gbps=75.0,
                    envelope={"kind": "ramp", "start": 0.3, "end": 1.0},
                    params={"nodes": [0, 1, 2, 3]}),
            Episode(kind="hotspot", start=5, duration=3,
                    flows={"dist": "pareto", "minimum": 10,
                           "alpha": 1.5},
                    gbps=25.0, params={"hotspot": 11}),
        ),
        events=(
            ScenarioEvent(epoch=4, action="fail_plane", value=0),
            ScenarioEvent(epoch=8, action="repair_plane", value=0),
        ))
    ci = run_replicated(
        custom, lambda seed: make_backend("awgr", custom.n_nodes,
                                          seed=seed),
        repeats=5, base_seed=100)
    print(render_table(
        [{"metric": metric, **values} for metric, values in ci.items()
         if metric in ("throughput_ratio", "indirect_fraction",
                       "blocked_gbps", "slowdown_p99")],
        title="Custom scenario on AWGR — 5 seeds, mean and 95% CI"))
    print()

    # 4. Scenario grids are ordinary experiments: cached, parallel.
    with tempfile.TemporaryDirectory() as cache_dir:
        runner = SweepRunner(workers=1, cache=ResultCache(cache_dir))
        spec = get_experiment("scenario_diurnal_cori")
        first = runner.run(spec).raise_on_failure()
        second = runner.run(spec).raise_on_failure()
        assert second.rows() == first.rows()
        print(render_kv({
            "first run": first.summary(),
            "replay": second.summary(),
        }, title="Registered scenario sweep through the result cache"))

    print("\nReading: the AWGR fabric absorbs the noon plane failure "
          "by leaning on indirect routing (nonzero indirect fraction, "
          "p99 slowdown ~3 hops) while the WSS fabric's centrally "
          "scheduled configuration lags the shifting demand and "
          "blocks more bandwidth outright. Scenario runs cache and "
          "replay bit-identically, so grids over scenarios iterate "
          "for free.")


if __name__ == "__main__":
    main()
