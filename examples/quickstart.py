"""Quickstart: design a photonically-disaggregated HPC rack.

Builds the paper's rack (Table III), checks the fabric's connectivity
guarantees (Fig. 5), composes the latency budget (35 ns), and measures
the slowdown of one benchmark on the disaggregated memory path.

Run:  python examples/quickstart.py
"""

from repro.analysis.report import render_kv, render_table
from repro.core.latency import PHOTONIC_BUDGET
from repro.cpu.simulator import CPUSimulator
from repro.rack.design import DisaggregatedRack
from repro.rack.mcm import table3_rows
from repro.workloads.cpu_suites import parsec_benchmarks


def main() -> None:
    # 1. Pack the baseline rack's chips into equal-escape MCMs.
    print(render_table(table3_rows(),
                       title="MCM packing (paper Table III)"))

    # 2. Plan the AWGR fabric and verify its connectivity guarantee.
    rack = DisaggregatedRack(fabric="awgr")
    plan = rack.plan()
    print()
    print(render_kv({
        "MCMs": rack.n_mcms(),
        "parallel AWGR planes": plan.planes,
        "min direct wavelengths per pair": plan.min_direct_wavelengths(),
        "guaranteed pair bandwidth (Gbps)": plan.guaranteed_pair_gbps(),
    }, title="AWGR fabric plan (paper Fig. 5)"))

    # 3. The latency cost of leaving the node: 35 ns.
    print()
    print(render_kv({
        "EOE conversion (ns)": PHOTONIC_BUDGET.eoe_conversion_ns,
        "fiber propagation (ns)": PHOTONIC_BUDGET.propagation_ns,
        "total added latency (ns)": PHOTONIC_BUDGET.total_ns,
    }, title="Disaggregation latency budget"))

    # 4. What that latency does to one application.
    bench = next(b for b in parsec_benchmarks("large")
                 if b.name == "streamcluster")
    sim = CPUSimulator()
    result = sim.run_inorder(bench.trace_spec(),
                             PHOTONIC_BUDGET.total_ns,
                             cpi_base=bench.cpi_inorder)
    print()
    print(render_kv({
        "benchmark": result.name,
        "LLC miss rate": result.llc_miss_rate,
        "slowdown @35 ns": result.slowdown,
    }, title="Example slowdown (in-order core)"))


if __name__ == "__main__":
    main()
