"""Experiment-sweep engine walkthrough.

Three progressively fancier uses of ``repro.experiments``:

1. replay a *registered* sweep (the §IV-A staleness ablation) exactly
   as ``repro sweep ablation_staleness`` and the benchmark harness do;
2. declare a *custom* sweep — a 2-D grid over fabric planes x piggyback
   staleness with per-task seeds drawn by the engine — and fan it out
   over worker processes;
3. re-run the same sweep against a JSON result cache and watch every
   task come back instantly, then aggregate rows with the report
   helpers.

Run:  python examples/sweep_demo.py
"""

import tempfile

import numpy as np

from repro.analysis.report import aggregate_rows, render_sweep, render_table
from repro.experiments import (
    ExperimentSpec,
    ResultCache,
    SweepRunner,
    get_experiment,
)
from repro.network.simulator import AWGRNetworkSimulator
from repro.network.traffic import uniform_traffic


def seeded_hotspot_task(config, seed):
    """One grid point: seeded uniform traffic over a small fabric.

    The engine derives ``seed`` from the spec + config, so every grid
    point gets its own reproducible traffic sample — no global RNG.
    """
    sim = AWGRNetworkSimulator(
        n_nodes=16, planes=config["planes"], flows_per_wavelength=1,
        state_update_period=config["update_period"], rng_seed=seed)
    rng = np.random.default_rng(seed)
    batches = [uniform_traffic(16, config["flows_per_slot"], rng=rng)
               for _ in range(8)]
    return sim.run(batches, duration_slots=2)


def extract(report):
    return report.as_dict()


CUSTOM = ExperimentSpec(
    name="demo_planes_x_staleness",
    description="demo: planes x staleness on seeded uniform traffic",
    factory=seeded_hotspot_task,
    metrics=extract,
    grid={"planes": (1, 2, 3), "update_period": (1, 25)},
    fixed={"flows_per_slot": 60})


def main() -> None:
    # 1. A registered sweep, exactly as `repro sweep` runs it.
    registered = SweepRunner(workers=1).run(
        get_experiment("ablation_staleness")).raise_on_failure()
    print(render_sweep(registered,
                       columns=["update_period", "acceptance_ratio",
                                "double_indirect",
                                "stale_mispredictions"]))

    with tempfile.TemporaryDirectory() as cache_dir:
        cache = ResultCache(cache_dir)
        runner = SweepRunner(workers=2, cache=cache)

        # 2. Custom 2-D grid, fanned out over two worker processes.
        print()
        first = runner.run(CUSTOM).raise_on_failure()
        print(render_sweep(first,
                           columns=["planes", "update_period",
                                    "acceptance_ratio",
                                    "indirect_fraction", "blocked"]))

        # 3. Same sweep again: pure cache replay, identical rows.
        second = runner.run(CUSTOM)
        print(f"\nreplay: {second.summary()}")
        assert second.rows() == first.rows()
        assert second.n_cached == len(CUSTOM)

        print()
        print(render_table(
            aggregate_rows(second.rows(), by="planes",
                           metrics=["acceptance_ratio"]),
            title="Acceptance vs planes (mean over staleness axis)"))

    print("\nReading: more planes buy acceptance under the same "
          "offered load, while staleness barely moves it — the same "
          "insensitivity the §IV-A ablation shows. Cached re-runs "
          "make iterating on grids like this free.")


if __name__ == "__main__":
    main()
