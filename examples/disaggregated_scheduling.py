"""Scheduling a mixed workload on pooled vs node-granular resources.

The motivation of §I made operational: a stream of jobs with
complementary resource shapes (GPU-heavy ML, memory-heavy analysis,
NIC-heavy I/O) is scheduled on (a) the baseline rack that allocates
whole nodes and maroons everything a job does not use, and (b) the
disaggregated rack that allocates from shared pools — including pools
shrunk by the paper's 4x-memory / 2x-NIC iso-performance reductions.

Run:  python examples/disaggregated_scheduling.py
"""

import numpy as np

from repro.analysis.report import render_kv, render_table
from repro.core.allocation import (
    AllocationError,
    DisaggregatedAllocator,
    JobRequest,
    NodeGranularAllocator,
)
from repro.core.scheduler import RackScheduler, ScheduledJob
from repro.rack.baseline import BaselineRack


def make_jobs(rng: np.random.Generator, n_jobs: int = 60
              ) -> list[ScheduledJob]:
    """A mixed stream: GPU-heavy, memory-heavy, and balanced jobs."""
    jobs = []
    t = 0.0
    for i in range(n_jobs):
        t += float(rng.exponential(4.0))       # arrivals seconds apart
        kind = rng.choice(["gpu", "memory", "balanced"],
                          p=[0.4, 0.3, 0.3])
        if kind == "gpu":
            request = JobRequest(f"gpu-{i}", cpus=1,
                                 gpus=int(rng.integers(4, 17)),
                                 memory_gbyte=64.0, nic_gbps=50.0)
        elif kind == "memory":
            request = JobRequest(f"mem-{i}", cpus=2, gpus=0,
                                 memory_gbyte=float(
                                     rng.integers(512, 2049)),
                                 nic_gbps=25.0)
        else:
            request = JobRequest(f"bal-{i}", cpus=1, gpus=4,
                                 memory_gbyte=256.0, nic_gbps=100.0)
        jobs.append(ScheduledJob(request=request, arrival_s=t,
                                 duration_s=float(rng.uniform(60, 600))))
    return jobs


def main() -> None:
    rng = np.random.default_rng(7)
    jobs = make_jobs(rng)
    rack = BaselineRack()

    # (a) Node-granular: count nodes consumed and marooned resources.
    nodal = NodeGranularAllocator(rack=rack)
    requests = [j.request for j in jobs]
    total_nodes = sum(nodal.nodes_for(r) for r in requests)
    marooned = nodal.marooned_fraction(requests)
    print(render_kv({
        "jobs": len(jobs),
        "node-granular nodes consumed": total_nodes,
        "marooned GPUs": marooned["gpus"],
        "marooned memory": marooned["memory"],
        "marooned NIC bandwidth": marooned["nic"],
    }, title="Baseline (whole-node) allocation"))

    # (b) Pooled scheduling on the full and on the shrunk rack.
    rows = []
    for label, mem_red, nic_red in (("disaggregated (full pools)", 1, 1),
                                    ("disaggregated (4x mem, 2x NIC)",
                                     4, 2)):
        allocator = DisaggregatedAllocator.for_rack(
            rack, memory_reduction=mem_red, nic_reduction=nic_red)
        scheduler = RackScheduler(allocator)
        try:
            records = scheduler.run(jobs)
        except AllocationError as exc:
            print(f"{label}: stream infeasible ({exc})")
            continue
        waits = [r.wait_s for r in records]
        rows.append({
            "configuration": label,
            "jobs completed": len(records),
            "mean wait (s)": float(np.mean(waits)),
            "p95 wait (s)": float(np.quantile(waits, 0.95)),
            "reconfig rate (Hz)": scheduler.reconfiguration_rate_hz(),
        })
    print()
    print(render_table(rows, title="Pooled scheduling"))

    # (c) Physical check: place a concurrent snapshot of the stream on
    # the 350 MCMs and verify the photonic fabric carries its traffic.
    from repro.core.placement import PlacementEngine

    snapshot = [j.request for j in jobs[:12]]
    report, flows = PlacementEngine().validate_bandwidth(snapshot)
    print()
    print(render_kv({
        "jobs placed": len(snapshot),
        "logical flows": len(flows),
        "wavelength flows offered": report.offered,
        "acceptance ratio": report.acceptance_ratio,
        "indirect fraction": report.indirect_fraction,
    }, title="Fabric validation of a concurrent snapshot"))
    print("\nReading: the pooled rack absorbs the same stream with "
          "sub-switch-speed reconfiguration rates (§III-D3), even "
          "after the §VI-E resource reductions — and the placed jobs' "
          "traffic fits the six-plane AWGR fabric (§VI-A).")


if __name__ == "__main__":
    main()
