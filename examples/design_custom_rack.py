"""Design-space exploration: repeating the §VII "other systems should
repeat our analysis" exercise.

Sweeps the MCM escape configuration (fiber count) and the rack shape
(GPU-heavy vs CPU-heavy nodes) and regenerates, for each point, the
Table III packing, the photonic power overhead, and whether the AWGR
radix still covers the MCM count.

Run:  python examples/design_custom_rack.py
"""

from repro.analysis.report import render_table
from repro.core.power import rack_power_overhead
from repro.photonics.awgr import CascadedAWGR
from repro.rack.baseline import BaselineRack
from repro.rack.mcm import MCMConfig, pack_rack, total_mcms
from repro.rack.node import NodeConfig


def explore(rack: BaselineRack, mcm: MCMConfig, label: str) -> dict:
    packings = pack_rack(rack, mcm)
    n_mcms = total_mcms(packings)
    power = rack_power_overhead(rack=rack, mcm=mcm)
    awgr = CascadedAWGR.paper_config()
    return {
        "design": label,
        "fibers/MCM": mcm.fibers,
        "MCM escape (GB/s)": mcm.escape_gbyte_s,
        "total MCMs": n_mcms,
        "fits 370-port AWGR": n_mcms <= awgr.ports,
        "photonic power (kW)": power.photonic_w / 1000.0,
        "power overhead": power.overhead_fraction,
    }


def main() -> None:
    rows = []
    baseline = BaselineRack()
    for fibers in (16, 32, 64):
        rows.append(explore(baseline, MCMConfig(fibers=fibers),
                            f"paper rack, {fibers} fibers"))

    # A GPU-dense future node (8 GPUs, same CPU) — §VII: "chips with
    # higher escape bandwidths motivate fewer chips per MCM".
    gpu_dense = BaselineRack(node=NodeConfig(gpus=8, hbm_stacks=8,
                                             pcie_links=8))
    rows.append(explore(gpu_dense, MCMConfig(), "GPU-dense node (8x A100)"))

    # A CPU-only analysis rack.
    cpu_only = BaselineRack(node=NodeConfig(gpus=0, hbm_stacks=0,
                                            ddr4_modules=16))
    rows.append(explore(cpu_only, MCMConfig(), "CPU-only node, 512 GB"))

    print(render_table(rows, title="Rack design space"))
    print("\nReading: halving fibers doubles MCM count past the AWGR "
          "radix; doubling them wastes escape bandwidth on power. The "
          "paper's 32-fiber point keeps 350 MCMs under the 370-port "
          "cascaded AWGR with ~5% power overhead.")


if __name__ == "__main__":
    main()
