"""Fabric-sim-as-a-service walkthrough.

The full session lifecycle against a live gateway, over real HTTP:

1. submit a scenario and watch the first epochs arrive as SSE frames;
2. suspend the running session mid-flight (its snapshot lands in the
   session store), then resume it — the remaining stream picks up at
   the cursor as if nothing happened;
3. fork a completed session at an epoch and inject a what-if plane
   failure the parent never saw: the child shares the parent's exact
   prefix, then diverges;
4. read the fleet-level /metrics.

Argless it self-hosts a gateway on an ephemeral port; point it at an
already-running server instead with:

    python examples/service_demo.py http://127.0.0.1:8177
"""

import sys
import tempfile

from repro.analysis.report import render_kv, render_table
from repro.experiments import ResultCache
from repro.scenarios import Episode, Scenario
from repro.service import (
    ServiceClient,
    ServiceGateway,
    SessionPool,
    SessionStore,
)

#: Heavy enough that 240 epochs take a couple of seconds — suspending
#: after the tenth streamed epoch reliably lands mid-run.
DEMO = Scenario(
    name="service_walkthrough",
    n_nodes=32,
    n_epochs=240,
    description="uniform chatter, sized for a mid-run suspend",
    episodes=(Episode(kind="uniform",
                      flows={"dist": "poisson", "mean": 12},
                      gbps=25.0),))


def main(argv=None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    gateway, store_dir = None, None
    if argv:
        url = argv[0].rstrip("/")
    else:
        store_dir = tempfile.TemporaryDirectory()
        pool = SessionPool(workers=2, slice_epochs=8,
                           store=SessionStore(ResultCache(store_dir.name)))
        gateway = ServiceGateway(pool)
        gateway.start()
        url = gateway.url
        print(f"self-hosted gateway on {url}\n")

    client = ServiceClient(url)
    print(render_kv(client.healthz(), title="GET /healthz"))
    print()

    # 1. Submit, then stream the first ten epochs over SSE.
    sid = client.submit(DEMO.to_config(), base_seed=11,
                        checkpoint_epochs=8)["id"]
    head = client.stream_epochs(sid, max_epochs=10)
    print(render_table(
        [{k: e[k] for k in ("epoch", "offered", "carried",
                            "offered_gbps", "carried_gbps")}
         for e in head],
        title=f"session {sid} — first {len(head)} SSE epochs"))
    print()

    # 2. Suspend mid-flight, then resume; the stream continues from
    # the suspension cursor.
    suspended = client.suspend(sid)
    cursor = suspended["cursor"]
    print(f"suspended {sid} at epoch {cursor} "
          f"(state={suspended['state']}) — snapshot in the store")
    client.resume(sid)
    tail = client.stream_epochs(sid, since=cursor)
    detail = client.wait(sid)
    print(f"resumed: streamed epochs {cursor}..{detail['cursor']}, "
          f"final state {detail['state']}")
    print()

    # 3. What-if fork: same world until epoch 60, then a plane failure
    # the parent never experienced.
    child = client.fork(
        sid, at_epoch=60,
        events=[{"epoch": 70, "action": "fail_plane", "value": 1}])
    child_detail = client.wait(child["id"])
    parent_epochs = client.epochs(sid)["epochs"]
    child_epochs = client.epochs(child["id"])["epochs"]
    shared = sum(1 for p, c in zip(parent_epochs, child_epochs)
                 if p == c)
    print(render_kv({
        "child": child["id"],
        "forked_at": child["forked_at"],
        "child final state": child_detail["state"],
        "identical leading epochs": shared,
        "parent healthy planes @100":
            parent_epochs[100]["extras"]["healthy_planes"],
        "child healthy planes @100":
            child_epochs[100]["extras"]["healthy_planes"],
    }, title=f"fork of {sid} + what-if plane failure"))
    print()

    # 4. Fleet metrics.
    metrics = client.metrics()
    print(render_kv({k: metrics[k] for k in
                     ("workers", "sessions_total", "epochs_total",
                      "slices_total", "recoveries_total",
                      "epochs_per_s", "sessions_by_state")},
                    title="GET /metrics"))

    if gateway is not None:
        gateway.stop()
        store_dir.cleanup()
        print("\ngateway stopped.")

    print("\nReading: the session API turns the simulator into a "
          "long-lived service — epochs stream as they are produced, "
          "a suspended session's snapshot is enough to continue it "
          "bit-identically (even on a different pool), and forks "
          "answer what-if questions against a shared, already-paid "
          "prefix.")


if __name__ == "__main__":
    main()
