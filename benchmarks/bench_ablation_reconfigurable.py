"""Ablation — case (A) AWGR+indirect routing vs case (B) reconfigurable
switches with a centralized scheduler (§VI-A's architectural argument).

Both fabrics face the same shifting demand matrix. The AWGR needs no
reconfiguration (passive; indirect routing adapts per-flow), while the
reconfigurable fabric must invoke its scheduler on every shift, paying
reconfiguration downtime and mismatch whenever demand moves before the
next reconfiguration.

Runs on the sweep engine:
``repro.experiments.library.ABLATION_RECONFIGURABLE`` carries the
whole stateful epoch loop as one fixed task (the FIG12 pattern — the
loop threads fabric state between epochs, so it can't split into grid
points), with the per-epoch rows riding along as a list metric.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.experiments import SweepRunner, get_experiment


def _experiment():
    result = SweepRunner(workers=1).run(
        get_experiment("ablation_reconfigurable")).raise_on_failure()
    (row,) = result.rows()
    return row["epoch_rows"], row


def test_ablation_reconfigurable(benchmark):
    rows, totals = benchmark(_experiment)
    emit("Ablation — reconfigurable fabric vs shifting demand",
         render_table(rows))
    emit("Reconfiguration cost", "\n".join([
        f"reconfigurations: {totals['reconfigurations']}",
        f"ports disturbed: {totals['ports_disturbed']}",
        f"time reconfiguring: "
        f"{totals['time_reconfiguring_s'] * 1e3:.1f} ms",
        "AWGR case (A): zero reconfigurations by construction",
    ]))
    # After reconfiguration the scheduler serves the bulk of demand
    # (the hotspot column saturates its output ports, so 100% is
    # unreachable by construction)...
    assert all(r["served_after_reconfig"] > 0.6 for r in rows)
    assert totals["min_served_after"] > 0.6
    # ...but stale configurations serve less (the case-B weakness).
    laters = [r for r in rows if r["epoch"] > 0]
    assert all(r["served_before_reconfig"] < r["served_after_reconfig"]
               for r in laters)
    assert totals["reconfigurations"] == len(rows)
