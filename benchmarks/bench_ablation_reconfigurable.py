"""Ablation — case (A) AWGR+indirect routing vs case (B) reconfigurable
switches with a centralized scheduler (§VI-A's architectural argument).

Both fabrics face the same shifting demand matrix. The AWGR needs no
reconfiguration (passive; indirect routing adapts per-flow), while the
reconfigurable fabric must invoke its scheduler on every shift, paying
reconfiguration downtime and mismatch whenever demand moves before the
next reconfiguration.
"""

import numpy as np
from conftest import emit

from repro.analysis.report import render_table
from repro.network.reconfig import ReconfigurableFabric


def _experiment():
    rng = np.random.default_rng(5)
    n = 32
    fabric = ReconfigurableFabric(n_switches=4, radix=n,
                                  wavelengths_per_port=16,
                                  reconfig_time_s=1e-3,
                                  scheduler_latency_s=1e-3)
    rows = []
    demand = None
    for epoch in range(6):
        # Demand shifts every epoch: a new random hotspot pattern.
        new_demand = rng.random((n, n)) * 10.0
        hot = rng.integers(n)
        new_demand[:, hot] += 40.0
        np.fill_diagonal(new_demand, 0.0)

        served_before = (fabric.served_fraction(new_demand)
                         if demand is not None else 0.0)
        fabric.reconfigure(new_demand)
        served_after = fabric.served_fraction(new_demand)
        rows.append({
            "epoch": epoch,
            "served_before_reconfig": served_before,
            "served_after_reconfig": served_after,
        })
        demand = new_demand
    return rows, fabric


def test_ablation_reconfigurable(benchmark):
    rows, fabric = benchmark(_experiment)
    emit("Ablation — reconfigurable fabric vs shifting demand",
         render_table(rows))
    emit("Reconfiguration cost", "\n".join([
        f"reconfigurations: {fabric.reconfigurations}",
        f"ports disturbed: {fabric.ports_disturbed}",
        f"time reconfiguring: {fabric.time_reconfiguring_s * 1e3:.1f} ms",
        "AWGR case (A): zero reconfigurations by construction",
    ]))
    # After reconfiguration the scheduler serves the bulk of demand
    # (the hotspot column saturates its output ports, so 100% is
    # unreachable by construction)...
    assert all(r["served_after_reconfig"] > 0.6 for r in rows)
    # ...but stale configurations serve less (the case-B weakness).
    laters = [r for r in rows if r["epoch"] > 0]
    assert all(r["served_before_reconfig"] < r["served_after_reconfig"]
               for r in laters)
