"""Fig. 6 — average and maximum slowdown per suite and input size.

35 ns LLC<->memory adder; in-order (left panel) and OOO (right panel).

Paper values: NAS negligible; Rodinia ~16% both cores; Parsec large
23% in-order / 41% OOO, medium 13% / 24%; overall Parsec 16% / 27%;
NW worst at ~79% / ~55%.

Runs on the sweep engine:
``repro.experiments.library.FIG6_CPU_SLOWDOWN`` replaces the old
hand-rolled ``run_cpu_study`` call (one task per core type).
"""

import numpy as np
from conftest import emit

from repro.analysis.report import render_table
from repro.experiments import SweepRunner, get_experiment


def _sweep():
    return SweepRunner(workers=1).run(
        get_experiment("fig6_cpu_slowdown")).raise_on_failure().rows()


def test_fig6_cpu_slowdown(benchmark):
    raw = benchmark(_sweep)
    rows = []
    for task_row in raw:
        core = task_row["core"]
        groups = {key.rsplit(".", 1)[0]
                  for key in task_row if key.count(".") == 2}
        for group in sorted(groups):
            suite, input_size = group.split(".")
            rows.append({
                "suite": suite, "input": input_size, "core": core,
                "mean_slowdown": task_row[f"{group}.mean_slowdown"],
                "max_slowdown": task_row[f"{group}.max_slowdown"],
                "n": task_row[f"{group}.n"],
            })
    emit("Fig. 6 — CPU slowdown @35 ns", render_table(rows))

    summary = {(r["suite"], r["input"], r["core"]): r for r in rows}
    assert summary[("parsec", "large", "inorder")]["mean_slowdown"] == \
        np.clip(summary[("parsec", "large", "inorder")]["mean_slowdown"],
                0.19, 0.27)
    assert summary[("parsec", "large", "ooo")]["mean_slowdown"] > \
        summary[("parsec", "large", "inorder")]["mean_slowdown"]
    for cls in ("A", "B", "C"):
        assert summary[("nas", cls, "inorder")]["mean_slowdown"] < 0.05
    assert 0.12 <= summary[("rodinia", "default", "inorder")][
        "mean_slowdown"] <= 0.20
    # NW dominates the Rodinia maxima.
    assert summary[("rodinia", "default", "inorder")][
        "max_slowdown"] > 0.70
