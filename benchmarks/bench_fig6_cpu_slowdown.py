"""Fig. 6 — average and maximum slowdown per suite and input size.

35 ns LLC<->memory adder; in-order (left panel) and OOO (right panel).

Paper values: NAS negligible; Rodinia ~16% both cores; Parsec large
23% in-order / 41% OOO, medium 13% / 24%; overall Parsec 16% / 27%;
NW worst at ~79% / ~55%.
"""

import numpy as np
from conftest import emit

from repro.analysis.report import render_table
from repro.core.slowdown import run_cpu_study, suite_summary


def test_fig6_cpu_slowdown(benchmark):
    results = benchmark(run_cpu_study, 35.0)
    rows = [{
        "suite": s.suite, "input": s.input_size, "core": s.core,
        "mean_slowdown": s.mean_slowdown, "max_slowdown": s.max_slowdown,
        "n": s.n,
    } for s in suite_summary(results)]
    emit("Fig. 6 — CPU slowdown @35 ns", render_table(rows))

    summary = {(r["suite"], r["input"], r["core"]): r for r in rows}
    assert summary[("parsec", "large", "inorder")]["mean_slowdown"] == \
        np.clip(summary[("parsec", "large", "inorder")]["mean_slowdown"],
                0.19, 0.27)
    assert summary[("parsec", "large", "ooo")]["mean_slowdown"] > \
        summary[("parsec", "large", "inorder")]["mean_slowdown"]
    for cls in ("A", "B", "C"):
        assert summary[("nas", cls, "inorder")]["mean_slowdown"] < 0.05
    assert 0.12 <= summary[("rodinia", "default", "inorder")][
        "mean_slowdown"] <= 0.20
    # NW dominates the Rodinia maxima.
    assert summary[("rodinia", "default", "inorder")][
        "max_slowdown"] > 0.70
