"""Fig. 8 — slowdown at 25/30/35 ns of additional LLC-memory latency.

Paper: "reducing the additional latency to 25 ns from 35 ns reduces
application slowdown by about half" for both core types.

Runs on the sweep engine:
``repro.experiments.library.FIG8_LATENCY_SENSITIVITY`` replaces the
old serial loop over ``SENSITIVITY_POINTS_NS`` (one task per
(latency, core) grid point).
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.experiments import SweepRunner, get_experiment


def _sweep():
    return SweepRunner(workers=1).run(
        get_experiment("fig8_latency_sensitivity")).raise_on_failure().rows()


def test_fig8_latency_sensitivity(benchmark):
    raw = benchmark(_sweep)
    rows = [{"extra_ns": r["latency_ns"], "core": r["core"],
             "mean_slowdown": r["overall_mean_slowdown"],
             "max_slowdown": r["overall_max_slowdown"]} for r in raw]
    emit("Fig. 8 — latency sensitivity", render_table(rows))

    means = {(r["extra_ns"], r["core"]): r["mean_slowdown"] for r in rows}
    for core in ("inorder", "ooo"):
        assert means[(25.0, core)] < means[(30.0, core)] < \
            means[(35.0, core)]
    # OOO cores: fixed hide window makes the 25 ns point ~half of 35 ns.
    ratio = means[(25.0, "ooo")] / means[(35.0, "ooo")]
    assert 0.35 < ratio < 0.75
