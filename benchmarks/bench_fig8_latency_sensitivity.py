"""Fig. 8 — slowdown at 25/30/35 ns of additional LLC-memory latency.

Paper: "reducing the additional latency to 25 ns from 35 ns reduces
application slowdown by about half" for both core types.
"""

import numpy as np
from conftest import emit

from repro.analysis.report import render_table
from repro.core.latency import SENSITIVITY_POINTS_NS
from repro.core.slowdown import run_cpu_study


def _sweep():
    out = {}
    for ns in SENSITIVITY_POINTS_NS:
        out[ns] = run_cpu_study(ns)
    return out


def test_fig8_latency_sensitivity(benchmark):
    sweeps = benchmark(_sweep)
    rows = []
    for ns, results in sweeps.items():
        for core in ("inorder", "ooo"):
            sel = [r.slowdown for r in results if r.core == core]
            rows.append({"extra_ns": ns, "core": core,
                         "mean_slowdown": float(np.mean(sel)),
                         "max_slowdown": float(np.max(sel))})
    emit("Fig. 8 — latency sensitivity", render_table(rows))

    means = {(r["extra_ns"], r["core"]): r["mean_slowdown"] for r in rows}
    for core in ("inorder", "ooo"):
        assert means[(25.0, core)] < means[(30.0, core)] < \
            means[(35.0, core)]
    # OOO cores: fixed hide window makes the 25 ns point ~half of 35 ns.
    ratio = means[(25.0, "ooo")] / means[(35.0, "ooo")]
    assert 0.35 < ratio < 0.75
