"""Ablation — number of parallel AWGR planes.

The paper picks 5 full planes (+1 partial) because 32 fibers split as
five groups of six. This ablation sweeps the plane count and measures
what it buys: guaranteed direct bandwidth scales linearly, and hotspot
acceptance under overload improves with planes (more direct capacity
before indirection and blocking kick in).
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.network.simulator import AWGRNetworkSimulator
from repro.network.traffic import Flow


def _sweep():
    rows = []
    for planes in (2, 3, 5, 8):
        sim = AWGRNetworkSimulator(n_nodes=16, planes=planes,
                                   flows_per_wavelength=1, rng_seed=4)
        # Four sources each push six wavelength-sized flows at node 0.
        batch = [Flow(src, 0, gbps=25.0)
                 for src in (1, 2, 3, 4) for _ in range(6)]
        report = sim.run([batch], duration_slots=4)
        rows.append({
            "planes": planes,
            "direct_pair_gbps": planes * 25.0,
            "acceptance": report.acceptance_ratio,
            "indirect_fraction": report.indirect_fraction,
            "blocked": report.blocked,
        })
    return rows


def test_ablation_awgr_planes(benchmark):
    rows = benchmark(_sweep)
    emit("Ablation — AWGR plane count under hotspot", render_table(rows))
    acceptance = [r["acceptance"] for r in rows]
    assert acceptance == sorted(acceptance)  # more planes never hurt
    # The paper's 5-plane point already clears the hotspot.
    five = next(r for r in rows if r["planes"] == 5)
    assert five["acceptance"] > 0.9
