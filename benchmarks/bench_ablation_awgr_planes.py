"""Ablation — number of parallel AWGR planes.

The paper picks 5 full planes (+1 partial) because 32 fibers split as
five groups of six. This ablation sweeps the plane count and measures
what it buys: guaranteed direct bandwidth scales linearly, and hotspot
acceptance under overload improves with planes (more direct capacity
before indirection and blocking kick in).

Runs on the sweep engine: the grid in
``repro.experiments.library.ABLATION_AWGR_PLANES`` replaces the old
hand-rolled plane loop.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.experiments import SweepRunner, get_experiment


def _sweep():
    result = SweepRunner(workers=1).run(
        get_experiment("ablation_awgr_planes")).raise_on_failure()
    return [{
        "planes": row["planes"],
        "direct_pair_gbps": row["planes"] * 25.0,
        "acceptance": row["acceptance_ratio"],
        "indirect_fraction": row["indirect_fraction"],
        "blocked": row["blocked"],
    } for row in result.rows()]


def test_ablation_awgr_planes(benchmark):
    rows = benchmark(_sweep)
    emit("Ablation — AWGR plane count under hotspot", render_table(rows))
    acceptance = [r["acceptance"] for r in rows]
    assert acceptance == sorted(acceptance)  # more planes never hurt
    # The paper's 5-plane point already clears the hotspot.
    five = next(r for r in rows if r["planes"] == 5)
    assert five["acceptance"] > 0.9
