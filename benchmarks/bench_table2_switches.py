"""Table II — high-radix CMOS-compatible photonic switches.

Regenerates the device catalog including the cascaded-AWGR
construction (3 x 12 x 11 = 396 built, 370 usable) and the projected
256-port wave-selective switch.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.photonics.awgr import CascadedAWGR
from repro.photonics.switches import project_wave_selective, table2_rows


def _build():
    rows = table2_rows()
    cascade = CascadedAWGR.paper_config()
    wss = project_wave_selective(256)
    return rows, cascade, wss


def test_table2_switches(benchmark):
    rows, cascade, wss = benchmark(_build)
    emit("Table II — photonic switch catalog", render_table(rows))
    # Cascaded AWGR construction reproduces the paper's sizing.
    assert cascade.built_ports == 396
    assert cascade.ports == 370
    assert abs(cascade.insertion_loss_db - 15.0) < 1e-9
    assert cascade.crosstalk_db == -35.0
    # Projected wave-selective switch used as case (B).
    assert wss.radix == 256 and wss.wavelengths_per_port == 256
