"""§VI-A, empirically — place a production job mix on the 350-MCM rack
and verify the AWGR fabric carries the resulting traffic.

The analytical §VI-A argument says the six-plane AWGR fabric satisfies
CPU-memory, NIC, and GPU-HBM demands with indirect routing. Here the
same claim is checked constructively through the sweep engine's
``placement_bandwidth`` experiment: jobs from the §III-D3 mix are
placed first-fit on Table III's MCMs, their chip-to-chip flows are
derived, striped into wavelengths, and offered to the flow simulator.
"""

from conftest import emit

from repro.analysis.report import render_kv
from repro.experiments import SweepRunner, get_experiment


def _experiment():
    result = SweepRunner(workers=1).run(
        get_experiment("placement_bandwidth")).raise_on_failure()
    return result.rows()[0]


def test_placement_bandwidth(benchmark):
    row = benchmark(_experiment)
    emit("§VI-A (empirical) — placed job mix on the AWGR fabric",
         render_kv({
             "logical flows": row["logical_flows"],
             "striped wavelength flows offered": row["offered"],
             "carried": row["carried"],
             "direct": row["direct"],
             "indirect": row["indirect"],
             "blocked": row["blocked"],
             "acceptance_ratio": row["acceptance_ratio"],
             "throughput_ratio": row["throughput_ratio"],
         }))
    # The six-plane fabric carries the mix; indirect routing does the
    # heavy lifting for GPU-HBM streams (>5 wavelengths per pair).
    assert row["acceptance_ratio"] > 0.95
    assert row["indirect"] > 0
