"""§VI-A, empirically — place a production job mix on the 350-MCM rack
and verify the AWGR fabric carries the resulting traffic.

The analytical §VI-A argument says the six-plane AWGR fabric satisfies
CPU-memory, NIC, and GPU-HBM demands with indirect routing. Here the
same claim is checked constructively: jobs from the §III-D3 mix are
placed first-fit on Table III's MCMs, their chip-to-chip flows are
derived, striped into wavelengths, and offered to the flow simulator.
"""

from conftest import emit

from repro.analysis.report import render_kv
from repro.core.allocation import JobRequest
from repro.core.placement import PlacementEngine


def _experiment():
    engine = PlacementEngine()
    # A rack-scale mix: GPU-heavy, memory-heavy, and balanced jobs.
    jobs = []
    for i in range(6):
        jobs.append(JobRequest(f"gpu-{i}", cpus=2, gpus=8,
                               memory_gbyte=256.0, nic_gbps=200.0))
    for i in range(6):
        jobs.append(JobRequest(f"mem-{i}", cpus=4, gpus=0,
                               memory_gbyte=2048.0, nic_gbps=100.0))
    for i in range(6):
        jobs.append(JobRequest(f"bal-{i}", cpus=2, gpus=4,
                               memory_gbyte=512.0, nic_gbps=200.0))
    report, flows = engine.validate_bandwidth(jobs)
    return report, flows


def test_placement_bandwidth(benchmark):
    report, flows = benchmark(_experiment)
    emit("§VI-A (empirical) — placed job mix on the AWGR fabric",
         render_kv({
             "logical flows": len(flows),
             "striped wavelength flows offered": report.offered,
             "carried": report.carried,
             "direct": report.carried_direct,
             "indirect": report.carried_indirect,
             "blocked": report.blocked,
             "acceptance_ratio": report.acceptance_ratio,
             "throughput_ratio": report.throughput_ratio,
         }))
    # The six-plane fabric carries the mix; indirect routing does the
    # heavy lifting for GPU-HBM streams (>5 wavelengths per pair).
    assert report.acceptance_ratio > 0.95
    assert report.carried_indirect > 0
