"""Fig. 7 — per-benchmark slowdown vs. LLC miss rate (in-order).

Paper: Pearson 0.89 for Parsec-large, 0.76 for Rodinia (in-order);
0.75 / 0.93 for OOO. Streamcluster's input-size cliff (<0.5% miss ->
>60% miss) drives its 57% large-input slowdown.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.analysis.stats import pearson
from repro.core.slowdown import run_cpu_study
from repro.workloads.cpu_suites import (
    parsec_benchmarks,
    rodinia_cpu_benchmarks,
)


def _study():
    benches = parsec_benchmarks("large") + rodinia_cpu_benchmarks()
    return run_cpu_study(35.0, benchmarks=benches)


def test_fig7_llc_correlation(benchmark):
    results = benchmark(_study)
    rows = [{
        "benchmark": r.name, "core": r.core,
        "slowdown": r.slowdown, "llc_miss_rate": r.llc_miss_rate,
    } for r in results if r.core == "inorder"]
    emit("Fig. 7 — slowdown vs LLC miss rate (in-order)",
         render_table(sorted(rows, key=lambda r: -r["slowdown"])))

    def corr(prefix, core):
        sel = [r for r in results
               if r.core == core and r.name.startswith(prefix)]
        return pearson([r.slowdown for r in sel],
                       [r.llc_miss_rate for r in sel])

    coeffs = {
        "parsec-large/inorder (paper 0.89)": corr("parsec", "inorder"),
        "rodinia/inorder (paper 0.76)": corr("rodinia", "inorder"),
        "parsec-large/ooo (paper 0.75)": corr("parsec", "ooo"),
        "rodinia/ooo (paper 0.93)": corr("rodinia", "ooo"),
    }
    emit("Fig. 7 — Pearson coefficients",
         "\n".join(f"{k}: {v:.3f}" for k, v in coeffs.items()))
    assert all(v > 0.7 for v in coeffs.values())
