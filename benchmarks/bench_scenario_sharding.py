"""Chunk-resume speedup — checkpointed week-scale scenario replay.

Measures what the sharded scenario runner's per-chunk checkpointing
buys: a diurnal-Cori replay is run cold (every chunk computed), then
"interrupted" after only the even chunks (shard 0 of 2) and resumed —
the resume loads shard 0's checkpoints and computes only the missing
chunks, and a final fully-warm replay assembles the whole horizon from
cache without simulating a single epoch. All three paths must produce
bit-identical aggregates; the recorded speedup is only meaningful
because the chunk decomposition is exact under per-epoch seeding.

As a script this writes ``BENCH_scenario_sharding.json`` (CI
regenerates it in ``--quick`` mode and fails if a fully-warm resume
ever recomputes a chunk or aggregates drift):

    PYTHONPATH=src python benchmarks/bench_scenario_sharding.py
    PYTHONPATH=src python benchmarks/bench_scenario_sharding.py \
        --quick --out BENCH_scenario_sharding.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path


def run_suite(quick: bool = False) -> dict:
    """Cold / interrupted / resumed / warm replay of one scenario."""
    from repro.experiments import ResultCache
    from repro.scenarios import (
        ShardedScenarioRunner,
        week_cori_scenario,
    )

    if quick:
        # Two "days" of 30-minute epochs: same shape, CI-sized.
        scenario = week_cori_scenario(days=2,
                                      epochs_per_day=48)
        chunk_epochs = 48
    else:
        # The real thing: a 7-day replay at 1-minute epochs with
        # per-day checkpoints (10080 epochs, 7 chunks).
        scenario = week_cori_scenario()
        chunk_epochs = 1440

    def runner(cache, **kwargs):
        return ShardedScenarioRunner(
            scenario, "awgr", chunk_epochs=chunk_epochs, base_seed=11,
            cache=cache, **kwargs)

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        cold = runner(cache).run(resume=False)
        cold_aggregates = cold.report().as_dict()

        # "Interrupt": pretend the run died after shard 0's chunks;
        # start over from the checkpoints.
        interrupted_cache = ResultCache(Path(tmp) / "interrupted")
        partial = runner(interrupted_cache, shards=2,
                         shard_index=0).run()
        assert not partial.complete
        resumed = runner(interrupted_cache).run(resume=True)
        assert resumed.n_cached == partial.n_computed
        assert resumed.report().as_dict() == cold_aggregates

        # Fully warm: every chunk loads, nothing simulates.
        warm = runner(cache).run(resume=True)
        assert warm.n_computed == 0, "warm resume recomputed chunks"
        assert warm.report().as_dict() == cold_aggregates

    n_chunks = len(cold.chunks)
    return {
        "scenario": scenario.name,
        "n_epochs": scenario.n_epochs,
        "chunk_epochs": chunk_epochs,
        "n_chunks": n_chunks,
        "cold_s": cold.wall_s,
        "resume_after_interrupt_s": resumed.wall_s,
        "resume_recomputed_chunks": resumed.n_computed,
        "warm_s": warm.wall_s,
        "resume_speedup": cold.wall_s / max(resumed.wall_s, 1e-9),
        "warm_speedup": cold.wall_s / max(warm.wall_s, 1e-9),
        "throughput_ratio": cold_aggregates["throughput_ratio"],
        "carried_gbps": cold_aggregates["carried_gbps"],
    }


def test_chunk_resume_speedup():
    """Quick-mode run: exact chunk decomposition, zero-recompute warm
    resume, and a recorded resume speedup.

    Timed manually (wall clock per phase) rather than through the
    pytest-benchmark fixture because the cold/resumed/warm comparison
    *is* the benchmark.
    """
    from conftest import emit

    from repro.analysis.report import render_kv

    record = run_suite(quick=True)
    emit("Scenario sharding — chunk-resume speedup",
         render_kv(record))
    # run_suite already asserted bit-identical aggregates across the
    # cold, interrupted+resumed, and fully-warm paths.
    assert record["resume_recomputed_chunks"] < record["n_chunks"]
    assert record["warm_speedup"] >= 1.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized horizon (2 scaled days)")
    parser.add_argument("--out", default=None,
                        help="write the JSON record here")
    args = parser.parse_args(argv)
    record = run_suite(quick=args.quick)
    print(json.dumps(record, indent=1))
    # A fully-warm resume must never be slower than recomputing the
    # whole horizon: if it is, checkpoint load cost exceeds simulation
    # cost and the chunk granularity is broken.
    if record["warm_speedup"] < 1.0:
        print("FAIL: warm resume slower than cold replay",
              file=sys.stderr)
        return 1
    if args.out:
        Path(args.out).write_text(json.dumps(record, indent=1) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
