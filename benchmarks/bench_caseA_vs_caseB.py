"""§VI-A architectural argument — case (A) AWGRs + distributed indirect
routing vs case (B) reconfigurable switches + centralized scheduler.

Identical shifting flow batches hit both fabrics. Case (A) adapts
per-flow with no reconfiguration; case (B) pays scheduler lag and
reconfiguration downtime whenever demand moves. The paper's conclusion
("case (A) ... avoids the need for a scheduler ... that would
otherwise add overhead and increase reaction time") shows up as the
AWGR carrying at least as much of the shifting demand.
"""

import numpy as np
from conftest import emit

from repro.analysis.report import render_table
from repro.network.simulator import AWGRNetworkSimulator
from repro.network.traffic import Flow, uniform_traffic
from repro.network.wss_simulator import WSSNetworkSimulator


def _shifting_batches(n_nodes, n_slots, seed):
    rng = np.random.default_rng(seed)
    batches = []
    for slot in range(n_slots):
        batch = uniform_traffic(n_nodes, 10, gbps=25.0, rng=rng)
        hot = int(rng.integers(n_nodes))  # hotspot moves every slot
        batch += [Flow(src, hot, gbps=25.0)
                  for src in range(n_nodes) if src != hot][:6]
        batches.append(batch)
    return batches


def _experiment():
    n = 16
    batches = _shifting_batches(n, 10, seed=21)

    awgr = AWGRNetworkSimulator(n_nodes=n, planes=5,
                                flows_per_wavelength=1, rng_seed=21)
    awgr_report = awgr.run([list(b) for b in batches], duration_slots=1)

    # Case (B): 5 parallel switches x 16 wavelengths/port matches the
    # AWGR's raw per-node capacity; scheduler re-plans every 2 slots.
    wss = WSSNetworkSimulator(n_nodes=n, n_switches=5,
                              wavelengths_per_port=16,
                              reconfig_period=2, slot_time_s=1.0)
    wss_report = wss.run([list(b) for b in batches])

    return [
        {"fabric": "case A: AWGR + indirect routing",
         "throughput_ratio": awgr_report.throughput_ratio,
         "reconfigurations": 0,
         "downtime_s": 0.0},
        {"fabric": "case B: WSS + central scheduler",
         "throughput_ratio": wss_report.throughput_ratio,
         "reconfigurations": wss_report.reconfigurations,
         "downtime_s": wss_report.downtime_s},
    ]


def test_case_a_vs_case_b(benchmark):
    rows = benchmark(_experiment)
    emit("§VI-A — case (A) vs case (B) under shifting demand",
         render_table(rows))
    case_a, case_b = rows
    # The AWGR never reconfigures and carries at least as much of the
    # shifting demand.
    assert case_a["reconfigurations"] == 0
    assert case_b["reconfigurations"] > 0
    assert (case_a["throughput_ratio"]
            >= case_b["throughput_ratio"] - 0.02)
    assert case_a["throughput_ratio"] > 0.9
