"""§VI-A architectural argument — case (A) AWGRs + distributed indirect
routing vs case (B) reconfigurable switches + centralized scheduler.

Identical shifting flow batches hit both fabrics. Case (A) adapts
per-flow with no reconfiguration; case (B) pays scheduler lag and
reconfiguration downtime whenever demand moves. The paper's conclusion
("case (A) ... avoids the need for a scheduler ... that would
otherwise add overhead and increase reaction time") shows up as the
AWGR carrying at least as much of the shifting demand.

Runs on the sweep engine: ``repro.experiments.library.CASE_A_VS_CASE_B``
sweeps the fabric axis over the same traffic seed.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.experiments import SweepRunner, get_experiment

_COLUMNS = ("fabric", "throughput_ratio", "reconfigurations",
            "downtime_s")


def _experiment():
    result = SweepRunner(workers=1).run(
        get_experiment("case_a_vs_case_b")).raise_on_failure()
    return [{k: row[k] for k in _COLUMNS} for row in result.rows()]


def test_case_a_vs_case_b(benchmark):
    rows = benchmark(_experiment)
    emit("§VI-A — case (A) vs case (B) under shifting demand",
         render_table(rows))
    case_a, case_b = rows
    # The AWGR never reconfigures and carries at least as much of the
    # shifting demand.
    assert case_a["reconfigurations"] == 0
    assert case_b["reconfigurations"] > 0
    assert (case_a["throughput_ratio"]
            >= case_b["throughput_ratio"] - 0.02)
    assert case_a["throughput_ratio"] > 0.9
