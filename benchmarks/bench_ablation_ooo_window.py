"""Ablation — OOO latency-tolerance parameters (§VII).

The paper's discussion argues "more latency-tolerant CPUs would make
resource disaggregation more attractive". This ablation quantifies it
on the calibrated workloads: sweep the OOO hide window and MLP scaling
and measure the mean slowdown at 35 ns.

Runs on the sweep engine: the grid in
``repro.experiments.library.ABLATION_OOO_WINDOW`` replaces the old
hand-rolled double loop.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.experiments import SweepRunner, get_experiment


def _sweep():
    result = SweepRunner(workers=1).run(
        get_experiment("ablation_ooo_window")).raise_on_failure()
    rows = [{
        "hide_cycles": row["hide_cycles"],
        "mlp_scale": row["mlp_scale"],
        "mean_slowdown": row["mean_slowdown"],
        "max_slowdown": row["max_slowdown"],
    } for row in result.rows()]
    return sorted(rows, key=lambda r: (r["hide_cycles"],
                                       r["mlp_scale"]))


def test_ablation_ooo_window(benchmark):
    rows = benchmark(_sweep)
    emit("Ablation — OOO latency tolerance (Parsec large @35 ns)",
         render_table(rows))
    by_key = {(r["hide_cycles"], r["mlp_scale"]): r["mean_slowdown"]
              for r in rows}
    # More MLP always reduces the relative penalty (§VII).
    assert by_key[(24.0, 2.0)] < by_key[(24.0, 1.0)]
    # The hide window is only a win once it exceeds the ~70-cycle base
    # miss path and starts absorbing the *adder* itself: a shallow
    # window shrinks the baseline (raising the relative penalty), a
    # 120-cycle window eats 50 of the adder's 70 cycles.
    assert by_key[(24.0, 1.0)] > by_key[(0.0, 1.0)]   # shallow: worse
    assert by_key[(120.0, 1.0)] < by_key[(0.0, 1.0)]  # deep: better
    assert by_key[(120.0, 2.0)] < 0.66 * by_key[(0.0, 1.0)]
