"""Ablation — OOO latency-tolerance parameters (§VII).

The paper's discussion argues "more latency-tolerant CPUs would make
resource disaggregation more attractive". This ablation quantifies it
on the calibrated workloads: sweep the OOO hide window and MLP scaling
and measure the mean slowdown at 35 ns.
"""

import numpy as np
from conftest import emit

from repro.analysis.report import render_table
from repro.cpu.core_ooo import OutOfOrderCore
from repro.cpu.simulator import CPUSimulator
from repro.workloads.cpu_suites import parsec_benchmarks


def _sweep():
    sim = CPUSimulator()
    benches = parsec_benchmarks("large")
    stats = {b.full_name: (b, sim.cache_stats(b.trace_spec()))
             for b in benches}
    rows = []
    for hide in (0.0, 24.0, 60.0, 120.0):
        for mlp_scale in (1.0, 2.0):
            slowdowns = []
            for bench, st in stats.values():
                core = OutOfOrderCore(cpi_exec=bench.cpi_ooo,
                                      mlp=min(16.0,
                                              bench.mlp() * mlp_scale),
                                      hide_cycles=hide,
                                      hierarchy=sim.hierarchy)
                slowdowns.append(core.slowdown(st, sim.memory, 35.0))
            rows.append({
                "hide_cycles": hide,
                "mlp_scale": mlp_scale,
                "mean_slowdown": float(np.mean(slowdowns)),
                "max_slowdown": float(np.max(slowdowns)),
            })
    return rows


def test_ablation_ooo_window(benchmark):
    rows = benchmark(_sweep)
    emit("Ablation — OOO latency tolerance (Parsec large @35 ns)",
         render_table(rows))
    by_key = {(r["hide_cycles"], r["mlp_scale"]): r["mean_slowdown"]
              for r in rows}
    # More MLP always reduces the relative penalty (§VII).
    assert by_key[(24.0, 2.0)] < by_key[(24.0, 1.0)]
    # The hide window is only a win once it exceeds the ~70-cycle base
    # miss path and starts absorbing the *adder* itself: a shallow
    # window shrinks the baseline (raising the relative penalty), a
    # 120-cycle window eats 50 of the adder's 70 cycles.
    assert by_key[(24.0, 1.0)] > by_key[(0.0, 1.0)]   # shallow: worse
    assert by_key[(120.0, 1.0)] < by_key[(0.0, 1.0)]  # deep: better
    assert by_key[(120.0, 2.0)] < 0.66 * by_key[(0.0, 1.0)]
