"""§VI-A — bandwidth satisfaction for case (A), parallel AWGRs.

Paper: 125 Gbps direct suffices >99.5% (CPU-memory) and virtually
always (NIC-memory); one 25 Gbps wavelength suffices 97%; the GPU
indirect budget covers HBM (1555.2 GB/s) and GPU-GPU (900 GB/s) with
~5.5 TB/s to spare.

Runs on the sweep engine:
``repro.experiments.library.BANDWIDTH_ANALYSIS`` replaces the old
direct ``awgr_bandwidth_analysis()`` call.
"""

from conftest import emit

from repro.analysis.report import render_kv
from repro.experiments import SweepRunner, get_experiment


def _analyze():
    result = SweepRunner(workers=1).run(
        get_experiment("bandwidth_analysis")).raise_on_failure()
    return result.rows()[0]


def test_bandwidth_analysis(benchmark):
    row = benchmark(_analyze)
    emit("§VI-A — case (A) bandwidth analysis", render_kv({
        "direct_pair_gbps": row["direct_pair_gbps"],
        "p(cpu-mem <= direct) [paper >0.995]":
            row["cpu_mem_p_sufficient"],
        "p(cpu-mem <= 1 wavelength) [paper ~0.97]":
            row["cpu_mem_p_single_wavelength"],
        "p(nic-mem <= direct) [paper ~1.0]":
            row["nic_mem_p_sufficient"],
        "gpu_indirect_total_gbyte_s [paper 8000]":
            row["gpu_indirect_total_gbyte_s"],
        "after_hbm_gbyte_s [paper 6444.8]": row["after_hbm_gbyte_s"],
        "after_gpu_gpu_gbyte_s [paper 5544.8]":
            row["after_gpu_gpu_gbyte_s"],
        "all_satisfied": row["all_satisfied"],
    }))
    assert row["all_satisfied"]
    assert abs(row["after_gpu_gpu_gbyte_s"] - 5544.8) < 1.0
