"""§VI-A — bandwidth satisfaction for case (A), parallel AWGRs.

Paper: 125 Gbps direct suffices >99.5% (CPU-memory) and virtually
always (NIC-memory); one 25 Gbps wavelength suffices 97%; the GPU
indirect budget covers HBM (1555.2 GB/s) and GPU-GPU (900 GB/s) with
~5.5 TB/s to spare.
"""

from conftest import emit

from repro.analysis.report import render_kv
from repro.core.bandwidth import awgr_bandwidth_analysis


def test_bandwidth_analysis(benchmark):
    report = benchmark(awgr_bandwidth_analysis)
    emit("§VI-A — case (A) bandwidth analysis", render_kv({
        "direct_pair_gbps": report.guaranteed_pair_gbps,
        "p(cpu-mem <= direct) [paper >0.995]":
            report.cpu_memory.p_sufficient,
        "p(cpu-mem <= 1 wavelength) [paper ~0.97]":
            report.cpu_memory.p_single_wavelength,
        "p(nic-mem <= direct) [paper ~1.0]":
            report.nic_memory.p_sufficient,
        "gpu_indirect_total_gbyte_s [paper 8000]":
            report.gpu_budget.indirect_total_gbyte_s,
        "after_hbm_gbyte_s [paper 6444.8]":
            report.gpu_budget.after_hbm_gbyte_s,
        "after_gpu_gpu_gbyte_s [paper 5544.8]":
            report.gpu_budget.after_gpu_gpu_gbyte_s,
        "all_satisfied": report.all_satisfied,
    }))
    assert report.all_satisfied
    assert abs(report.gpu_budget.after_gpu_gpu_gbyte_s - 5544.8) < 1.0
