"""§IV — indirect routing behaviour under load and stale state.

Exercises the flow-level AWGR simulator: a hotspot drives traffic past
the direct-wavelength budget so Valiant indirection engages; stale
piggybacked state triggers the second-intermediate fallback without
collapsing acceptance.

Runs on the sweep engine: ``repro.experiments.library.INDIRECT_ROUTING``
holds the fresh/stale grid the old loop hard-coded.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.experiments import SweepRunner, get_experiment

_KEEP = ("offered", "direct", "indirect", "double_indirect", "blocked",
         "acceptance_ratio", "indirect_fraction",
         "stale_mispredictions")


def _experiment():
    result = SweepRunner(workers=1).run(
        get_experiment("indirect_routing")).raise_on_failure()
    labels = {1: "fresh-state", 40: "stale-state"}
    return [{"state": labels[row["update_period"]],
             **{k: row[k] for k in _KEEP}}
            for row in result.rows()]


def test_indirect_routing(benchmark):
    rows = benchmark(_experiment)
    emit("§IV — indirect routing under hotspot load",
         render_table(rows))
    fresh, stale = rows
    # Indirection engages in both regimes.
    assert fresh["indirect"] + fresh["double_indirect"] > 0
    assert stale["indirect"] + stale["double_indirect"] > 0
    # Stale state produces mispredictions yet acceptance stays close.
    assert stale["acceptance_ratio"] > fresh["acceptance_ratio"] - 0.25
    # Most traffic still goes direct (the §VI-A low-utilization point).
    assert fresh["direct"] > fresh["indirect"]
