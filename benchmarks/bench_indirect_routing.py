"""§IV — indirect routing behaviour under load and stale state.

Exercises the flow-level AWGR simulator: a hotspot drives traffic past
the direct-wavelength budget so Valiant indirection engages; stale
piggybacked state triggers the second-intermediate fallback without
collapsing acceptance.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.network.simulator import AWGRNetworkSimulator
from repro.network.traffic import Flow, uniform_traffic


def _experiment():
    rows = []
    for label, period in (("fresh-state", 1), ("stale-state", 40)):
        sim = AWGRNetworkSimulator(n_nodes=32, planes=5,
                                   flows_per_wavelength=1,
                                   state_update_period=period,
                                   rng_seed=11)
        batches = []
        for _ in range(6):
            batch = uniform_traffic(32, 20, gbps=25.0)
            # Everyone also hammers node 0 beyond its direct budget.
            batch += [Flow(src, 0, gbps=25.0)
                      for src in (1, 2, 3) for _ in range(4)]
            batches.append(batch)
        report = sim.run(batches, duration_slots=3)
        rows.append({"state": label, **{
            k: v for k, v in report.as_dict().items()
            if k in ("offered", "direct", "indirect", "double_indirect",
                     "blocked", "acceptance_ratio", "indirect_fraction",
                     "stale_mispredictions")}})
    return rows


def test_indirect_routing(benchmark):
    rows = benchmark(_experiment)
    emit("§IV — indirect routing under hotspot load",
         render_table(rows))
    fresh, stale = rows
    # Indirection engages in both regimes.
    assert fresh["indirect"] + fresh["double_indirect"] > 0
    assert stale["indirect"] + stale["double_indirect"] > 0
    # Stale state produces mispredictions yet acceptance stays close.
    assert stale["acceptance_ratio"] > fresh["acceptance_ratio"] - 0.25
    # Most traffic still goes direct (the §VI-A low-utilization point).
    assert fresh["direct"] > fresh["indirect"]
