"""Ablation — piggybacked-state staleness (§IV-A).

Sweeps the status-broadcast period and measures how stale views affect
indirect routing: mispredictions rise with staleness and the two-stage
fallback converts them into double-indirect hops instead of blocking.
The paper's claim that "even if we piggyback this information multiple
times a second" suffices rests on this insensitivity.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.network.simulator import AWGRNetworkSimulator
from repro.network.traffic import Flow, uniform_traffic


def _sweep():
    rows = []
    for period in (1, 5, 25, 125):
        sim = AWGRNetworkSimulator(n_nodes=24, planes=3,
                                   flows_per_wavelength=1,
                                   state_update_period=period,
                                   rng_seed=9)
        batches = []
        for _ in range(10):
            batch = uniform_traffic(24, 10, gbps=25.0)
            batch += [Flow(src, 0, gbps=25.0) for src in (1, 2, 3)]
            batches.append(batch)
        report = sim.run(batches, duration_slots=3)
        rows.append({
            "update_period_slots": period,
            "acceptance": report.acceptance_ratio,
            "double_indirect": report.carried_double,
            "stale_mispredictions": report.stale_mispredictions,
        })
    return rows


def test_ablation_staleness(benchmark):
    rows = benchmark(_sweep)
    emit("Ablation — piggyback staleness", render_table(rows))
    fresh = rows[0]
    stalest = rows[-1]
    # Staleness costs mispredictions...
    assert stalest["stale_mispredictions"] >= fresh["stale_mispredictions"]
    # ...but acceptance stays within a few points (the §IV-A claim).
    assert stalest["acceptance"] >= fresh["acceptance"] - 0.1
