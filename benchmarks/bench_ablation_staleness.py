"""Ablation — piggybacked-state staleness (§IV-A).

Sweeps the status-broadcast period and measures how stale views affect
indirect routing: mispredictions rise with staleness and the two-stage
fallback converts them into double-indirect hops instead of blocking.
The paper's claim that "even if we piggyback this information multiple
times a second" suffices rests on this insensitivity.

Runs on the sweep engine: the grid in
``repro.experiments.library.ABLATION_STALENESS`` replaces the old
hand-rolled period loop.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.experiments import SweepRunner, get_experiment


def _sweep():
    result = SweepRunner(workers=1).run(
        get_experiment("ablation_staleness")).raise_on_failure()
    return [{
        "update_period_slots": row["update_period"],
        "acceptance": row["acceptance_ratio"],
        "double_indirect": row["double_indirect"],
        "stale_mispredictions": row["stale_mispredictions"],
    } for row in result.rows()]


def test_ablation_staleness(benchmark):
    rows = benchmark(_sweep)
    emit("Ablation — piggyback staleness", render_table(rows))
    fresh = rows[0]
    stalest = rows[-1]
    # Staleness costs mispredictions...
    assert stalest["stale_mispredictions"] >= fresh["stale_mispredictions"]
    # ...but acceptance stays within a few points (the §IV-A claim).
    assert stalest["acceptance"] >= fresh["acceptance"] - 0.1
