"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper
(see DESIGN.md's experiment index). Each benchmark both times the
experiment (pytest-benchmark) and prints the regenerated rows/series
next to the paper's reported values, so ``pytest benchmarks/
--benchmark-only -s`` doubles as the reproduction report.
"""

from __future__ import annotations


def emit(title: str, body: str) -> None:
    """Print one experiment's regenerated output with a banner."""
    bar = "=" * max(8, len(title))
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
