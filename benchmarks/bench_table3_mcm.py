"""Table III — chips per MCM and MCMs per rack.

Regenerates the packing from escape-bandwidth equality (32 fibers x
64 wavelengths x 25 Gbps per MCM; chip escape bandwidths from the
baseline node).

Paper values: CPU 14/10, GPU 3/171, NIC 203/3, HBM 4/128, DDR4 27/38,
total 350 MCMs.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.rack.mcm import table3_rows


def test_table3_mcm_packing(benchmark):
    rows = benchmark(table3_rows)
    emit("Table III — MCM packing", render_table(rows))
    expected = {"cpu": (14, 10), "gpu": (3, 171), "nic": (203, 3),
                "hbm": (4, 128), "ddr4": (27, 38)}
    for row in rows[:-1]:
        per, mcms = expected[row["chip_type"]]
        assert row["chips_per_mcm"] == per
        assert row["mcms_per_rack"] == mcms
    assert rows[-1]["mcms_per_rack"] == 350
