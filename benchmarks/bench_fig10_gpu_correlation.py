"""Fig. 10 — GPU slowdown vs LLC miss rate and HBM transactions.

Paper: correlation 0.87 with LLC miss rate and 0.79 with HBM
transactions per instruction; no significant correlation with the raw
memory-instruction fraction (caches filter it).
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.analysis.stats import pearson
from repro.core.slowdown import run_gpu_study


def test_fig10_gpu_correlation(benchmark):
    results = benchmark(run_gpu_study, 35.0)
    rows = [{
        "application": g.name, "slowdown": g.slowdown,
        "llc_miss_rate": g.llc_miss_rate,
        "hbm_txn_per_instr": g.hbm_txn_per_instr,
    } for g in sorted(results, key=lambda g: -g.slowdown)]
    emit("Fig. 10 — GPU slowdown drivers", render_table(rows))

    slow = [g.slowdown for g in results]
    r_miss = pearson(slow, [g.llc_miss_rate for g in results])
    r_hbm = pearson(slow, [g.hbm_txn_per_instr for g in results])
    emit("Fig. 10 — Pearson coefficients",
         f"LLC miss rate: {r_miss:.3f} (paper 0.87)\n"
         f"HBM txn/instr: {r_hbm:.3f} (paper 0.79)")
    assert r_miss > 0.8
    assert r_hbm > 0.7
