"""Ablation — AWGR plane failure and graceful degradation.

The fabric has six parallel AWGRs; losing one is a realistic failure
(laser bank, connector). Because every pair keeps one wavelength per
surviving plane and indirect routing pools the slack, capacity
degrades proportionally instead of partitioning the rack.

Runs on the sweep engine: the grid in
``repro.experiments.library.ABLATION_PLANE_FAILURE`` replaces the old
hand-rolled failure loop. (For *mid-run* failures and recovery, see
the scenario engine's diurnal study in ``bench_scenario_diurnal.py``.)
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.experiments import SweepRunner, get_experiment


def _sweep():
    result = SweepRunner(workers=1).run(
        get_experiment("ablation_plane_failure")).raise_on_failure()
    return [{
        "failed_planes": row["failed_planes"],
        "healthy_planes": 5 - row["failed_planes"],
        "acceptance": row["acceptance_ratio"],
        "indirect_fraction": row["indirect_fraction"],
        "blocked": row["blocked"],
    } for row in result.rows()]


def test_ablation_plane_failure(benchmark):
    rows = benchmark(_sweep)
    emit("Ablation — AWGR plane failures", render_table(rows))
    acceptance = [r["acceptance"] for r in rows]
    # Degradation is graceful: monotone, and still >80% of flows with
    # two of five planes dark.
    assert acceptance[0] >= acceptance[1] >= acceptance[2]
    assert acceptance[2] > 0.8
    # Indirection works harder as capacity shrinks.
    assert (rows[2]["indirect_fraction"]
            >= rows[0]["indirect_fraction"] - 1e-9)
