"""Ablation — AWGR plane failure and graceful degradation.

The fabric has six parallel AWGRs; losing one is a realistic failure
(laser bank, connector). Because every pair keeps one wavelength per
surviving plane and indirect routing pools the slack, capacity
degrades proportionally instead of partitioning the rack.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.network.simulator import AWGRNetworkSimulator
from repro.network.traffic import Flow, uniform_traffic


def _sweep():
    rows = []
    for failed in (0, 1, 2):
        sim = AWGRNetworkSimulator(n_nodes=16, planes=5,
                                   flows_per_wavelength=1, rng_seed=13)
        for plane in range(failed):
            sim.allocator.fail_plane(plane)
        batches = []
        for _ in range(4):
            batch = uniform_traffic(16, 10, gbps=25.0)
            batch += [Flow(src, 0, gbps=25.0) for src in (1, 2, 3)]
            batches.append(batch)
        report = sim.run(batches, duration_slots=2)
        rows.append({
            "failed_planes": failed,
            "healthy_planes": 5 - failed,
            "acceptance": report.acceptance_ratio,
            "indirect_fraction": report.indirect_fraction,
            "blocked": report.blocked,
        })
    return rows


def test_ablation_plane_failure(benchmark):
    rows = benchmark(_sweep)
    emit("Ablation — AWGR plane failures", render_table(rows))
    acceptance = [r["acceptance"] for r in rows]
    # Degradation is graceful: monotone, and still >80% of flows with
    # two of five planes dark.
    assert acceptance[0] >= acceptance[1] >= acceptance[2]
    assert acceptance[2] > 0.8
    # Indirection works harder as capacity shrinks.
    assert (rows[2]["indirect_fraction"]
            >= rows[0]["indirect_fraction"] - 1e-9)
