"""Fig. 11 — CPU vs GPU slowdown on the shared Rodinia subset.

Paper: "GPUs tolerate the additional 35 ns latency better with a
maximum slowdown of 12%", while CPU cores suffer up to ~79% (NW).
"""

import numpy as np
from conftest import emit

from repro.analysis.report import render_table
from repro.core.slowdown import cpu_gpu_rodinia_comparison


def test_fig11_cpu_vs_gpu(benchmark):
    rows = benchmark(cpu_gpu_rodinia_comparison, 35.0)
    table = [{
        "benchmark": r.benchmark, "inorder": r.inorder,
        "ooo": r.ooo, "gpu": r.gpu,
    } for r in rows]
    emit("Fig. 11 — Rodinia on CPU vs GPU @35 ns", render_table(table))

    gpu_max = max(r.gpu for r in rows)
    emit("Fig. 11 — GPU max slowdown",
         f"measured {gpu_max:.3f} vs paper ~0.12")
    assert gpu_max < 0.15
    assert float(np.mean([r.gpu for r in rows])) < \
        float(np.mean([r.inorder for r in rows]))
    nw = next(r for r in rows if r.benchmark == "nw")
    assert nw.inorder > 0.7 and nw.gpu < 0.15
