"""§III-C3 — FEC/BER budget.

Paper: lightweight CXL/PCIe-Gen6 FEC adds 2-3 ns (plus serialization),
suppresses flit failures quadratically, keeps bandwidth loss <0.1%,
and reaches the 1e-18 server-memory BER with CRC + retransmission.

Runs on the sweep engine: ``repro.experiments.library.FEC_BER``
replaces the old hand-rolled raw-BER loop.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.experiments import SweepRunner, get_experiment


def _sweep():
    result = SweepRunner(workers=1).run(
        get_experiment("fec_ber")).raise_on_failure()
    return result.rows()


def test_fec_ber(benchmark):
    rows = benchmark(_sweep)
    emit("§III-C3 — FEC/BER sweep", render_table([{
        "raw_ber": r["raw_ber"],
        "flit_fail": r["flit_fail"],
        "residual_ber": r["residual_ber"],
        "retx_overhead": r["retx_overhead"],
        "meets_1e-18": r["meets_1e18"],
    } for r in rows], precision=3))
    latency = {
        "fec+serialization @200 Gbps (paper ~12-13 ns)":
            rows[0]["latency_ns_200g"],
        "fec+serialization @400 Gbps (paper ~7-8 ns)":
            rows[0]["latency_ns_400g"],
    }
    emit("§III-C3 — FEC latency", "\n".join(
        f"{k}: {v:.2f}" for k, v in latency.items()))

    by_ber = {r["raw_ber"]: r for r in rows}
    assert by_ber[1e-6]["meets_1e18"]
    assert by_ber[1e-6]["retx_overhead"] < 1e-3
    # Quadratic suppression: 100x better raw BER -> ~10,000x fewer
    # flit failures.
    ratio = by_ber[1e-6]["flit_fail"] / by_ber[1e-8]["flit_fail"]
    assert 5_000 < ratio < 20_000
