"""§III-C3 — FEC/BER budget.

Paper: lightweight CXL/PCIe-Gen6 FEC adds 2-3 ns (plus serialization),
suppresses flit failures quadratically, keeps bandwidth loss <0.1%,
and reaches the 1e-18 server-memory BER with CRC + retransmission.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.photonics.fec import (
    CXL_LIGHTWEIGHT_FEC,
    flit_error_rate,
    retransmission_overhead,
)


def _sweep():
    rows = []
    for raw_ber in (1e-4, 1e-6, 1e-8, 1e-10):
        rows.append({
            "raw_ber": raw_ber,
            "flit_fail": flit_error_rate(raw_ber),
            "residual_ber": CXL_LIGHTWEIGHT_FEC.residual_ber(raw_ber),
            "retx_overhead": retransmission_overhead(raw_ber),
            "meets_1e-18": CXL_LIGHTWEIGHT_FEC.meets_memory_ber(raw_ber),
        })
    return rows


def test_fec_ber(benchmark):
    rows = benchmark(_sweep)
    emit("§III-C3 — FEC/BER sweep", render_table(rows, precision=3))
    latency = {
        "fec+serialization @200 Gbps (paper ~12-13 ns)":
            CXL_LIGHTWEIGHT_FEC.total_latency_ns(200.0),
        "fec+serialization @400 Gbps (paper ~7-8 ns)":
            CXL_LIGHTWEIGHT_FEC.total_latency_ns(400.0),
    }
    emit("§III-C3 — FEC latency", "\n".join(
        f"{k}: {v:.2f}" for k, v in latency.items()))

    by_ber = {r["raw_ber"]: r for r in rows}
    assert by_ber[1e-6]["meets_1e-18"]
    assert by_ber[1e-6]["retx_overhead"] < 1e-3
    # Quadratic suppression: 100x better raw BER -> ~10,000x fewer
    # flit failures.
    ratio = by_ber[1e-6]["flit_fail"] / by_ber[1e-8]["flit_fail"]
    assert 5_000 < ratio < 20_000
