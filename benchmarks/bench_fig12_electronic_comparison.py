"""Fig. 12 — photonic (35 ns) vs best electronic (85 ns) speedups.

Paper: in-order average 9% (max 41%), OOO 15% (max 45%), GPUs ~61%
(throttled bandwidth plus latency). PARSEC counted at medium only.

Runs on the sweep engine:
``repro.experiments.library.FIG12_ELECTRONIC_COMPARISON`` replaces the
old hand-rolled ``electronic_vs_photonic`` call (one task covering all
three core types, since they share the underlying CPU study).
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.experiments import SweepRunner, get_experiment


def _sweep():
    return SweepRunner(workers=1).run(
        get_experiment("fig12_electronic_comparison")
    ).raise_on_failure().rows()


def test_fig12_electronic_comparison(benchmark):
    row = benchmark(_sweep)[0]
    table = [{
        "core": core,
        "mean_speedup": row[f"{core}_mean_speedup"],
        "max_speedup": row[f"{core}_max_speedup"],
        "n": row[f"{core}_n"],
    } for core in ("inorder", "ooo", "gpu")]
    emit("Fig. 12 — photonic over electronic",
         render_table(table)
         + "\npaper: inorder 9%/41%, OOO 15%/45%, GPU ~61%")

    emit("Fig. 12 — top-10 benchmark speedups",
         render_table(row["top_speedups"]))

    assert 0.05 < row["inorder_mean_speedup"] < 0.15
    assert 0.08 < row["ooo_mean_speedup"] < 0.20
    assert 0.40 < row["gpu_mean_speedup"] < 0.80
    assert row["min_speedup"] >= 0
