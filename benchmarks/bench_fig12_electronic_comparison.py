"""Fig. 12 — photonic (35 ns) vs best electronic (85 ns) speedups.

Paper: in-order average 9% (max 41%), OOO 15% (max 45%), GPUs ~61%
(throttled bandwidth plus latency). PARSEC counted at medium only.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.core.comparison import electronic_vs_photonic


def test_fig12_electronic_comparison(benchmark):
    entries, summaries = benchmark(electronic_vs_photonic)
    table = [{
        "core": s.core, "mean_speedup": s.mean_speedup,
        "max_speedup": s.max_speedup, "n": s.n,
    } for s in summaries]
    emit("Fig. 12 — photonic over electronic",
         render_table(table)
         + "\npaper: inorder 9%/41%, OOO 15%/45%, GPU ~61%")

    top = sorted(entries, key=lambda e: -e.speedup)[:10]
    emit("Fig. 12 — top-10 benchmark speedups", render_table([{
        "benchmark": e.name, "core": e.core, "speedup": e.speedup,
        "photonic_slowdown": e.photonic_slowdown,
        "electronic_slowdown": e.electronic_slowdown,
    } for e in top]))

    by_core = {s.core: s for s in summaries}
    assert 0.05 < by_core["inorder"].mean_speedup < 0.15
    assert 0.08 < by_core["ooo"].mean_speedup < 0.20
    assert 0.40 < by_core["gpu"].mean_speedup < 0.80
    assert all(e.speedup >= 0 for e in entries)
