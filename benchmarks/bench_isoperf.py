"""§VI-E — iso-performance module comparison.

Paper: +15% CPUs, +6% GPUs, 4x fewer DDR4 modules, 2x fewer NICs =>
1075 modules vs 1920 baseline (~44% reduction); alternatively keep all
resources and add ~7% chips to double throughput.

The slowdown inputs are *measured* from the CPU and GPU studies, and
the pooling factors are cross-checked against the synthetic Cori
profiles (which support at least the paper's conservative 4x / 2x).
"""

import numpy as np
from conftest import emit

from repro.analysis.report import render_kv
from repro.core.isoperf import (
    double_throughput_alternative,
    iso_performance_comparison,
    pooling_reduction_factor,
)
from repro.core.slowdown import overall_mean, run_cpu_study, run_gpu_study


def _full_chain():
    cpu = run_cpu_study(35.0, cores=("inorder",))
    cpu_slow = overall_mean(cpu, "inorder")
    gpu_slow = float(np.mean([g.slowdown for g in run_gpu_study(35.0)]))
    result = iso_performance_comparison(cpu_slowdown=cpu_slow,
                                        gpu_slowdown=gpu_slow)
    empirical_mem = pooling_reduction_factor("memory_capacity")
    empirical_nic = pooling_reduction_factor("nic_bandwidth")
    return result, cpu_slow, gpu_slow, empirical_mem, empirical_nic


def test_isoperf(benchmark):
    (result, cpu_slow, gpu_slow,
     empirical_mem, empirical_nic) = benchmark(_full_chain)
    alt = double_throughput_alternative()
    emit("§VI-E — iso-performance comparison", render_kv({
        "measured_cpu_slowdown (inorder mean)": cpu_slow,
        "measured_gpu_slowdown (mean)": gpu_slow,
        "baseline_modules [paper 1920]": result.baseline_total,
        "disaggregated_modules [paper ~1075]":
            result.disaggregated_total,
        "module_reduction [paper ~0.44]": result.module_reduction,
        "empirical_memory_pooling_factor [paper uses 4x]": empirical_mem,
        "empirical_nic_pooling_factor [paper uses 2x]": empirical_nic,
        "alt: chip_increase_to_double_throughput [paper ~0.07]":
            alt["chip_increase"],
    }))
    assert result.baseline_total == 1920
    assert abs(result.module_reduction - 0.44) < 0.04
    assert empirical_mem >= 4.0
    assert empirical_nic >= 2.0
