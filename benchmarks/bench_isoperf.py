"""§VI-E — iso-performance module comparison.

Paper: +15% CPUs, +6% GPUs, 4x fewer DDR4 modules, 2x fewer NICs =>
1075 modules vs 1920 baseline (~44% reduction); alternatively keep all
resources and add ~7% chips to double throughput.

The slowdown inputs are *measured* from the CPU and GPU studies, and
the pooling factors are cross-checked against the synthetic Cori
profiles (which support at least the paper's conservative 4x / 2x).
The full chain runs as the sweep engine's ``isoperf`` experiment.
"""

from conftest import emit

from repro.analysis.report import render_kv
from repro.experiments import SweepRunner, get_experiment


def _full_chain():
    result = SweepRunner(workers=1).run(
        get_experiment("isoperf")).raise_on_failure()
    return result.rows()[0]


def test_isoperf(benchmark):
    row = benchmark(_full_chain)
    emit("§VI-E — iso-performance comparison", render_kv({
        "measured_cpu_slowdown (inorder mean)": row["cpu_slowdown"],
        "measured_gpu_slowdown (mean)": row["gpu_slowdown"],
        "baseline_modules [paper 1920]": row["baseline_modules"],
        "disaggregated_modules [paper ~1075]":
            row["disaggregated_modules"],
        "module_reduction [paper ~0.44]": row["module_reduction"],
        "empirical_memory_pooling_factor [paper uses 4x]":
            row["empirical_memory_pooling"],
        "empirical_nic_pooling_factor [paper uses 2x]":
            row["empirical_nic_pooling"],
        "alt: chip_increase_to_double_throughput [paper ~0.07]":
            row["alt_chip_increase"],
    }))
    assert row["baseline_modules"] == 1920
    assert abs(row["module_reduction"] - 0.44) < 0.04
    assert row["empirical_memory_pooling"] >= 4.0
    assert row["empirical_nic_pooling"] >= 2.0
