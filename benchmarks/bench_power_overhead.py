"""§VI-C — photonic power overhead.

Paper: ~11 kW of photonics (0.5 pJ/bit always-on transceivers for
350 MCMs x 2048 wavelengths x 25 Gbps, plus <=1 kW of switches)
against the rack's compute power => ~5% overhead.
"""

from conftest import emit

from repro.analysis.report import render_kv
from repro.core.power import rack_power_overhead


def test_power_overhead(benchmark):
    result = benchmark(rack_power_overhead)
    emit("§VI-C — power overhead", render_kv({
        "photonic_w [paper ~11000]": result.photonic_w,
        "compute_w": result.compute_w,
        "overhead_fraction [paper ~0.05]": result.overhead_fraction,
    }))
    assert 9_000 < result.photonic_w < 12_000
    assert 0.03 < result.overhead_fraction < 0.07
