"""§VI-C — photonic power overhead.

Paper: ~11 kW of photonics (0.5 pJ/bit always-on transceivers for
350 MCMs x 2048 wavelengths x 25 Gbps, plus <=1 kW of switches)
against the rack's compute power => ~5% overhead.

Runs on the sweep engine:
``repro.experiments.library.POWER_OVERHEAD`` replaces the old direct
call, so the result lands in the shared cache like every experiment.
"""

from conftest import emit

from repro.analysis.report import render_kv
from repro.experiments import SweepRunner, get_experiment


def _run():
    result = SweepRunner(workers=1).run(
        get_experiment("power_overhead")).raise_on_failure()
    return result.rows()[0]


def test_power_overhead(benchmark):
    result = benchmark(_run)
    emit("§VI-C — power overhead", render_kv({
        "photonic_w [paper ~11000]": result["photonic_w"],
        "compute_w": result["compute_w"],
        "overhead_fraction [paper ~0.05]": result["overhead_fraction"],
    }))
    assert 9_000 < result["photonic_w"] < 12_000
    assert 0.03 < result["overhead_fraction"] < 0.07
