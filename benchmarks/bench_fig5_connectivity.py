"""Fig. 5 / §V-B — fabric connectivity invariants.

Case (A): six parallel 370-port AWGRs give every MCM pair at least
five direct 25 Gbps wavelengths (125 Gbps guaranteed).
Case (B): eleven 256-port wave-selective switches, staggered, give
every MCM pair at least three direct switch paths.

Runs on the sweep engine:
``repro.experiments.library.FIG5_CONNECTIVITY`` replaces the old
hand-rolled build-and-verify body.
"""

from conftest import emit

from repro.analysis.report import render_kv
from repro.experiments import SweepRunner, get_experiment


def _build_and_verify():
    result = SweepRunner(workers=1).run(
        get_experiment("fig5_connectivity")).raise_on_failure()
    return result.rows()[0]


def test_fig5_connectivity(benchmark):
    result = benchmark(_build_and_verify)
    emit("Fig. 5 — fabric connectivity",
         render_kv(result) + "\npaper: >=5 wavelengths/pair (AWGR), "
         ">=3 direct paths/pair (WSS), 125 Gbps direct")
    assert result["awgr_planes"] == 6
    assert result["awgr_min_direct_wavelengths"] >= 5
    assert result["awgr_guaranteed_pair_gbps"] == 125.0
    assert result["wss_switches"] == 11
    assert result["wss_min_direct_paths"] >= 3
    assert result["wss_max_ports_per_mcm"] <= 8
