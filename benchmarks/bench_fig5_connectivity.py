"""Fig. 5 / §V-B — fabric connectivity invariants.

Case (A): six parallel 370-port AWGRs give every MCM pair at least
five direct 25 Gbps wavelengths (125 Gbps guaranteed).
Case (B): eleven 256-port wave-selective switches, staggered, give
every MCM pair at least three direct switch paths.
"""

from conftest import emit

from repro.analysis.report import render_kv
from repro.rack.design import plan_awgr_fabric, plan_wss_fabric


def _build_and_verify():
    awgr = plan_awgr_fabric()
    wss = plan_wss_fabric()
    return {
        "awgr_planes": awgr.planes,
        "awgr_min_direct_wavelengths": awgr.min_direct_wavelengths(),
        "awgr_guaranteed_pair_gbps": awgr.guaranteed_pair_gbps(),
        "wss_switches": wss.n_switches,
        "wss_min_direct_paths": wss.min_direct_paths(),
        "wss_max_ports_per_mcm": int(wss.ports_per_mcm().max()),
    }


def test_fig5_connectivity(benchmark):
    result = benchmark(_build_and_verify)
    emit("Fig. 5 — fabric connectivity",
         render_kv(result) + "\npaper: >=5 wavelengths/pair (AWGR), "
         ">=3 direct paths/pair (WSS), 125 Gbps direct")
    assert result["awgr_planes"] == 6
    assert result["awgr_min_direct_wavelengths"] >= 5
    assert result["awgr_guaranteed_pair_gbps"] == 125.0
    assert result["wss_switches"] == 11
    assert result["wss_min_direct_paths"] >= 3
    assert result["wss_max_ports_per_mcm"] <= 8
