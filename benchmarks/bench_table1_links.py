"""Table I — WDM photonic link technologies.

Regenerates the computed columns (#links and aggregate W for a 2 TB/s
escape) from the device parameters.

Paper values: links 160/40/21/16/8; aggregate W 480/197/14.4/7.2/4.8
(the 400G row's published wattage is inconsistent with its printed
30 pJ/bit — see EXPERIMENTS.md).
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.photonics.links import table1_rows


def test_table1_links(benchmark):
    rows = benchmark(table1_rows, 2.0)
    emit("Table I — link technologies (2 TB/s escape)",
         render_table(rows, columns=["name", "gbps", "pj_per_bit",
                                     "channel_structure", "links",
                                     "aggregate_w"]))
    by_name = {r["name"]: r for r in rows}
    assert by_name["100G-ethernet"]["links"] == 160
    assert by_name["400G-ethernet"]["links"] == 40
    assert by_name["ayar-teraphy"]["links"] == 21
    assert by_name["dwdm-1tbps"]["links"] == 16
    assert by_name["dwdm-2tbps"]["links"] == 8
    assert abs(by_name["dwdm-2tbps"]["aggregate_w"] - 4.8) < 1e-9
