"""Service throughput — concurrent sessions over one worker pool.

Measures what the `repro.service` gateway sustains as live sessions
multiply on a fixed 4-worker pool, over real HTTP on an ephemeral
port:

* **aggregate epochs/s** — total epochs streamed across all sessions
  divided by the wall time from first submit to last completion. The
  scaling curve (1 -> 8 -> 32 sessions) shows the pool amortizing
  scheduling overhead until the workers saturate.
* **time-to-first-epoch (p50/p99)** — per-session latency from the
  POST /sessions call to the first SSE ``epoch`` frame landing at the
  client. At 32 sessions on 4 workers this is dominated by one FIFO
  scheduling round — the fairness quantum made visible.

Correctness gates (not perf thresholds, which would flake in CI): a
probe session's streamed epochs must be bit-identical to a direct
``ScenarioRunner`` run, every submitted session must complete, and
every session must stream its full horizon.

As a script this writes ``BENCH_service.json``:

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
    PYTHONPATH=src python benchmarks/bench_service_throughput.py \
        --quick --out BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

BASE_SEED = 17
WORKERS = 4
SLICE_EPOCHS = 4


def service_scenario(n_epochs: int, n_nodes: int = 8):
    """Uniform stochastic chatter: cheap epochs, seed-distinct."""
    from repro.scenarios import Episode, Scenario

    return Scenario(
        name="service_bench",
        n_nodes=n_nodes,
        n_epochs=n_epochs,
        description="uniform poisson chatter (service throughput "
                    "probe)",
        episodes=(Episode(kind="uniform",
                          flows={"dist": "poisson", "mean": 6},
                          gbps=25.0),))


def _run_level(concurrency: int, n_epochs: int) -> dict:
    """Drive ``concurrency`` sessions through a fresh gateway."""
    from repro.analysis.stats import quantiles
    from repro.service import ServiceClient, ServiceGateway, SessionPool

    scenario = service_scenario(n_epochs)
    pool = SessionPool(workers=WORKERS, slice_epochs=SLICE_EPOCHS)
    gateway = ServiceGateway(pool)
    gateway.start()
    client_results: list[dict] = [None] * concurrency
    t_start = time.perf_counter()

    def drive(index: int) -> None:
        client = ServiceClient(gateway.url, timeout=120.0)
        t0 = time.perf_counter()
        session_id = client.submit(scenario.to_config(),
                                   base_seed=BASE_SEED + index)["id"]
        ttfe = None
        epochs = []
        for event, _, data in client.stream(session_id):
            if event == "epoch":
                if ttfe is None:
                    ttfe = time.perf_counter() - t0
                epochs.append(data)
        client_results[index] = {
            "session_id": session_id,
            "ttfe_s": ttfe,
            "epochs": epochs,
            "final_state": client.session(session_id)["state"],
        }

    threads = [threading.Thread(target=drive, args=(i,), daemon=True)
               for i in range(concurrency)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600.0)
    wall_s = time.perf_counter() - t_start
    metrics = ServiceClient(gateway.url).metrics()
    gateway.stop()

    incomplete = [r for r in client_results
                  if r is None or r["final_state"] != "completed"
                  or len(r["epochs"]) != n_epochs]
    ttfes = [r["ttfe_s"] for r in client_results
             if r is not None and r["ttfe_s"] is not None]
    qs = (quantiles(ttfes, qs=(0.5, 0.99)) if ttfes
          else {0.5: 0.0, 0.99: 0.0})
    total_epochs = sum(len(r["epochs"]) for r in client_results
                       if r is not None)
    return {
        "concurrency": concurrency,
        "n_epochs_per_session": n_epochs,
        "wall_s": wall_s,
        "total_epochs": total_epochs,
        "epochs_per_s": total_epochs / wall_s if wall_s > 0 else 0.0,
        "ttfe_p50_s": qs[0.5],
        "ttfe_p99_s": qs[0.99],
        "incomplete_sessions": len(incomplete),
        "pool_epochs_total": metrics["epochs_total"],
        "pool_recoveries": metrics["recoveries_total"],
        "probe_epochs": (client_results[0]["epochs"]
                         if client_results[0] is not None else []),
    }


def run_suite(quick: bool = False) -> dict:
    """The concurrency scaling curve plus the correctness probe."""
    from repro.scenarios import ScenarioRunner, make_backend

    n_epochs = 12 if quick else 48
    levels = (1, 8, 32)
    rows = []
    for concurrency in levels:
        rows.append(_run_level(concurrency, n_epochs))

    # Correctness probe: level-1's single session against a direct
    # monolithic run of the same scenario and seed.
    scenario = service_scenario(n_epochs)
    reference = ScenarioRunner(
        scenario,
        make_backend("awgr", scenario.n_nodes, seed=BASE_SEED),
    ).run(seed=BASE_SEED)
    expected = [e.to_dict() for e in reference.epochs]
    probe_identical = (
        json.dumps(rows[0]["probe_epochs"], sort_keys=True)
        == json.dumps(expected, sort_keys=True))
    for row in rows:
        row.pop("probe_epochs")

    return {
        "workers": WORKERS,
        "slice_epochs": SLICE_EPOCHS,
        "n_epochs_per_session": n_epochs,
        "levels": rows,
        "probe_stream_bit_identical": probe_identical,
        "scaling_1_to_32":
            rows[-1]["epochs_per_s"] / max(rows[0]["epochs_per_s"],
                                           1e-9),
    }


def check(record: dict) -> list[str]:
    """Gate conditions; returns failure messages (empty = pass)."""
    failures = []
    if not record["probe_stream_bit_identical"]:
        failures.append(
            "streamed epochs drifted from the monolithic "
            "ScenarioRunner run — the service perturbs the "
            "simulation")
    for row in record["levels"]:
        if row["incomplete_sessions"]:
            failures.append(
                f"{row['incomplete_sessions']} of "
                f"{row['concurrency']} sessions did not stream to "
                "completion")
        if row["ttfe_p99_s"] <= 0.0:
            failures.append(
                f"level {row['concurrency']}: no time-to-first-epoch "
                "samples recorded")
    return failures


def test_service_throughput():
    """Quick-mode run: every level completes, probe bit-identical.

    Timed manually (wall clock per level) rather than through the
    pytest-benchmark fixture because the concurrency sweep *is* the
    benchmark.
    """
    from conftest import emit

    from repro.analysis.report import render_table

    record = run_suite(quick=True)
    emit("Service throughput — concurrent-session scaling",
         render_table([{k: v for k, v in row.items()}
                       for row in record["levels"]]))
    assert not check(record)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized horizon (12 epochs/session)")
    parser.add_argument("--out", default=None,
                        help="write the JSON record here")
    args = parser.parse_args(argv)
    record = run_suite(quick=args.quick)
    print(json.dumps(record, indent=1))
    failures = check(record)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    if args.out:
        Path(args.out).write_text(json.dumps(record, indent=1) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
