"""Ablation — DRAM load vs effective miss latency vs slowdown.

Grounds the EXPERIMENTS.md calibration note: the MemoryModel's 25 ns
base LLC-to-data latency corresponds to the DRAM channel model at
moderate load with bank-level parallelism; heavier memory traffic
raises the effective base latency, which *shrinks* the relative impact
of the fixed 35 ns photonic adder — disaggregation hurts bandwidth-
starved codes less than latency-bound ones.

Runs on the sweep engine: the grid in
``repro.experiments.library.ABLATION_DRAM_LOAD`` replaces the old
hand-rolled demand loop.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.experiments import SweepRunner, get_experiment


def _sweep():
    result = SweepRunner(workers=1).run(
        get_experiment("ablation_dram_load")).raise_on_failure()
    return [{
        "demand_gbyte_s": row["demand_gbyte_s"],
        "effective_base_ns": row["effective_base_ns"],
        "queueing_ns": row["queueing_ns"],
        "canneal_slowdown@35ns": row["slowdown"],
    } for row in result.rows()]


def test_ablation_dram_load(benchmark):
    rows = benchmark(_sweep)
    emit("Ablation — DRAM load vs base latency vs slowdown",
         render_table(rows))
    base = [r["effective_base_ns"] for r in rows]
    slow = [r["canneal_slowdown@35ns"] for r in rows]
    # Base latency grows with load; relative slowdown from the fixed
    # adder shrinks correspondingly.
    assert base == sorted(base)
    assert slow == sorted(slow, reverse=True)
    # At the calibration point (~5 GB/s) the base sits near the
    # MemoryModel default.
    cal = rows[1]
    assert 15.0 <= cal["effective_base_ns"] <= 35.0
