"""Ablation — DRAM load vs effective miss latency vs slowdown.

Grounds the EXPERIMENTS.md calibration note: the MemoryModel's 25 ns
base LLC-to-data latency corresponds to the DRAM channel model at
moderate load with bank-level parallelism; heavier memory traffic
raises the effective base latency, which *shrinks* the relative impact
of the fixed 35 ns photonic adder — disaggregation hurts bandwidth-
starved codes less than latency-bound ones.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.cpu.dram import DRAMChannel
from repro.cpu.memory import MemoryModel
from repro.cpu.simulator import CPUSimulator
from repro.workloads.cpu_suites import parsec_benchmarks


def _sweep():
    channel = DRAMChannel()
    bench = next(b for b in parsec_benchmarks("large")
                 if b.name == "canneal")
    rows = []
    for demand in (2.0, 5.0, 12.0, 20.0):
        base_ns = channel.effective_miss_latency_ns(demand, blp=4.0)
        sim = CPUSimulator(memory=MemoryModel(base_latency_ns=base_ns))
        result = sim.run_inorder(bench.trace_spec(), 35.0,
                                 cpi_base=bench.cpi_inorder)
        rows.append({
            "demand_gbyte_s": demand,
            "effective_base_ns": base_ns,
            "queueing_ns": channel.queueing_ns(demand),
            "canneal_slowdown@35ns": result.slowdown,
        })
    return rows


def test_ablation_dram_load(benchmark):
    rows = benchmark(_sweep)
    emit("Ablation — DRAM load vs base latency vs slowdown",
         render_table(rows))
    base = [r["effective_base_ns"] for r in rows]
    slow = [r["canneal_slowdown@35ns"] for r in rows]
    # Base latency grows with load; relative slowdown from the fixed
    # adder shrinks correspondingly.
    assert base == sorted(base)
    assert slow == sorted(slow, reverse=True)
    # At the calibration point (~5 GB/s) the base sits near the
    # MemoryModel default.
    cal = rows[1]
    assert 15.0 <= cal["effective_base_ns"] <= 35.0
