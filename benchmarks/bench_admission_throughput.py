"""Admission + epoch-loop throughput — scalar vs vectorized (PR 3/8).

Two recorded baselines in one file:

* **admission** (PR 3) — flows/second admitted by
  ``AWGRNetworkSimulator.run`` at 64 / 128 / 350 MCMs under uniform
  traffic with ``track_state=False`` (the §VI-A rack-scale feasibility
  configuration), per-flow reference loop vs the vectorized
  ``offer_batch`` hot path.
* **epoch loop** (PR 8) — flows/second through the *full* scenario
  epoch loop (generation → admission → expiry → report) per fabric
  backend, object path (``list[Flow]`` into the per-flow reference
  loops) vs batch path (``FlowBatch`` end to end), with a
  generation/step stage breakdown.

Each comparison runs both paths on identical seeded traffic and
requires bit-identical reports — the speedups are only meaningful
because the semantics are unchanged.

As a script this writes ``BENCH_admission.json`` (the recorded
baseline; CI regenerates it in ``--quick`` mode and fails if any
batched path is ever slower than its scalar reference):

    PYTHONPATH=src python benchmarks/bench_admission_throughput.py
    PYTHONPATH=src python benchmarks/bench_admission_throughput.py \
        --quick --out BENCH_admission.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

#: Rack scales measured: two sub-rack fabrics plus the paper's full
#: 350-MCM rack (§VI-A).
SIZES = (64, 128, 350)

#: Acceptance floor for the full-rack speedup (ISSUE 3 criterion).
TARGET_SPEEDUP_350 = 10.0

#: Backends measured by the end-to-end epoch-loop suite.
EPOCH_BACKENDS = ("awgr", "wss", "electronic")

#: Rack scales for the epoch-loop suite (full rack only in quick mode
#: — the acceptance criterion lives at 350 MCMs).
EPOCH_SIZES = (128, 350)

#: Acceptance floor for the full-rack end-to-end epoch-loop speedup
#: on the AWGR backend (ISSUE 8 criterion).
TARGET_EPOCH_SPEEDUP_350 = 3.0

#: Per-backend no-regression floors for the epoch-loop gate. AWGR and
#: electronic epochs are flow-pipeline-bound, so the batch path must
#: strictly win. The WSS epoch is scheduler-bound: ~98% of its step is
#: the centralized ``schedule_demand`` greedy (sequential by
#: construction — shared output-port capacity couples the sources),
#: identical on both paths, so the end-to-end ratio hovers at ~1.0x
#: by Amdahl's law and the gate only guards against a real regression
#: beyond timing noise.
EPOCH_FLOORS = {"awgr": 1.0, "electronic": 1.0, "wss": 0.9}


def _build_batches(n_nodes: int, flows_per_slot: int, n_slots: int,
                   seed: int = 42):
    from repro.network.traffic import uniform_traffic

    rng = np.random.default_rng(seed)
    # 3 Gbps < one 25/8 Gbps sub-slot: single-slot flows, so the
    # measured quantity is pure admission overhead, not multi-slot
    # packing.
    return [uniform_traffic(n_nodes, flows_per_slot, gbps=3.0, rng=rng)
            for _ in range(n_slots)]


def _time_path(n_nodes: int, batches, batched: bool,
               repeats: int) -> tuple[float, dict]:
    """Best-of-``repeats`` wall time for one admission path."""
    from repro.network.simulator import AWGRNetworkSimulator

    best = float("inf")
    report = None
    for _ in range(repeats):
        sim = AWGRNetworkSimulator(
            n_nodes=n_nodes, planes=5, flows_per_wavelength=8,
            track_state=False, rng_seed=1, batch_admission=batched)
        t0 = time.perf_counter()
        result = sim.run([list(b) for b in batches], duration_slots=2)
        best = min(best, time.perf_counter() - t0)
        report = result.as_dict()
    return best, report


def run_suite(quick: bool = False, repeats: int | None = None,
              sizes=SIZES) -> list[dict]:
    """Measure both paths at every size; verify identical reports."""
    # Best-of-3 in both modes: wall-clock ratios on shared CI runners
    # need the least-contended sample of each path, not an average.
    repeats = repeats if repeats is not None else 3
    rows = []
    for n_nodes in sizes:
        flows_per_slot = 4 * n_nodes
        n_slots = 3 if quick else 6
        batches = _build_batches(n_nodes, flows_per_slot, n_slots)
        total_flows = flows_per_slot * n_slots
        scalar_s, scalar_report = _time_path(
            n_nodes, batches, batched=False, repeats=repeats)
        batched_s, batched_report = _time_path(
            n_nodes, batches, batched=True, repeats=repeats)
        if scalar_report != batched_report:
            raise AssertionError(
                f"paths diverged at {n_nodes} MCMs: "
                f"{scalar_report} != {batched_report}")
        rows.append({
            "n_nodes": n_nodes,
            "flows": total_flows,
            "scalar_flows_per_s": round(total_flows / scalar_s),
            "batched_flows_per_s": round(total_flows / batched_s),
            "speedup": round(scalar_s / batched_s, 2),
            "acceptance_ratio": scalar_report["acceptance_ratio"],
        })
    return rows


def _epoch_scenario(n_nodes: int, n_epochs: int):
    from repro.scenarios.episodes import Episode
    from repro.scenarios.scenario import Scenario

    return Scenario(
        name=f"bench-epoch-{n_nodes}", n_nodes=n_nodes,
        n_epochs=n_epochs,
        episodes=(Episode(kind="uniform", flows=4 * n_nodes,
                          gbps=3.0),))


#: Per-backend name of the scalar-vs-batched switch.
_BATCH_FLAG = {"awgr": "batch_admission", "wss": "batch_step",
               "electronic": "batch_step"}

#: Backend overrides for the epoch-loop suite. AWGR mirrors the
#: admission suite's §VI-A feasibility configuration (8 flows per
#: wavelength → admission is mostly direct, the production regime;
#: track_state=False as in the admission rows above): the default
#: flows_per_wavelength=1 would saturate the fabric and measure the
#: per-overflow-flow router walk, and the always-fresh staleness model
#: at 350 MCMs is O(N^3) status installs per epoch — identical shared
#: cost on both paths that would drown the pipeline being measured.
_EPOCH_PARAMS = {"awgr": {"flows_per_wavelength": 8,
                          "track_state": False},
                 "wss": {}, "electronic": {}}


def _time_epoch_loop(backend_name: str, n_nodes: int, n_epochs: int,
                     batched: bool, repeats: int
                     ) -> tuple[float, float, float, list[dict]]:
    """Best-of-``repeats`` full epoch loop for one backend/path.

    Returns (total_s, generation_s, step_s, epoch report dicts) from
    the best run. The object path generates ``list[Flow]`` and steps
    the per-flow reference loop; the batch path generates a
    ``FlowBatch`` and steps the vectorized loop — generation →
    admission → expiry → report, exactly what ``ScenarioRunner``
    executes per epoch.
    """
    from repro.scenarios.backends import make_backend

    scenario = _epoch_scenario(n_nodes, n_epochs)
    best = (float("inf"), 0.0, 0.0)
    reports = None
    for _ in range(repeats):
        backend = make_backend(
            backend_name, n_nodes, seed=1,
            **{_BATCH_FLAG[backend_name]: batched},
            **_EPOCH_PARAMS[backend_name])
        gen_s = step_s = 0.0
        stream = []
        t0 = time.perf_counter()
        for epoch in range(n_epochs):
            g0 = time.perf_counter()
            if batched:
                flows = scenario.flow_batch_at(epoch, base_seed=7)
            else:
                flows = scenario.batch_at(epoch, base_seed=7)
            g1 = time.perf_counter()
            stream.append(backend.step(flows))
            gen_s += g1 - g0
            step_s += time.perf_counter() - g1
        total = time.perf_counter() - t0
        if total < best[0]:
            best = (total, gen_s, step_s)
            reports = [r.to_dict() for r in stream]
    return (*best, reports)


def run_epoch_suite(quick: bool = False, repeats: int | None = None,
                    sizes=EPOCH_SIZES) -> list[dict]:
    """Time the full epoch loop per backend; verify identical streams."""
    # Best-of-4 (one more than the admission suite): the WSS ratio is
    # a near-1.0 comparison of two scheduler-bound paths, so it needs
    # an extra sample to shake off CPU-throttling windows.
    repeats = repeats if repeats is not None else 4
    if quick:
        sizes = (350,)
    rows = []
    for n_nodes in sizes:
        n_epochs = 3 if quick else 6
        total_flows = 4 * n_nodes * n_epochs
        for backend_name in EPOCH_BACKENDS:
            scalar_s, scalar_gen, scalar_step, scalar_reports = (
                _time_epoch_loop(backend_name, n_nodes, n_epochs,
                                 batched=False, repeats=repeats))
            batched_s, batched_gen, batched_step, batched_reports = (
                _time_epoch_loop(backend_name, n_nodes, n_epochs,
                                 batched=True, repeats=repeats))
            if scalar_reports != batched_reports:
                raise AssertionError(
                    f"{backend_name} epoch streams diverged at "
                    f"{n_nodes} MCMs")
            rows.append({
                "backend": backend_name,
                "n_nodes": n_nodes,
                "flows": total_flows,
                "scalar_flows_per_s": round(total_flows / scalar_s),
                "batched_flows_per_s": round(total_flows / batched_s),
                "speedup": round(scalar_s / batched_s, 2),
                "scalar_gen_ms": round(scalar_gen * 1e3, 2),
                "scalar_step_ms": round(scalar_step * 1e3, 2),
                "batched_gen_ms": round(batched_gen * 1e3, 2),
                "batched_step_ms": round(batched_step * 1e3, 2),
            })
    return rows


def write_bench_json(rows: list[dict], epoch_rows: list[dict],
                     path: Path, quick: bool) -> None:
    payload = {
        "benchmark": "admission_throughput",
        "config": {
            "planes": 5, "flows_per_wavelength": 8,
            "traffic": "uniform 3 Gbps", "track_state": False,
            "duration_slots": 2, "quick": quick,
        },
        "results": rows,
        "epoch_loop": {
            "config": {
                "traffic": "uniform episode, 4 flows/MCM/epoch at "
                           "3 Gbps, per-epoch counter seeding",
                "backends": list(EPOCH_BACKENDS),
                "stages": "generation + step (admission, expiry, "
                          "report) per epoch",
                "quick": quick,
            },
            "results": epoch_rows,
        },
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def test_admission_throughput():
    """Quick-mode run: identical reports, >=10x at full rack scale.

    Timed manually (best-of-N wall clock) rather than through the
    pytest-benchmark fixture because the comparison between the two
    admission paths *is* the benchmark.
    """
    from conftest import emit

    from repro.analysis.report import render_table

    rows = run_suite(quick=True)
    emit("Admission throughput — scalar vs batched (flows/s)",
         render_table(rows))
    # Quick mode shows ~12-16x at full rack locally (26x in full
    # mode, see BENCH_admission.json), so the 10x acceptance floor
    # keeps real margin even on a contended runner.
    full_rack = next(r for r in rows if r["n_nodes"] == 350)
    assert full_rack["speedup"] >= TARGET_SPEEDUP_350
    # Smaller fabrics must still win, if less dramatically.
    assert all(r["speedup"] > 1.0 for r in rows)


def test_epoch_loop_throughput():
    """Quick-mode epoch loop: identical streams, batched never loses.

    The end-to-end gate for the PR 8 batch pipeline: generation →
    admission → expiry → report must be faster with ``FlowBatch`` on
    *every* backend, and the AWGR full-rack loop must clear the 3x
    acceptance floor (full mode records the real margin in
    ``BENCH_admission.json``).
    """
    from conftest import emit

    from repro.analysis.report import render_table

    rows = run_epoch_suite(quick=True)
    emit("Epoch-loop throughput — object vs batch path (flows/s)",
         render_table(rows))
    for row in rows:
        assert row["speedup"] >= EPOCH_FLOORS[row["backend"]], row
    awgr = next(r for r in rows if r["backend"] == "awgr")
    assert awgr["speedup"] >= TARGET_EPOCH_SPEEDUP_350, awgr


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="AWGR admission throughput: scalar vs batched")
    parser.add_argument("--quick", action="store_true",
                        help="smaller grids (CI smoke mode)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per path (best-of)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_admission.json",
                        help="where to write the BENCH JSON")
    args = parser.parse_args(argv)

    rows = run_suite(quick=args.quick, repeats=args.repeats)
    epoch_rows = run_epoch_suite(quick=args.quick,
                                 repeats=args.repeats)
    from repro.analysis.report import render_table
    print(render_table(rows))
    print(render_table(epoch_rows))
    write_bench_json(rows, epoch_rows, args.out, quick=args.quick)
    print(f"wrote {args.out}")
    slow = [f"{r['n_nodes']}" for r in rows if r["speedup"] <= 1.0]
    slow += [f"{r['backend']}@{r['n_nodes']}" for r in epoch_rows
             if r["speedup"] < EPOCH_FLOORS[r["backend"]]]
    if slow:
        print("FAIL: batched path slower than scalar at "
              + ", ".join(slow) + " MCMs")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
