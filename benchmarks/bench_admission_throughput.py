"""Admission throughput — scalar vs vectorized batch path (PR 3).

The repo's first recorded performance baseline: flows/second admitted
by ``AWGRNetworkSimulator.run`` at 64 / 128 / 350 MCMs under uniform
traffic with ``track_state=False`` (the §VI-A rack-scale feasibility
configuration), for the per-flow reference loop and the vectorized
``offer_batch`` hot path. Both paths are run on identical batches and
their ``SimulationReport`` aggregates are required to match exactly —
the speedup is only meaningful because the semantics are unchanged.

As a script this writes ``BENCH_admission.json`` (the recorded
baseline; CI regenerates it in ``--quick`` mode and fails if the
batched path is ever slower than the scalar one):

    PYTHONPATH=src python benchmarks/bench_admission_throughput.py
    PYTHONPATH=src python benchmarks/bench_admission_throughput.py \
        --quick --out BENCH_admission.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

#: Rack scales measured: two sub-rack fabrics plus the paper's full
#: 350-MCM rack (§VI-A).
SIZES = (64, 128, 350)

#: Acceptance floor for the full-rack speedup (ISSUE 3 criterion).
TARGET_SPEEDUP_350 = 10.0


def _build_batches(n_nodes: int, flows_per_slot: int, n_slots: int,
                   seed: int = 42):
    from repro.network.traffic import uniform_traffic

    rng = np.random.default_rng(seed)
    # 3 Gbps < one 25/8 Gbps sub-slot: single-slot flows, so the
    # measured quantity is pure admission overhead, not multi-slot
    # packing.
    return [uniform_traffic(n_nodes, flows_per_slot, gbps=3.0, rng=rng)
            for _ in range(n_slots)]


def _time_path(n_nodes: int, batches, batched: bool,
               repeats: int) -> tuple[float, dict]:
    """Best-of-``repeats`` wall time for one admission path."""
    from repro.network.simulator import AWGRNetworkSimulator

    best = float("inf")
    report = None
    for _ in range(repeats):
        sim = AWGRNetworkSimulator(
            n_nodes=n_nodes, planes=5, flows_per_wavelength=8,
            track_state=False, rng_seed=1, batch_admission=batched)
        t0 = time.perf_counter()
        result = sim.run([list(b) for b in batches], duration_slots=2)
        best = min(best, time.perf_counter() - t0)
        report = result.as_dict()
    return best, report


def run_suite(quick: bool = False, repeats: int | None = None,
              sizes=SIZES) -> list[dict]:
    """Measure both paths at every size; verify identical reports."""
    # Best-of-3 in both modes: wall-clock ratios on shared CI runners
    # need the least-contended sample of each path, not an average.
    repeats = repeats if repeats is not None else 3
    rows = []
    for n_nodes in sizes:
        flows_per_slot = 4 * n_nodes
        n_slots = 3 if quick else 6
        batches = _build_batches(n_nodes, flows_per_slot, n_slots)
        total_flows = flows_per_slot * n_slots
        scalar_s, scalar_report = _time_path(
            n_nodes, batches, batched=False, repeats=repeats)
        batched_s, batched_report = _time_path(
            n_nodes, batches, batched=True, repeats=repeats)
        if scalar_report != batched_report:
            raise AssertionError(
                f"paths diverged at {n_nodes} MCMs: "
                f"{scalar_report} != {batched_report}")
        rows.append({
            "n_nodes": n_nodes,
            "flows": total_flows,
            "scalar_flows_per_s": round(total_flows / scalar_s),
            "batched_flows_per_s": round(total_flows / batched_s),
            "speedup": round(scalar_s / batched_s, 2),
            "acceptance_ratio": scalar_report["acceptance_ratio"],
        })
    return rows


def write_bench_json(rows: list[dict], path: Path,
                     quick: bool) -> None:
    payload = {
        "benchmark": "admission_throughput",
        "config": {
            "planes": 5, "flows_per_wavelength": 8,
            "traffic": "uniform 3 Gbps", "track_state": False,
            "duration_slots": 2, "quick": quick,
        },
        "results": rows,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def test_admission_throughput():
    """Quick-mode run: identical reports, >=10x at full rack scale.

    Timed manually (best-of-N wall clock) rather than through the
    pytest-benchmark fixture because the comparison between the two
    admission paths *is* the benchmark.
    """
    from conftest import emit

    from repro.analysis.report import render_table

    rows = run_suite(quick=True)
    emit("Admission throughput — scalar vs batched (flows/s)",
         render_table(rows))
    # Quick mode shows ~12-16x at full rack locally (26x in full
    # mode, see BENCH_admission.json), so the 10x acceptance floor
    # keeps real margin even on a contended runner.
    full_rack = next(r for r in rows if r["n_nodes"] == 350)
    assert full_rack["speedup"] >= TARGET_SPEEDUP_350
    # Smaller fabrics must still win, if less dramatically.
    assert all(r["speedup"] > 1.0 for r in rows)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="AWGR admission throughput: scalar vs batched")
    parser.add_argument("--quick", action="store_true",
                        help="smaller grids (CI smoke mode)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per path (best-of)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_admission.json",
                        help="where to write the BENCH JSON")
    args = parser.parse_args(argv)

    rows = run_suite(quick=args.quick, repeats=args.repeats)
    from repro.analysis.report import render_table
    print(render_table(rows))
    write_bench_json(rows, args.out, quick=args.quick)
    print(f"wrote {args.out}")
    slow = [r for r in rows if r["speedup"] <= 1.0]
    if slow:
        print("FAIL: batched path slower than scalar at "
              + ", ".join(str(r["n_nodes"]) for r in slow) + " MCMs")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
