"""Chunk-boundary fidelity and cost — carry vs reset replays.

Quantifies what PR 5's carried-state boundaries buy over the original
fresh-backend-plus-event-replay chunking:

* **fidelity** — a chunked replay's aggregates versus the monolithic
  :class:`~repro.scenarios.runner.ScenarioRunner` ground truth. Reset
  mode drops the previous chunk's in-flight flows at every boundary,
  so its occupancy-sensitive aggregates drift from the monolithic
  run; carry mode restores the previous chunk's backend snapshot and
  must match *bit for bit*.
* **boundary cost** — what standing up one chunk's starting state
  costs: reset mode replays every event scripted before the chunk
  (O(events x chunk index), growing along the horizon), carry mode
  restores a serialized snapshot (O(state), flat). Measured at the
  last chunk boundary of an event-dense scenario, minimum over
  repeats.

As a script this writes ``BENCH_chunk_boundary.json`` (CI regenerates
it in ``--quick`` mode and fails if carry mode ever drifts from the
monolithic run, or if the scenario stops exercising boundary-crossing
flows — i.e. if reset mode stops showing a fidelity delta):

    PYTHONPATH=src python benchmarks/bench_chunk_boundary.py
    PYTHONPATH=src python benchmarks/bench_chunk_boundary.py \
        --quick --out BENCH_chunk_boundary.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

BASE_SEED = 13


def boundary_scenario(n_epochs: int, n_nodes: int = 12):
    """Capacity-bound load plus an event-dense failure script.

    The hotspot's 125 Gbps flows need 5 sub-slots each — one whole
    plane of the pair's direct budget — and the AWGR backend's default
    ``duration_slots=2`` keeps them resident across epochs, so whether
    a boundary dropped the previous chunk's in-flight flows visibly
    changes admission (blocking and indirection) in the next chunk.
    Plane 0 flaps (fail, repair two epochs later, every four epochs)
    to give reset mode a pre-chunk event tape that grows along the
    horizon.
    """
    from repro.scenarios import Episode, Scenario, ScenarioEvent

    events = []
    for epoch in range(0, n_epochs, 4):
        events.append(ScenarioEvent(epoch=epoch, action="fail_plane",
                                    value=0))
        if epoch + 2 < n_epochs:
            events.append(ScenarioEvent(epoch=epoch + 2,
                                        action="repair_plane", value=0))
    return Scenario(
        name="chunk_boundary_bench",
        n_nodes=n_nodes,
        n_epochs=n_epochs,
        description="uniform chatter + a saturating hotspot + a "
                    "flapping plane (chunk-boundary fidelity probe)",
        episodes=(
            Episode(kind="uniform",
                    flows={"dist": "poisson", "mean": 16},
                    gbps=25.0),
            Episode(kind="hotspot", flows=8, gbps=125.0,
                    params={"hotspot": 0}),
        ),
        events=tuple(events))


def _deltas(chunked: dict, mono: dict) -> dict:
    """Absolute aggregate drift of a chunked replay vs the monolith.

    ``indirect_fraction`` is the most sensitive probe: dropping the
    previous chunk's in-flight flows frees occupancy, so a reset
    boundary under-reports indirection (and therefore slowdown) even
    when total carried bandwidth happens to coincide.
    """
    return {
        "carried_gbps": abs(chunked["carried_gbps"]
                            - mono["carried_gbps"]),
        "throughput_ratio": abs(chunked["throughput_ratio"]
                                - mono["throughput_ratio"]),
        "indirect_fraction": abs(chunked["indirect_fraction"]
                                 - mono["indirect_fraction"]),
        "slowdown_p99": abs(chunked["slowdown_p99"]
                            - mono["slowdown_p99"]),
    }


def _boundary_cost_s(scenario, start: int, snapshot: dict,
                     repeats: int = 5) -> tuple[float, float]:
    """(replay_s, restore_s): standing up chunk ``start``'s state.

    Replay is what a reset-mode chunk does before its first epoch
    (fresh backend + re-apply every earlier event); restore is the
    carry-mode equivalent (fresh backend + ``restore(snapshot)``).
    Minimum over ``repeats`` to shed timer noise.
    """
    from repro.scenarios import chunk_backend_seed, make_backend

    def fresh():
        return make_backend(
            "awgr", scenario.n_nodes,
            seed=chunk_backend_seed(scenario, start, BASE_SEED))

    replay_s = restore_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fabric = fresh()
        for epoch in range(start):
            for event in scenario.events_at(epoch):
                fabric.apply_event(event)
        replay_s = min(replay_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fabric = fresh()
        fabric.restore(snapshot)
        restore_s = min(restore_s, time.perf_counter() - t0)
    return replay_s, restore_s


def run_suite(quick: bool = False) -> dict:
    """Monolithic vs reset-chunked vs carry-chunked replay."""
    from repro.scenarios import (
        ScenarioRunner,
        ShardedScenarioRunner,
        make_backend,
    )

    if quick:
        scenario = boundary_scenario(n_epochs=48)
        chunk_epochs = 8
    else:
        scenario = boundary_scenario(n_epochs=960)
        chunk_epochs = 48

    t0 = time.perf_counter()
    mono = ScenarioRunner(
        scenario,
        make_backend("awgr", scenario.n_nodes, seed=BASE_SEED),
    ).run(seed=BASE_SEED)
    mono_wall = time.perf_counter() - t0
    mono_dict = mono.as_dict()

    def chunked(boundary: str):
        return ShardedScenarioRunner(
            scenario, "awgr", chunk_epochs=chunk_epochs,
            boundary=boundary, base_seed=BASE_SEED).run()

    reset = chunked("reset")
    carry = chunked("carry")
    reset_report = reset.report()
    carry_report = carry.report()

    carry_identical = (carry_report.as_dict() == mono_dict
                       and carry_report.rows() == mono.rows())
    reset_differs = reset_report.as_dict() != mono_dict
    last_start = reset.chunks[-1].start
    replay_s, restore_s = _boundary_cost_s(
        scenario, last_start,
        carry.payloads[len(carry.chunks) - 2]["snapshot"])

    return {
        "scenario": scenario.name,
        "n_epochs": scenario.n_epochs,
        "chunk_epochs": chunk_epochs,
        "n_chunks": len(reset.chunks),
        "n_events": len(scenario.events),
        "mono_wall_s": mono_wall,
        "reset_wall_s": reset.wall_s,
        "carry_wall_s": carry.wall_s,
        "reset_delta": _deltas(reset_report.as_dict(), mono_dict),
        "carry_delta": _deltas(carry_report.as_dict(), mono_dict),
        "carry_bit_identical": carry_identical,
        "reset_differs_from_monolithic": reset_differs,
        "last_boundary_replay_s": replay_s,
        "last_boundary_restore_s": restore_s,
        "restore_speedup": replay_s / max(restore_s, 1e-9),
        "mono_carried_gbps": mono_dict["carried_gbps"],
        "reset_carried_gbps": reset_report.as_dict()["carried_gbps"],
        "mono_indirect_fraction": mono_dict["indirect_fraction"],
        "reset_indirect_fraction":
            reset_report.as_dict()["indirect_fraction"],
    }


def check(record: dict) -> list[str]:
    """Gate conditions; returns failure messages (empty = pass)."""
    failures = []
    if not record["carry_bit_identical"]:
        failures.append(
            "carry-mode replay drifted from the monolithic run "
            f"(delta {record['carry_delta']})")
    if not record["reset_differs_from_monolithic"]:
        failures.append(
            "reset mode showed no fidelity delta — the scenario no "
            "longer exercises boundary-crossing in-flight flows, so "
            "the benchmark proves nothing")
    return failures


def test_chunk_boundary_fidelity():
    """Quick-mode run: carry bit-identical, reset visibly lossy.

    Timed manually (wall clock per phase) rather than through the
    pytest-benchmark fixture because the three-way mono/reset/carry
    comparison *is* the benchmark.
    """
    from conftest import emit

    from repro.analysis.report import render_kv

    record = run_suite(quick=True)
    emit("Chunk boundaries — carry vs reset fidelity and cost",
         render_kv({k: v for k, v in record.items()
                    if not isinstance(v, dict)}))
    assert not check(record)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized horizon (48 epochs)")
    parser.add_argument("--out", default=None,
                        help="write the JSON record here")
    args = parser.parse_args(argv)
    record = run_suite(quick=args.quick)
    print(json.dumps(record, indent=1))
    failures = check(record)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    if args.out:
        Path(args.out).write_text(json.dumps(record, indent=1) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
