"""Scenario — diurnal Cori replay with a mid-run plane failure.

The scenario engine's flagship study: §II-A Cori memory-bandwidth
demand replayed under a day-shaped envelope against pooled memory,
with a checkpoint burst and a GPU collective in the afternoon, and an
AWGR plane failing at noon (repaired at hour 20). Case (A) rides the
failure on indirect routing; case (B) — same scenario, WSS backend —
pays for central scheduling that lags the shifting demand.

Runs on the sweep engine via
``repro.experiments.library.SCENARIO_DIURNAL``; the exact aggregate
numbers are pinned by ``tests/scenarios/test_library.py``.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.experiments import SweepRunner, get_experiment


def _sweep():
    result = SweepRunner(workers=1).run(
        get_experiment("scenario_diurnal_cori")).raise_on_failure()
    return [{
        "fabric": row["fabric"],
        "offered_gbps": row["offered_gbps"],
        "carried_gbps": row["carried_gbps"],
        "blocked_gbps": row["blocked_gbps"],
        "throughput": row["throughput_ratio"],
        "indirect_fraction": row["indirect_fraction"],
        "slowdown_p99": row["slowdown_p99"],
    } for row in result.rows()]


def test_scenario_diurnal(benchmark):
    rows = benchmark(_sweep)
    emit("Scenario — diurnal Cori replay + noon plane failure",
         render_table(rows))
    awgr = next(r for r in rows if r["fabric"] == "awgr")
    wss = next(r for r in rows if r["fabric"] == "wss")
    # Same offered load on both fabrics.
    assert awgr["offered_gbps"] == wss["offered_gbps"]
    # The AWGR fabric leans on indirection through the failure window
    # and carries more of the day than the centrally scheduled WSS.
    assert awgr["indirect_fraction"] > 0.0
    assert awgr["slowdown_p99"] > 1.0
    assert awgr["throughput"] > wss["throughput"]
    # Both fabrics stay usable — blocked, not partitioned.
    assert wss["throughput"] > 0.3
    assert awgr["throughput"] > 0.7
