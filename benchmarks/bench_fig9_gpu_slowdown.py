"""Fig. 9 — GPU slowdown at 25/30/35 ns per application.

Paper: "The average slowdown across all 24 GPU applications is 5.35%"
at 35 ns, with Polybench's memory-stressing kernels at the top.
"""

import numpy as np
from conftest import emit

from repro.analysis.report import render_table
from repro.core.latency import SENSITIVITY_POINTS_NS
from repro.core.slowdown import run_gpu_study


def _sweep():
    return {ns: run_gpu_study(ns) for ns in SENSITIVITY_POINTS_NS}


def test_fig9_gpu_slowdown(benchmark):
    sweeps = benchmark(_sweep)
    at35 = {g.name: g for g in sweeps[35.0]}
    rows = [{
        "application": name,
        "s25": next(g.slowdown for g in sweeps[25.0] if g.name == name),
        "s30": next(g.slowdown for g in sweeps[30.0] if g.name == name),
        "s35": g.slowdown,
    } for name, g in sorted(at35.items())]
    emit("Fig. 9 — GPU slowdown (25/30/35 ns)", render_table(rows))

    mean35 = float(np.mean([g.slowdown for g in sweeps[35.0]]))
    emit("Fig. 9 — average @35 ns",
         f"measured {mean35:.4f} vs paper 0.0535")
    assert abs(mean35 - 0.0535) < 0.02
    for row in rows:
        assert row["s25"] <= row["s30"] <= row["s35"]
