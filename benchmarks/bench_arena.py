"""Topology arena — one-pass bake-off vs serial per-backend runs.

Races every registered backend over the same scenario stream twice:
once as M independent ``ScenarioRunner`` runs (each regenerating the
epoch traffic), once through ``run_arena``'s single pass (traffic
generated once per epoch, shared by every contender). Both paths must
be bit-identical per backend — that equivalence is what licenses the
one-pass speedup — and the record carries each contender's epoch
throughput plus the iso-performance / iso-power frontiers for two
registered scenarios.

As a script this writes ``BENCH_arena.json`` (CI regenerates it in
``--quick`` mode and fails if the one-pass arena ever gets slower
than running the backends serially):

    PYTHONPATH=src python benchmarks/bench_arena.py
    PYTHONPATH=src python benchmarks/bench_arena.py \
        --quick --out BENCH_arena.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

#: One-pass wall time must beat the serial total outright: the arena
#: does strictly less work (one traffic generation per epoch instead
#: of M), and measures ~1.4x on the quick horizon, so parity already
#: signals a regression.
SPEEDUP_FLOOR = 1.0

ARENA_SCENARIOS = ("demo", "diurnal_cori")


def race_one(name: str, n_epochs: int, seed: int) -> dict:
    """Serial runs + one arena pass over one scenario, verified."""
    from repro.scenarios import (
        ScenarioRunner,
        available_backends,
        make_backend,
    )
    from repro.scenarios.arena import run_arena
    from repro.scenarios.library import get_scenario

    scenario = get_scenario(name).with_epochs(n_epochs)
    backends = available_backends()
    solo = {}
    per_backend = {}
    serial_s = 0.0
    for backend in backends:
        start = time.perf_counter()
        solo[backend] = ScenarioRunner(
            scenario,
            make_backend(backend, scenario.n_nodes, seed=seed),
        ).run(seed=seed)
        elapsed = time.perf_counter() - start
        serial_s += elapsed
        per_backend[backend] = {
            "solo_s": elapsed,
            "epochs_per_s": scenario.n_epochs / max(elapsed, 1e-9),
        }

    start = time.perf_counter()
    arena = run_arena(scenario, seed=seed)
    arena_s = time.perf_counter() - start

    for backend in backends:
        raced = [e.to_dict() for e in arena.reports[backend].epochs]
        alone = [e.to_dict() for e in solo[backend].epochs]
        assert raced == alone, (
            f"one-pass arena diverged from the solo {backend} run")

    return {
        "scenario": scenario.name,
        "n_epochs": scenario.n_epochs,
        "n_backends": len(backends),
        "per_backend": per_backend,
        "serial_s": serial_s,
        "arena_s": arena_s,
        "one_pass_speedup": serial_s / max(arena_s, 1e-9),
        "rows": arena.rows(),
        "iso_performance": arena.iso_performance(),
        "iso_power": arena.iso_power(),
    }


def run_suite(quick: bool = False) -> dict:
    """Race both registered arena scenarios; aggregate the record."""
    from repro.scenarios import available_backends

    seed = 7
    # Quick keeps diurnal_cori long enough (16 > 12) that the noon
    # plane failure still fires inside the race.
    epochs = ({"demo": 16, "diurnal_cori": 16} if quick
              else {"demo": 64, "diurnal_cori": 48})
    scenarios = {name: race_one(name, epochs[name], seed)
                 for name in ARENA_SCENARIOS}
    return {
        "seed": seed,
        "backends": list(available_backends()),
        "scenarios": scenarios,
        "min_one_pass_speedup": min(
            r["one_pass_speedup"] for r in scenarios.values()),
    }


def test_arena_one_pass():
    """Quick-mode gate: bit-identity (asserted inside ``race_one``)
    and one-pass throughput no worse than serial per-backend runs.

    Timed manually (wall clock per path) rather than through the
    pytest-benchmark fixture because the serial-vs-one-pass
    comparison *is* the benchmark.
    """
    from conftest import emit

    from repro.analysis.report import render_kv

    record = run_suite(quick=True)
    for name, race in record["scenarios"].items():
        emit(f"Arena — {name}", render_kv({
            "n_epochs": race["n_epochs"],
            "n_backends": race["n_backends"],
            "serial_s": race["serial_s"],
            "arena_s": race["arena_s"],
            "one_pass_speedup": race["one_pass_speedup"],
            "iso_perf_winner":
                race["iso_performance"][0]["backend"],
            "iso_power_winner": race["iso_power"][0]["backend"],
        }))
        assert len(race["iso_performance"]) >= 2
        assert len(race["iso_power"]) >= 2
    assert record["min_one_pass_speedup"] >= SPEEDUP_FLOOR


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized horizons")
    parser.add_argument("--out", default=None,
                        help="write the JSON record here")
    args = parser.parse_args(argv)
    record = run_suite(quick=args.quick)
    print(json.dumps(record, indent=1))
    if record["min_one_pass_speedup"] < SPEEDUP_FLOOR:
        print("FAIL: one-pass arena slower than serial per-backend "
              f"runs (speedup {record['min_one_pass_speedup']:.3f} "
              f"< {SPEEDUP_FLOOR})", file=sys.stderr)
        return 1
    if args.out:
        Path(args.out).write_text(json.dumps(record, indent=1) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
