"""Table IV — switch configurations used by the study.

All families clamped to 25 Gbps/wavelength; radices 370 (cascaded
AWGR), 240 (spatial), 256 (wave-selective).
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.photonics.switches import table4_rows


def test_table4_switch_configs(benchmark):
    rows = benchmark(table4_rows)
    emit("Table IV — study switch configurations", render_table(rows))
    by_type = {r["switch_type"]: r for r in rows}
    assert by_type["awgr"]["radix"] == 370
    assert by_type["spatial"]["radix"] == 240
    assert by_type["wave-selective"]["radix"] == 256
    assert all(r["gbps_per_wavelength"] == 25.0 for r in rows)
