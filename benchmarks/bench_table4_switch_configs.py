"""Table IV — switch configurations used by the study.

All families clamped to 25 Gbps/wavelength; radices 370 (cascaded
AWGR), 240 (spatial), 256 (wave-selective).

Runs on the sweep engine:
``repro.experiments.library.TABLE4_SWITCH_CONFIGS`` replaces the old
direct ``table4_rows()`` call (one task per switch family).
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.experiments import SweepRunner, get_experiment


def _sweep():
    return SweepRunner(workers=1).run(
        get_experiment("table4_switch_configs")).raise_on_failure().rows()


def test_table4_switch_configs(benchmark):
    rows = benchmark(_sweep)
    emit("Table IV — study switch configurations", render_table(rows))
    by_type = {r["switch_type"]: r for r in rows}
    assert by_type["awgr"]["radix"] == 370
    assert by_type["spatial"]["radix"] == 240
    assert by_type["wave-selective"]["radix"] == 256
    assert all(r["gbps_per_wavelength"] == 25.0 for r in rows)
