"""SIM001 fixture: complete snapshot/restore pairs. Never imported."""


class Complete:
    """All mutable state serialized; config exempted by markers."""

    def __init__(self, n, table):
        self._slots = [0] * n
        self._now = 0
        self._table = dict(table)  # repro-check: config
        self._cache = self._build_cache()  # repro-check: derived
        self.limit = n * 2

    def _build_cache(self):
        return {}

    def step(self):
        self._now += 1
        self._slots[self._now % len(self._slots)] += 1

    def snapshot(self):
        return {"slots": list(self._slots), "now": self._now}

    def restore(self, state):
        self._slots = list(state["slots"])
        self._now = int(state["now"])


class NoSnapshotNeeded:
    """No snapshot/restore pair at all — SIM001 does not apply."""

    def __init__(self):
        self._scratch = []

    def push(self, x):
        self._scratch.append(x)
