"""SIM003 fixture: protocol-surface violations. Never imported."""


class HalfBackend:
    """Defines apply_event (the FabricBackend marker) but is missing
    restore(), has no name, and steps with the wrong arity."""

    def __init__(self, n):
        self.n = n

    def step(self, flows, extra_required):
        return flows

    def apply_event(self, event):
        return False

    def snapshot(self):
        return {"n": self.n}


class LonelySnapshot:
    """snapshot() without restore() — a checkpoint nobody can load."""

    def __init__(self):
        self._state = []

    def snapshot(self):
        return {"state": list(self._state)}


class BrokenExecutor:
    """run() cannot be called as run(tasks)."""

    def run(self, tasks, pool, timeout):
        return list(tasks)
