"""SIM006 fixture: every vectorized entry has its scalar oracle.
Never imported."""


class TwinnedFabric:
    """Batched entry point delegating to the scalar twin."""

    def __init__(self):
        self.epoch = 0

    def step(self, flow):
        return flow

    def batch_step(self, flows):
        self.epoch += 1
        return [self.step(flow) for flow in flows]


class TwinnedRouter:
    def route_flow(self, src, dst, slots=1):
        return (0, 1, ())

    def route_tokens(self, src, dst, slots=1):
        return self.route_flow(src, dst, slots)
