"""PY001 fixture: safe defaults. Never imported."""

from dataclasses import dataclass, field


def accumulate(x, acc=None):
    acc = [] if acc is None else acc
    acc.append(x)
    return acc


def scale(x, factor=2, label="x", bounds=(0, 1)):
    return x * factor, label, bounds


@dataclass
class Report:
    rows: list = field(default_factory=list)
