"""SIM004 fixture: JSON-unstable snapshot payloads. Never imported."""

import numpy as np


class Unstable:
    def __init__(self):
        self._planes = {0, 1}
        self._occupancy = np.zeros(4)
        self._pairs = {}

    def snapshot(self):
        return {
            "planes": set(self._planes),
            "shape": (4, 4),
            "occupancy": np.asarray(self._occupancy),
            "total": self._occupancy.sum(),
            7: "non-string key",
        }

    def restore(self, state):
        self._planes = state["planes"]
        self._occupancy = state["occupancy"]

    def to_dict(self):
        return {int(k): list(v) for k, v in self._pairs.items()}


class BareArrayBatch:
    """Array-backed batch whose to_dict leaks the ndarray fields."""

    src: np.ndarray
    gbps: np.ndarray | None

    def __init__(self, src, gbps):
        self.src = np.asarray(src)
        self.gbps = np.asarray(gbps)
        self.codes: np.ndarray = np.zeros(len(self.src), dtype=np.int64)

    def to_dict(self):
        return {
            "src": self.src,
            "gbps": self.gbps,
            "codes": self.codes,
        }
