"""SIM005 fixture: broken lock discipline. Never imported."""

import threading


class LeakyQueue:
    """Guarded attribute touched outside its lock, bad wait/notify."""

    def __init__(self):
        self._leaky_lock = threading.Condition()
        self.depth = 0
        self._worker = threading.Thread(target=self._drain_loop)

    def push(self):
        with self._leaky_lock:
            self.depth += 1          # establishes depth as guarded
            self._leaky_lock.notify_all()

    def clear(self):
        self.depth = 0               # BAD: guarded write, lock not held

    def wait_once(self):
        with self._leaky_lock:
            self._leaky_lock.wait()  # BAD: bare wait, no predicate loop

    def poke(self):
        self._leaky_lock.notify_all()  # BAD: notify without the lock

    def _drain_loop(self):
        while self.depth:            # BAD: thread-reachable unguarded read
            pass


class PingSide:
    """Half of a two-class lock-order cycle."""

    def __init__(self):
        self._ping_lock = threading.Lock()

    def ping(self, other):
        with self._ping_lock:
            with other._pong_lock:   # BAD: opposite order of pong()
                pass


class PongSide:
    def __init__(self):
        self._pong_lock = threading.Lock()

    def pong(self, other):
        with self._pong_lock:
            with other._ping_lock:
                pass
