"""SIM003 fixture: conforming backend and executor. Never imported."""

from typing import Protocol, runtime_checkable


@runtime_checkable
class SomeProtocol(Protocol):
    """Protocol definitions are exempt even with a partial surface."""

    def apply_event(self, event): ...

    def step(self, flows): ...


class GoodBackend:
    name = "good"

    def __init__(self):
        self._epoch = 0

    def step(self, flows, budget=None):
        self._epoch += 1
        return flows

    def apply_event(self, event):
        return False

    def snapshot(self):
        return {"epoch": self._epoch}

    def restore(self, state):
        self._epoch = int(state["epoch"])


class GoodExecutor:
    def run(self, tasks):
        yield from ((task, None) for task in tasks)
