"""SIM004 fixture: JSON-stable snapshot payloads. Never imported."""

import numpy as np


class Stable:
    def __init__(self):
        self._planes = {0, 1}
        self._occupancy = np.zeros(4)
        self._pairs = {}

    def snapshot(self):
        return {
            "planes": sorted(self._planes),
            "shape": [4, 4],
            "occupancy": self._occupancy.tolist(),
            "total": float(self._occupancy.sum()),
        }

    def restore(self, state):
        self._planes = set(state["planes"])
        self._occupancy = np.asarray(state["occupancy"])

    def to_dict(self):
        return {str(k): list(v) for k, v in self._pairs.items()}


class ArrayBatch:
    """Array-backed batch serialized the JSON-stable way."""

    src: np.ndarray
    gbps: np.ndarray | None

    def __init__(self, src, gbps):
        self.src = np.asarray(src)
        self.gbps = np.asarray(gbps)
        self.codes: np.ndarray = np.zeros(len(self.src), dtype=np.int64)

    def to_dict(self):
        return {
            "src": self.src.tolist(),
            "gbps": self.gbps.tolist(),
            "codes": self.codes.tolist(),
        }
