"""SIM001 fixture: incomplete snapshot/restore pairs. Never imported."""


class MissingAttr:
    """``_inflight`` is mutable state but never serialized — the exact
    bug class the in-flight-flows fix repaired by hand."""

    def __init__(self, n):
        self._slots = [0] * n
        self._inflight = {}

    def step(self):
        self._inflight[len(self._inflight)] = 1

    def snapshot(self):
        return {"slots": list(self._slots)}

    def restore(self, state):
        self._slots = list(state["slots"])


class MissingCounter:
    """``_now`` starts immutable but is mutated every step."""

    def __init__(self):
        self._now = 0
        self._log = []

    def step(self):
        self._now += 1

    def snapshot(self):
        return {"log": list(self._log)}

    def restore(self, state):
        self._log = list(state["log"])


class KeyDrift:
    """restore() reads a key snapshot() never writes, and snapshot()
    writes one restore() never reads."""

    def __init__(self):
        self._a = []
        self._b = []

    def snapshot(self):
        return {"a": list(self._a), "orphan": list(self._b)}

    def restore(self, state):
        self._a = list(state["a"])
        self._b = list(state["missing"])
