"""SIM006 fixture: vectorized entries missing their scalar oracles.
Never imported."""


class BatchOnlyFabric:
    """Has the batched entry point but no scalar step() twin."""

    def __init__(self):
        self.epoch = 0

    def batch_step(self, flows):  # BAD: no step() oracle anywhere
        self.epoch += 1
        return [self._admit(flow) for flow in flows]

    def _admit(self, flow):
        return flow


class BulkOnlyRouter:
    def route_tokens(self, src, dst, slots=1):  # BAD: no route_flow()
        return (0, 1, ())
