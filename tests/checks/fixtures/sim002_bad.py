"""SIM002 fixture: unseeded/global entropy sources. Never imported."""

import random
import time
from datetime import datetime

import numpy as np
from numpy.random import default_rng


def legacy_global_draws(n):
    noise = np.random.rand(n)
    np.random.seed(0)
    pick = np.random.randint(0, n)
    return noise, pick


def unseeded_generators():
    a = np.random.default_rng()
    b = np.random.default_rng(None)
    c = default_rng()
    return a, b, c


def stdlib_random(items):
    random.shuffle(items)
    return random.random()


def wall_clock_state():
    stamp = time.time()
    started = datetime.now()
    return stamp, started
