"""SIM005 fixture: disciplined locking. Never imported."""

import threading


class TidyQueue:
    """Every guarded access holds the lock; wait/notify by the book."""

    def __init__(self):
        self._tidy_lock = threading.Condition()
        self.depth = 0
        self._worker = threading.Thread(target=self._drain_loop)

    def push(self):
        with self._tidy_lock:
            self.depth += 1
            self._tidy_lock.notify_all()

    def clear(self):
        with self._tidy_lock:
            self._reset()

    def wait_for_work(self):
        with self._tidy_lock:
            while not self.depth:
                self._tidy_lock.wait()

    def _reset(self):
        # Private helper: every call site holds the lock, so the
        # caller-held inference covers this write without annotation.
        self.depth = 0

    def _drain_loop(self):
        with self._tidy_lock:
            if self.depth:
                self._reset()


class FirstSide:
    """Two classes taking both locks in one consistent global order."""

    def __init__(self):
        self._first_lock = threading.Lock()

    def forward(self, other):
        with self._first_lock:
            with other._second_lock:
                pass


class SecondSide:
    def __init__(self):
        self._second_lock = threading.Lock()

    def serve(self):
        with self._second_lock:
            pass
