"""PY001 fixture: mutable default arguments. Never imported."""


def accumulate(x, acc=[]):
    acc.append(x)
    return acc


def merge(extra, base={}, *, tags=set()):
    base.update(extra)
    return base, tags


def build(rows=list()):
    return rows
