"""SIM002 fixture: properly seeded randomness. Never imported."""

import time

import numpy as np
from numpy.random import default_rng


def seeded_draws(seed, n):
    rng = np.random.default_rng(seed)
    other = default_rng(seed + 1)
    bits = np.random.PCG64(seed)
    return rng.random(n), other.integers(0, n), bits


def derived_seed(scenario, epoch):
    rng = np.random.default_rng(hash((scenario, epoch)) & (2**63 - 1))
    return rng.random()


def duration_telemetry():
    # perf_counter feeds duration telemetry only, never sim state.
    start = time.perf_counter()
    return time.perf_counter() - start
