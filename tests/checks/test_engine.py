"""Engine mechanics: suppressions, parse errors, baselines, reports."""

import json

import pytest

from repro.checks import (
    Finding,
    check_source,
    compare,
    iter_python_files,
    load_baseline,
    render_json,
    render_text,
    run_checks,
    write_baseline,
)

BAD_DEFAULT = "def f(acc=[]):\n    return acc\n"


class TestSuppressions:
    def test_line_disable_suppresses(self):
        source = "def f(acc=[]):  # repro-check: disable=PY001\n    return acc\n"
        report = check_source(source, "x.py", rules=["PY001"])
        assert report.findings == []
        assert report.suppressed == 1

    def test_line_disable_is_rule_specific(self):
        source = ("def f(acc=[]):  # repro-check: disable=SIM001\n"
                  "    return acc\n")
        report = check_source(source, "x.py", rules=["PY001"])
        assert len(report.findings) == 1

    def test_disable_all(self):
        source = ("def f(acc=[]):  # repro-check: disable=all\n"
                  "    return acc\n")
        assert check_source(source, "x.py").findings == []

    def test_file_level_disable(self):
        source = ("# repro-check: disable-file=PY001\n" + BAD_DEFAULT
                  + "def g(acc={}):\n    return acc\n")
        report = check_source(source, "x.py", rules=["PY001"])
        assert report.findings == []
        assert report.suppressed == 2

    def test_directive_inside_string_is_ignored(self):
        source = ('S = "# repro-check: disable-file=PY001"\n'
                  + BAD_DEFAULT)
        report = check_source(source, "x.py", rules=["PY001"])
        assert len(report.findings) == 1


class TestParseErrors:
    def test_syntax_error_reported_not_raised(self):
        report = check_source("def broken(:\n", "bad.py")
        assert report.findings == []
        assert len(report.errors) == 1
        assert report.errors[0].path == "bad.py"
        assert "line 1" in report.errors[0].message


class TestFileDiscovery:
    def test_skips_hidden_and_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("x = 1\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "b.py").write_text("x = 1\n")
        (tmp_path / "top.py").write_text("x = 1\n")
        found = iter_python_files([tmp_path])
        assert [p.name for p in found] == ["top.py", "a.py"] or \
               [p.name for p in found] == ["a.py", "top.py"]

    def test_explicit_file_always_included(self, tmp_path):
        target = tmp_path / "script.py"
        target.write_text(BAD_DEFAULT)
        report = run_checks([target], rules=["PY001"])
        assert report.files == 1
        assert len(report.findings) == 1


def _finding(key="f.acc", path="x.py", line=1):
    return Finding(path=path, line=line, col=0, rule="PY001", key=key,
                   message="mutable default")


class TestBaseline:
    def test_round_trip_and_partition(self, tmp_path):
        baseline_path = tmp_path / "base.json"
        old = _finding(key="f.acc")
        write_baseline(baseline_path, [old])
        baseline = load_baseline(baseline_path)
        new = _finding(key="g.acc")
        comparison = compare([old, new], baseline)
        assert comparison.baselined == [old]
        assert comparison.new == [new]
        assert comparison.stale == []

    def test_line_moves_do_not_invalidate_baseline(self, tmp_path):
        baseline_path = tmp_path / "base.json"
        write_baseline(baseline_path, [_finding(line=3)])
        comparison = compare([_finding(line=99)],
                             load_baseline(baseline_path))
        assert comparison.new == []

    def test_stale_entries_surface(self, tmp_path):
        baseline_path = tmp_path / "base.json"
        write_baseline(baseline_path, [_finding(key="gone.attr")])
        comparison = compare([], load_baseline(baseline_path))
        assert comparison.stale == ["PY001:x.py:gone.attr"]

    def test_multiplicity_honored(self):
        twice = [_finding(), _finding()]
        baseline = compare(twice, {})  # nothing baselined
        assert len(baseline.new) == 2
        write = {f.fingerprint: 1 for f in twice[:1]}
        comparison = compare(twice, write)
        assert len(comparison.baselined) == 1
        assert len(comparison.new) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)


class TestReports:
    def test_text_report_lists_new_findings_and_summary(self):
        report = check_source(BAD_DEFAULT, "x.py", rules=["PY001"])
        comparison = compare(report.findings, {})
        text = render_text(report, comparison)
        assert "x.py:1:10: PY001" in text
        assert "1 new finding(s)" in text

    def test_json_report_is_machine_readable(self):
        report = check_source(BAD_DEFAULT, "x.py", rules=["PY001"])
        comparison = compare(report.findings, {})
        payload = json.loads(render_json(report, comparison))
        assert payload["files"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "PY001"
        assert finding["fingerprint"] == "PY001:x.py:f.acc"

    def test_unknown_rule_selection_raises(self):
        with pytest.raises(KeyError, match="NOPE"):
            check_source("x = 1\n", "x.py", rules=["NOPE"])


class TestParallelJobs:
    def test_jobs_match_serial_results(self, tmp_path):
        (tmp_path / "a.py").write_text(BAD_DEFAULT)
        (tmp_path / "b.py").write_text(
            "import threading\n\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._box_lock = threading.Lock()\n"
            "        self.items_held = 0\n\n"
            "    def put(self):\n"
            "        with self._box_lock:\n"
            "            self.items_held += 1\n\n"
            "    def wipe(self):\n"
            "        self.items_held = 0\n")
        (tmp_path / "c.py").write_text("x = 1\n")
        serial = run_checks([tmp_path], jobs=1)
        parallel = run_checks([tmp_path], jobs=3)
        assert ([f.fingerprint for f in serial.findings]
                == [f.fingerprint for f in parallel.findings])
        assert serial.findings  # the fixture tree is not trivially empty
        assert serial.files == parallel.files == 3

    def test_jobs_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            run_checks([tmp_path], jobs=0)


class TestStrictSuppressions:
    def test_stale_directive_reported(self):
        source = "def f(x):  # repro-check: disable=PY001\n    return x\n"
        report = check_source(source, "x.py", rules=["PY001"],
                              strict_suppressions=True)
        assert [f.rule for f in report.findings] == ["SUP001"]
        assert "PY001" in report.findings[0].message

    def test_used_directive_not_stale(self):
        source = ("def f(acc=[]):  # repro-check: disable=PY001\n"
                  "    return acc\n")
        report = check_source(source, "x.py", rules=["PY001"],
                              strict_suppressions=True)
        assert report.findings == []
        assert report.suppressed == 1

    def test_directive_for_unselected_rule_not_stale(self):
        # PY001 didn't run, so the engine can't know whether the
        # directive still suppresses anything — stay quiet.
        source = "def f(x):  # repro-check: disable=PY001\n    return x\n"
        report = check_source(source, "x.py", rules=["SIM002"],
                              strict_suppressions=True)
        assert report.findings == []

    def test_stale_file_level_directive_reported(self):
        source = "# repro-check: disable-file=PY001\nx = 1\n"
        report = check_source(source, "x.py", rules=["PY001"],
                              strict_suppressions=True)
        assert [f.key for f in report.findings] == [
            "stale:disable-file=PY001"]

    def test_off_by_default(self):
        source = "def f(x):  # repro-check: disable=PY001\n    return x\n"
        assert check_source(source, "x.py", rules=["PY001"]).findings == []
