"""Per-rule fixture tests: each rule fires on its bad-example file
and stays quiet on its good-example file."""

from pathlib import Path

import pytest

from repro.checks import RULES, check_file

FIXTURES = Path(__file__).parent / "fixtures"

RULE_FIXTURES = [
    ("SIM001", "sim001"),
    ("SIM002", "sim002"),
    ("SIM003", "sim003"),
    ("SIM004", "sim004"),
    ("PY001", "py001"),
]


def check_fixture(stem: str, rule: str):
    report = check_file(FIXTURES / f"{stem}.py", rules=[rule])
    assert not report.errors, report.errors
    return report.findings


@pytest.mark.parametrize("rule,stem", RULE_FIXTURES)
class TestFixturePairs:
    def test_bad_example_triggers(self, rule, stem):
        findings = check_fixture(f"{stem}_bad", rule)
        assert findings, f"{rule} stayed quiet on {stem}_bad.py"
        assert all(f.rule == rule for f in findings)

    def test_good_example_passes(self, rule, stem):
        assert check_fixture(f"{stem}_good", rule) == []


def test_every_registered_rule_has_a_fixture_pair():
    assert sorted(RULES) == sorted(r for r, _ in RULE_FIXTURES)


class TestSIM001Details:
    def test_flags_each_uncovered_attr_and_drifted_key(self):
        keys = {f.key for f in check_fixture("sim001_bad", "SIM001")}
        assert keys == {
            "MissingAttr._inflight",
            "MissingCounter._now",  # mutated by step(), init is just 0
            "KeyDrift.key:missing",  # read by restore, never written
            "KeyDrift.key:orphan",  # written by snapshot, never read
        }

    def test_markers_exempt_config_and_derived(self):
        # sim001_good relies on `# repro-check: config` / `derived`
        # for _table and _cache; stripping the markers must re-flag.
        source = (FIXTURES / "sim001_good.py").read_text()
        stripped = source.replace("  # repro-check: config", "")
        stripped = stripped.replace("  # repro-check: derived", "")
        from repro.checks import check_source
        findings = check_source(stripped, "sim001_good.py",
                                rules=["SIM001"])
        assert {f.key for f in findings.findings} == {
            "Complete._table", "Complete._cache"}


class TestSIM002Details:
    def test_flags_every_entropy_class(self):
        messages = [f.message
                    for f in check_fixture("sim002_bad", "SIM002")]
        for needle in ("np.random.rand", "np.random.seed",
                       "default_rng", "random.shuffle", "time.time",
                       "datetime.now"):
            assert any(needle in m for m in messages), needle


class TestSIM003Details:
    def test_flags_surface_and_pair_violations(self):
        keys = {f.key for f in check_fixture("sim003_bad", "SIM003")}
        assert keys == {
            "HalfBackend.name",
            "HalfBackend.restore:missing",
            "HalfBackend.step:signature",
            "HalfBackend.pair",
            "LonelySnapshot.pair",
            "BrokenExecutor.run:signature",
        }

    def test_protocol_definitions_exempt(self):
        # sim003_good defines a partial Protocol — zero findings means
        # the Protocol exemption held.
        assert check_fixture("sim003_good", "SIM003") == []


class TestSIM004Details:
    def test_flags_each_unstable_construct(self):
        messages = [f.message
                    for f in check_fixture("sim004_bad", "SIM004")]
        assert len(messages) == 9
        for needle in ("set()", "tuple value", "ndarray",
                       "numpy scalar", "non-string dict key",
                       "int() dict key"):
            assert any(needle in m for m in messages), needle

    def test_flags_every_bare_ndarray_field(self):
        # BareArrayBatch annotates src / gbps (class body) and codes
        # (annotated self-assignment) as ndarrays and returns all
        # three bare from to_dict() — each must be named.
        messages = [f.message
                    for f in check_fixture("sim004_bad", "SIM004")]
        for attr in ("self.src", "self.gbps", "self.codes"):
            assert any(f"{attr} serialized bare" in m
                       for m in messages), attr

    def test_tolist_serialization_is_stable(self):
        # sim004_good's ArrayBatch serializes the same ndarray fields
        # via .tolist(); the pair test already asserts zero findings,
        # this documents that the batch idiom is the reason.
        source = (FIXTURES / "sim004_good.py").read_text()
        assert ".tolist()" in source


class TestPY001Details:
    def test_names_every_offending_parameter(self):
        keys = {f.key for f in check_fixture("py001_bad", "PY001")}
        assert keys == {"accumulate.acc", "merge.base", "merge.tags",
                        "build.rows"}
