"""Per-rule fixture tests: each rule fires on its bad-example file
and stays quiet on its good-example file."""

from pathlib import Path

import pytest

from repro.checks import PROJECT_RULES, RULES, check_file, check_source

FIXTURES = Path(__file__).parent / "fixtures"

RULE_FIXTURES = [
    ("SIM001", "sim001"),
    ("SIM002", "sim002"),
    ("SIM003", "sim003"),
    ("SIM004", "sim004"),
    ("SIM005", "sim005"),
    ("SIM006", "sim006"),
    ("PY001", "py001"),
]


def check_fixture(stem: str, rule: str):
    report = check_file(FIXTURES / f"{stem}.py", rules=[rule])
    assert not report.errors, report.errors
    return report.findings


@pytest.mark.parametrize("rule,stem", RULE_FIXTURES)
class TestFixturePairs:
    def test_bad_example_triggers(self, rule, stem):
        findings = check_fixture(f"{stem}_bad", rule)
        assert findings, f"{rule} stayed quiet on {stem}_bad.py"
        assert all(f.rule == rule for f in findings)

    def test_good_example_passes(self, rule, stem):
        assert check_fixture(f"{stem}_good", rule) == []


def test_every_registered_rule_has_a_fixture_pair():
    assert (sorted({**RULES, **PROJECT_RULES})
            == sorted(r for r, _ in RULE_FIXTURES))


class TestSIM001Details:
    def test_flags_each_uncovered_attr_and_drifted_key(self):
        keys = {f.key for f in check_fixture("sim001_bad", "SIM001")}
        assert keys == {
            "MissingAttr._inflight",
            "MissingCounter._now",  # mutated by step(), init is just 0
            "KeyDrift.key:missing",  # read by restore, never written
            "KeyDrift.key:orphan",  # written by snapshot, never read
        }

    def test_markers_exempt_config_and_derived(self):
        # sim001_good relies on `# repro-check: config` / `derived`
        # for _table and _cache; stripping the markers must re-flag.
        source = (FIXTURES / "sim001_good.py").read_text()
        stripped = source.replace("  # repro-check: config", "")
        stripped = stripped.replace("  # repro-check: derived", "")
        from repro.checks import check_source
        findings = check_source(stripped, "sim001_good.py",
                                rules=["SIM001"])
        assert {f.key for f in findings.findings} == {
            "Complete._table", "Complete._cache"}


class TestSIM002Details:
    def test_flags_every_entropy_class(self):
        messages = [f.message
                    for f in check_fixture("sim002_bad", "SIM002")]
        for needle in ("np.random.rand", "np.random.seed",
                       "default_rng", "random.shuffle", "time.time",
                       "datetime.now"):
            assert any(needle in m for m in messages), needle


class TestSIM003Details:
    def test_flags_surface_and_pair_violations(self):
        keys = {f.key for f in check_fixture("sim003_bad", "SIM003")}
        assert keys == {
            "HalfBackend.name",
            "HalfBackend.restore:missing",
            "HalfBackend.step:signature",
            "HalfBackend.pair",
            "LonelySnapshot.pair",
            "BrokenExecutor.run:signature",
        }

    def test_protocol_definitions_exempt(self):
        # sim003_good defines a partial Protocol — zero findings means
        # the Protocol exemption held.
        assert check_fixture("sim003_good", "SIM003") == []


class TestSIM004Details:
    def test_flags_each_unstable_construct(self):
        messages = [f.message
                    for f in check_fixture("sim004_bad", "SIM004")]
        assert len(messages) == 9
        for needle in ("set()", "tuple value", "ndarray",
                       "numpy scalar", "non-string dict key",
                       "int() dict key"):
            assert any(needle in m for m in messages), needle

    def test_flags_every_bare_ndarray_field(self):
        # BareArrayBatch annotates src / gbps (class body) and codes
        # (annotated self-assignment) as ndarrays and returns all
        # three bare from to_dict() — each must be named.
        messages = [f.message
                    for f in check_fixture("sim004_bad", "SIM004")]
        for attr in ("self.src", "self.gbps", "self.codes"):
            assert any(f"{attr} serialized bare" in m
                       for m in messages), attr

    def test_tolist_serialization_is_stable(self):
        # sim004_good's ArrayBatch serializes the same ndarray fields
        # via .tolist(); the pair test already asserts zero findings,
        # this documents that the batch idiom is the reason.
        source = (FIXTURES / "sim004_good.py").read_text()
        assert ".tolist()" in source


class TestPY001Details:
    def test_names_every_offending_parameter(self):
        keys = {f.key for f in check_fixture("py001_bad", "PY001")}
        assert keys == {"accumulate.acc", "merge.base", "merge.tags",
                        "build.rows"}


class TestSIM005Details:
    def test_flags_each_discipline_breach(self):
        keys = {f.key for f in check_fixture("sim005_bad", "SIM005")}
        assert keys == {
            "LeakyQueue.clear.depth:write",
            "LeakyQueue._drain_loop.depth:read",
            "LeakyQueue.wait_once:wait:self._leaky_lock",
            "LeakyQueue.poke:notify:self._leaky_lock",
            "lock-order-cycle:"
            "PingSide._ping_lock->PongSide._pong_lock",
        }

    def test_caller_held_inference_covers_private_helpers(self):
        # sim005_good's _reset() writes the guarded attr with no lock
        # in sight; it stays clean only because every call site holds
        # the lock. Adding an unguarded call site must re-flag it.
        source = (FIXTURES / "sim005_good.py").read_text()
        patched = source.replace(
            "    def _drain_loop(self):",
            "    def sneak(self):\n"
            "        self._reset()\n\n"
            "    def _drain_loop(self):")
        findings = check_source(patched, "sim005_good.py",
                                rules=["SIM005"]).findings
        assert any(f.key == "TidyQueue._reset.depth:write"
                   for f in findings)

    def test_cross_object_write_requires_owning_lock(self):
        source = """
import threading

class Owner:
    def __init__(self):
        self._owner_lock = threading.Lock()
        self.jobs_live = 0

    def bump(self):
        with self._owner_lock:
            self.jobs_live += 1

class Driver:
    def poke(self, owner):
        owner.jobs_live = 0

    def poke_locked(self, owner):
        with owner._owner_lock:
            owner.jobs_live = 0
"""
        keys = {f.key for f in
                check_source(source, "mod.py",
                             rules=["SIM005"]).findings}
        assert keys == {"Driver.poke.owner.jobs_live:xwrite"}


class TestSIM006Details:
    def test_missing_oracle_keys(self):
        keys = {f.key for f in check_fixture("sim006_bad", "SIM006")}
        assert keys == {"BatchOnlyFabric.batch_step:oracle",
                        "BulkOnlyRouter.route_tokens:oracle"}

    SRC = '''
class Fabric:
    def step(self, flow):
        return flow

    def batch_step(self, flows):
        return [self.step(f) for f in flows]
'''
    TWIN_TEST = '''
from fabric import Fabric

def test_batch_step_matches_step():
    fabric = Fabric()
    assert fabric.batch_step([1]) == [fabric.step(1)]
'''
    OTHER_TEST = '''
from fabric import Fabric

def test_scalar_only():
    assert Fabric().step(1) == 1
'''

    def test_twin_test_evidence_satisfies(self):
        report = check_source(
            self.SRC, "src/fabric.py",
            rules=["SIM006"],
            index_sources={"tests/test_fabric.py": self.TWIN_TEST})
        assert report.findings == []

    def test_missing_twin_test_flagged(self):
        report = check_source(
            self.SRC, "src/fabric.py",
            rules=["SIM006"],
            index_sources={"tests/test_fabric.py": self.OTHER_TEST})
        assert [f.key for f in report.findings] == [
            "Fabric.batch_step:twin-test"]

    def test_no_test_modules_means_no_twin_test_check(self):
        # Single-file runs can't see the test tree; only the missing-
        # oracle half of the rule may fire.
        report = check_source(self.SRC, "src/fabric.py",
                              rules=["SIM006"])
        assert report.findings == []
