"""Runtime lock sanitizer: order-inversion detection, guarded-attr
assertions, and the unarmed zero-overhead path."""

import threading

import pytest

from repro.checks.runtime import (
    LockDisciplineError,
    Sanitizer,
    SanitizedCondition,
    SanitizedLock,
    new_condition,
    new_lock,
    watch_guarded,
)


@pytest.fixture
def armed(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    return Sanitizer()


@pytest.fixture
def strict(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "strict")
    return Sanitizer()


class TestFactorySeam:
    def test_unarmed_returns_plain_primitives(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not isinstance(new_lock("A"), SanitizedLock)
        assert not isinstance(new_condition("B"), SanitizedCondition)

    def test_armed_returns_sanitized(self, armed):
        assert isinstance(new_lock("A", armed), SanitizedLock)
        assert isinstance(new_condition("B", armed), SanitizedCondition)

    def test_zero_means_unarmed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not isinstance(new_lock("A"), SanitizedLock)


class TestLockOrder:
    def run_in_thread(self, fn):
        thread = threading.Thread(target=fn)
        thread.start()
        thread.join()

    def test_inversion_recorded_across_threads(self, armed):
        a = SanitizedLock("A", armed)
        b = SanitizedLock("B", armed)

        def forward():
            with a:
                with b:
                    pass

        def backward():
            with b:
                with a:
                    pass

        self.run_in_thread(forward)
        self.run_in_thread(backward)
        assert len(armed.violations) == 1
        assert "inversion" in armed.violations[0]
        with pytest.raises(LockDisciplineError):
            armed.assert_clean()

    def test_transitive_inversion_recorded(self, armed):
        a, b, c = (SanitizedLock(n, armed) for n in "ABC")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        def backward():
            with c:
                with a:
                    pass

        self.run_in_thread(backward)
        assert any("inversion" in v for v in armed.violations)

    def test_consistent_order_is_clean(self, armed):
        a = SanitizedLock("A", armed)
        b = SanitizedCondition("B", armed)
        for _ in range(3):
            with a:
                with b:
                    pass
        self.run_in_thread(lambda: a.__enter__() and a.__exit__())
        armed.assert_clean()
        assert ("A", "B") in armed.edges

    def test_reentrant_acquire_is_not_an_edge(self, armed):
        a = SanitizedLock("A", armed)
        with a:
            with a:
                pass
        armed.assert_clean()
        assert not armed.edges

    def test_same_name_instances_share_a_node(self, armed):
        # Two Session.updated instances are one static lock identity:
        # pool->s1 then s2->pool must still count as an inversion.
        pool = SanitizedLock("SessionPool._lock", armed)
        s1 = SanitizedCondition("Session.updated", armed)
        s2 = SanitizedCondition("Session.updated", armed)
        with pool:
            with s1:
                pass
        self.run_in_thread(lambda: s2.__enter__() and pool.__enter__())
        assert any("inversion" in v for v in armed.violations)

    def test_strict_raises_immediately(self, strict):
        a = SanitizedLock("A", strict)
        b = SanitizedLock("B", strict)
        with a:
            with b:
                pass
        with pytest.raises(LockDisciplineError):
            with b:
                with a:
                    pass


class TestConditionDiscipline:
    def test_wait_without_lock_recorded(self, armed):
        cond = SanitizedCondition("C", armed)
        # Grab the underlying lock from another thread so wait()'s
        # release attempt doesn't blow up; the sanitizer still logs
        # the caller's missing ownership first.
        armed_violations = []

        def bad_wait():
            try:
                cond.wait(timeout=0.01)
            except RuntimeError:
                pass
            armed_violations.extend(armed.violations)

        thread = threading.Thread(target=bad_wait)
        thread.start()
        thread.join()
        assert any("wait" in v for v in armed_violations)

    def test_notify_without_lock_recorded(self, armed):
        cond = SanitizedCondition("C", armed)
        try:
            cond.notify_all()
        except RuntimeError:
            pass
        assert any("notify" in v for v in armed.violations)

    def test_wait_releases_and_reacquires_held_stack(self, armed):
        cond = SanitizedCondition("C", armed)
        other = SanitizedLock("D", armed)
        with cond:
            cond.wait(timeout=0.01)
            # Post-wait the condition is held again: taking another
            # lock records the C -> D edge (not an orphan).
            with other:
                pass
        armed.assert_clean()
        assert ("C", "D") in armed.edges

    def test_disciplined_producer_consumer_is_clean(self, armed):
        cond = SanitizedCondition("C", armed)
        items = []

        def producer():
            with cond:
                items.append(1)
                cond.notify_all()

        thread = threading.Thread(target=producer)
        with cond:
            thread.start()
            while not items:
                cond.wait(timeout=1.0)
        thread.join()
        armed.assert_clean()


class TestWatchGuarded:
    class Box:
        def __init__(self):
            self.depth = 0
            self.items = []

    def test_unguarded_write_recorded(self, armed):
        lock = SanitizedLock("Box._lock", armed)
        box = watch_guarded(self.Box(), lock, write_attrs=("depth",))
        box.depth = 1
        assert any("Box.depth written" in v for v in armed.violations)

    def test_guarded_write_clean(self, armed):
        lock = SanitizedLock("Box._lock", armed)
        box = watch_guarded(self.Box(), lock, write_attrs=("depth",))
        with lock:
            box.depth = 1
        armed.assert_clean()

    def test_container_read_requires_lock(self, armed):
        lock = SanitizedLock("Box._lock", armed)
        box = watch_guarded(self.Box(), lock, read_attrs=("items",))
        len(box.items)
        assert any("Box.items read" in v for v in armed.violations)
        armed.violations.clear()
        with lock:
            len(box.items)
        armed.assert_clean()

    def test_scalar_reads_stay_unwatched(self, armed):
        lock = SanitizedLock("Box._lock", armed)
        box = watch_guarded(self.Box(), lock, write_attrs=("depth",))
        assert box.depth == 0  # reads of write-only attrs are free
        armed.assert_clean()

    def test_isinstance_survives_class_swap(self, armed):
        lock = SanitizedLock("Box._lock", armed)
        box = watch_guarded(self.Box(), lock, write_attrs=("depth",))
        assert isinstance(box, self.Box)

    def test_unarmed_is_a_no_op(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        box = self.Box()
        assert watch_guarded(box, threading.Lock(),
                             write_attrs=("depth",)) is box
        assert type(box) is self.Box
