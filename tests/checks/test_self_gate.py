"""The checker's own gate over the real source tree.

These tests are the in-suite mirror of the CI step: ``src/repro``
must stay clean (modulo the committed baseline, which is empty for
``network/`` and ``scenarios/``), every file must parse, and — the
acceptance criterion for SIM001 — deleting any single key from
``AWGRNetworkSimulator.snapshot()``'s return dict must trip the rule.
"""

import ast
import json
from pathlib import Path

import pytest

import repro
from repro.checks import check_source, load_baseline, run_checks

REPO = Path(__file__).resolve().parents[2]
SRC = Path(repro.__file__).resolve().parent
SIMULATOR = SRC / "network" / "simulator.py"


def test_src_repro_parses_and_is_clean():
    report = run_checks([SRC])
    assert report.errors == []
    assert report.findings == []


def test_committed_baseline_is_empty_for_network_and_scenarios():
    baseline = load_baseline(REPO / "repro-check.baseline.json")
    for fingerprint in baseline:
        rule, path, _ = fingerprint.split(":", 2)
        assert "repro/network/" not in path
        assert "repro/scenarios/" not in path


def test_baseline_file_is_committed_and_versioned():
    payload = json.loads(
        (REPO / "repro-check.baseline.json").read_text())
    assert payload["version"] == 1
    assert isinstance(payload["findings"], list)


def _snapshot_dict(tree: ast.Module) -> ast.Dict:
    for node in ast.walk(tree):
        if (isinstance(node, ast.ClassDef)
                and node.name == "AWGRNetworkSimulator"):
            for stmt in node.body:
                if (isinstance(stmt, ast.FunctionDef)
                        and stmt.name == "snapshot"):
                    for sub in ast.walk(stmt):
                        if (isinstance(sub, ast.Return)
                                and isinstance(sub.value, ast.Dict)):
                            return sub.value
    raise AssertionError("AWGRNetworkSimulator.snapshot() return dict "
                         "not found")


SNAPSHOT_KEYS = [k.value for k in _snapshot_dict(
    ast.parse(SIMULATOR.read_text())).keys]


def test_snapshot_keys_are_the_documented_six():
    assert sorted(SNAPSHOT_KEYS) == sorted(
        ["config", "now", "allocator", "state", "router", "buckets"])


@pytest.mark.parametrize("key", SNAPSHOT_KEYS)
def test_deleting_any_snapshot_key_fails_sim001(key):
    tree = ast.parse(SIMULATOR.read_text())
    snapshot = _snapshot_dict(tree)
    index = [k.value for k in snapshot.keys].index(key)
    del snapshot.keys[index]
    del snapshot.values[index]
    report = check_source(ast.unparse(tree), "simulator.py",
                          rules=["SIM001"])
    assert report.errors == []
    assert any(f.key == f"AWGRNetworkSimulator.key:{key}"
               for f in report.findings), (
        f"SIM001 stayed quiet after deleting snapshot key {key!r}")
