"""The checker's own gate over the real source tree.

These tests are the in-suite mirror of the CI step: ``src/repro``
must stay clean (modulo the committed baseline, which is empty for
``network/`` and ``scenarios/``), every file must parse, and — the
acceptance criterion for SIM001 — deleting any single key from
``AWGRNetworkSimulator.snapshot()``'s return dict must trip the rule.
"""

import ast
import json
from pathlib import Path

import pytest

import repro
from repro.checks import check_source, load_baseline, run_checks

REPO = Path(__file__).resolve().parents[2]
SRC = Path(repro.__file__).resolve().parent
SIMULATOR = SRC / "network" / "simulator.py"


def test_src_repro_parses_and_is_clean():
    report = run_checks([SRC])
    assert report.errors == []
    assert report.findings == []


def test_committed_baseline_is_empty_for_network_and_scenarios():
    baseline = load_baseline(REPO / "repro-check.baseline.json")
    for fingerprint in baseline:
        rule, path, _ = fingerprint.split(":", 2)
        assert "repro/network/" not in path
        assert "repro/scenarios/" not in path


def test_baseline_file_is_committed_and_versioned():
    payload = json.loads(
        (REPO / "repro-check.baseline.json").read_text())
    assert payload["version"] == 1
    assert isinstance(payload["findings"], list)


def _snapshot_dict(tree: ast.Module) -> ast.Dict:
    for node in ast.walk(tree):
        if (isinstance(node, ast.ClassDef)
                and node.name == "AWGRNetworkSimulator"):
            for stmt in node.body:
                if (isinstance(stmt, ast.FunctionDef)
                        and stmt.name == "snapshot"):
                    for sub in ast.walk(stmt):
                        if (isinstance(sub, ast.Return)
                                and isinstance(sub.value, ast.Dict)):
                            return sub.value
    raise AssertionError("AWGRNetworkSimulator.snapshot() return dict "
                         "not found")


SNAPSHOT_KEYS = [k.value for k in _snapshot_dict(
    ast.parse(SIMULATOR.read_text())).keys]


def test_snapshot_keys_are_the_documented_six():
    assert sorted(SNAPSHOT_KEYS) == sorted(
        ["config", "now", "allocator", "state", "router", "buckets"])


@pytest.mark.parametrize("key", SNAPSHOT_KEYS)
def test_deleting_any_snapshot_key_fails_sim001(key):
    tree = ast.parse(SIMULATOR.read_text())
    snapshot = _snapshot_dict(tree)
    index = [k.value for k in snapshot.keys].index(key)
    del snapshot.keys[index]
    del snapshot.values[index]
    report = check_source(ast.unparse(tree), "simulator.py",
                          rules=["SIM001"])
    assert report.errors == []
    assert any(f.key == f"AWGRNetworkSimulator.key:{key}"
               for f in report.findings), (
        f"SIM001 stayed quiet after deleting snapshot key {key!r}")


TESTS = REPO / "tests"


def test_src_repro_clean_with_test_tree_indexed():
    # The CI gate proper: project rules see the test tree, so
    # SIM006's twin-test evidence half runs too.
    report = run_checks([SRC], index_paths=[TESTS])
    assert report.errors == []
    assert report.findings == []
    assert report.indexed > 0


def _check_with_tests_minus(src_file: Path, dropped: Path):
    index = {}
    for path in sorted(TESTS.rglob("test_*.py")):
        if path == dropped:
            continue
        index[str(path.relative_to(REPO))] = path.read_text()
    return check_source(src_file.read_text(),
                        str(src_file.relative_to(REPO.resolve())),
                        rules=["SIM006"], index_sources=index)


@pytest.mark.parametrize("src_file,twin_test,expect_key", [
    (SRC / "network" / "routing.py",
     TESTS / "network" / "test_routing.py",
     "IndirectRouter.route_tokens:twin-test"),
    (SRC / "scenarios" / "episodes.py",
     TESTS / "scenarios" / "test_episodes.py",
     "Episode.generate_batch:twin-test"),
])
def test_deleting_a_twin_test_fails_sim006(src_file, twin_test,
                                           expect_key):
    # Acceptance criterion: the twin tests are load-bearing. With the
    # full test tree indexed the file is clean; removing the one
    # module holding the twin evidence must trip SIM006.
    clean = _check_with_tests_minus(src_file, dropped=None)
    assert clean.findings == []
    report = _check_with_tests_minus(src_file, dropped=twin_test)
    assert expect_key in {f.key for f in report.findings}, (
        f"SIM006 stayed quiet with {twin_test.name} deleted")
