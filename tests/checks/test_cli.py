"""The ``repro check`` CLI subcommand end to end."""

import json

import pytest

from repro.cli import main

BAD = "def f(acc=[]):\n    return acc\n"
CLEAN = "def f(acc=None):\n    return acc or []\n"


def run_cli(argv, capsys):
    """main() with SystemExit folded into the returned exit code."""
    try:
        code = main(argv)
    except SystemExit as exc:
        code = exc.code if isinstance(exc.code, int) else 1
    return code, capsys.readouterr().out


class TestCheckCommand:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        code, out = run_cli(["check", str(tmp_path)], capsys)
        assert code == 0
        assert "0 new finding(s)" in out

    def test_findings_exit_nonzero(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BAD)
        code, out = run_cli(
            ["check", str(tmp_path), "--no-baseline"], capsys)
        assert code == 1
        assert "PY001" in out

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BAD)
        code, out = run_cli(
            ["check", str(tmp_path), "--no-baseline",
             "--format", "json"], capsys)
        assert code == 1
        payload = json.loads(out)
        assert payload["findings"][0]["rule"] == "PY001"

    def test_baseline_workflow(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BAD)
        baseline = tmp_path / "baseline.json"
        code, out = run_cli(
            ["check", str(tmp_path), "--write-baseline",
             "--baseline", str(baseline)], capsys)
        assert code == 0
        assert baseline.exists()
        # Grandfathered finding no longer fails the gate...
        code, out = run_cli(
            ["check", str(tmp_path), "--baseline", str(baseline)],
            capsys)
        assert code == 0
        assert "1 baselined" in out
        # ...but a fresh violation still does.
        (tmp_path / "new.py").write_text(BAD.replace("f(", "g("))
        code, out = run_cli(
            ["check", str(tmp_path), "--baseline", str(baseline)],
            capsys)
        assert code == 1

    def test_stale_baseline_reported(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BAD)
        baseline = tmp_path / "baseline.json"
        run_cli(["check", str(tmp_path), "--write-baseline",
                 "--baseline", str(baseline)], capsys)
        (tmp_path / "bad.py").write_text(CLEAN)
        code, out = run_cli(
            ["check", str(tmp_path), "--baseline", str(baseline)],
            capsys)
        assert code == 0  # stale entries warn, they don't fail
        assert "stale baseline" in out

    def test_parse_only_smoke(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        (tmp_path / "bad_syntax.py").write_text("def broken(:\n")
        code, out = run_cli(
            ["check", str(tmp_path), "--parse-only"], capsys)
        assert code == 1
        assert "PARSE" in out
        (tmp_path / "bad_syntax.py").write_text(CLEAN)
        code, out = run_cli(
            ["check", str(tmp_path), "--parse-only"], capsys)
        assert code == 0
        assert "2 files parsed" in out

    def test_select_restricts_rules(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BAD)
        code, out = run_cli(
            ["check", str(tmp_path), "--no-baseline",
             "--select", "SIM002"], capsys)
        assert code == 0

    def test_list_rules(self, capsys):
        code, out = run_cli(["check", "--list-rules"], capsys)
        assert code == 0
        for rule in ("SIM001", "SIM002", "SIM003", "SIM004", "PY001"):
            assert rule in out

    def test_unknown_rule_is_an_error(self, tmp_path, capsys):
        code, _ = run_cli(
            ["check", str(tmp_path), "--select", "NOPE"], capsys)
        assert code == 1

    def test_default_invocation_matches_ci_gate(self, capsys):
        # `repro check` with no arguments from the repo root is the CI
        # gate; it must run clean against the committed baseline.
        code, out = run_cli(["check"], capsys)
        assert code == 0, out
