"""SweepRunner + ResultCache: hits, misses, determinism, round-trips."""

import json

import pytest

from repro.experiments import (
    ExperimentSpec,
    ResultCache,
    SweepRunner,
    get_experiment,
)
from repro.experiments.cache import decode_metrics, encode_metrics
from repro.network.simulator import AWGRNetworkSimulator
from repro.network.traffic import uniform_traffic


def sim_factory(config, seed):
    """Seed-sensitive simulation: traffic drawn from the task seed."""
    import numpy as np
    sim = AWGRNetworkSimulator(n_nodes=config["n_nodes"],
                               planes=config["planes"],
                               flows_per_wavelength=1, rng_seed=seed)
    rng = np.random.default_rng(seed)
    batches = [uniform_traffic(config["n_nodes"], 8, rng=rng)
               for _ in range(4)]
    return sim.run(batches, duration_slots=2)


def sim_metrics(report):
    return report.as_dict()


def make_spec(**overrides):
    kwargs = dict(name="mini_sim", factory=sim_factory,
                  metrics=sim_metrics,
                  grid={"planes": (1, 2)}, fixed={"n_nodes": 8})
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


class TestDeterminism:
    def test_same_spec_bit_identical_reports(self):
        rows_a = SweepRunner(workers=1).run(make_spec()).rows()
        rows_b = SweepRunner(workers=1).run(make_spec()).rows()
        assert rows_a == rows_b

    def test_base_seed_changes_results(self):
        rows_a = SweepRunner(workers=1).run(make_spec()).rows()
        rows_b = SweepRunner(workers=1).run(
            make_spec(base_seed=7)).rows()
        assert rows_a != rows_b

    def test_parallel_matches_serial(self):
        serial = SweepRunner(workers=1).run(make_spec()).rows()
        parallel = SweepRunner(workers=2).run(make_spec()).rows()
        assert parallel == serial

    def test_registered_experiment_deterministic(self):
        spec = get_experiment("ablation_staleness")
        a = SweepRunner(workers=1).run(spec).rows()
        b = SweepRunner(workers=1).run(spec).rows()
        assert a == b


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(workers=1, cache=cache)
        first = runner.run(make_spec())
        assert first.n_cached == 0 and first.n_executed == 2
        assert len(cache) == 2
        second = runner.run(make_spec())
        assert second.n_cached == 2 and second.n_executed == 0
        assert second.rows() == first.rows()

    def test_version_bump_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(workers=1, cache=cache)
        runner.run(make_spec())
        rerun = runner.run(make_spec(version=2))
        assert rerun.n_cached == 0

    def test_base_seed_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(workers=1, cache=cache)
        runner.run(make_spec())
        rerun = runner.run(make_spec(base_seed=3))
        assert rerun.n_cached == 0

    def test_force_refreshes_but_still_writes(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(workers=1, cache=cache)
        runner.run(make_spec())
        forced = runner.run(make_spec(), force=True)
        assert forced.n_cached == 0
        assert runner.run(make_spec()).n_cached == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(workers=1, cache=cache)
        runner.run(make_spec())
        for path in tmp_path.glob("*.json"):
            path.write_text("{not json")
        rerun = runner.run(make_spec())
        assert rerun.n_cached == 0

    def test_entries_are_readable_json_records(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepRunner(workers=1, cache=cache).run(make_spec())
        entry = json.loads(next(iter(tmp_path.glob("*.json")))
                           .read_text())
        assert entry["spec"] == "mini_sim"
        assert entry["config"]["n_nodes"] == 8
        assert "acceptance_ratio" in entry["metrics"]

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepRunner(workers=1, cache=cache).run(make_spec())
        assert cache.clear() == 2
        assert len(cache) == 0


class TestSerializerRoundTrip:
    def test_simulation_report_as_dict_round_trips(self):
        report = sim_factory({"n_nodes": 8, "planes": 2}, seed=5)
        metrics = report.as_dict()
        assert decode_metrics(encode_metrics(metrics)) == metrics

    def test_numpy_scalars_flatten(self):
        import numpy as np
        metrics = {"i": np.int64(3), "f": np.float64(0.5),
                   "b": np.bool_(True), "a": np.arange(3)}
        decoded = decode_metrics(encode_metrics(metrics))
        assert decoded == {"i": 3, "f": 0.5, "b": True, "a": [0, 1, 2]}

    def test_cached_rows_equal_fresh_rows(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(workers=1, cache=cache)
        fresh = runner.run(make_spec()).rows()
        cached = runner.run(make_spec()).rows()
        assert cached == fresh


class TestRunnerValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=0).run(make_spec())

    def test_summary_mentions_counts(self, tmp_path):
        runner = SweepRunner(workers=1, cache=ResultCache(tmp_path))
        summary = runner.run(make_spec()).summary()
        assert "2 tasks" in summary and "0 cached" in summary
