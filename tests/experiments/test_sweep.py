"""SweepRunner + ResultCache: hits, misses, determinism, round-trips,
and crash resilience (a dying task must never cost its neighbors)."""

import json
import os

import pytest

from repro.experiments import (
    ExperimentSpec,
    ResultCache,
    SweepRunner,
    get_experiment,
)
from repro.experiments.cache import decode_metrics, encode_metrics
from repro.network.simulator import AWGRNetworkSimulator
from repro.network.traffic import uniform_traffic


def sim_factory(config, seed):
    """Seed-sensitive simulation: traffic drawn from the task seed."""
    import numpy as np
    sim = AWGRNetworkSimulator(n_nodes=config["n_nodes"],
                               planes=config["planes"],
                               flows_per_wavelength=1, rng_seed=seed)
    rng = np.random.default_rng(seed)
    batches = [uniform_traffic(config["n_nodes"], 8, rng=rng)
               for _ in range(4)]
    return sim.run(batches, duration_slots=2)


def sim_metrics(report):
    return report.as_dict()


def make_spec(**overrides):
    kwargs = dict(name="mini_sim", factory=sim_factory,
                  metrics=sim_metrics,
                  grid={"planes": (1, 2)}, fixed={"n_nodes": 8})
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


def flaky_factory(config, seed):
    """Raises (or kills its whole worker) on one designated task."""
    x = config["x"]
    if config.get("raise_on") == x:
        raise ValueError(f"task {x} raised")
    if config.get("kill_on") == x:
        os._exit(7)
    return {"value": x}


def identity_metrics(result):
    return result


def flaky_spec(n=4, **fixed):
    return ExperimentSpec(name="flaky", factory=flaky_factory,
                          metrics=identity_metrics,
                          grid={"x": tuple(range(n))}, fixed=fixed)


class TestDeterminism:
    def test_same_spec_bit_identical_reports(self):
        rows_a = SweepRunner(workers=1).run(make_spec()).rows()
        rows_b = SweepRunner(workers=1).run(make_spec()).rows()
        assert rows_a == rows_b

    def test_base_seed_changes_results(self):
        rows_a = SweepRunner(workers=1).run(make_spec()).rows()
        rows_b = SweepRunner(workers=1).run(
            make_spec(base_seed=7)).rows()
        assert rows_a != rows_b

    def test_parallel_matches_serial(self):
        serial = SweepRunner(workers=1).run(make_spec()).rows()
        parallel = SweepRunner(workers=2).run(make_spec()).rows()
        assert parallel == serial

    def test_registered_experiment_deterministic(self):
        spec = get_experiment("ablation_staleness")
        a = SweepRunner(workers=1).run(spec).rows()
        b = SweepRunner(workers=1).run(spec).rows()
        assert a == b


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(workers=1, cache=cache)
        first = runner.run(make_spec())
        assert first.n_cached == 0 and first.n_executed == 2
        assert len(cache) == 2
        second = runner.run(make_spec())
        assert second.n_cached == 2 and second.n_executed == 0
        assert second.rows() == first.rows()

    def test_version_bump_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(workers=1, cache=cache)
        runner.run(make_spec())
        rerun = runner.run(make_spec(version=2))
        assert rerun.n_cached == 0

    def test_base_seed_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(workers=1, cache=cache)
        runner.run(make_spec())
        rerun = runner.run(make_spec(base_seed=3))
        assert rerun.n_cached == 0

    def test_force_refreshes_but_still_writes(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(workers=1, cache=cache)
        runner.run(make_spec())
        forced = runner.run(make_spec(), force=True)
        assert forced.n_cached == 0
        assert runner.run(make_spec()).n_cached == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(workers=1, cache=cache)
        runner.run(make_spec())
        for path in tmp_path.glob("*.json"):
            path.write_text("{not json")
        rerun = runner.run(make_spec())
        assert rerun.n_cached == 0

    def test_entries_are_readable_json_records(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepRunner(workers=1, cache=cache).run(make_spec())
        entry = json.loads(next(iter(tmp_path.glob("*.json")))
                           .read_text())
        assert entry["spec"] == "mini_sim"
        assert entry["config"]["n_nodes"] == 8
        assert "acceptance_ratio" in entry["metrics"]

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepRunner(workers=1, cache=cache).run(make_spec())
        assert cache.clear() == 2
        assert len(cache) == 0


class TestSerializerRoundTrip:
    def test_simulation_report_as_dict_round_trips(self):
        report = sim_factory({"n_nodes": 8, "planes": 2}, seed=5)
        metrics = report.as_dict()
        assert decode_metrics(encode_metrics(metrics)) == metrics

    def test_numpy_scalars_flatten(self):
        import numpy as np
        metrics = {"i": np.int64(3), "f": np.float64(0.5),
                   "b": np.bool_(True), "a": np.arange(3)}
        decoded = decode_metrics(encode_metrics(metrics))
        assert decoded == {"i": 3, "f": 0.5, "b": True, "a": [0, 1, 2]}

    def test_cached_rows_equal_fresh_rows(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(workers=1, cache=cache)
        fresh = runner.run(make_spec()).rows()
        cached = runner.run(make_spec()).rows()
        assert cached == fresh


class TestCrashResilience:
    """Regression: a sweep used to buffer ``pool.map`` in one
    ``list(...)``, so a single dying task aborted the run and threw
    away every completed, never-cached result."""

    def test_raising_task_does_not_abort_or_lose_results(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(workers=1, cache=cache)
        result = runner.run(flaky_spec(raise_on=1))
        assert result.n_failed == 1
        assert [r.config["x"] for r in result.failures()] == [1]
        assert "task 1 raised" in result.failures()[0].error
        # Every other task completed and was cached as it finished.
        assert [row["value"] for row in result.rows()] == [0, 2, 3]
        assert len(cache) == 3

    def test_killed_worker_keeps_completed_results_cached(self, tmp_path):
        # The designated task takes its whole worker process down
        # (os._exit — no exception to catch). With one worker running
        # tasks in order, everything before the kill must already be
        # in the cache; only the killed task fails.
        cache = ResultCache(tmp_path)
        runner = SweepRunner(workers=1, cache=cache,
                             executor="process")
        result = runner.run(flaky_spec(kill_on=3))
        assert result.n_failed == 1
        assert "BrokenProcessPool" in result.failures()[0].error
        assert [row["value"] for row in result.rows()] == [0, 1, 2]
        assert len(cache) == 3
        # The survivors are individually replayable from the cache.
        for task in flaky_spec(kill_on=3).tasks():
            hit = cache.load(task)
            if task.config["x"] == 3:
                assert hit is None
            else:
                assert hit == {"value": task.config["x"]}

    def test_failed_tasks_never_poison_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = flaky_spec(raise_on=2)
        SweepRunner(workers=1, cache=cache).run(spec)
        failed_task = next(t for t in spec.tasks()
                           if t.config["x"] == 2)
        assert cache.load(failed_task) is None
        # A rerun replays the survivors from cache and retries (and
        # re-fails) only the broken task.
        rerun = SweepRunner(workers=1, cache=cache).run(spec)
        assert rerun.n_cached == 3 and rerun.n_failed == 1

    def test_raise_on_failure_escalates(self):
        result = SweepRunner(workers=1).run(flaky_spec(raise_on=0))
        with pytest.raises(RuntimeError, match="1 task"):
            result.raise_on_failure()
        clean = SweepRunner(workers=1).run(flaky_spec())
        assert clean.raise_on_failure() is clean

    def test_summary_reports_failures(self):
        result = SweepRunner(workers=1).run(flaky_spec(raise_on=0))
        assert "1 FAILED" in result.summary()


class TestShardedSweep:
    def test_two_shards_cover_the_grid_via_shared_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        for index in range(2):
            SweepRunner(workers=1, cache=cache, executor="shard",
                        shard_index=index, shard_count=2).run(
                flaky_spec(n=6))
        replay = SweepRunner(workers=1, cache=cache).run(flaky_spec(n=6))
        assert replay.n_cached == 6
        assert [row["value"] for row in replay.rows()] == list(range(6))

    def test_sharded_rows_match_plain_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        plain = SweepRunner(workers=1).run(make_spec()).rows()
        for index in range(2):
            SweepRunner(workers=1, cache=cache, executor="shard",
                        shard_index=index, shard_count=2).run(make_spec())
        sharded = SweepRunner(workers=1, cache=cache).run(make_spec())
        assert sharded.rows() == plain

    def test_force_recomputes_stolen_foreign_tasks(self, tmp_path):
        # Regression: the steal loop used to read the cache even
        # under force, mixing refreshed owned rows with stale
        # foreign ones.
        cache = ResultCache(tmp_path)
        SweepRunner(workers=1, cache=cache).run(flaky_spec(n=4))
        forced = SweepRunner(workers=1, cache=cache, executor="shard",
                             shard_index=0, shard_count=2).run(
            flaky_spec(n=4), force=True)
        assert forced.n_cached == 0
        assert forced.n_executed == 4

    def test_unyielded_foreign_tasks_reported_as_skipped(self):
        # Regression: a cache-less shard dropped foreign tasks and
        # summarized a shrunken grid as a complete sweep.
        result = SweepRunner(workers=1, executor="shard",
                             shard_index=0, shard_count=2).run(
            flaky_spec(n=4))
        assert result.n_skipped > 0
        assert len(result.results) + result.n_skipped == 4
        assert not result.complete
        assert "left to other shards" in result.summary()


class TestRunnerValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=0).run(make_spec())

    def test_summary_mentions_counts(self, tmp_path):
        runner = SweepRunner(workers=1, cache=ResultCache(tmp_path))
        summary = runner.run(make_spec()).summary()
        assert "2 tasks" in summary and "0 cached" in summary
