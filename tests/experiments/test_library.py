"""Registered sweeps reproduce the benchmarks' serial loops."""

import pytest

from repro.experiments import EXPERIMENTS, SweepRunner, get_experiment
from repro.network.simulator import AWGRNetworkSimulator
from repro.network.traffic import Flow, uniform_traffic


class TestRegistry:
    def test_expected_experiments_registered(self):
        assert {"ablation_staleness", "indirect_routing",
                "placement_bandwidth", "case_a_vs_case_b",
                "isoperf", "ablation_awgr_planes",
                "ablation_plane_failure", "fig5_connectivity",
                "power_overhead", "fig6_cpu_slowdown",
                "fig8_latency_sensitivity", "table4_switch_configs",
                "scenario_diurnal_cori",
                "scenario_reconfig_lag"} <= set(EXPERIMENTS)

    def test_every_spec_describes_itself(self):
        for spec in EXPERIMENTS.values():
            assert spec.description
            assert len(spec) >= 1

    def test_unknown_experiment_names_known_ones(self):
        with pytest.raises(KeyError, match="ablation_staleness"):
            get_experiment("nope")


class TestEquivalenceWithSerialLoops:
    def test_staleness_grid_point_matches_direct_run(self):
        """One sweep task == one iteration of the old bench loop."""
        spec = get_experiment("ablation_staleness")
        row = SweepRunner(workers=1).run(spec).rows()[0]
        assert row["update_period"] == 1
        sim = AWGRNetworkSimulator(n_nodes=24, planes=3,
                                   flows_per_wavelength=1,
                                   state_update_period=1, rng_seed=9)
        batches = []
        for _ in range(10):
            batch = uniform_traffic(24, 10, gbps=25.0)
            batch += [Flow(src, 0, gbps=25.0) for src in (1, 2, 3)]
            batches.append(batch)
        report = sim.run(batches, duration_slots=3)
        for key, value in report.as_dict().items():
            assert row[key] == value, key

    def test_plane_failure_grid_point_matches_direct_run(self):
        """One sweep task == one iteration of the old failure loop."""
        spec = get_experiment("ablation_plane_failure")
        row = SweepRunner(workers=1).run(spec).rows()[1]
        assert row["failed_planes"] == 1
        sim = AWGRNetworkSimulator(n_nodes=16, planes=5,
                                   flows_per_wavelength=1, rng_seed=13)
        sim.allocator.fail_plane(0)
        batches = []
        for _ in range(4):
            batch = uniform_traffic(16, 10, gbps=25.0)
            batch += [Flow(src, 0, gbps=25.0) for src in (1, 2, 3)]
            batches.append(batch)
        report = sim.run(batches, duration_slots=2)
        for key, value in report.as_dict().items():
            assert row[key] == value, key

    def test_awgr_planes_acceptance_monotone(self):
        rows = SweepRunner(workers=1).run(
            get_experiment("ablation_awgr_planes")).rows()
        acceptance = [r["acceptance_ratio"] for r in rows]
        assert acceptance == sorted(acceptance)

    def test_structural_specs_single_task(self):
        for name in ("fig5_connectivity", "power_overhead"):
            rows = SweepRunner(workers=1).run(
                get_experiment(name)).rows()
            assert len(rows) == 1

    def test_cpu_slowdown_grid_point_matches_direct_run(self):
        """One fig8 task == one iteration of the old serial loop."""
        import numpy as np

        from repro.core.slowdown import run_cpu_study

        spec = get_experiment("fig8_latency_sensitivity")
        row = next(r for r in SweepRunner(workers=1).run(spec).rows()
                   if r["latency_ns"] == 25.0 and r["core"] == "ooo")
        direct = [r.slowdown for r in run_cpu_study(25.0, cores=("ooo",))]
        assert row["overall_mean_slowdown"] == float(np.mean(direct))
        assert row["overall_max_slowdown"] == float(np.max(direct))

    def test_table4_tasks_cover_all_families(self):
        rows = SweepRunner(workers=1).run(
            get_experiment("table4_switch_configs")).rows()
        assert {r["switch_type"] for r in rows} == {
            "awgr", "spatial", "wave-selective"}

    def test_case_sweep_covers_both_fabrics(self):
        rows = SweepRunner(workers=1).run(
            get_experiment("case_a_vs_case_b")).rows()
        fabrics = [r["fabric"] for r in rows]
        assert any("AWGR" in f for f in fabrics)
        assert any("WSS" in f for f in fabrics)
        # Case A's defining property: zero reconfigurations.
        case_a = next(r for r in rows if "AWGR" in r["fabric"])
        assert case_a["reconfigurations"] == 0
