"""ExperimentSpec: grid expansion, seed derivation, hashing."""

import pytest

from repro.experiments.spec import (
    ExperimentSpec,
    canonical_json,
    derive_seed,
    stable_hash,
)


def dummy_factory(config, seed):
    return {"value": config.get("x", 0) * 2, "seed": seed}


def dummy_metrics(result):
    return result


def make_spec(**overrides):
    kwargs = dict(name="dummy", factory=dummy_factory,
                  metrics=dummy_metrics,
                  grid={"x": (1, 2, 3)}, fixed={"y": "const"})
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


class TestGridExpansion:
    def test_cartesian_product_in_declaration_order(self):
        spec = make_spec(grid={"a": (1, 2), "b": ("u", "v")})
        assert spec.configs() == [
            {"y": "const", "a": 1, "b": "u"},
            {"y": "const", "a": 1, "b": "v"},
            {"y": "const", "a": 2, "b": "u"},
            {"y": "const", "a": 2, "b": "v"},
        ]
        assert len(spec) == 4

    def test_empty_grid_is_single_task(self):
        spec = make_spec(grid={})
        assert spec.configs() == [{"y": "const"}]
        assert len(spec) == 1

    def test_grid_overrides_fixed(self):
        spec = make_spec(grid={"y": ("a", "b")})
        assert [c["y"] for c in spec.configs()] == ["a", "b"]

    def test_empty_grid_values_rejected(self):
        with pytest.raises(ValueError):
            make_spec(grid={"x": ()})

    def test_scalar_grid_values_rejected(self):
        with pytest.raises(TypeError):
            make_spec(grid={"x": 3})

    def test_nameless_spec_rejected(self):
        with pytest.raises(ValueError):
            make_spec(name="")


class TestSeeds:
    def test_seeds_deterministic_across_calls(self):
        seeds_a = [t.seed for t in make_spec().tasks()]
        seeds_b = [t.seed for t in make_spec().tasks()]
        assert seeds_a == seeds_b

    def test_seeds_differ_per_config(self):
        seeds = [t.seed for t in make_spec().tasks()]
        assert len(set(seeds)) == len(seeds)

    def test_base_seed_changes_every_task_seed(self):
        a = [t.seed for t in make_spec().tasks()]
        b = [t.seed for t in make_spec(base_seed=1).tasks()]
        assert all(x != y for x, y in zip(a, b))

    def test_seed_is_63_bit_nonnegative(self):
        for task in make_spec().tasks():
            assert 0 <= task.seed < 2**63

    def test_derive_seed_independent_of_dict_order(self):
        assert (derive_seed("s", 1, 0, {"a": 1, "b": 2})
                == derive_seed("s", 1, 0, {"b": 2, "a": 1}))


class TestRepeated:
    def test_adds_repeat_axis(self):
        spec = make_spec().repeated(3)
        assert len(spec) == 9  # 3 x values x 3 repeats
        repeats = {c["repeat"] for c in spec.configs()}
        assert repeats == {0, 1, 2}

    def test_each_repeat_gets_its_own_seed(self):
        spec = make_spec(grid={"x": (1,)}).repeated(4)
        seeds = [t.seed for t in spec.tasks()]
        assert len(set(seeds)) == 4

    def test_original_spec_unchanged(self):
        spec = make_spec()
        spec.repeated(2)
        assert "repeat" not in spec.grid

    def test_custom_axis_name(self):
        spec = make_spec().repeated(2, axis="trial")
        assert {c["trial"] for c in spec.configs()} == {0, 1}

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            make_spec().repeated(0)

    def test_rejects_colliding_axis(self):
        with pytest.raises(ValueError):
            make_spec().repeated(2, axis="x")
        with pytest.raises(ValueError):
            make_spec().repeated(2, axis="y")


class TestHashing:
    def test_canonical_json_sorts_keys(self):
        assert (canonical_json({"b": 1, "a": 2})
                == canonical_json({"a": 2, "b": 1}))

    def test_stable_hash_distinguishes_values(self):
        assert stable_hash({"x": 1}) != stable_hash({"x": 2})

    def test_config_hash_changes_with_version(self):
        t1 = make_spec().tasks()[0]
        t2 = make_spec(version=2).tasks()[0]
        assert t1.config_hash != t2.config_hash

    def test_unserializable_config_rejected(self):
        with pytest.raises(TypeError):
            canonical_json({"x": object()})


class TestExecute:
    def test_execute_runs_factory_then_metrics(self):
        task = make_spec().tasks()[1]
        assert task.execute() == {"value": 4, "seed": task.seed}
