"""ResultCache: size cap, LRU eviction, version guard, clear races."""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.spec import ExperimentSpec


def factory(config, seed):
    return {"value": config["x"]}


def metrics(result):
    return result


def tasks(n):
    spec = ExperimentSpec(name="cache_test", factory=factory,
                          metrics=metrics,
                          grid={"x": tuple(range(n))})
    return spec.tasks()


def set_mtimes(cache, paths):
    """Give entries strictly increasing, well-separated mtimes."""
    base = 1_000_000_000
    for i, path in enumerate(paths):
        os.utime(path, (base + i, base + i))


class TestMaxEntries:
    def test_default_is_unbounded(self, tmp_path):
        cache = ResultCache(tmp_path)
        for task in tasks(10):
            cache.store(task, {"value": 1})
        assert len(cache) == 10

    def test_invalid_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_entries=0)

    def test_store_evicts_oldest_beyond_cap(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=3)
        all_tasks = tasks(4)
        paths = [cache.store(task, {"value": i})
                 for i, task in enumerate(all_tasks[:3])]
        set_mtimes(cache, paths)
        cache.store(all_tasks[3], {"value": 3})
        assert len(cache) == 3
        # The oldest entry went first.
        assert cache.load(all_tasks[0]) is None
        assert cache.load(all_tasks[3]) == {"value": 3}

    def test_load_refreshes_recency(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        a, b, c = tasks(3)
        path_a = cache.store(a, {"value": 0})
        path_b = cache.store(b, {"value": 1})
        set_mtimes(cache, [path_a, path_b])
        # Touch a: now b is the least recently used.
        assert cache.load(a) == {"value": 0}
        cache.store(c, {"value": 2})
        assert cache.load(b) is None
        assert cache.load(a) == {"value": 0}
        assert cache.load(c) == {"value": 2}

    def test_cap_one_keeps_only_newest(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=1)
        all_tasks = tasks(3)
        for i, task in enumerate(all_tasks):
            cache.store(task, {"value": i})
        assert len(cache) == 1
        assert cache.load(all_tasks[-1]) == {"value": 2}


class TestVersionGuard:
    """Regression: ``load`` trusted the truncated path hash to keep
    spec versions apart and never checked the stored ``version``
    field the docstring promised."""

    def test_tampered_version_field_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = tasks(1)[0]
        path = cache.store(task, {"value": 9})
        entry = json.loads(path.read_text())
        assert entry["version"] == task.version
        entry["version"] = task.version + 1  # hash-collision stand-in
        path.write_text(json.dumps(entry))
        assert cache.load(task) is None

    def test_missing_version_field_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = tasks(1)[0]
        path = cache.store(task, {"value": 9})
        entry = json.loads(path.read_text())
        del entry["version"]
        path.write_text(json.dumps(entry))
        assert cache.load(task) is None

    def test_matching_version_still_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = tasks(1)[0]
        cache.store(task, {"value": 9})
        assert cache.load(task) == {"value": 9}


class TestClearRace:
    def test_clear_tolerates_concurrently_removed_files(
            self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        for i, task in enumerate(tasks(3)):
            cache.store(task, {"value": i})
        real_unlink = Path.unlink
        lost = []

        def racing_unlink(self, missing_ok=False):
            # Another process (an eviction, a concurrent clear) beat
            # us to the first entry.
            if not lost:
                lost.append(self)
                real_unlink(self)
                raise FileNotFoundError(str(self))
            return real_unlink(self, missing_ok=missing_ok)

        monkeypatch.setattr(Path, "unlink", racing_unlink)
        assert cache.clear() == 2  # the two we actually removed
        assert len(cache) == 0
