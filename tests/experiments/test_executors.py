"""Executors: streaming, failure capture, sharding, work-stealing."""

import os

import pytest

from repro.experiments import (
    ExperimentSpec,
    InlineExecutor,
    ProcessPoolSweepExecutor,
    ResultCache,
    ShardExecutor,
    make_executor,
    shard_of,
)
from repro.experiments.executors import run_task


def factory(config, seed):
    x = config["x"]
    if config.get("raise_on") == x:
        raise RuntimeError(f"task {x} exploded")
    if config.get("kill_on") == x:
        os._exit(13)  # dies without a traceback, like a segfault
    return {"value": x * 10}


def metrics(result):
    return result


def make_tasks(n=4, **fixed):
    spec = ExperimentSpec(name="exec_test", factory=factory,
                          metrics=metrics,
                          grid={"x": tuple(range(n))}, fixed=fixed)
    return spec.tasks()


class TestRunTask:
    def test_success_carries_metrics_and_duration(self):
        outcome = run_task(make_tasks(1)[0])
        assert outcome.ok
        assert outcome.metrics == {"value": 0}
        assert outcome.duration_s >= 0.0

    def test_exception_becomes_failed_outcome(self):
        task = make_tasks(1, raise_on=0)[0]
        outcome = run_task(task)
        assert not outcome.ok
        assert outcome.metrics is None
        assert "task 0 exploded" in outcome.error


class TestInlineExecutor:
    def test_streams_all_tasks_in_order(self):
        pairs = list(InlineExecutor().run(make_tasks(3)))
        assert [t.config["x"] for t, _ in pairs] == [0, 1, 2]
        assert all(o.ok for _, o in pairs)

    def test_failure_does_not_stop_the_stream(self):
        pairs = list(InlineExecutor().run(make_tasks(4, raise_on=1)))
        assert len(pairs) == 4
        by_x = {t.config["x"]: o for t, o in pairs}
        assert not by_x[1].ok and "exploded" in by_x[1].error
        assert all(by_x[x].ok for x in (0, 2, 3))


class TestProcessPoolExecutor:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ProcessPoolSweepExecutor(workers=0)

    def test_all_outcomes_stream_back(self):
        pairs = list(ProcessPoolSweepExecutor(workers=2)
                     .run(make_tasks(4)))
        assert {t.config["x"] for t, _ in pairs} == {0, 1, 2, 3}
        assert all(o.ok for _, o in pairs)

    def test_task_exception_captured_in_worker(self):
        pairs = list(ProcessPoolSweepExecutor(workers=2)
                     .run(make_tasks(4, raise_on=2)))
        by_x = {t.config["x"]: o for t, o in pairs}
        assert not by_x[2].ok and "exploded" in by_x[2].error
        assert all(by_x[x].ok for x in (0, 1, 3))

    def test_worker_death_fails_only_inflight_tasks(self):
        # One worker runs tasks in submission order; the last task
        # kills the process outright. Earlier completions must have
        # streamed back, and the kill surfaces as that task's error.
        pairs = list(ProcessPoolSweepExecutor(workers=1)
                     .run(make_tasks(4, kill_on=3)))
        by_x = {t.config["x"]: o for t, o in pairs}
        assert all(by_x[x].ok for x in (0, 1, 2))
        assert not by_x[3].ok
        assert "BrokenProcessPool" in by_x[3].error


class TestShardOf:
    def test_stable_and_in_range(self):
        tasks = make_tasks(8)
        first = [shard_of(t, 3) for t in tasks]
        assert first == [shard_of(t, 3) for t in tasks]
        assert all(0 <= s < 3 for s in first)

    def test_partition_is_disjoint_and_complete(self):
        tasks = make_tasks(16)
        slices = [{t.config["x"] for t in tasks if shard_of(t, 4) == i}
                  for i in range(4)]
        union = set().union(*slices)
        assert union == set(range(16))
        assert sum(len(s) for s in slices) == 16


class TestShardExecutor:
    def test_validates_indices(self):
        with pytest.raises(ValueError):
            ShardExecutor(inner=InlineExecutor(), shard_index=2,
                          shard_count=2)

    def test_without_steal_runs_owned_slice_only(self, tmp_path):
        tasks = make_tasks(8)
        executor = ShardExecutor(inner=InlineExecutor(), shard_index=0,
                                 shard_count=2,
                                 cache=ResultCache(tmp_path),
                                 steal=False)
        done = {t.config["x"] for t, o in executor.run(tasks) if o.ok}
        assert done == {t.config["x"] for t in tasks
                        if shard_of(t, 2) == 0}

    def test_steal_completes_the_grid_alone(self, tmp_path):
        tasks = make_tasks(8)
        executor = ShardExecutor(inner=InlineExecutor(), shard_index=0,
                                 shard_count=2,
                                 cache=ResultCache(tmp_path))
        done = {t.config["x"] for t, o in executor.run(tasks) if o.ok}
        assert done == set(range(8))

    def test_steal_prefers_other_shards_cached_results(self, tmp_path):
        cache = ResultCache(tmp_path)
        tasks = make_tasks(8)
        foreign = [t for t in tasks if shard_of(t, 2) == 1]
        for task in foreign:  # shard 1 already finished its slice
            cache.store(task, {"value": -1})
        executor = ShardExecutor(inner=InlineExecutor(), shard_index=0,
                                 shard_count=2, cache=cache)
        outcomes = {t.config["x"]: o for t, o in executor.run(tasks)}
        for task in foreign:
            outcome = outcomes[task.config["x"]]
            assert outcome.cached
            assert outcome.metrics == {"value": -1}


class TestMakeExecutor:
    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_executor("bogus")

    def test_auto_picks_by_workers(self):
        assert isinstance(make_executor("auto", workers=1),
                          InlineExecutor)
        assert isinstance(make_executor("auto", workers=3),
                          ProcessPoolSweepExecutor)

    def test_shard_requires_indices(self):
        with pytest.raises(ValueError):
            make_executor("shard", workers=1)
