"""Optical link-budget analysis."""

import math

import pytest

from repro.photonics.linkbudget import (
    LinkBudget,
    cascade_depth_limit,
    crosstalk_power_penalty_db,
    fabric_feasibility,
    switch_budget_report,
)
from repro.photonics.switches import switch_by_name


class TestCrosstalkPenalty:
    def test_negligible_below_minus50(self):
        assert crosstalk_power_penalty_db(-70.0) < 0.1

    def test_grows_with_crosstalk(self):
        assert (crosstalk_power_penalty_db(-20.0)
                > crosstalk_power_penalty_db(-35.0))

    def test_unreported_charged_conservative(self):
        assert crosstalk_power_penalty_db(None) == 0.5

    def test_catastrophic_crosstalk_infinite(self):
        assert math.isinf(crosstalk_power_penalty_db(-5.0))

    def test_positive_rejected(self):
        with pytest.raises(ValueError):
            crosstalk_power_penalty_db(3.0)


class TestLinkBudget:
    def test_path_loss_composition(self):
        budget = LinkBudget(coupling_loss_db=1.5, connector_loss_db=0.25,
                            fiber_db_per_km=0.4)
        loss = budget.path_loss_db(switch_insertion_db=10.0, fiber_m=4.0,
                                   crosstalk_db=-70.0)
        expected = 2 * 1.5 + 2 * 0.25 + 0.4 * 0.004 + 10.0
        assert loss == pytest.approx(expected, abs=0.1)

    def test_margin_and_closes_consistent(self):
        budget = LinkBudget()
        il = budget.max_insertion_loss_db()
        assert budget.closes(il - 0.1)
        assert not budget.closes(il + 0.1)

    def test_fiber_length_nearly_free_intra_rack(self):
        budget = LinkBudget()
        short = budget.margin_db(10.0, fiber_m=1.0)
        long = budget.margin_db(10.0, fiber_m=4.0)
        assert abs(short - long) < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkBudget(coupling_loss_db=-1.0)
        with pytest.raises(ValueError):
            LinkBudget().path_loss_db(-1.0)


class TestFabricFeasibility:
    def test_all_catalog_switches_close(self):
        # The paper's implicit claim: every Table II family is usable
        # intra-rack with a 10 dBm launch and -17 dBm sensitivity.
        rows = fabric_feasibility()
        assert len(rows) >= 5
        for row in rows:
            assert row["closes"], row["switch"]

    def test_cascaded_awgr_margin_smallest_of_big_three(self):
        rows = {r["switch"]: r for r in fabric_feasibility()}
        # 15 dB IL makes the cascaded AWGR the tightest large switch.
        assert rows["cascaded-awgr-370"]["margin_db"] < \
            rows["mems-240"]["margin_db"]

    def test_weak_laser_fails(self):
        rows = fabric_feasibility(LinkBudget(laser_dbm_per_wavelength=0.0))
        assert not all(r["closes"] for r in rows)


class TestCascadeDepth:
    def test_at_least_one_stage(self):
        assert cascade_depth_limit(LinkBudget(), stage_loss_db=15.0) >= 1

    def test_shallower_with_lossier_stages(self):
        budget = LinkBudget()
        assert (cascade_depth_limit(budget, 5.0)
                >= cascade_depth_limit(budget, 15.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            cascade_depth_limit(LinkBudget(), 0.0)


class TestSwitchReport:
    def test_report_fields(self):
        report = switch_budget_report(switch_by_name("cascaded-awgr-370"))
        assert report["closes"]
        assert report["margin_db"] > 0
        assert report["max_tolerable_il_db"] > 15.0
