"""Link technology catalog (paper Table I)."""

import math

import pytest

from repro.photonics.links import (
    LINK_CATALOG,
    LinkTechnology,
    link_by_name,
    links_for_escape_bandwidth,
    table1_rows,
)


class TestCatalog:
    def test_has_five_technologies(self):
        assert len(LINK_CATALOG) == 5

    def test_names_unique(self):
        names = [t.name for t in LINK_CATALOG]
        assert len(set(names)) == len(names)

    def test_channel_structure_consistent(self):
        for tech in LINK_CATALOG:
            assert tech.gbps_per_channel * tech.channels == tech.gbps

    def test_lookup(self):
        assert link_by_name("ayar-teraphy").gbps == 768.0

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            link_by_name("nonexistent")

    def test_dwdm_entries_co_packaged(self):
        # §III-B: "These higher performance link technologies must be
        # co-packaged to achieve their bandwidth density."
        for name in ("ayar-teraphy", "dwdm-1tbps", "dwdm-2tbps"):
            assert link_by_name(name).co_packaged


class TestTable1LinkCounts:
    """The '#Links (2 TB/s escape)' column: 160/40/21/16/8."""

    EXPECTED = {"100G-ethernet": 160, "400G-ethernet": 40,
                "ayar-teraphy": 21, "dwdm-1tbps": 16, "dwdm-2tbps": 8}

    def test_link_counts_match_paper(self):
        assert links_for_escape_bandwidth(2.0) == self.EXPECTED

    def test_larger_escape_scales_up(self):
        counts = links_for_escape_bandwidth(4.0)
        for name, n in self.EXPECTED.items():
            assert counts[name] >= n


class TestTable1Power:
    """The 'Agg. Ws' column: 480 / (197) / 14.4 / 7.2 / 4.8."""

    def test_100g_power(self):
        assert math.isclose(
            link_by_name("100G-ethernet").aggregate_power_w(), 480.0)

    def test_teraphy_power(self):
        assert math.isclose(
            link_by_name("ayar-teraphy").aggregate_power_w(), 14.4)

    def test_1tbps_power(self):
        assert math.isclose(link_by_name("dwdm-1tbps").aggregate_power_w(),
                            7.2)

    def test_2tbps_power(self):
        assert math.isclose(link_by_name("dwdm-2tbps").aggregate_power_w(),
                            4.8)

    def test_single_link_power(self):
        # 2048 Gbps at 0.3 pJ/bit = 0.614 W.
        assert math.isclose(link_by_name("dwdm-2tbps").power_w(),
                            0.6144, rel_tol=1e-6)


class TestTable1Rows:
    def test_rows_complete(self):
        rows = table1_rows()
        assert len(rows) == 5
        for row in rows:
            assert {"name", "gbps", "pj_per_bit", "links",
                    "aggregate_w"} <= set(row)

    def test_rows_ordered_by_catalog(self):
        rows = table1_rows()
        assert [r["name"] for r in rows] == [t.name for t in LINK_CATALOG]


class TestValidation:
    def test_inconsistent_channels_rejected(self):
        with pytest.raises(ValueError):
            LinkTechnology("bad", 100.0, 1.0, 30.0, 4)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            LinkTechnology("bad", 100.0, -1.0, 25.0, 4)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            LinkTechnology("bad", 0.0, 1.0, 0.0, 4)

    def test_serialization_latency(self):
        tech = link_by_name("dwdm-2tbps")
        assert math.isclose(tech.serialization_ns(2048.0), 1.0)
