"""FEC/BER model (paper §III-A, §III-C3)."""

import math

import numpy as np
import pytest

from repro.photonics.fec import (
    CXL_LIGHTWEIGHT_FEC,
    FECModel,
    effective_ber_after_fec,
    flit_error_rate,
    retransmission_overhead,
    simulate_flit_errors,
)


class TestFlitErrorRate:
    def test_quadratic_suppression(self):
        # Paper: "a flit BER of 1e-6 becomes 1e-12 as you need two
        # error bursts per flit to fail" — up to the C(n,2) prefactor.
        fer = flit_error_rate(1e-6, flit_bits=256)
        prefactor = 256 * 255 / 2
        assert fer == pytest.approx(prefactor * 1e-12, rel=0.01)

    def test_zero_ber_gives_zero(self):
        assert flit_error_rate(0.0) == 0.0

    def test_monotone_in_ber(self):
        rates = [flit_error_rate(p) for p in (1e-9, 1e-7, 1e-5, 1e-3)]
        assert rates == sorted(rates)
        assert all(r > 0 for r in rates[1:])

    def test_more_correction_lowers_failure(self):
        weak = flit_error_rate(1e-4, correctable_bursts=0)
        strong = flit_error_rate(1e-4, correctable_bursts=1)
        stronger = flit_error_rate(1e-4, correctable_bursts=2)
        assert stronger < strong < weak

    def test_tiny_ber_numerically_stable(self):
        fer = flit_error_rate(1e-12, flit_bits=256)
        assert 0 < fer < 1e-18

    def test_invalid_ber_rejected(self):
        with pytest.raises(ValueError):
            flit_error_rate(1.5)
        with pytest.raises(ValueError):
            flit_error_rate(-0.1)

    def test_matches_monte_carlo(self):
        p = 5e-3
        closed = flit_error_rate(p, flit_bits=256)
        mc = simulate_flit_errors(p, flit_bits=256, n_flits=400_000,
                                  rng=np.random.default_rng(7))
        assert mc == pytest.approx(closed, rel=0.1)


class TestResidualBER:
    def test_memory_target_reachable(self):
        # With raw BER 1e-6, FEC + CRC reaches the 1e-18 server target.
        model = CXL_LIGHTWEIGHT_FEC
        assert model.meets_memory_ber(1e-6)

    def test_target_unreachable_for_terrible_link(self):
        model = CXL_LIGHTWEIGHT_FEC
        assert not model.meets_memory_ber(1e-2)

    def test_residual_scales_with_crc_escape(self):
        loose = effective_ber_after_fec(1e-6, crc_escape_rate=1e-6)
        tight = effective_ber_after_fec(1e-6, crc_escape_rate=1e-12)
        assert tight < loose

    def test_invalid_crc_rate_rejected(self):
        with pytest.raises(ValueError):
            effective_ber_after_fec(1e-6, crc_escape_rate=2.0)


class TestRetransmission:
    def test_below_point_one_percent(self):
        # §III-C3: "less than a 0.1% bandwidth loss" at BERs of interest.
        assert retransmission_overhead(1e-6) < 1e-3

    def test_grows_with_ber(self):
        assert (retransmission_overhead(1e-3)
                > retransmission_overhead(1e-6))


class TestFECModel:
    def test_latency_at_400gbps(self):
        # §III-C3: at >= 400 Gbps, FEC adds 2-3 ns plus serialization.
        model = FECModel()
        total = model.total_latency_ns(400.0)
        assert 3.0 < total < 6.0

    def test_latency_at_200gbps_larger(self):
        model = FECModel()
        assert model.total_latency_ns(200.0) > model.total_latency_ns(400.0)

    def test_effective_bandwidth_near_raw(self):
        model = FECModel()
        eff = model.effective_bandwidth_gbps(1000.0, raw_ber=1e-6)
        assert 0.998 * 1000.0 < eff < 1000.0

    def test_bad_link_rate_rejected(self):
        with pytest.raises(ValueError):
            FECModel().serialization_ns(0.0)

    def test_invalid_overhead_rejected(self):
        with pytest.raises(ValueError):
            FECModel(bandwidth_overhead=1.5)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            FECModel(fec_latency_ns=-1.0)

    def test_default_is_cxl_scheme(self):
        assert CXL_LIGHTWEIGHT_FEC.name == "cxl-lightweight"
        assert CXL_LIGHTWEIGHT_FEC.flit_bits == 256


class TestMonteCarlo:
    def test_seeded_reproducibility(self):
        a = simulate_flit_errors(1e-3, rng=np.random.default_rng(3))
        b = simulate_flit_errors(1e-3, rng=np.random.default_rng(3))
        assert a == b

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            simulate_flit_errors(1e-3, n_flits=0)

    def test_zero_ber_no_failures(self):
        assert simulate_flit_errors(0.0) == 0.0

    def test_math_isclose_sanity(self):
        # guard: closed form stays a probability
        assert 0 <= flit_error_rate(0.5) <= 1
        assert math.isfinite(flit_error_rate(0.999))
