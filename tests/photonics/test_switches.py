"""Optical switch catalog (paper Tables II & IV)."""

import pytest

from repro.photonics.switches import (
    SWITCH_CATALOG,
    SwitchKind,
    SwitchTechnology,
    project_wave_selective,
    study_switch_configs,
    switch_by_name,
    table2_rows,
    table4_rows,
)


class TestCatalog:
    def test_contains_table2_families(self):
        kinds = {t.kind for t in SWITCH_CATALOG}
        assert kinds == {SwitchKind.SPATIAL, SwitchKind.WAVE_SELECTIVE,
                         SwitchKind.AWGR}

    def test_mzi_radix(self):
        assert switch_by_name("mzi-32").radix == 32

    def test_mems_radix_and_crosstalk(self):
        mems = switch_by_name("mems-240")
        assert mems.radix == 240
        assert mems.crosstalk_db == -70.0

    def test_cascaded_awgr_row(self):
        awgr = switch_by_name("cascaded-awgr-370")
        assert awgr.radix == 370
        assert awgr.wavelengths_per_port == 370
        assert awgr.gbps_per_wavelength == 25.0
        assert awgr.insertion_loss_db == 15.0
        assert not awgr.reconfigurable

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            switch_by_name("quantum-switch")

    def test_awgr_cannot_be_reconfigurable(self):
        with pytest.raises(ValueError):
            SwitchTechnology("bad", SwitchKind.AWGR, 8, 8, 25.0, 5.0,
                             None, 0.0, reconfigurable=True)


class TestDerived:
    def test_port_bandwidth(self):
        awgr = switch_by_name("cascaded-awgr-370")
        assert awgr.port_bandwidth_gbps == 370 * 25.0

    def test_bisection_bandwidth(self):
        awgr = switch_by_name("cascaded-awgr-370")
        assert awgr.bisection_bandwidth_gbps == 370 * 370 * 25.0

    def test_conservative_rate_clamp(self):
        mems = switch_by_name("mems-240")
        clamped = mems.with_conservative_rate(25.0)
        assert clamped.gbps_per_wavelength == 25.0

    def test_conservative_rate_cannot_exceed(self):
        awgr = switch_by_name("cascaded-awgr-370")
        with pytest.raises(ValueError):
            awgr.with_conservative_rate(100.0)


class TestWaveSelectiveProjection:
    def test_256_port_projection(self):
        wss = project_wave_selective(256)
        assert wss.radix == 256
        assert wss.wavelengths_per_port == 256
        # One doubling from the 128x128 block adds loss.
        base = switch_by_name("microring-128")
        assert wss.insertion_loss_db > base.insertion_loss_db

    def test_projection_preserves_base(self):
        wss = project_wave_selective(128)
        base = switch_by_name("microring-128")
        assert wss.insertion_loss_db == base.insertion_loss_db

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            project_wave_selective(300)

    def test_below_base_rejected(self):
        with pytest.raises(ValueError):
            project_wave_selective(64)

    def test_crosstalk_degrades(self):
        wss = project_wave_selective(512)
        base = switch_by_name("microring-128")
        assert wss.crosstalk_db > base.crosstalk_db  # less negative


class TestTable4:
    def test_study_configs_radices(self):
        configs = study_switch_configs()
        assert configs["awgr"].radix == 370
        assert configs["spatial"].radix == 240
        assert configs["wave-selective"].radix == 256

    def test_all_25gbps(self):
        # Table IV: "Gbps per wavelength | All switches | 25".
        for tech in study_switch_configs().values():
            assert tech.gbps_per_wavelength == 25.0

    def test_wavelengths_per_port_match_radix(self):
        for tech in study_switch_configs().values():
            assert tech.wavelengths_per_port == tech.radix

    def test_table4_rows(self):
        rows = table4_rows()
        assert len(rows) == 3
        assert {r["switch_type"] for r in rows} == {
            "awgr", "spatial", "wave-selective"}


class TestTable2Rows:
    def test_rows_cover_catalog(self):
        assert len(table2_rows()) == len(SWITCH_CATALOG)
