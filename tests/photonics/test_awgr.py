"""AWGR routing function and cascaded construction (paper §III-D2)."""

import numpy as np
import pytest

from repro.photonics.awgr import (
    AWGR,
    CascadedAWGR,
    awgr_output_port,
    awgr_wavelength_for_pair,
)


class TestRoutingFunction:
    def test_cyclic_permutation(self):
        assert awgr_output_port(8, 0, 0) == 0
        assert awgr_output_port(8, 3, 5) == 0
        assert awgr_output_port(8, 7, 1) == 0

    def test_wavelength_inverse(self):
        n = 16
        for src in range(n):
            for dst in range(n):
                w = awgr_wavelength_for_pair(n, src, dst)
                assert awgr_output_port(n, src, w) == dst

    def test_each_wavelength_is_permutation(self):
        # Fixing a wavelength, the input->output map must be a bijection.
        n = 11
        for w in range(n):
            outs = {awgr_output_port(n, p, w) for p in range(n)}
            assert outs == set(range(n))

    def test_exactly_one_wavelength_per_pair(self):
        # The defining AWGR property (§IV-A).
        n = 9
        for src in range(n):
            for dst in range(n):
                matches = [w for w in range(n)
                           if awgr_output_port(n, src, w) == dst]
                assert len(matches) == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            awgr_output_port(8, 8, 0)
        with pytest.raises(ValueError):
            awgr_output_port(8, 0, -1)
        with pytest.raises(ValueError):
            awgr_wavelength_for_pair(8, -1, 0)


class TestAWGRDevice:
    def test_routing_matrix_shape_and_diagonal(self):
        dev = AWGR(n_ports=12)
        mat = dev.routing_matrix()
        assert mat.shape == (12, 12)
        assert np.all(np.diag(mat) == 0)

    def test_routing_matrix_rows_are_permutations(self):
        dev = AWGR(n_ports=7)
        mat = dev.routing_matrix()
        for row in mat:
            assert sorted(row) == list(range(7))

    def test_routing_matrix_agrees_with_function(self):
        dev = AWGR(n_ports=10)
        mat = dev.routing_matrix()
        for s in range(10):
            for d in range(10):
                assert mat[s, d] == dev.wavelength_for(s, d)

    def test_port_bandwidth(self):
        dev = AWGR(n_ports=370, gbps_per_wavelength=25.0)
        assert dev.port_bandwidth_gbps == 9250.0

    def test_pair_bandwidth_is_one_wavelength(self):
        dev = AWGR(n_ports=370)
        assert dev.pair_bandwidth_gbps() == 25.0

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            AWGR(n_ports=1)


class TestCascadedConstruction:
    def test_paper_config_is_370_of_396(self):
        dev = CascadedAWGR.paper_config()
        assert dev.k == 3 and dev.m == 12 and dev.n == 11
        assert dev.built_ports == 396
        assert dev.ports == 370

    def test_insertion_loss_sums_stages(self):
        dev = CascadedAWGR.paper_config()
        assert dev.insertion_loss_db == pytest.approx(15.0)

    def test_wavelengths_per_port_equals_ports(self):
        dev = CascadedAWGR.paper_config()
        assert dev.wavelengths_per_port == 370

    def test_as_awgr_preserves_routing_property(self):
        dev = CascadedAWGR(k=2, m=3, n=2).as_awgr()
        n = dev.n_ports
        for src in range(n):
            outs = {dev.output_port(src, w) for w in range(n)}
            assert outs == set(range(n))

    def test_usable_ports_bounds(self):
        with pytest.raises(ValueError):
            CascadedAWGR(k=1, m=2, n=2, usable_ports=5)
        with pytest.raises(ValueError):
            CascadedAWGR(k=1, m=2, n=2, usable_ports=0)

    def test_front_rear_counts(self):
        dev = CascadedAWGR.paper_config()
        assert dev.front_awgr_count() == 11
        assert dev.rear_awgr_count() == 12


class TestInterconnectOptimization:
    def test_minmax_pairing_beats_identity(self):
        dev = CascadedAWGR.paper_config()
        rng = np.random.default_rng(0)
        front = rng.uniform(3.0, 7.0, size=32)
        rear = rng.uniform(3.0, 7.0, size=32)
        identity = np.arange(32)
        optimal = dev.worst_case_loss_db(front, rear)
        naive = dev.worst_case_loss_db(front, rear, perm=identity)
        assert optimal <= naive

    def test_optimal_is_minimum_over_random_perms(self):
        dev = CascadedAWGR.paper_config()
        rng = np.random.default_rng(1)
        front = rng.uniform(2.0, 8.0, size=10)
        rear = rng.uniform(2.0, 8.0, size=10)
        optimal = dev.worst_case_loss_db(front, rear)
        for _ in range(200):
            perm = rng.permutation(10)
            assert optimal <= dev.worst_case_loss_db(front, rear, perm) + 1e-9

    def test_perm_is_permutation(self):
        dev = CascadedAWGR.paper_config()
        front = np.linspace(3, 6, 12)
        rear = np.linspace(4, 5, 12)
        perm = dev.optimize_interconnect(front, rear)
        assert sorted(perm) == list(range(12))

    def test_mismatched_shapes_rejected(self):
        dev = CascadedAWGR.paper_config()
        with pytest.raises(ValueError):
            dev.optimize_interconnect(np.ones(3), np.ones(4))
