"""CXL protocol overhead model (paper §III-C1, §V-A)."""

import pytest

from repro.photonics.cxl import CXLFlit, CXLLink, memory_channel_over_cxl


class TestFlit:
    def test_efficiency(self):
        flit = CXLFlit()
        assert flit.efficiency == pytest.approx(238 / 256)

    def test_flits_for_payload(self):
        flit = CXLFlit()
        assert flit.flits_for_payload(0) == 0
        assert flit.flits_for_payload(1) == 1
        assert flit.flits_for_payload(238) == 1
        assert flit.flits_for_payload(239) == 2
        assert flit.flits_for_payload(1024) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            CXLFlit(flit_bytes=0)
        with pytest.raises(ValueError):
            CXLFlit(payload_bytes=300)
        with pytest.raises(ValueError):
            CXLFlit().flits_for_payload(-1)


class TestBandwidth:
    def test_effective_below_wire(self):
        link = CXLLink(wire_gbps=25.0)
        eff = link.effective_gbps()
        assert 0.9 * 25.0 < eff < 25.0

    def test_overhead_fraction_small(self):
        # The paper's framing: protocol + FEC overhead is a few percent
        # (<0.1% of it from FEC parity).
        link = CXLLink()
        assert 0.05 < link.protocol_overhead_fraction() < 0.10

    def test_bad_ber_lowers_effective(self):
        link = CXLLink()
        assert link.effective_gbps(1e-3) < link.effective_gbps(1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            CXLLink(wire_gbps=0.0)
        with pytest.raises(ValueError):
            CXLLink(controller_latency_ns=-1.0)


class TestLatency:
    def test_transfer_time(self):
        link = CXLLink(wire_gbps=25.0)
        # 64 B payload -> 1 flit -> 2048 bits / 25 Gbps = 81.92 ns.
        assert link.transfer_time_ns(64) == pytest.approx(2048 / 25.0)

    def test_read_latency_composition(self):
        link = CXLLink()
        rt = link.read_latency_ns(line_bytes=64, fabric_latency_ns=20.0)
        one_req = link.one_way_latency_ns(16)
        one_rsp = link.one_way_latency_ns(64)
        assert rt == pytest.approx(one_req + one_rsp + 40.0)

    def test_fabric_latency_dominates_at_high_rate(self):
        # At multi-wavelength session rates, serialization shrinks and
        # the 2x20 ns propagation dominates — the §III-C2 point that
        # distance, not protocol, sets the intra-rack budget.
        fast = CXLLink(wire_gbps=400.0)
        rt = fast.read_latency_ns(fabric_latency_ns=20.0)
        assert rt < 70.0

    def test_negative_fabric_rejected(self):
        with pytest.raises(ValueError):
            CXLLink().read_latency_ns(fabric_latency_ns=-1.0)


class TestMemoryChannel:
    def test_ddr4_channel_fits_with_overhead(self):
        report = memory_channel_over_cxl(25.6)
        # 204.8 Gbps of payload needs 9 wavelengths of 25 Gbps wire
        # once ~7% protocol overhead is charged (vs 9 raw: ceil is the
        # same; the overhead shows in the payload rate).
        assert report["wavelengths_needed"] == 9
        assert report["payload_gbps_per_wavelength"] < 25.0
        assert 0.0 < report["overhead_fraction"] < 0.15

    def test_scaling(self):
        small = memory_channel_over_cxl(12.8)
        large = memory_channel_over_cxl(51.2)
        assert large["wavelengths_needed"] > small["wavelengths_needed"]
