"""Photonic power models (paper §VI-C)."""

import math

import pytest

from repro.photonics.power import (
    CombLaserModel,
    TransceiverPower,
    photonic_rack_power_w,
)


class TestTransceiverPower:
    def test_half_pj_per_bit(self):
        tx = TransceiverPower(pj_per_bit=0.5)
        # One MCM: 2048 wavelengths x 25 Gbps = 51.2 Tbps -> 25.6 W.
        assert math.isclose(tx.power_w(51_200.0), 25.6)

    def test_always_on_ignores_utilization(self):
        tx = TransceiverPower(always_on=True)
        assert tx.power_w(1000.0, utilization=0.1) == tx.power_w(1000.0)

    def test_utilization_scales_when_not_always_on(self):
        tx = TransceiverPower(always_on=False)
        assert math.isclose(tx.power_w(1000.0, utilization=0.5),
                            0.5 * tx.power_w(1000.0, utilization=1.0))

    def test_invalid_utilization_rejected(self):
        with pytest.raises(ValueError):
            TransceiverPower().power_w(1000.0, utilization=1.5)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            TransceiverPower(pj_per_bit=-0.1)


class TestCombLaser:
    def test_electrical_power(self):
        laser = CombLaserModel(lines=64, mw_per_line_optical=1.0,
                               wall_plug_efficiency=0.41)
        # 64 mW optical / 0.41 = ~156 mW electrical.
        assert math.isclose(laser.electrical_power_w(), 0.064 / 0.41)

    def test_efficiency_bounds(self):
        with pytest.raises(ValueError):
            CombLaserModel(wall_plug_efficiency=0.0)
        with pytest.raises(ValueError):
            CombLaserModel(wall_plug_efficiency=1.1)

    def test_more_lines_more_power(self):
        small = CombLaserModel(lines=32).electrical_power_w()
        large = CombLaserModel(lines=128).electrical_power_w()
        assert large > small


class TestRackPower:
    def test_paper_magnitude(self):
        # §VI-C: "the total additional power for all photonic
        # components is approximately 11 kW" (we compute ~9.96 kW).
        total = photonic_rack_power_w()
        assert 9_000 < total < 12_000

    def test_transceiver_share_dominates(self):
        total = photonic_rack_power_w(switch_power_w=0.0)
        assert total > 8_000

    def test_scales_with_mcms(self):
        assert (photonic_rack_power_w(n_mcms=700)
                > photonic_rack_power_w(n_mcms=350))

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            photonic_rack_power_w(n_mcms=0)
        with pytest.raises(ValueError):
            photonic_rack_power_w(switch_power_w=-1.0)
