"""Calibration solver: targets -> substrate parameters."""

import pytest

from repro.cpu.core_inorder import InOrderCore
from repro.cpu.core_ooo import OutOfOrderCore
from repro.cpu.memory import MemoryModel
from repro.cpu.simulator import CPUSimulator
from repro.cpu.trace import TraceSpec
from repro.workloads.calibration import (
    CalibrationError,
    solve_ooo_mlp,
    solve_trace_fractions,
)


def spec_from(frac, mem_ratio=0.3, name="cal.bench.x", instructions=400_000):
    return TraceSpec(name=name, instructions=instructions,
                     mem_ratio=mem_ratio,
                     l1_fraction=frac.l1_fraction,
                     l2_fraction=frac.l2_fraction,
                     llc_fraction=frac.llc_fraction)


class TestInOrderSolve:
    @pytest.mark.parametrize("target,miss", [
        (0.05, 0.10), (0.20, 0.30), (0.57, 0.65), (0.79, 0.75)])
    def test_roundtrip_hits_target(self, target, miss):
        frac = solve_trace_fractions(target, miss, mem_ratio=0.3)
        sim = CPUSimulator()
        res = sim.run_inorder(spec_from(frac), 35.0,
                              cpi_base=frac.cpi_inorder)
        assert res.slowdown == pytest.approx(target, rel=0.05)

    @pytest.mark.parametrize("target,miss", [
        (0.30, 0.40), (0.10, 0.15)])
    def test_roundtrip_hits_miss_rate(self, target, miss):
        frac = solve_trace_fractions(target, miss, mem_ratio=0.3)
        sim = CPUSimulator()
        res = sim.run_inorder(spec_from(frac), 35.0,
                              cpi_base=frac.cpi_inorder)
        assert res.llc_miss_rate == pytest.approx(miss, abs=0.03)

    def test_fractions_sum_to_one(self):
        frac = solve_trace_fractions(0.25, 0.35, mem_ratio=0.35)
        total = (frac.l1_fraction + frac.l2_fraction + frac.llc_fraction
                 + frac.dram_fraction)
        assert total == pytest.approx(1.0)

    def test_zero_target(self):
        frac = solve_trace_fractions(0.0, 0.5, mem_ratio=0.3)
        assert frac.dram_fraction == 0.0

    def test_high_slowdown_low_miss_infeasible(self):
        # The Fig. 7 correlation as a constraint: 60% slowdown cannot
        # coexist with a 5% LLC miss rate.
        with pytest.raises(CalibrationError):
            solve_trace_fractions(0.60, 0.05, mem_ratio=0.3)

    def test_invalid_inputs(self):
        with pytest.raises(CalibrationError):
            solve_trace_fractions(0.2, 0.0, 0.3)
        with pytest.raises(CalibrationError):
            solve_trace_fractions(0.2, 0.3, 0.0)
        with pytest.raises(CalibrationError):
            solve_trace_fractions(-0.1, 0.3, 0.3)


class TestOOOSolve:
    def test_roundtrip_hits_ooo_target(self):
        frac = solve_trace_fractions(0.30, 0.40, mem_ratio=0.33)
        mlp = solve_ooo_mlp(0.45, frac, mem_ratio=0.33, cpi_ooo=0.5)
        sim = CPUSimulator()
        res = sim.run_ooo(spec_from(frac, mem_ratio=0.33), 35.0,
                          cpi_exec=0.5, mlp=mlp)
        assert res.slowdown == pytest.approx(0.45, rel=0.08)

    def test_mlp_clamped_to_bounds(self):
        frac = solve_trace_fractions(0.05, 0.10, mem_ratio=0.3)
        mlp = solve_ooo_mlp(2.0, frac, mem_ratio=0.3)  # absurd target
        assert 1.0 <= mlp <= 16.0

    def test_zero_target_returns_min(self):
        frac = solve_trace_fractions(0.10, 0.20, mem_ratio=0.3)
        assert solve_ooo_mlp(0.0, frac, mem_ratio=0.3) == 1.0

    def test_higher_target_means_lower_mlp(self):
        frac = solve_trace_fractions(0.30, 0.40, mem_ratio=0.33)
        gentle = solve_ooo_mlp(0.20, frac, mem_ratio=0.33)
        harsh = solve_ooo_mlp(0.60, frac, mem_ratio=0.33)
        assert harsh < gentle

    def test_negative_target_rejected(self):
        frac = solve_trace_fractions(0.10, 0.20, mem_ratio=0.3)
        with pytest.raises(CalibrationError):
            solve_ooo_mlp(-0.1, frac, mem_ratio=0.3)


class TestConsistencyWithCores:
    def test_solver_formula_matches_core_model(self):
        """The closed form inverted by the solver must equal the
        timing the cores actually compute (no analytic drift)."""
        frac = solve_trace_fractions(0.40, 0.50, mem_ratio=0.35)
        n = 1_000_000
        mem = int(n * 0.35)
        from repro.cpu.caches import CacheStats
        dram = int(round(mem * frac.dram_fraction))
        llc = int(round(mem * frac.llc_fraction))
        l2 = int(round(mem * frac.l2_fraction))
        stats = CacheStats(instructions=n, mem_accesses=mem,
                           l1_hits=mem - l2 - llc - dram,
                           l2_hits=l2, llc_hits=llc, dram_accesses=dram)
        core = InOrderCore(cpi_base=frac.cpi_inorder)
        slowdown = core.slowdown(stats, MemoryModel(), 35.0)
        assert slowdown == pytest.approx(0.40, rel=0.01)
