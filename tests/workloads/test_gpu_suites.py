"""GPU application tables."""

from repro.workloads.gpu_suites import (
    RODINIA_INTERSECTION,
    gpu_applications,
    polybench_applications,
    rodinia_gpu_applications,
    tango_applications,
)


class TestComposition:
    def test_24_applications(self):
        # "we model one NVIDIA A100 GPU running a total of 24
        # applications".
        assert len(gpu_applications()) == 24

    def test_suite_split_11_10_3(self):
        assert len(rodinia_gpu_applications()) == 11
        assert len(polybench_applications()) == 10
        assert len(tango_applications()) == 3

    def test_names_unique(self):
        names = [a.name for a in gpu_applications()]
        assert len(set(names)) == len(names)

    def test_tango_members(self):
        names = {a.name.split(".")[-1] for a in tango_applications()}
        assert names == {"alexnet", "gru", "lstm"}


class TestCharacterizations:
    def test_polybench_stresses_memory(self):
        # §VI-B3: "Polybench applications are linear algebra
        # applications that stress the GPU cache and main memory".
        poly = [a.llc_miss_rate for a in polybench_applications()]
        tango = [a.llc_miss_rate for a in tango_applications()]
        assert max(poly) > max(tango)

    def test_miss_rates_in_range(self):
        for app in gpu_applications():
            assert 0 <= app.llc_miss_rate <= 1

    def test_hbm_txn_rates_positive(self):
        for app in gpu_applications():
            assert app.hbm_txn_per_instr > 0

    def test_intersection_subset_of_rodinia(self):
        rodinia_names = {a.name.split(".")[-1]
                         for a in rodinia_gpu_applications()}
        assert set(RODINIA_INTERSECTION) <= rodinia_names
