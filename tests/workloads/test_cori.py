"""Cori-like utilization profiles (paper §II-A)."""

import numpy as np
import pytest

from repro.workloads.cori import (
    CORI_PROFILES,
    UtilizationProfile,
    rack_demand_quantile,
    sample_node_utilization,
)


class TestProfileFit:
    def test_memory_capacity_quantile(self):
        # "three quarters of the time, Haswell nodes use less than
        # 17.4% of memory capacity".
        profile = CORI_PROFILES["memory_capacity"]
        assert profile.quantile(0.75) == pytest.approx(0.174, rel=1e-6)

    def test_nic_quantile(self):
        # "three quarters of the time 1.25% of available NIC bandwidth".
        profile = CORI_PROFILES["nic_bandwidth"]
        assert profile.quantile(0.75) == pytest.approx(0.0125, rel=1e-6)

    def test_cores_median(self):
        # "half of the time, Cori nodes use no more than half of their
        # compute cores".
        profile = CORI_PROFILES["cores"]
        assert profile.quantile(0.50) == pytest.approx(0.50, rel=1e-6)

    def test_sampled_quantiles_match_fit(self):
        profile = CORI_PROFILES["memory_capacity"]
        samples = profile.sample(200_000, np.random.default_rng(0))
        assert np.quantile(samples, 0.75) == pytest.approx(0.174, abs=0.01)

    def test_samples_bounded(self):
        for profile in CORI_PROFILES.values():
            samples = profile.sample(10_000, np.random.default_rng(1))
            assert samples.min() >= 0.0
            assert samples.max() <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            UtilizationProfile("bad", 0.9, 0.5, 0.5, 0.9)  # q1 > q2
        with pytest.raises(ValueError):
            UtilizationProfile("bad", 0.5, 0.9, 0.9, 0.5)  # v1 > v2


class TestSampling:
    def test_sample_node_utilization(self):
        arr = sample_node_utilization("memory_capacity", 128,
                                      np.random.default_rng(2))
        assert arr.shape == (128,)

    def test_unknown_resource(self):
        with pytest.raises(KeyError):
            sample_node_utilization("gpu_tensor_cores", 10)


class TestPoolingConcentration:
    def test_aggregate_concentrates_below_per_node_tail(self):
        """The statistical-multiplexing effect behind §VI-E: the 99th
        percentile of rack-mean demand sits far below the per-node
        99th percentile."""
        profile = CORI_PROFILES["memory_capacity"]
        per_node_tail = profile.quantile(0.99)
        rack_tail = rack_demand_quantile("memory_capacity", n_nodes=128,
                                         quantile=0.99, n_snapshots=300)
        assert rack_tail < per_node_tail / 2

    def test_rack_quantile_sane(self):
        q = rack_demand_quantile("memory_capacity", n_snapshots=200)
        assert 0.0 < q < 0.5

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            rack_demand_quantile("memory_capacity", quantile=1.5)
