"""Production job-mix generator (§III-D3 dynamics)."""

import numpy as np
import pytest

from repro.network.reconfig import reconfiguration_overhead_ok
from repro.workloads.jobs import (
    JobMixConfig,
    generate_job_stream,
    stream_statistics,
)


class TestGeneration:
    def test_count_and_ids_unique(self):
        jobs = generate_job_stream(50)
        assert len(jobs) == 50
        ids = [j.request.job_id for j in jobs]
        assert len(set(ids)) == 50

    def test_arrivals_increase(self):
        jobs = generate_job_stream(30)
        arrivals = [j.arrival_s for j in jobs]
        assert arrivals == sorted(arrivals)

    def test_durations_in_configured_band(self):
        config = JobMixConfig(min_duration_s=120.0,
                              max_duration_s=6 * 3600.0)
        jobs = generate_job_stream(100, config=config)
        for job in jobs:
            assert 120.0 <= job.duration_s <= 6 * 3600.0

    def test_seeded_reproducible(self):
        a = generate_job_stream(20, rng=np.random.default_rng(5))
        b = generate_job_stream(20, rng=np.random.default_rng(5))
        assert [(j.arrival_s, j.request.memory_gbyte) for j in a] == \
            [(j.arrival_s, j.request.memory_gbyte) for j in b]

    def test_gpu_fraction_respected(self):
        config = JobMixConfig(gpu_job_fraction=0.0)
        jobs = generate_job_stream(40, config=config)
        assert all(j.request.gpus == 0 for j in jobs)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_job_stream(0)
        with pytest.raises(ValueError):
            JobMixConfig(mean_interarrival_s=0.0)
        with pytest.raises(ValueError):
            JobMixConfig(min_duration_s=100.0, max_duration_s=50.0)


class TestDynamicsMatchPaper:
    def test_jobs_start_every_few_seconds(self):
        jobs = generate_job_stream(400, rng=np.random.default_rng(1))
        stats = stream_statistics(jobs)
        assert 2.0 < stats["mean_interarrival_s"] < 10.0

    def test_jobs_last_minutes_to_hours(self):
        jobs = generate_job_stream(400, rng=np.random.default_rng(2))
        stats = stream_statistics(jobs)
        assert 300.0 < stats["median_duration_s"] < 2 * 3600.0

    def test_reconfiguration_budget_holds(self):
        """§III-D3's conclusion: at production job-event rates, even
        millisecond reconfiguration is ample."""
        jobs = generate_job_stream(400, rng=np.random.default_rng(3))
        stats = stream_statistics(jobs)
        assert reconfiguration_overhead_ok(
            job_event_rate_hz=stats["event_rate_hz"],
            reconfig_time_s=1e-3)

    def test_memory_demand_underutilized(self):
        """Most jobs ask for far less memory than their node count
        implies — the §II-A marooning input."""
        jobs = generate_job_stream(500, rng=np.random.default_rng(4))
        fractions = []
        for job in jobs:
            nodes_eq = max(1, round(job.request.cpus))
            fractions.append(job.request.memory_gbyte
                             / (nodes_eq * 256.0))
        assert np.median(fractions) < 0.6

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            stream_statistics([])
