"""CPU benchmark tables."""

import pytest

from repro.workloads.cpu_suites import (
    all_cpu_benchmarks,
    benchmarks_by_suite,
    nas_benchmarks,
    parsec_benchmarks,
    rodinia_cpu_benchmarks,
)


class TestComposition:
    def test_parsec_13(self):
        for size in ("small", "medium", "large"):
            assert len(parsec_benchmarks(size)) == 13

    def test_nas_8(self):
        for cls in ("A", "B", "C"):
            assert len(nas_benchmarks(cls)) == 8

    def test_rodinia_14(self):
        assert len(rodinia_cpu_benchmarks()) == 14

    def test_total_runs_77(self):
        assert len(all_cpu_benchmarks()) == 77

    def test_full_names_unique(self):
        names = [b.full_name for b in all_cpu_benchmarks()]
        assert len(set(names)) == len(names)

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError):
            parsec_benchmarks("huge")
        with pytest.raises(ValueError):
            nas_benchmarks("D")

    def test_by_suite_selector(self):
        assert len(benchmarks_by_suite("parsec", "large")) == 13
        assert len(benchmarks_by_suite("parsec")) == 39
        assert len(benchmarks_by_suite("nas", "A")) == 8
        assert len(benchmarks_by_suite("rodinia")) == 14
        with pytest.raises(ValueError):
            benchmarks_by_suite("spec")


class TestCharacterizations:
    def test_all_rows_solve(self):
        # Table definition already solves; exercising trace_spec and
        # mlp must not raise for any row.
        for bench in all_cpu_benchmarks():
            spec = bench.trace_spec()
            assert spec.instructions > 0
            assert 1.0 <= bench.mlp() <= 16.0

    def test_nw_is_worst_case(self):
        rodinia = {b.name: b for b in rodinia_cpu_benchmarks()}
        nw = rodinia["nw"]
        assert nw.target_inorder == max(
            b.target_inorder for b in rodinia_cpu_benchmarks())
        assert nw.target_inorder == pytest.approx(0.79)
        assert nw.target_ooo == pytest.approx(0.55)

    def test_streamcluster_input_cliff(self):
        # §VI-B1: small/medium fit the LLC (<0.5% miss), large does not.
        by_size = {s: {b.name: b for b in parsec_benchmarks(s)}
                   for s in ("small", "medium", "large")}
        assert by_size["small"]["streamcluster"].llc_miss_rate <= 0.005
        assert by_size["medium"]["streamcluster"].llc_miss_rate <= 0.005
        assert by_size["large"]["streamcluster"].llc_miss_rate > 0.60

    def test_three_parsec_large_exceed_25pct(self):
        heavy = [b for b in parsec_benchmarks("large")
                 if b.target_inorder > 0.25]
        assert len(heavy) == 3

    def test_three_rodinia_exceed_25pct(self):
        heavy = [b for b in rodinia_cpu_benchmarks()
                 if b.target_inorder > 0.25]
        assert len(heavy) == 3

    def test_nas_negligible(self):
        # §VI-B1: "NAS benchmarks are negligibly affected".
        for cls in ("A", "B", "C"):
            for b in nas_benchmarks(cls):
                assert b.target_inorder < 0.05

    def test_input_size_monotonicity(self):
        # Larger inputs mean equal-or-worse miss rates per benchmark.
        for name in ("canneal", "facesim", "ferret"):
            sizes = [
                {b.name: b for b in parsec_benchmarks(s)}[name]
                for s in ("small", "medium", "large")]
            misses = [b.llc_miss_rate for b in sizes]
            assert misses == sorted(misses)

    def test_caching_returns_same_objects(self):
        assert parsec_benchmarks("large") is parsec_benchmarks("large")
