"""MCM packing — regenerates paper Table III."""

import math

import pytest

from repro.rack.baseline import BaselineRack
from repro.rack.chips import CHIP_CATALOG, ChipType
from repro.rack.mcm import (
    MCMConfig,
    chips_per_mcm,
    pack_rack,
    table3_rows,
    total_mcms,
)


class TestMCMConfig:
    def test_default_escape(self):
        mcm = MCMConfig()
        assert mcm.wavelengths == 2048
        assert mcm.escape_gbps == 51_200.0
        assert mcm.escape_gbyte_s == 6_400.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MCMConfig(fibers=0)
        with pytest.raises(ValueError):
            MCMConfig(gbps_per_wavelength=0.0)


class TestTable3:
    """The headline Table III: chips/MCM and MCMs/rack."""

    EXPECTED = {
        ChipType.CPU: (14, 10),
        ChipType.GPU: (3, 171),
        ChipType.NIC: (203, 3),
        ChipType.HBM: (4, 128),
        ChipType.DDR4: (27, 38),
    }

    def test_chips_per_mcm_and_mcm_counts(self):
        packings = pack_rack()
        for chip_type, (per, mcms) in self.EXPECTED.items():
            assert packings[chip_type].chips_per_mcm == per, chip_type
            assert packings[chip_type].mcms == mcms, chip_type

    def test_total_350_mcms(self):
        assert total_mcms(pack_rack()) == 350

    def test_provisioning_covers_rack(self):
        for packing in pack_rack().values():
            assert packing.provisioned_chips >= packing.rack_chips

    def test_escape_bandwidth_preserved(self):
        # "our photonic architecture does not restrict chip escape
        # bandwidth": chips_per_mcm * chip_escape <= MCM escape.
        mcm = MCMConfig()
        for chip_type, packing in pack_rack().items():
            spec = CHIP_CATALOG[chip_type]
            assert (packing.chips_per_mcm * spec.escape_gbyte_s
                    <= mcm.escape_gbyte_s + 1e-9)

    def test_table3_rows_render(self):
        rows = table3_rows()
        assert rows[-1]["chip_type"] == "total"
        assert rows[-1]["mcms_per_rack"] == 350


class TestScaling:
    def test_bigger_mcm_fewer_mcms(self):
        big = MCMConfig(fibers=64)
        assert total_mcms(pack_rack(mcm=big)) < 350

    def test_smaller_rack_fewer_mcms(self):
        small = BaselineRack(n_nodes=64)
        assert total_mcms(pack_rack(rack=small)) < 350

    def test_chip_too_big_for_mcm_rejected(self):
        tiny = MCMConfig(fibers=1, wavelengths_per_fiber=8)
        with pytest.raises(ValueError):
            chips_per_mcm(CHIP_CATALOG[ChipType.GPU], tiny)

    def test_floor_semantics(self):
        mcm = MCMConfig()
        spec = CHIP_CATALOG[ChipType.CPU]
        expected = math.floor(mcm.escape_gbyte_s / spec.escape_gbyte_s)
        assert chips_per_mcm(spec, mcm) == expected
