"""Baseline rack accounting (paper §V, §VI-E)."""

import pytest

from repro.rack.baseline import BaselineRack
from repro.rack.chips import ChipType


class TestChipCounts:
    def test_128_nodes(self):
        assert BaselineRack().n_nodes == 128

    def test_rack_chip_counts(self):
        counts = BaselineRack().chip_counts()
        assert counts[ChipType.CPU] == 128
        assert counts[ChipType.GPU] == 512
        assert counts[ChipType.NIC] == 512
        assert counts[ChipType.HBM] == 512
        assert counts[ChipType.DDR4] == 1024

    def test_total_chips(self):
        assert BaselineRack().total_chips() == 128 * 21

    def test_bad_node_count_rejected(self):
        with pytest.raises(ValueError):
            BaselineRack(n_nodes=0)


class TestModuleAccounting:
    def test_paper_1920_modules(self):
        # §VI-E: "1920 in the equal-performance baseline system" =
        # 128 x (1 CPU + 4 GPU + 8 DDR4 + 2 NICs counted).
        assert BaselineRack().total_modules() == 1920

    def test_module_accounting_with_four_nics(self):
        assert BaselineRack().total_modules(
            nics_counted_per_node=4) == 1920 + 2 * 128

    def test_hbm_optionally_counted(self):
        with_hbm = BaselineRack().total_modules(count_hbm=True)
        assert with_hbm == 1920 + 512


class TestPowerAndCapacity:
    def test_compute_power_near_200kw(self):
        # 128 x (250 + 1200 + 96) W = ~198 kW.
        power = BaselineRack().compute_power_w()
        assert 190_000 < power < 210_000

    def test_memory_capacity(self):
        assert BaselineRack().memory_capacity_gbyte() == 128 * 256.0

    def test_power_scales_with_nodes(self):
        small = BaselineRack(n_nodes=64)
        assert small.compute_power_w() == pytest.approx(
            BaselineRack().compute_power_w() / 2)
