"""Fabric plans (paper §V-B, Fig. 5)."""

import numpy as np
import pytest

from repro.rack.design import (
    DisaggregatedRack,
    plan_awgr_fabric,
    plan_wss_fabric,
)


class TestAWGRPlan:
    def test_six_planes(self):
        plan = plan_awgr_fabric()
        assert plan.full_planes == 5
        assert plan.extra_planes == 1
        assert plan.planes == 6

    def test_350_mcms_default(self):
        assert plan_awgr_fabric().n_mcms == 350

    def test_at_least_five_direct_wavelengths(self):
        # Fig. 5: "at least five wavelengths between any MCM pair".
        plan = plan_awgr_fabric()
        assert plan.min_direct_wavelengths() >= 5

    def test_direct_bandwidth_125gbps(self):
        plan = plan_awgr_fabric()
        assert plan.guaranteed_pair_gbps() == 125.0
        assert plan.direct_bandwidth_gbps(0, 1) >= 125.0

    def test_some_pairs_get_sixth_wavelength(self):
        plan = plan_awgr_fabric()
        counts = {plan.direct_wavelengths(0, d) for d in range(1, 50)}
        assert 6 in counts  # extra plane reaches a subset

    def test_self_pair_zero(self):
        assert plan_awgr_fabric().direct_wavelengths(3, 3) == 0

    def test_out_of_range_rejected(self):
        plan = plan_awgr_fabric()
        with pytest.raises(ValueError):
            plan.direct_wavelengths(0, 400)

    def test_too_many_mcms_rejected(self):
        with pytest.raises(ValueError):
            plan_awgr_fabric(n_mcms=400)

    def test_extra_plane_wavelength_budget(self):
        plan = plan_awgr_fabric()
        # 2 spare fibers x 64 + 14 leftover per group = 142 per the
        # paper's accounting; our grouping yields the same order.
        assert 64 <= plan.wavelengths_on_extra <= 370


class TestWSSPlan:
    def test_eleven_switches_256_ports(self):
        plan = plan_wss_fabric()
        assert plan.n_switches == 11
        assert plan.radix == 256

    def test_at_least_three_direct_paths(self):
        # §V-B: "each MCM has at least three direct paths to any other".
        plan = plan_wss_fabric()
        assert plan.min_direct_paths() >= 3

    def test_port_budget_respected(self):
        # 2048 wavelengths / 256 per port = 8 ports per MCM max.
        plan = plan_wss_fabric()
        assert plan.ports_per_mcm().max() <= 8

    def test_most_mcms_fully_connected(self):
        plan = plan_wss_fabric()
        ports = plan.ports_per_mcm()
        assert np.mean(ports == 8) > 0.9

    def test_some_ports_left_free_for_growth(self):
        # "a small number of optical switch ports are left unconnected".
        plan = plan_wss_fabric()
        free = int(np.sum(plan.attachment < 0))
        assert free == 11 * 256 - int(plan.ports_per_mcm().sum())
        assert free >= 0

    def test_direct_bandwidth(self):
        plan = plan_wss_fabric()
        paths = plan.direct_paths(0, 1)
        assert plan.direct_bandwidth_gbps(0, 1) == paths * 256 * 25.0

    def test_self_pair_zero(self):
        assert plan_wss_fabric().direct_paths(5, 5) == 0


class TestDisaggregatedRack:
    def test_awgr_rack(self):
        rack = DisaggregatedRack(fabric="awgr")
        assert rack.n_mcms() == 350
        plan = rack.plan()
        assert plan.planes == 6

    def test_wss_rack(self):
        rack = DisaggregatedRack(fabric="wss")
        plan = rack.plan()
        assert plan.n_switches == 11

    def test_unknown_fabric_rejected(self):
        with pytest.raises(ValueError):
            DisaggregatedRack(fabric="copper")
