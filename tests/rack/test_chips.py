"""Chip catalog (paper §V)."""

import math

import pytest

from repro.rack.chips import (
    CHIP_CATALOG,
    ChipSpec,
    ChipType,
    chip_by_type,
)


class TestEscapeBandwidths:
    def test_cpu_escape(self):
        # 204.8 memory + 126 PCIe + 100 NIC = 430.8 GB/s.
        assert math.isclose(chip_by_type(ChipType.CPU).escape_gbyte_s, 430.8)

    def test_gpu_escape(self):
        # 1555.2 HBM + 300 NVLink + 31.5 PCIe = 1886.7 GB/s.
        assert math.isclose(chip_by_type(ChipType.GPU).escape_gbyte_s, 1886.7)

    def test_nic_escape_is_pcie(self):
        assert math.isclose(chip_by_type(ChipType.NIC).escape_gbyte_s, 31.5)

    def test_hbm_escape(self):
        assert math.isclose(chip_by_type(ChipType.HBM).escape_gbyte_s, 1555.2)

    def test_ddr4_escape(self):
        # One DDR4-3200 module: 25.6 GB/s.
        assert math.isclose(chip_by_type(ChipType.DDR4).escape_gbyte_s, 25.6)

    def test_escape_gbps_conversion(self):
        spec = chip_by_type(ChipType.DDR4)
        assert spec.escape_gbps == spec.escape_gbyte_s * 8


class TestCatalogIntegrity:
    def test_all_types_present(self):
        assert set(CHIP_CATALOG) == set(ChipType)

    def test_powers_match_paper(self):
        assert chip_by_type(ChipType.CPU).power_w == 250.0
        assert chip_by_type(ChipType.GPU).power_w == 300.0

    def test_ddr4_power_apportioned(self):
        # 192 W per 512 GB node => 12 W per 32 GB module.
        assert math.isclose(chip_by_type(ChipType.DDR4).power_w, 12.0)

    def test_memory_capacities(self):
        assert chip_by_type(ChipType.DDR4).capacity_gbyte == 32.0
        assert chip_by_type(ChipType.HBM).capacity_gbyte == 40.0

    def test_ddr4_has_packaging_limit(self):
        assert chip_by_type(ChipType.DDR4).mcm_chip_limit == 27


class TestValidation:
    def test_zero_escape_rejected(self):
        with pytest.raises(ValueError):
            ChipSpec(ChipType.CPU, escape_gbyte_s=0.0, power_w=1.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            ChipSpec(ChipType.CPU, escape_gbyte_s=1.0, power_w=-1.0)

    def test_bad_limit_rejected(self):
        with pytest.raises(ValueError):
            ChipSpec(ChipType.DDR4, escape_gbyte_s=1.0, power_w=1.0,
                     mcm_chip_limit=0)
