"""Baseline node model (paper §V)."""

import math

import pytest

from repro.rack.chips import ChipType
from repro.rack.node import PERLMUTTER_NODE, NodeConfig


class TestPerlmutterNode:
    def test_composition(self):
        node = PERLMUTTER_NODE
        assert node.cpus == 1
        assert node.gpus == 4
        assert node.nics == 4
        assert node.ddr4_modules == 8
        assert node.hbm_stacks == 4

    def test_memory_capacity_256gb(self):
        assert PERLMUTTER_NODE.memory_capacity_gbyte == 256.0

    def test_memory_bandwidth(self):
        # "maximum bandwidth of 204.8 GBps".
        assert math.isclose(PERLMUTTER_NODE.memory_bandwidth_gbyte_s, 204.8)

    def test_hbm_bandwidth(self):
        assert math.isclose(PERLMUTTER_NODE.hbm_bandwidth_gbyte_s,
                            4 * 1555.2)

    def test_nvlink_aggregate(self):
        # 4 GPUs x 12 links x 25 GB/s.
        assert PERLMUTTER_NODE.gpu_interconnect_gbyte_s == 1200.0

    def test_nic_bandwidth(self):
        # 4 x 200 Gbps = 100 GB/s.
        assert PERLMUTTER_NODE.nic_bandwidth_gbyte_s == 100.0

    def test_chip_counts(self):
        counts = PERLMUTTER_NODE.chip_counts()
        assert counts[ChipType.CPU] == 1
        assert counts[ChipType.GPU] == 4
        assert counts[ChipType.DDR4] == 8
        assert sum(counts.values()) == 21

    def test_node_power(self):
        # 250 (CPU) + 4x300 (GPU) + 8x12 (DDR4) + 4x25 (NIC) + 4x25 (HBM).
        assert PERLMUTTER_NODE.power_w() == pytest.approx(
            250 + 1200 + 96 + 100 + 100)


class TestValidation:
    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            NodeConfig(gpus=-1)

    def test_custom_node(self):
        node = NodeConfig(gpus=8, hbm_stacks=8)
        assert node.hbm_bandwidth_gbyte_s == pytest.approx(8 * 1555.2)
