"""Reconfigurable fabric and centralized scheduler (case B)."""

import numpy as np
import pytest

from repro.network.reconfig import (
    ReconfigurableFabric,
    SwitchConfiguration,
    reconfiguration_overhead_ok,
    schedule_demand,
)


class TestSwitchConfiguration:
    def test_empty_valid(self):
        cfg = SwitchConfiguration(radix=8, wavelengths_per_port=4)
        assert cfg.assignment.sum() == 0

    def test_over_commit_input_rejected(self):
        a = np.zeros((4, 4), dtype=np.int64)
        a[0, :] = 3  # 9 wavelengths from port 0, budget 4
        with pytest.raises(ValueError):
            SwitchConfiguration(4, 4, a)

    def test_over_commit_output_rejected(self):
        a = np.zeros((4, 4), dtype=np.int64)
        a[:, 1] = 2  # 8 wavelengths into port 1, budget 4
        with pytest.raises(ValueError):
            SwitchConfiguration(4, 4, a)

    def test_pair_gbps(self):
        a = np.zeros((4, 4), dtype=np.int64)
        a[0, 2] = 3
        cfg = SwitchConfiguration(4, 4, a)
        assert cfg.pair_gbps(0, 2) == 75.0

    def test_ports_changed(self):
        a = np.zeros((4, 4), dtype=np.int64)
        a[0, 1] = 1
        b = a.copy()
        b[0, 1] = 2
        b[2, 3] = 1
        first = SwitchConfiguration(4, 4, a)
        second = SwitchConfiguration(4, 4, b)
        assert first.ports_changed(second) == 2

    def test_negative_rejected(self):
        a = np.zeros((4, 4), dtype=np.int64)
        a[0, 1] = -1
        with pytest.raises(ValueError):
            SwitchConfiguration(4, 4, a)


class TestScheduler:
    def test_respects_budgets(self):
        rng = np.random.default_rng(0)
        demand = rng.random((16, 16)) * 100
        assignment = schedule_demand(demand, wavelengths_per_port=8)
        assert (assignment.sum(axis=1) <= 8).all()
        assert (assignment.sum(axis=0) <= 8).all()
        assert (np.diag(assignment) == 0).all()

    def test_proportional_to_demand(self):
        demand = np.zeros((3, 3))
        demand[0, 1] = 75.0
        demand[0, 2] = 25.0
        assignment = schedule_demand(demand, wavelengths_per_port=8)
        assert assignment[0, 1] == 6
        assert assignment[0, 2] == 2

    def test_single_destination_gets_all(self):
        demand = np.zeros((4, 4))
        demand[2, 0] = 10.0
        assignment = schedule_demand(demand, wavelengths_per_port=8)
        assert assignment[2, 0] == 8

    def test_zero_demand_uniform_fallback(self):
        assignment = schedule_demand(np.zeros((5, 5)),
                                     wavelengths_per_port=4)
        # Every source still reaches `wavelengths_per_port` peers.
        assert (assignment.sum(axis=1) == 4).all()

    def test_output_contention_resolved(self):
        # Everyone wants port 0; output budget caps total inflow.
        n, w = 6, 4
        demand = np.zeros((n, n))
        demand[:, 0] = 100.0
        demand[0, 0] = 0.0
        assignment = schedule_demand(demand, wavelengths_per_port=w)
        assert assignment[:, 0].sum() <= w

    def test_rejects_bad_demand(self):
        with pytest.raises(ValueError):
            schedule_demand(np.ones((2, 3)), 4)
        with pytest.raises(ValueError):
            schedule_demand(-np.ones((3, 3)), 4)


class TestFabric:
    def test_reconfigure_and_serve(self):
        fabric = ReconfigurableFabric(n_switches=2, radix=8,
                                      wavelengths_per_port=8)
        demand = np.zeros((8, 8))
        demand[0, 1] = 200.0
        demand[2, 3] = 100.0
        fabric.reconfigure(demand)
        assert fabric.reconfigurations == 1
        assert fabric.pair_gbps(0, 1) > fabric.pair_gbps(0, 2)
        assert fabric.served_fraction(demand) > 0.5

    def test_served_fraction_bounds(self):
        fabric = ReconfigurableFabric(n_switches=1, radix=4,
                                      wavelengths_per_port=4)
        demand = np.zeros((4, 4))
        demand[0, 1] = 1.0
        fabric.reconfigure(demand)
        frac = fabric.served_fraction(demand)
        assert 0.0 <= frac <= 1.0

    def test_zero_demand_served(self):
        fabric = ReconfigurableFabric(n_switches=1, radix=4,
                                      wavelengths_per_port=4)
        assert fabric.served_fraction(np.zeros((4, 4))) == 1.0

    def test_availability_tracks_reconfig_time(self):
        fabric = ReconfigurableFabric(n_switches=1, radix=4,
                                      wavelengths_per_port=4,
                                      reconfig_time_s=1e-3,
                                      scheduler_latency_s=1e-3)
        demand = np.zeros((4, 4))
        demand[0, 1] = 1.0
        for _ in range(10):
            fabric.reconfigure(demand)
        # 10 x 2 ms of disturbance in a 10 s window -> 99.8% available.
        assert fabric.availability(10.0) == pytest.approx(0.998)

    def test_unchanged_demand_disturbs_no_ports_after_first(self):
        fabric = ReconfigurableFabric(n_switches=1, radix=8,
                                      wavelengths_per_port=8)
        demand = np.zeros((8, 8))
        demand[0, 1] = 5.0
        fabric.reconfigure(demand)
        disturbed_first = fabric.ports_disturbed
        fabric.reconfigure(demand)
        assert fabric.ports_disturbed == disturbed_first

    def test_validation(self):
        with pytest.raises(ValueError):
            ReconfigurableFabric(n_switches=0)
        with pytest.raises(ValueError):
            ReconfigurableFabric(reconfig_time_s=-1.0)
        fabric = ReconfigurableFabric(n_switches=1, radix=4,
                                      wavelengths_per_port=4)
        with pytest.raises(ValueError):
            fabric.availability(0.0)


class TestOverheadFeasibility:
    def test_paper_argument(self):
        # Jobs every few seconds, millisecond switches: fine.
        assert reconfiguration_overhead_ok(job_event_rate_hz=1.0,
                                           reconfig_time_s=1e-3)

    def test_fast_churn_with_slow_switch_fails(self):
        # Packet-rate reconfiguration with a ms MEMS switch: not fine.
        assert not reconfiguration_overhead_ok(job_event_rate_hz=1e4,
                                               reconfig_time_s=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            reconfiguration_overhead_ok(-1.0, 1e-3)
