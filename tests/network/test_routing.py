"""Indirect (Valiant) routing (paper §IV)."""

import pytest

from repro.network.routing import IndirectRouter, RouteKind
from repro.network.state import PiggybackState
from repro.network.wavelength import WavelengthAllocator


def make_router(n_nodes=6, planes=2, flows_per_wavelength=1,
                update_period=None, seed=0):
    alloc = WavelengthAllocator(n_nodes=n_nodes, planes=planes,
                                flows_per_wavelength=flows_per_wavelength)
    state = None
    if update_period is not None:
        state = PiggybackState(alloc, update_period=update_period,
                               jitter=False)
    return IndirectRouter(alloc, state=state, rng_seed=seed), alloc, state


class TestDirectFirst:
    def test_direct_when_available(self):
        router, _, _ = make_router()
        decision = router.route_flow(0, 1)
        assert decision.kind is RouteKind.DIRECT
        assert decision.path == (0, 1)
        assert decision.hops == 1

    def test_direct_until_exhausted(self):
        router, alloc, _ = make_router(planes=2)
        router.route_flow(0, 1)
        router.route_flow(0, 1)
        # Third flow cannot go direct (2 planes x 1 slot used).
        decision = router.route_flow(0, 1)
        assert decision.kind is RouteKind.INDIRECT
        assert len(decision.path) == 3

    def test_self_flow_rejected(self):
        router, _, _ = make_router()
        with pytest.raises(ValueError):
            router.route_flow(2, 2)


class TestIndirect:
    def test_indirect_uses_free_intermediate(self):
        router, alloc, _ = make_router(n_nodes=4, planes=1)
        alloc.allocate(0, 1)  # direct path busy
        decision = router.route_flow(0, 1)
        assert decision.kind is RouteKind.INDIRECT
        src, mid, dst = decision.path
        assert (src, dst) == (0, 1)
        assert mid in (2, 3)

    def test_indirect_reserves_both_hops(self):
        router, alloc, _ = make_router(n_nodes=4, planes=1)
        alloc.allocate(0, 1)
        decision = router.route_flow(0, 1)
        mid = decision.path[1]
        assert alloc.used_slots(0, mid) == 1
        assert alloc.used_slots(mid, 1) == 1

    def test_release_frees_everything(self):
        router, alloc, _ = make_router(n_nodes=4, planes=1)
        alloc.allocate(0, 1)
        decision = router.route_flow(0, 1)
        router.release(decision)
        mid = decision.path[1]
        assert alloc.used_slots(0, mid) == 0
        assert alloc.used_slots(mid, 1) == 0

    def test_blocked_when_saturated(self):
        router, alloc, _ = make_router(n_nodes=3, planes=1)
        # Saturate every wavelength out of 0 and into 1.
        alloc.allocate(0, 1)
        alloc.allocate(0, 2)
        decision = router.route_flow(0, 1)
        assert decision.kind is RouteKind.BLOCKED
        assert decision.hops == 0

    def test_candidates_respect_both_hops(self):
        router, alloc, _ = make_router(n_nodes=4, planes=1)
        alloc.allocate(0, 2)        # first hop busy to 2
        alloc.allocate(3, 1)        # second hop busy from 3
        candidates = router.candidate_intermediates(0, 1)
        assert list(candidates) == []


class TestStaleFallback:
    def test_stale_state_triggers_double_indirect(self):
        router, alloc, state = make_router(
            n_nodes=5, planes=1, update_period=1000)
        # Freeze views fresh, then occupy 0->1 and all mid->1 links so
        # every intermediate's onward hop is secretly busy.
        alloc.allocate(0, 1)
        for mid in (2, 3, 4):
            alloc.allocate(mid, 1)
        decision = router.route_flow(0, 1)
        # Stale views still claim mid->1 free; the intermediate falls
        # back to a second intermediate, or blocks if none exists.
        assert decision.kind in (RouteKind.DOUBLE_INDIRECT,
                                 RouteKind.BLOCKED)
        if decision.kind is RouteKind.DOUBLE_INDIRECT:
            assert decision.used_stale_fallback
            assert router.stale_mispredictions >= 1

    def test_fresh_state_avoids_mispredictions(self):
        router, alloc, state = make_router(
            n_nodes=5, planes=1, update_period=1)
        alloc.allocate(0, 1)
        state.broadcast_all()
        router.route_flow(0, 1)
        assert router.stale_mispredictions == 0

    def test_stats_accumulate(self):
        router, alloc, _ = make_router()
        router.route_flow(0, 1)
        router.route_flow(1, 2)
        assert router.stats[RouteKind.DIRECT] == 2


class TestConservation:
    def test_no_leaked_reservations_after_release(self):
        router, alloc, _ = make_router(n_nodes=6, planes=2)
        decisions = []
        for dst in range(1, 6):
            decisions.append(router.route_flow(0, dst))
        for d in decisions:
            if d.kind is not RouteKind.BLOCKED:
                router.release(d)
        assert alloc.utilization() == 0.0


class TestRouteTokensTwin:
    """route_tokens is the object-free twin of route_flow (SIM006)."""

    KIND_CODE = {RouteKind.DIRECT: 0, RouteKind.INDIRECT: 1,
                 RouteKind.DOUBLE_INDIRECT: 2, RouteKind.BLOCKED: 3}

    def drive(self, route):
        """Push one router through direct, indirect and blocked
        regimes, returning (outcomes, router, allocator)."""
        router, alloc, _ = make_router(n_nodes=5, planes=1, seed=7)
        outcomes = []
        for src, dst in [(0, 1), (0, 1), (0, 1), (0, 1), (0, 1),
                         (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]:
            outcomes.append(route(router, src, dst))
        return outcomes, router, alloc

    def test_bit_identical_outcomes(self):
        scalar, r_a, alloc_a = self.drive(
            lambda r, s, d: r.route_flow(s, d))
        batch, r_b, alloc_b = self.drive(
            lambda r, s, d: r.route_tokens(s, d))
        for decision, (code, hops, reservations) in zip(scalar, batch):
            assert self.KIND_CODE[decision.kind] == code
            assert decision.hops == hops
            assert decision.reservations == reservations

    def test_identical_rng_stats_and_occupancy(self):
        _, r_a, alloc_a = self.drive(lambda r, s, d: r.route_flow(s, d))
        _, r_b, alloc_b = self.drive(
            lambda r, s, d: r.route_tokens(s, d))
        # Same RNG stream consumed, same stats, same mispredictions.
        assert r_a.snapshot() == r_b.snapshot()
        # Same allocator mutations, plane for plane.
        for node in range(5):
            assert (alloc_a.free_slots_from(node)
                    == alloc_b.free_slots_from(node)).all()
            assert (alloc_a.free_slots_to(node)
                    == alloc_b.free_slots_to(node)).all()

    def test_twin_stays_identical_with_stale_state(self):
        def drive_stale(route):
            router, alloc, state = make_router(
                n_nodes=5, planes=1, update_period=1000, seed=3)
            alloc.allocate(0, 1)
            for mid in (2, 3, 4):
                alloc.allocate(mid, 1)
            return route(router, 0, 1), router

        decision, r_a = drive_stale(lambda r, s, d: r.route_flow(s, d))
        tokens, r_b = drive_stale(lambda r, s, d: r.route_tokens(s, d))
        assert self.KIND_CODE[decision.kind] == tokens[0]
        assert decision.reservations == tokens[2]
        assert r_a.snapshot() == r_b.snapshot()
