"""Traffic generators."""

import numpy as np
import pytest

from repro.network.traffic import (
    Flow,
    cpu_memory_traffic,
    gpu_allreduce_traffic,
    gpu_hbm_traffic,
    hotspot_traffic,
    uniform_traffic,
)


class TestFlow:
    def test_slots_rounding(self):
        flow = Flow(0, 1, gbps=26.0)
        assert flow.slots(25.0) == 2
        assert flow.slots(3.125) == 9

    def test_minimum_one_slot(self):
        assert Flow(0, 1, gbps=0.01).slots(25.0) == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Flow(1, 1, gbps=1.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Flow(0, 1, gbps=0.0)


class TestUniform:
    def test_count_and_endpoints(self):
        flows = uniform_traffic(10, 50, rng=np.random.default_rng(0))
        assert len(flows) == 50
        for f in flows:
            assert 0 <= f.src < 10
            assert 0 <= f.dst < 10
            assert f.src != f.dst

    def test_seeded_reproducible(self):
        a = uniform_traffic(10, 20, rng=np.random.default_rng(5))
        b = uniform_traffic(10, 20, rng=np.random.default_rng(5))
        assert [(f.src, f.dst) for f in a] == [(f.src, f.dst) for f in b]

    def test_int_seed_matches_generator(self):
        # Scenario/sweep configs carry plain ints so they stay
        # JSON-serializable for cache hashing.
        a = uniform_traffic(10, 20, rng=5)
        b = uniform_traffic(10, 20, rng=np.random.default_rng(5))
        assert [(f.src, f.dst) for f in a] == [(f.src, f.dst) for f in b]

    def test_none_seed_keeps_historical_default(self):
        a = uniform_traffic(10, 20)
        b = uniform_traffic(10, 20, rng=0)
        assert [(f.src, f.dst) for f in a] == [(f.src, f.dst) for f in b]


class TestHotspot:
    def test_all_target_hotspot(self):
        flows = hotspot_traffic(8, hotspot=3, n_flows=30)
        assert all(f.dst == 3 for f in flows)
        assert all(f.src != 3 for f in flows)

    def test_bad_hotspot_rejected(self):
        with pytest.raises(ValueError):
            hotspot_traffic(8, hotspot=8, n_flows=1)

    def test_int_seed_matches_generator(self):
        a = hotspot_traffic(8, hotspot=3, n_flows=12, rng=7)
        b = hotspot_traffic(8, hotspot=3, n_flows=12,
                            rng=np.random.default_rng(7))
        assert [f.src for f in a] == [f.src for f in b]


class TestCPUMemory:
    def test_demand_profile_quantiles(self):
        cpus = list(range(200))
        mems = list(range(200, 240))
        flows = cpu_memory_traffic(cpus, mems,
                                   rng=np.random.default_rng(2))
        demands = np.array([f.gbps for f in flows])
        # §VI-A: 25 Gbps covers ~97%, 125 Gbps ~99.5% of the time.
        assert np.mean(demands <= 25.0) > 0.90
        assert np.mean(demands <= 125.0) > 0.97

    def test_explicit_demands(self):
        flows = cpu_memory_traffic([0, 1], [2],
                                   demand_gbps=np.array([5.0, 7.0]))
        assert flows[0].gbps == 5.0
        assert flows[1].gbps == 7.0

    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            cpu_memory_traffic([], [1])


class TestGPUPatterns:
    def test_allreduce_ring(self):
        flows = gpu_allreduce_traffic([0, 1, 2, 3], gbps_per_pair=900.0)
        assert len(flows) == 4
        assert (flows[0].src, flows[0].dst) == (0, 1)
        assert (flows[-1].src, flows[-1].dst) == (3, 0)

    def test_allreduce_needs_two(self):
        with pytest.raises(ValueError):
            gpu_allreduce_traffic([0], gbps_per_pair=1.0)

    def test_hbm_streaming_bandwidth(self):
        flows = gpu_hbm_traffic([0, 1], [2, 3])
        # 1555.2 GB/s = 12441.6 Gbps per GPU.
        assert flows[0].gbps == pytest.approx(12441.6)
        assert flows[0].kind == "gpu-hbm"
