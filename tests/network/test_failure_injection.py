"""Failure injection: AWGR plane loss and graceful degradation."""

import pytest

from repro.network.routing import IndirectRouter, RouteKind
from repro.network.simulator import AWGRNetworkSimulator
from repro.network.traffic import Flow
from repro.network.wavelength import WavelengthAllocator


@pytest.fixture
def alloc():
    return WavelengthAllocator(n_nodes=6, planes=5, flows_per_wavelength=8)


class TestPlaneFailure:
    def test_capacity_shrinks(self, alloc):
        assert alloc.free_slots(0, 1) == 40
        alloc.fail_plane(2)
        assert alloc.healthy_planes == 4
        assert alloc.free_slots(0, 1) == 32
        assert alloc.free_wavelengths(0, 1) == 4

    def test_riding_flows_reported_dropped(self, alloc):
        planes = alloc.allocate(0, 1, slots=5)  # one slot per plane
        dropped = alloc.fail_plane(planes[0])
        assert (0, 1, 1) in dropped
        # The dropped slot is gone from occupancy.
        assert alloc.used_slots(0, 1) == 4

    def test_allocation_avoids_failed_plane(self, alloc):
        alloc.fail_plane(0)
        planes = alloc.allocate(0, 1, slots=8)
        assert 0 not in planes

    def test_repair_restores_capacity(self, alloc):
        alloc.fail_plane(1)
        alloc.repair_plane(1)
        assert alloc.healthy_planes == 5
        assert alloc.free_slots(0, 1) == 40

    def test_double_fail_rejected(self, alloc):
        alloc.fail_plane(1)
        with pytest.raises(RuntimeError):
            alloc.fail_plane(1)

    def test_repair_unfailed_rejected(self, alloc):
        with pytest.raises(RuntimeError):
            alloc.repair_plane(3)

    def test_cannot_fail_everything(self):
        alloc = WavelengthAllocator(n_nodes=4, planes=2,
                                    flows_per_wavelength=1)
        alloc.fail_plane(0)
        with pytest.raises(RuntimeError):
            alloc.fail_plane(1)

    def test_out_of_range_rejected(self, alloc):
        with pytest.raises(ValueError):
            alloc.fail_plane(9)


class TestRoutingUnderFailure:
    def test_router_survives_plane_loss(self):
        alloc = WavelengthAllocator(n_nodes=6, planes=5,
                                    flows_per_wavelength=1)
        router = IndirectRouter(alloc)
        alloc.fail_plane(0)
        alloc.fail_plane(1)
        # Three healthy planes remain: three direct flows then indirect.
        kinds = [router.route_flow(0, 1).kind for _ in range(4)]
        assert kinds[:3] == [RouteKind.DIRECT] * 3
        assert kinds[3] is RouteKind.INDIRECT

    def test_simulator_degrades_gracefully(self):
        sim = AWGRNetworkSimulator(n_nodes=8, planes=5,
                                   flows_per_wavelength=1, rng_seed=1)
        sim.allocator.fail_plane(4)
        batch = [Flow(1, 0, gbps=25.0) for _ in range(5)]
        report = sim.run([batch], duration_slots=2)
        # 4 direct wavelengths remain; the fifth flow goes indirect.
        assert report.carried == 5
        assert report.carried_direct == 4
        assert report.carried_indirect + report.carried_double == 1

    def test_utilization_accounts_for_failures(self):
        alloc = WavelengthAllocator(n_nodes=4, planes=4,
                                    flows_per_wavelength=1)
        alloc.fail_plane(0)
        alloc.allocate(0, 1, slots=3)
        # 3 of (4 pairs... 12 ordered pairs x 3 healthy planes) slots.
        assert alloc.utilization() == pytest.approx(3 / (12 * 3))
