"""Flow-level AWGR simulator (paper §IV / §VI-A)."""

import pytest

from repro.network.routing import RouteKind
from repro.network.simulator import AWGRNetworkSimulator
from repro.network.traffic import Flow, hotspot_traffic, uniform_traffic


class TestAdmission:
    def test_single_flow_direct(self):
        sim = AWGRNetworkSimulator(n_nodes=8)
        decision = sim.offer(Flow(0, 1, gbps=25.0))
        assert decision.kind is RouteKind.DIRECT

    def test_slot_granularity(self):
        sim = AWGRNetworkSimulator(n_nodes=8)
        assert sim.slot_gbps == pytest.approx(25.0 / 8)

    def test_flow_retires_after_duration(self):
        sim = AWGRNetworkSimulator(n_nodes=4, planes=1,
                                   flows_per_wavelength=1)
        sim.offer(Flow(0, 1, gbps=25.0), duration_slots=1)
        assert sim.allocator.used_slots(0, 1) == 1
        sim.step()
        assert sim.allocator.used_slots(0, 1) == 0

    def test_long_flow_persists(self):
        sim = AWGRNetworkSimulator(n_nodes=4, planes=1,
                                   flows_per_wavelength=1)
        sim.offer(Flow(0, 1, gbps=25.0), duration_slots=3)
        sim.step()
        assert sim.allocator.used_slots(0, 1) == 1

    def test_drain_releases_all(self):
        sim = AWGRNetworkSimulator(n_nodes=6)
        for dst in range(1, 6):
            sim.offer(Flow(0, dst, gbps=25.0), duration_slots=10)
        sim.drain()
        assert sim.allocator.utilization() == 0.0


class TestMidRunPlaneFailure:
    def test_fail_plane_drops_riding_flows_only(self):
        sim = AWGRNetworkSimulator(n_nodes=8, planes=2,
                                   flows_per_wavelength=1)
        # Two same-pair flows land on planes 0 and 1 (least-loaded
        # fill); a third pair rides its own wavelengths.
        sim.offer(Flow(1, 0, gbps=25.0), duration_slots=10)
        sim.offer(Flow(1, 0, gbps=25.0), duration_slots=10)
        sim.offer(Flow(2, 3, gbps=25.0), duration_slots=10)
        dropped = sim.fail_plane(0)
        assert dropped == 2  # one of pair (1,0) and one of (2,3)
        assert sim.allocator.healthy_planes == 1

    def test_fail_plane_releases_survivor_reservations(self):
        sim = AWGRNetworkSimulator(n_nodes=8, planes=2,
                                   flows_per_wavelength=1)
        # Overload one pair so some flows route indirectly and hold
        # reservations on two hops across both planes.
        for _ in range(6):
            sim.offer(Flow(1, 0, gbps=25.0), duration_slots=10)
        sim.fail_plane(0)
        sim.repair_plane(0)
        sim.drain()
        assert sim.allocator.utilization() == 0.0

    def test_repair_restores_capacity(self):
        sim = AWGRNetworkSimulator(n_nodes=4, planes=3,
                                   flows_per_wavelength=1)
        sim.fail_plane(1)
        assert sim.allocator.healthy_planes == 2
        sim.repair_plane(1)
        assert sim.allocator.healthy_planes == 3
        assert sim.allocator.free_slots(0, 1) == 3

    def test_drain_frees_capacity_for_subsequent_offers(self):
        """After drain(), a previously saturated pair admits direct
        again — the freed slots are really back in the allocator."""
        sim = AWGRNetworkSimulator(n_nodes=4, planes=1,
                                   flows_per_wavelength=1)
        first = sim.offer(Flow(0, 1, gbps=25.0), duration_slots=100)
        assert first.kind is RouteKind.DIRECT
        assert sim.allocator.free_slots(0, 1) == 0
        # The direct wavelength is taken: the next offer must detour.
        second = sim.offer(Flow(0, 1, gbps=25.0), duration_slots=100)
        assert second.kind is not RouteKind.DIRECT
        sim.drain()
        assert sim.allocator.free_slots(0, 1) == 1
        again = sim.offer(Flow(0, 1, gbps=25.0), duration_slots=1)
        assert again.kind is RouteKind.DIRECT

    def test_drain_is_idempotent(self):
        sim = AWGRNetworkSimulator(n_nodes=4)
        sim.offer(Flow(0, 1, gbps=25.0), duration_slots=5)
        sim.drain()
        sim.drain()
        assert sim.allocator.utilization() == 0.0


class TestRunReports:
    def test_light_uniform_all_direct(self):
        sim = AWGRNetworkSimulator(n_nodes=16, rng_seed=1)
        batches = [uniform_traffic(16, 8, gbps=3.0) for _ in range(5)]
        report = sim.run(batches, duration_slots=1)
        assert report.offered == 40
        assert report.acceptance_ratio == 1.0
        assert report.carried_direct == 40
        assert report.indirect_fraction == 0.0

    def test_hotspot_triggers_indirection(self):
        sim = AWGRNetworkSimulator(n_nodes=16, planes=2,
                                   flows_per_wavelength=1, rng_seed=2)
        # One source demands five full wavelengths toward node 0 but
        # owns only two direct ones, so indirection must appear.
        batches = [[Flow(1, 0, gbps=25.0) for _ in range(5)]]
        report = sim.run(batches, duration_slots=4)
        assert report.carried_direct == 2
        assert report.carried_indirect + report.carried_double == 3

    def test_overload_blocks(self):
        sim = AWGRNetworkSimulator(n_nodes=4, planes=1,
                                   flows_per_wavelength=1, rng_seed=3)
        batches = [hotspot_traffic(4, 0, 12, gbps=25.0)]
        report = sim.run(batches, duration_slots=10)
        assert report.blocked > 0
        assert report.acceptance_ratio < 1.0

    def test_throughput_ratio_accounts_bandwidth(self):
        sim = AWGRNetworkSimulator(n_nodes=8, rng_seed=4)
        batches = [uniform_traffic(8, 4, gbps=10.0)]
        report = sim.run(batches)
        assert report.throughput_ratio == pytest.approx(1.0)
        assert report.offered_gbps == pytest.approx(40.0)

    def test_hop_histogram_populated(self):
        sim = AWGRNetworkSimulator(n_nodes=8, rng_seed=5)
        report = sim.run([uniform_traffic(8, 6, gbps=5.0)])
        assert sum(report.hop_histogram.values()) == 6
        assert report.hop_histogram.get(1, 0) > 0

    def test_as_dict_keys(self):
        sim = AWGRNetworkSimulator(n_nodes=6)
        report = sim.run([uniform_traffic(6, 3, gbps=2.0)])
        d = report.as_dict()
        assert {"offered", "carried", "blocked", "acceptance_ratio",
                "indirect_fraction"} <= set(d)

    def test_zero_offered_run_is_not_a_perfect_fabric(self):
        # Regression: an idle run used to report acceptance_ratio and
        # throughput_ratio of 1.0, reading as "perfect fabric" in
        # benchmark tables (same bug the scenario-layer ratios had).
        sim = AWGRNetworkSimulator(n_nodes=6)
        report = sim.run([[], []])
        assert report.offered == 0
        assert report.acceptance_ratio == 0.0
        assert report.throughput_ratio == 0.0


class TestStaleness:
    def test_stale_state_still_carries_traffic(self):
        fresh = AWGRNetworkSimulator(n_nodes=12, planes=2,
                                     flows_per_wavelength=1,
                                     state_update_period=1, rng_seed=6)
        stale = AWGRNetworkSimulator(n_nodes=12, planes=2,
                                     flows_per_wavelength=1,
                                     state_update_period=50, rng_seed=6)
        batches = [hotspot_traffic(12, 0, 6, gbps=25.0) for _ in range(3)]
        rf = fresh.run(batches, duration_slots=2)
        rs = stale.run([list(b) for b in batches], duration_slots=2)
        # The two-stage fallback keeps acceptance close to fresh-state.
        assert rs.acceptance_ratio >= rf.acceptance_ratio - 0.25
