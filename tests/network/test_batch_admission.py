"""Scalar-vs-batched admission equivalence (the PR 3 hot path).

The batched path (:meth:`AWGRNetworkSimulator.offer_batch`) must be an
*exact* replay of sequential per-flow admission: identical
:class:`SimulationReport` aggregates (bit-identical floats), identical
wavelength occupancy, identical router statistics and RNG consumption
— on uniform, hotspot, stale-state, and failure-injected workloads.
These are seeded property-style suites: each case loops over several
seeds rather than one hand-picked instance.
"""

import numpy as np
import pytest

from repro.network.routing import RouteKind
from repro.network.simulator import (
    BLOCKED,
    DIRECT,
    AWGRNetworkSimulator,
    sequential_sum,
)
from repro.network.traffic import Flow, hotspot_traffic, uniform_traffic


def make_pair(seed: int, **kwargs) -> tuple[AWGRNetworkSimulator,
                                            AWGRNetworkSimulator]:
    """Twin simulators: scalar reference and batched hot path."""
    scalar = AWGRNetworkSimulator(rng_seed=seed, batch_admission=False,
                                  **kwargs)
    batched = AWGRNetworkSimulator(rng_seed=seed, batch_admission=True,
                                   **kwargs)
    return scalar, batched


def assert_equivalent(scalar: AWGRNetworkSimulator,
                      batched: AWGRNetworkSimulator,
                      batches, duration_slots: int) -> None:
    """Run both paths and require bit-identical observable state."""
    report_scalar = scalar.run([list(b) for b in batches], duration_slots)
    report_batched = batched.run([list(b) for b in batches], duration_slots)
    assert report_scalar.as_dict() == report_batched.as_dict()
    assert report_scalar.hop_histogram == report_batched.hop_histogram
    assert report_scalar.offered_gbps == report_batched.offered_gbps
    assert report_scalar.carried_gbps == report_batched.carried_gbps
    assert np.array_equal(scalar.allocator._occupancy,
                          batched.allocator._occupancy)
    assert scalar.router.stats == batched.router.stats
    assert (scalar.router.stale_mispredictions
            == batched.router.stale_mispredictions)


class TestSeededEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_uniform_light_all_direct(self, seed):
        scalar, batched = make_pair(seed, n_nodes=20, planes=4,
                                    flows_per_wavelength=4)
        batches = [uniform_traffic(20, 30, gbps=5.0, rng=100 + seed)
                   for _ in range(5)]
        assert_equivalent(scalar, batched, batches, duration_slots=2)

    @pytest.mark.parametrize("seed", range(6))
    def test_uniform_heavy_with_indirection(self, seed):
        scalar, batched = make_pair(seed, n_nodes=16, planes=2,
                                    flows_per_wavelength=1)
        batches = [uniform_traffic(16, 40, gbps=25.0, rng=200 + seed)
                   for _ in range(6)]
        assert_equivalent(scalar, batched, batches, duration_slots=3)

    @pytest.mark.parametrize("seed", range(6))
    def test_hotspot_overload_blocks(self, seed):
        scalar, batched = make_pair(seed, n_nodes=12, planes=2,
                                    flows_per_wavelength=1)
        batches = [hotspot_traffic(12, 0, 30, gbps=25.0, rng=300 + seed)
                   for _ in range(4)]
        assert_equivalent(scalar, batched, batches, duration_slots=4)
        # The workload must actually exercise blocking.
        assert batched.router.stats[RouteKind.BLOCKED] > 0

    @pytest.mark.parametrize("seed", range(4))
    def test_stale_state_fallback(self, seed):
        kwargs = dict(n_nodes=12, planes=2, flows_per_wavelength=1,
                      state_update_period=25)
        scalar, batched = make_pair(seed, **kwargs)
        batches = [hotspot_traffic(12, 0, 8, gbps=25.0, rng=seed)
                   for _ in range(5)]
        assert_equivalent(scalar, batched, batches, duration_slots=3)
        # Staleness was actually exercised (fallback path + RNG draws).
        assert batched.router.stale_mispredictions > 0

    @pytest.mark.parametrize("seed", range(4))
    def test_multi_slot_flows(self, seed):
        """Flows wider than one sub-slot hit the argpartition fill."""
        scalar, batched = make_pair(seed, n_nodes=10, planes=3,
                                    flows_per_wavelength=8)
        batches = [uniform_traffic(10, 20, gbps=60.0, rng=400 + seed)
                   for _ in range(4)]
        assert_equivalent(scalar, batched, batches, duration_slots=2)

    def test_mixed_demand_same_pair_interleaving(self):
        """Same-pair flows straddling the direct budget split exactly
        like the sequential loop (prefix direct, rest indirect)."""
        scalar, batched = make_pair(0, n_nodes=8, planes=2,
                                    flows_per_wavelength=1)
        batch = [Flow(1, 0, gbps=25.0) for _ in range(5)]
        batch += [Flow(2, 3, gbps=25.0), Flow(1, 0, gbps=25.0)]
        assert_equivalent(scalar, batched, [batch], duration_slots=2)

    def test_indirect_reservation_steals_later_direct_capacity(self):
        """An indirect flow's intermediate-hop reservation must count
        against a later flow's direct check, exactly as sequentially.

        On a 3-node, 1-plane fabric: two (0, 1) flows exhaust the
        direct wavelength and force one through intermediate 2, which
        reserves (0, 2) and (2, 1). The next (2, 1) flow then cannot
        go direct even though nothing was offered on that pair yet.
        """
        scalar, batched = make_pair(0, n_nodes=3, planes=1,
                                    flows_per_wavelength=1)
        batch = [Flow(0, 1, gbps=25.0), Flow(0, 1, gbps=25.0),
                 Flow(2, 1, gbps=25.0)]
        assert_equivalent(scalar, batched, [batch], duration_slots=2)
        # Sanity: the third flow really was displaced.
        assert batched.router.stats[RouteKind.DIRECT] == 1
        assert batched.router.stats[RouteKind.BLOCKED] >= 1


class TestFailureInjectedEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_mid_run_failure_and_repair(self, seed):
        kwargs = dict(n_nodes=14, planes=4, flows_per_wavelength=2)
        scalar, batched = make_pair(seed, **kwargs)
        rng_a = np.random.default_rng(500 + seed)
        rng_b = np.random.default_rng(500 + seed)

        def drive(sim, rng):
            dropped = []
            reports = []
            for phase in range(3):
                batches = [uniform_traffic(14, 25, gbps=25.0, rng=rng)
                           for _ in range(3)]
                reports.append(sim.run(batches, duration_slots=4))
                if phase == 0:
                    dropped.append(sim.fail_plane(1))
                elif phase == 1:
                    dropped.append(sim.fail_plane(3))
                    sim.repair_plane(1)
                else:
                    sim.repair_plane(3)
            return dropped, reports

        dropped_scalar, reports_scalar = drive(scalar, rng_a)
        dropped_batched, reports_batched = drive(batched, rng_b)
        assert dropped_scalar == dropped_batched
        for ra, rb in zip(reports_scalar, reports_batched):
            assert ra.as_dict() == rb.as_dict()
        assert np.array_equal(scalar.allocator._occupancy,
                              batched.allocator._occupancy)

    @pytest.mark.parametrize("seed", range(4))
    def test_occupancy_never_negative_across_fail_repair_cycles(self, seed):
        sim = AWGRNetworkSimulator(n_nodes=12, planes=3,
                                   flows_per_wavelength=2,
                                   rng_seed=seed, track_state=False)
        rng = np.random.default_rng(seed)
        occupancy = sim.allocator._occupancy
        for cycle in range(4):
            sim.offer_batch(uniform_traffic(12, 40, gbps=25.0, rng=rng),
                            duration_slots=3)
            assert (occupancy >= 0).all()
            plane = cycle % 3
            sim.fail_plane(plane)
            assert (occupancy >= 0).all()
            sim.offer_batch(uniform_traffic(12, 20, gbps=25.0, rng=rng),
                            duration_slots=2)
            sim.step()
            assert (occupancy >= 0).all()
            sim.repair_plane(plane)
            sim.step()
            sim.step()
            assert (occupancy >= 0).all()
        sim.drain()
        assert (occupancy == 0).all()
        assert sim.allocator.utilization() == 0.0


class TestOfferBatchAPI:
    def test_empty_batch(self):
        sim = AWGRNetworkSimulator(n_nodes=6)
        decisions = sim.offer_batch([], duration_slots=2)
        assert len(decisions.kinds) == 0
        assert len(decisions.gbps) == 0

    def test_single_flow_matches_offer(self):
        a = AWGRNetworkSimulator(n_nodes=6, batch_admission=False)
        b = AWGRNetworkSimulator(n_nodes=6)
        decision = a.offer(Flow(0, 1, gbps=25.0), duration_slots=2)
        decisions = b.offer_batch([Flow(0, 1, gbps=25.0)],
                                  duration_slots=2)
        assert decision.kind is RouteKind.DIRECT
        assert decisions.kinds[0] == DIRECT
        assert decisions.hops[0] == 1
        assert np.array_equal(a.allocator._occupancy,
                              b.allocator._occupancy)

    def test_out_of_range_endpoints_rejected(self):
        """Numpy negative-index wraparound must not admit bad flows."""
        sim = AWGRNetworkSimulator(n_nodes=6)
        bad = Flow.__new__(Flow)  # bypass Flow validation on purpose
        object.__setattr__(bad, "src", -1)
        object.__setattr__(bad, "dst", 2)
        object.__setattr__(bad, "gbps", 5.0)
        object.__setattr__(bad, "kind", "generic")
        with pytest.raises(ValueError, match="out of range"):
            sim.offer_batch([bad])
        assert (sim.allocator._occupancy == 0).all()

    def test_blocked_flow_reported(self):
        sim = AWGRNetworkSimulator(n_nodes=2, planes=1,
                                   flows_per_wavelength=1)
        decisions = sim.offer_batch(
            [Flow(0, 1, gbps=25.0), Flow(0, 1, gbps=25.0)],
            duration_slots=2)
        assert decisions.kinds.tolist() == [DIRECT, BLOCKED]
        assert decisions.hops.tolist() == [1, 0]
        assert decisions.carried_mask.tolist() == [True, False]

    def test_batched_flows_retire_on_schedule(self):
        sim = AWGRNetworkSimulator(n_nodes=6, planes=1,
                                   flows_per_wavelength=1)
        sim.offer_batch([Flow(0, 1, gbps=25.0)], duration_slots=2)
        assert sim.allocator.used_slots(0, 1) == 1
        sim.step()
        assert sim.allocator.used_slots(0, 1) == 1
        sim.step()
        assert sim.allocator.used_slots(0, 1) == 0

    def test_sequential_sum_matches_python_accumulation(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(2.0, 1.5, size=257)
        total = 0.1
        for value in values:
            total += float(value)
        assert sequential_sum(0.1, values) == total
