"""FlowBatch: structure-of-arrays flows, bit-identical to the loops.

Two contracts under test:

* Every ``*_batch`` generator consumes the RNG in exactly the order of
  the historical per-flow loop — same flows AND same final generator
  state, so code drawing from the generator afterwards is unperturbed.
  The oracles below are frozen copies of the pre-vectorization loops.
* The batch is a lossless view: ``to_flows``/``from_flows`` round-trip,
  ``slots()`` equals per-flow ``Flow.slots`` (including fractional
  slot granularity — the hoisted-bugfix regression), and
  ``to_dict``/``from_dict`` are exact inverses.
"""

import numpy as np
import pytest

from repro.network.traffic import (
    Flow,
    FlowBatch,
    cpu_memory_batch,
    cpu_memory_traffic,
    gpu_allreduce_batch,
    gpu_allreduce_traffic,
    gpu_hbm_batch,
    gpu_hbm_traffic,
    hotspot_batch,
    hotspot_traffic,
    uniform_batch,
    uniform_traffic,
)

# -- frozen pre-vectorization loops (the reference oracles) ------------------


def oracle_uniform(n_nodes, n_flows, gbps, rng):
    flows = []
    for _ in range(n_flows):
        src = int(rng.integers(n_nodes))
        dst = int(rng.integers(n_nodes - 1))
        if dst >= src:
            dst += 1
        flows.append(Flow(src, dst, gbps, kind="uniform"))
    return flows


def oracle_hotspot(n_nodes, hotspot, n_flows, gbps, rng):
    flows = []
    for _ in range(n_flows):
        src = int(rng.integers(n_nodes - 1))
        if src >= hotspot:
            src += 1
        flows.append(Flow(src, hotspot, gbps, kind="hotspot"))
    return flows


def oracle_cpu_memory(cpu_nodes, memory_nodes, rng):
    sigma = (np.log(125.0) - np.log(25.0)) / (2.576 - 1.881)
    mu = np.log(25.0) - 1.881 * sigma
    demand_gbps = rng.lognormal(mu, sigma, size=len(cpu_nodes))
    flows = []
    for i, cpu in enumerate(cpu_nodes):
        mem = memory_nodes[i % len(memory_nodes)]
        flows.append(Flow(cpu, mem, float(max(demand_gbps[i], 0.01)),
                          kind="cpu-mem"))
    return flows


def assert_same_flows(batch_flows, oracle_flows):
    assert len(batch_flows) == len(oracle_flows)
    for got, want in zip(batch_flows, oracle_flows):
        assert (got.src, got.dst, got.kind) == \
            (want.src, want.dst, want.kind)
        # bit-identical, not approx: the pinned scenario regressions
        # depend on the exact float stream.
        assert got.gbps == want.gbps


SEEDS = [0, 1, 7, 12345]


class TestGeneratorBitIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n_nodes,n_flows",
                             [(2, 40), (3, 17), (10, 0), (10, 1),
                              (64, 257), (350, 1400)])
    def test_uniform(self, seed, n_nodes, n_flows):
        r_batch = np.random.default_rng(seed)
        r_oracle = np.random.default_rng(seed)
        batch = uniform_batch(n_nodes, n_flows, 25.0, rng=r_batch)
        want = oracle_uniform(n_nodes, n_flows, 25.0, r_oracle)
        assert_same_flows(batch.to_flows(), want)
        assert r_batch.bit_generator.state == r_oracle.bit_generator.state

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n_nodes,hotspot,n_flows",
                             [(2, 0, 9), (2, 1, 9), (8, 3, 30),
                              (8, 0, 1), (8, 7, 0), (350, 12, 900)])
    def test_hotspot(self, seed, n_nodes, hotspot, n_flows):
        r_batch = np.random.default_rng(seed)
        r_oracle = np.random.default_rng(seed)
        batch = hotspot_batch(n_nodes, hotspot, n_flows, 25.0,
                              rng=r_batch)
        want = oracle_hotspot(n_nodes, hotspot, n_flows, 25.0,
                              r_oracle)
        assert_same_flows(batch.to_flows(), want)
        assert r_batch.bit_generator.state == r_oracle.bit_generator.state

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cpu_memory(self, seed):
        cpus = list(range(120))
        mems = list(range(120, 140))
        r_batch = np.random.default_rng(seed)
        r_oracle = np.random.default_rng(seed)
        batch = cpu_memory_batch(cpus, mems, rng=r_batch)
        want = oracle_cpu_memory(cpus, mems, r_oracle)
        assert_same_flows(batch.to_flows(), want)
        assert r_batch.bit_generator.state == r_oracle.bit_generator.state

    def test_list_forms_are_views_of_the_batch_forms(self):
        assert [f.to_dict() for f in uniform_traffic(16, 50, rng=3)] \
            == [f.to_dict()
                for f in uniform_batch(16, 50, rng=3).to_flows()]
        assert [f.to_dict()
                for f in hotspot_traffic(16, 2, 50, rng=3)] \
            == [f.to_dict()
                for f in hotspot_batch(16, 2, 50, rng=3).to_flows()]
        assert [f.to_dict()
                for f in cpu_memory_traffic([0, 1, 2], [3], rng=3)] \
            == [f.to_dict()
                for f in cpu_memory_batch([0, 1, 2], [3],
                                          rng=3).to_flows()]
        assert [f.to_dict()
                for f in gpu_allreduce_traffic([4, 5, 6], 900.0)] \
            == [f.to_dict()
                for f in gpu_allreduce_batch([4, 5, 6],
                                             900.0).to_flows()]
        assert [f.to_dict() for f in gpu_hbm_traffic([0, 1], [2, 3])] \
            == [f.to_dict()
                for f in gpu_hbm_batch([0, 1], [2, 3]).to_flows()]

    def test_draws_leave_rng_usable_in_place(self):
        # A generator threaded through a batch draw then a scalar draw
        # must see the same stream as threading it through two scalar
        # loops (buffered half-words included).
        r_a, r_b = (np.random.default_rng(9) for _ in range(2))
        uniform_batch(13, 31, rng=r_a)
        oracle_uniform(13, 31, 25.0, r_b)
        assert r_a.integers(1 << 40) == r_b.integers(1 << 40)


class TestSlotsHoisted:
    @pytest.mark.parametrize("gbps_per_slot",
                             [25.0, 3.125, 0.4, 7.77, 1.0])
    def test_batch_slots_match_scalar(self, gbps_per_slot):
        rng = np.random.default_rng(11)
        gbps = np.concatenate([
            rng.lognormal(1.0, 1.5, size=200),
            # exact multiples and near-boundary values: ceil must not
            # drift between the scalar and array code paths.
            np.array([gbps_per_slot, 2 * gbps_per_slot,
                      gbps_per_slot * 0.999999, 0.01]),
        ])
        batch = FlowBatch(src=np.zeros(len(gbps), dtype=np.int64),
                          dst=np.ones(len(gbps), dtype=np.int64),
                          gbps=gbps)
        got = batch.slots(gbps_per_slot)
        assert got.dtype == np.int64
        for i, f in enumerate(batch.to_flows()):
            assert int(got[i]) == f.slots(gbps_per_slot)


class TestFlowBatch:
    def test_round_trip_through_flows(self):
        flows = (uniform_traffic(10, 20, rng=1)
                 + gpu_hbm_traffic([0, 1], [2, 3]))
        batch = FlowBatch.from_flows(flows)
        assert batch.kinds == ["uniform", "gpu-hbm"]
        assert [f.to_dict() for f in batch.to_flows()] \
            == [f.to_dict() for f in flows]
        assert len(batch) == len(flows)
        assert [f.to_dict() for f in batch] \
            == [f.to_dict() for f in flows]

    def test_from_flows_passes_batches_through(self):
        batch = uniform_batch(8, 5, rng=0)
        assert FlowBatch.from_flows(batch) is batch

    def test_flow_at_and_kind_of(self):
        batch = FlowBatch.from_flows(
            [Flow(0, 1, 5.0, "a"), Flow(2, 3, 7.0, "b")])
        assert batch.kind_of(1) == "b"
        assert batch.flow_at(0).to_dict() == Flow(0, 1, 5.0,
                                                  "a").to_dict()

    def test_concat_reinterns_kinds(self):
        a = uniform_batch(8, 4, rng=0)
        b = hotspot_batch(8, 2, 3, rng=0)
        c = uniform_batch(8, 2, rng=1)
        cat = FlowBatch.concat([a, b, c])
        assert cat.kinds == ["uniform", "hotspot"]
        assert [f.to_dict() for f in cat.to_flows()] \
            == [f.to_dict() for f in
                a.to_flows() + b.to_flows() + c.to_flows()]

    def test_concat_empty(self):
        assert len(FlowBatch.concat([])) == 0
        assert len(FlowBatch.concat([FlowBatch.empty()])) == 0

    def test_to_dict_is_json_native(self):
        batch = uniform_batch(8, 6, rng=2)
        payload = batch.to_dict()
        assert all(isinstance(v, int)
                   for v in payload["src"] + payload["dst"]
                   + payload["kind_codes"])
        assert all(isinstance(v, float) for v in payload["gbps"])
        again = FlowBatch.from_dict(payload)
        assert np.array_equal(again.src, batch.src)
        assert np.array_equal(again.dst, batch.dst)
        assert np.array_equal(again.gbps, batch.gbps)
        assert again.kinds == batch.kinds

    def test_validation_mirrors_flow(self):
        with pytest.raises(ValueError):
            FlowBatch(src=np.array([1]), dst=np.array([1]),
                      gbps=np.array([1.0]))
        with pytest.raises(ValueError):
            FlowBatch(src=np.array([0]), dst=np.array([1]),
                      gbps=np.array([0.0]))
        with pytest.raises(ValueError):
            FlowBatch(src=np.array([0]), dst=np.array([1, 2]),
                      gbps=np.array([1.0]))
        with pytest.raises(ValueError):
            FlowBatch(src=np.array([0]), dst=np.array([1]),
                      gbps=np.array([1.0]), kinds=["x"],
                      kind_codes=np.array([4]))
