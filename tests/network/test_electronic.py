"""Electronic comparator latencies (paper §VI-D)."""

import pytest

from repro.network.electronic import (
    ELECTRONIC_CATALOG,
    ElectronicSwitch,
    best_electronic_latency_ns,
    electronic_disaggregation_latency_ns,
)


class TestCatalog:
    def test_pcie_gen5_hop_latency(self):
        assert ELECTRONIC_CATALOG["pcie-gen5"].hop_latency_ns == 10.0

    def test_rosetta_infiniband_200ns(self):
        # "Rosetta and Infiniband have a measured per hop latency of no
        # less than approximately 200 ns."
        assert ELECTRONIC_CATALOG["rosetta"].hop_latency_ns >= 200.0
        assert ELECTRONIC_CATALOG["infiniband"].hop_latency_ns >= 200.0

    def test_cxl_pond_142ns(self):
        # "recent small-group prototypes using CXL report a minimum of
        # 142 ns latency."
        assert ELECTRONIC_CATALOG["cxl-pond"].hop_latency_ns == 142.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ElectronicSwitch("bad", -1.0, 10, 10.0)
        with pytest.raises(ValueError):
            ElectronicSwitch("bad", 1.0, 0, 10.0)


class TestTreeComposition:
    def test_single_switch_one_hop(self):
        sw = ELECTRONIC_CATALOG["pcie-gen5"]
        assert sw.hops_for_endpoints(100) == 1

    def test_rack_scale_needs_tree(self):
        sw = ELECTRONIC_CATALOG["pcie-gen5"]
        assert sw.hops_for_endpoints(350) == 5

    def test_zero_endpoints_rejected(self):
        with pytest.raises(ValueError):
            ELECTRONIC_CATALOG["pcie-gen5"].hops_for_endpoints(0)


class TestHeadlineLatency:
    def test_85ns_for_pcie_tree(self):
        # §VI-D: "the additional latency for disaggregation in the PCIe
        # case becomes 85 ns compared to 35 ns for our photonic
        # architecture."
        assert electronic_disaggregation_latency_ns() == pytest.approx(85.0)

    def test_best_electronic_is_85(self):
        assert best_electronic_latency_ns() == pytest.approx(85.0)

    def test_rosetta_much_worse(self):
        rosetta = electronic_disaggregation_latency_ns("rosetta")
        assert rosetta > 500.0

    def test_photonic_wins_everywhere(self):
        for name in ELECTRONIC_CATALOG:
            assert electronic_disaggregation_latency_ns(name) > 35.0
