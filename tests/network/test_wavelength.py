"""Wavelength occupancy allocator (paper §IV-A)."""

import numpy as np
import pytest

from repro.network.wavelength import WavelengthAllocator


@pytest.fixture
def alloc():
    return WavelengthAllocator(n_nodes=8, planes=5, flows_per_wavelength=8)


class TestCapacity:
    def test_initially_all_free(self, alloc):
        assert alloc.free_slots(0, 1) == 40
        assert alloc.free_wavelengths(0, 1) == 5
        assert alloc.utilization() == 0.0

    def test_allocate_reduces_capacity(self, alloc):
        alloc.allocate(0, 1, slots=3)
        assert alloc.used_slots(0, 1) == 3
        assert alloc.free_slots(0, 1) == 37

    def test_pair_free_gbps(self, alloc):
        # 40 slots x (25/8) Gbps = 125 Gbps.
        assert alloc.pair_free_gbps(0, 1) == pytest.approx(125.0)
        alloc.allocate(0, 1, slots=8)
        assert alloc.pair_free_gbps(0, 1) == pytest.approx(100.0)

    def test_has_capacity(self, alloc):
        assert alloc.has_capacity(0, 1, 40)
        assert not alloc.has_capacity(0, 1, 41)

    def test_allocation_is_least_loaded(self, alloc):
        planes = alloc.allocate(0, 1, slots=5)
        # Five slots spread across the five planes.
        assert sorted(planes) == [0, 1, 2, 3, 4]

    def test_overflow_raises(self, alloc):
        alloc.allocate(0, 1, slots=40)
        with pytest.raises(RuntimeError):
            alloc.allocate(0, 1, slots=1)


class TestRelease:
    def test_release_restores(self, alloc):
        planes = alloc.allocate(2, 3, slots=4)
        alloc.release(2, 3, planes)
        assert alloc.free_slots(2, 3) == 40

    def test_release_underflow_raises(self, alloc):
        with pytest.raises(RuntimeError):
            alloc.release(0, 1, [0])

    def test_release_bad_plane_rejected(self, alloc):
        alloc.allocate(0, 1)
        with pytest.raises(ValueError):
            alloc.release(0, 1, [9])

    def test_reset(self, alloc):
        alloc.allocate(0, 1, slots=10)
        alloc.reset()
        assert alloc.utilization() == 0.0


class TestBitmaps:
    def test_occupancy_bitmap(self, alloc):
        alloc.allocate(0, 1, slots=40)
        bitmap = alloc.occupancy_bitmap(0)
        assert bitmap[1]
        assert not bitmap[2]

    def test_slot_bitmap_counts(self, alloc):
        alloc.allocate(0, 1, slots=7)
        alloc.allocate(0, 2, slots=2)
        vec = alloc.slot_bitmap(0)
        assert vec[1] == 7
        assert vec[2] == 2
        assert vec.sum() == 9

    def test_bitmap_is_copy(self, alloc):
        vec = alloc.slot_bitmap(0)
        vec[1] = 99
        assert alloc.slot_bitmap(0)[1] == 0


class TestValidation:
    def test_bad_indices(self, alloc):
        with pytest.raises(ValueError):
            alloc.free_slots(0, 8)
        with pytest.raises(ValueError):
            alloc.allocate(-1, 0)

    def test_bad_slot_count(self, alloc):
        with pytest.raises(ValueError):
            alloc.allocate(0, 1, slots=0)

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            WavelengthAllocator(n_nodes=1)

    def test_utilization_counts_all_pairs(self, alloc):
        alloc.allocate(0, 1, slots=40)
        expected = 40 / (8 * 7 * 40)
        assert alloc.utilization() == pytest.approx(expected)

    def test_occupancy_dtype(self, alloc):
        assert alloc.slot_bitmap(0).dtype == np.int32 or \
            alloc.slot_bitmap(0).dtype == np.int64
