"""Wavelength occupancy allocator (paper §IV-A)."""

import numpy as np
import pytest

from repro.network.wavelength import WavelengthAllocator


@pytest.fixture
def alloc():
    return WavelengthAllocator(n_nodes=8, planes=5, flows_per_wavelength=8)


class TestCapacity:
    def test_initially_all_free(self, alloc):
        assert alloc.free_slots(0, 1) == 40
        assert alloc.free_wavelengths(0, 1) == 5
        assert alloc.utilization() == 0.0

    def test_allocate_reduces_capacity(self, alloc):
        alloc.allocate(0, 1, slots=3)
        assert alloc.used_slots(0, 1) == 3
        assert alloc.free_slots(0, 1) == 37

    def test_pair_free_gbps(self, alloc):
        # 40 slots x (25/8) Gbps = 125 Gbps.
        assert alloc.pair_free_gbps(0, 1) == pytest.approx(125.0)
        alloc.allocate(0, 1, slots=8)
        assert alloc.pair_free_gbps(0, 1) == pytest.approx(100.0)

    def test_has_capacity(self, alloc):
        assert alloc.has_capacity(0, 1, 40)
        assert not alloc.has_capacity(0, 1, 41)

    def test_allocation_is_least_loaded(self, alloc):
        planes = alloc.allocate(0, 1, slots=5)
        # Five slots spread across the five planes.
        assert sorted(planes) == [0, 1, 2, 3, 4]

    def test_overflow_raises(self, alloc):
        alloc.allocate(0, 1, slots=40)
        with pytest.raises(RuntimeError):
            alloc.allocate(0, 1, slots=1)


class TestRelease:
    def test_release_restores(self, alloc):
        planes = alloc.allocate(2, 3, slots=4)
        alloc.release(2, 3, planes)
        assert alloc.free_slots(2, 3) == 40

    def test_release_underflow_raises(self, alloc):
        with pytest.raises(RuntimeError):
            alloc.release(0, 1, [0])

    def test_release_bad_plane_rejected(self, alloc):
        alloc.allocate(0, 1)
        with pytest.raises(ValueError):
            alloc.release(0, 1, [9])

    def test_reset(self, alloc):
        alloc.allocate(0, 1, slots=10)
        alloc.reset()
        assert alloc.utilization() == 0.0


class TestBitmaps:
    def test_occupancy_bitmap(self, alloc):
        alloc.allocate(0, 1, slots=40)
        bitmap = alloc.occupancy_bitmap(0)
        assert bitmap[1]
        assert not bitmap[2]

    def test_slot_bitmap_counts(self, alloc):
        alloc.allocate(0, 1, slots=7)
        alloc.allocate(0, 2, slots=2)
        vec = alloc.slot_bitmap(0)
        assert vec[1] == 7
        assert vec[2] == 2
        assert vec.sum() == 9

    def test_bitmap_is_copy(self, alloc):
        vec = alloc.slot_bitmap(0)
        vec[1] = 99
        assert alloc.slot_bitmap(0)[1] == 0


class TestVectorizedAllocation:
    def test_allocate_matches_slot_by_slot_fill(self, alloc):
        """One allocate(slots=k) == k allocate(slots=1) calls."""
        other = WavelengthAllocator(n_nodes=8, planes=5,
                                    flows_per_wavelength=8)
        alloc.allocate(0, 1, slots=3)
        other.allocate(0, 1, slots=3)
        got = alloc.allocate(0, 1, slots=7)
        want = [other.allocate(0, 1, slots=1)[0] for _ in range(7)]
        assert got == want
        assert np.array_equal(alloc._occupancy, other._occupancy)

    def test_ties_break_toward_lowest_plane(self, alloc):
        assert alloc.allocate(0, 1, slots=2) == [0, 1]
        assert alloc.allocate(0, 1, slots=1) == [2]

    def test_allocate_skips_failed_planes(self, alloc):
        alloc.fail_plane(0)
        alloc.fail_plane(2)
        planes = alloc.allocate(0, 1, slots=6)
        assert set(planes) == {1, 3, 4}
        assert planes[:3] == [1, 3, 4]

    def test_allocate_pairs_matches_sequential(self, alloc):
        other = WavelengthAllocator(n_nodes=8, planes=5,
                                    flows_per_wavelength=8)
        other.fail_plane(1)
        alloc.fail_plane(1)
        src = np.array([0, 2, 5])
        dst = np.array([1, 3, 4])
        totals = np.array([7, 1, 12])
        seq = alloc.allocate_pairs(src, dst, totals)
        for s, d, t, row in zip(src, dst, totals, seq):
            assert row[:t].tolist() == other.allocate(int(s), int(d),
                                                      int(t))
            assert (row[t:] == -1).all()
        assert np.array_equal(alloc._occupancy, other._occupancy)

    def test_release_tokens_matches_release(self, alloc):
        planes = alloc.allocate(0, 1, slots=10)
        alloc.allocate(0, 2, slots=4)
        alloc.release_tokens(np.array([0] * 10), np.array([1] * 10),
                             np.array(planes))
        assert alloc.used_slots(0, 1) == 0
        assert alloc.used_slots(0, 2) == 4

    def test_release_tokens_underflow_raises(self, alloc):
        alloc.allocate(0, 1, slots=1)
        with pytest.raises(RuntimeError):
            alloc.release_tokens(np.array([0, 0]), np.array([1, 1]),
                                 np.array([0, 0]))

    def test_free_wavelengths_honors_failed_planes(self, alloc):
        alloc.allocate(0, 1, slots=2)  # occupies planes 0 and 1
        alloc.fail_plane(3)
        assert alloc.free_wavelengths(0, 1) == 2  # planes 2 and 4

    def test_utilization_excludes_diagonal_vectorized(self, alloc):
        alloc._occupancy[2, 2, 0] = 5  # corrupt diagonal on purpose
        alloc.allocate(0, 1, slots=4)
        assert alloc.utilization() == pytest.approx(4 / (8 * 7 * 40))


class TestValidation:
    def test_bad_indices(self, alloc):
        with pytest.raises(ValueError):
            alloc.free_slots(0, 8)
        with pytest.raises(ValueError):
            alloc.allocate(-1, 0)

    def test_bad_slot_count(self, alloc):
        with pytest.raises(ValueError):
            alloc.allocate(0, 1, slots=0)

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            WavelengthAllocator(n_nodes=1)

    def test_utilization_counts_all_pairs(self, alloc):
        alloc.allocate(0, 1, slots=40)
        expected = 40 / (8 * 7 * 40)
        assert alloc.utilization() == pytest.approx(expected)

    def test_occupancy_dtype(self, alloc):
        assert alloc.slot_bitmap(0).dtype == np.int32 or \
            alloc.slot_bitmap(0).dtype == np.int64
