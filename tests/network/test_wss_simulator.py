"""Case-(B) WSS fabric simulator."""

import numpy as np
import pytest

from repro.network.traffic import Flow, uniform_traffic
from repro.network.wss_simulator import WSSNetworkSimulator


def batches(n_nodes, n_slots, seed=0, gbps=10.0, per_slot=8):
    rng = np.random.default_rng(seed)
    return [uniform_traffic(n_nodes, per_slot, gbps=gbps, rng=rng)
            for _ in range(n_slots)]


class TestDemandMatrix:
    def test_aggregation(self):
        flows = [Flow(0, 1, 10.0), Flow(0, 1, 5.0), Flow(2, 3, 7.0)]
        demand = WSSNetworkSimulator.demand_matrix(flows, 4)
        assert demand[0, 1] == 15.0
        assert demand[2, 3] == 7.0
        assert demand.sum() == 22.0


class TestRun:
    def test_steady_demand_served_well(self):
        sim = WSSNetworkSimulator(n_nodes=16, slot_time_s=10.0)
        # The same batch every slot: after the first reconfiguration
        # the configuration matches demand exactly.
        batch = uniform_traffic(16, 8, gbps=20.0,
                                rng=np.random.default_rng(1))
        report = sim.run([list(batch) for _ in range(6)])
        assert report.throughput_ratio > 0.85
        assert report.reconfigurations >= 1

    def test_reconfig_period_trades_lag(self):
        fast = WSSNetworkSimulator(n_nodes=16, reconfig_period=1,
                                   slot_time_s=10.0)
        slow = WSSNetworkSimulator(n_nodes=16, reconfig_period=4,
                                   slot_time_s=10.0)
        shifting = batches(16, 8, seed=2, gbps=25.0)
        fr = fast.run([list(b) for b in shifting])
        sr = slow.run([list(b) for b in shifting])
        # The lazy scheduler reconfigures less but serves less of the
        # shifting demand.
        assert sr.reconfigurations < fr.reconfigurations
        assert sr.throughput_ratio <= fr.throughput_ratio + 1e-9

    def test_downtime_accounting(self):
        sim = WSSNetworkSimulator(n_nodes=8, slot_time_s=1.0)
        report = sim.run(batches(8, 3, seed=3))
        expected = report.reconfigurations * (
            sim.fabric.reconfig_time_s + sim.fabric.scheduler_latency_s)
        assert report.downtime_s == pytest.approx(expected)

    def test_tiny_slot_time_makes_downtime_visible(self):
        # If slots are 1 ms and reconfiguration costs 2 ms, every
        # reconfiguring slot is wiped out — the §III-D3 inversion.
        sim = WSSNetworkSimulator(n_nodes=8, slot_time_s=1e-3,
                                  reconfig_period=1)
        report = sim.run(batches(8, 4, seed=4))
        assert report.throughput_ratio == pytest.approx(0.0)

    def test_empty_slots_ok(self):
        sim = WSSNetworkSimulator(n_nodes=8)
        report = sim.run([[], []])
        assert report.throughput_ratio == 1.0
        assert report.offered_gbps == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WSSNetworkSimulator(n_nodes=1)
        with pytest.raises(ValueError):
            WSSNetworkSimulator(n_nodes=8, reconfig_period=0)
        with pytest.raises(ValueError):
            WSSNetworkSimulator(n_nodes=8, slot_time_s=0.0)
