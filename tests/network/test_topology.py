"""Graph views of fabric plans."""

import networkx as nx
import pytest

from repro.network.topology import (
    awgr_connectivity_graph,
    min_pair_weight,
    wss_connectivity_graph,
    wss_pair_path_counts,
)
from repro.rack.design import plan_awgr_fabric, plan_wss_fabric


class TestAWGRGraph:
    def test_sampled_graph_complete(self):
        plan = plan_awgr_fabric()
        graph = awgr_connectivity_graph(plan, sample=20)
        assert graph.number_of_nodes() == 20
        assert graph.number_of_edges() == 20 * 19 // 2

    def test_min_weight_at_least_five(self):
        plan = plan_awgr_fabric()
        graph = awgr_connectivity_graph(plan, sample=40)
        assert min_pair_weight(graph) >= 5

    def test_edge_gbps_attribute(self):
        plan = plan_awgr_fabric()
        graph = awgr_connectivity_graph(plan, sample=5)
        for _, _, data in graph.edges(data=True):
            assert data["gbps"] == data["wavelengths"] * 25.0

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            min_pair_weight(nx.Graph())


class TestWSSGraph:
    def test_bipartite_structure(self):
        plan = plan_wss_fabric()
        graph = wss_connectivity_graph(plan)
        mcm_nodes = [n for n, d in graph.nodes(data=True)
                     if d.get("bipartite") == "mcm"]
        switch_nodes = [n for n, d in graph.nodes(data=True)
                        if d.get("bipartite") == "switch"]
        assert len(mcm_nodes) == 350
        assert len(switch_nodes) == 11

    def test_graph_connected(self):
        plan = plan_wss_fabric()
        graph = wss_connectivity_graph(plan)
        assert nx.is_connected(graph)

    def test_pair_path_counts_symmetric(self):
        plan = plan_wss_fabric()
        counts = wss_pair_path_counts(plan, sample=30)
        assert (counts == counts.T).all()
        # Off-diagonal minimum is the >= 3 direct-path property.
        n = counts.shape[0]
        off_diag = [counts[i, j] for i in range(n) for j in range(n)
                    if i != j]
        assert min(off_diag) >= 3
