"""Piggybacked state and staleness (paper §IV-A)."""

import pytest

from repro.network.state import OccupancyBoard, PiggybackState
from repro.network.wavelength import WavelengthAllocator


@pytest.fixture
def alloc():
    return WavelengthAllocator(n_nodes=6, planes=5, flows_per_wavelength=8)


class TestOccupancyBoard:
    def test_refresh_and_query(self, alloc):
        board = OccupancyBoard(6, 40)
        alloc.allocate(0, 1, slots=40)
        board.refresh_from(0, alloc.slot_bitmap(0))
        assert not board.believed_free(0, 1)
        assert board.believed_free(0, 2)

    def test_tick_ages(self):
        board = OccupancyBoard(4, 40)
        board.tick()
        board.tick()
        assert board.age.max() == 2

    def test_refresh_resets_age(self, alloc):
        board = OccupancyBoard(6, 40)
        board.tick()
        board.refresh_from(2, alloc.slot_bitmap(2))
        assert board.age[2] == 0
        assert board.age[0] == 1

    def test_status_vector_size_matches_paper(self):
        # §IV-A: 256 destinations x 8 bits = 256 bytes.
        board = OccupancyBoard(256, 40)
        assert board.status_bytes(bits_per_pair=8) == 256

    def test_wrong_shape_rejected(self, alloc):
        board = OccupancyBoard(6, 40)
        with pytest.raises(ValueError):
            board.refresh_from(0, alloc.slot_bitmap(0)[:3])


class TestPiggybackState:
    def test_fresh_at_start(self, alloc):
        state = PiggybackState(alloc, update_period=4)
        assert state.max_staleness() == 0

    def test_staleness_grows_between_updates(self, alloc):
        state = PiggybackState(alloc, update_period=5, jitter=False)
        alloc.allocate(0, 1, slots=40)
        state.step()  # t=1: no broadcast (period 5)
        board = state.board_of(2)
        # View still thinks 0->1 is free.
        assert board.believed_free(0, 1)
        assert state.max_staleness() >= 1

    def test_update_propagates(self, alloc):
        state = PiggybackState(alloc, update_period=1)
        alloc.allocate(0, 1, slots=40)
        state.step()
        assert not state.board_of(3).believed_free(0, 1)

    def test_broadcast_all(self, alloc):
        state = PiggybackState(alloc, update_period=100, jitter=False)
        alloc.allocate(1, 2, slots=40)
        state.broadcast_all()
        assert not state.board_of(4).believed_free(1, 2)

    def test_bad_period_rejected(self, alloc):
        with pytest.raises(ValueError):
            PiggybackState(alloc, update_period=0)

    def test_piggyback_overhead_negligible(self, alloc):
        # §IV-A: "the bandwidth impact is negligible".
        state = PiggybackState(alloc)
        assert state.piggyback_overhead_fraction() < 1e-5

    def test_jitter_spreads_phases(self, alloc):
        state = PiggybackState(alloc, update_period=7, jitter=True,
                               rng_seed=1)
        assert len(set(int(p) for p in state._phase)) > 1
