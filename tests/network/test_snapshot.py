"""Snapshot/restore round trips for the network-layer simulators.

The contract under test everywhere: ``restore(snapshot())`` on a
*freshly constructed, differently seeded* instance of the same shape,
followed by N more slots of identical traffic, is bit-identical to a
run that never stopped — including after plane failures/repairs and
with batch admission on and off. Snapshots additionally must survive
the result cache's JSON encoding losslessly, because that is how the
carry-mode sharded runner transports them between processes.
"""

import numpy as np
import pytest

from repro.experiments.cache import decode_metrics, encode_metrics
from repro.network.routing import RouteDecision, RouteKind
from repro.network.simulator import AWGRNetworkSimulator
from repro.network.traffic import Flow, hotspot_traffic, uniform_traffic
from repro.network.wavelength import WavelengthAllocator
from repro.network.wss_simulator import WSSNetworkSimulator


def json_round_trip(snapshot: dict) -> dict:
    """Exactly what the chunk checkpoint cache does to a snapshot."""
    return decode_metrics(encode_metrics(snapshot))


def mixed_batches(seed, n_batches=5, n_nodes=10):
    rng = np.random.default_rng(seed)
    return [uniform_traffic(n_nodes, 10, gbps=25.0, rng=rng)
            + hotspot_traffic(n_nodes, 0, 5, gbps=25.0, rng=rng)
            for _ in range(n_batches)]


class TestAllocatorSnapshot:
    def test_round_trip_preserves_occupancy_and_failures(self):
        a = WavelengthAllocator(n_nodes=6, planes=4)
        a.allocate(0, 1, 3)
        a.allocate(2, 3, 2)
        a.fail_plane(1)
        snap = json_round_trip(a.snapshot())
        b = WavelengthAllocator(n_nodes=6, planes=4)
        b.restore(snap)
        assert (b._occupancy == a._occupancy).all()
        assert b.failed_planes == a.failed_planes
        assert b.healthy_planes == a.healthy_planes
        assert (b._healthy == a._healthy).all()

    def test_shape_mismatch_rejected(self):
        a = WavelengthAllocator(n_nodes=6, planes=4)
        b = WavelengthAllocator(n_nodes=8, planes=4)
        with pytest.raises(ValueError, match="shape"):
            b.restore(a.snapshot())

    def test_failed_plane_out_of_range_rejected(self):
        a = WavelengthAllocator(n_nodes=4, planes=3)
        snap = a.snapshot()
        snap["failed_planes"] = [7]
        with pytest.raises(ValueError, match="out of range"):
            a.restore(snap)


class TestRouteDecisionRoundTrip:
    def test_to_from_dict(self):
        decision = RouteDecision(
            kind=RouteKind.DOUBLE_INDIRECT, path=(0, 3, 5, 1),
            reservations=((0, 3, (0, 1)), (3, 5, (2,)), (5, 1, (0,))),
            used_stale_fallback=True)
        decoded = RouteDecision.from_dict(
            json_round_trip(decision.to_dict()))
        assert decoded == decision

    def test_flow_round_trip(self):
        flow = Flow(2, 7, gbps=12.5, kind="cpu-mem")
        assert Flow.from_dict(json_round_trip(flow.to_dict())) == flow


class TestAWGRSimulatorSnapshot:
    @pytest.mark.parametrize("batch_admission", [True, False])
    @pytest.mark.parametrize("track_state", [True, False])
    def test_restore_then_run_is_bit_identical(self, batch_admission,
                                               track_state):
        kwargs = dict(n_nodes=10, planes=3, flows_per_wavelength=2,
                      state_update_period=3, track_state=track_state,
                      batch_admission=batch_admission)
        original = AWGRNetworkSimulator(rng_seed=7, **kwargs)
        original.run(mixed_batches(1), duration_slots=3)
        snap = json_round_trip(original.snapshot())
        suffix = mixed_batches(2)
        report_a = original.run([list(b) for b in suffix],
                                duration_slots=3)
        # Different construction seed: everything that matters must
        # come from the snapshot, not the constructor.
        restored = AWGRNetworkSimulator(rng_seed=999, **kwargs)
        restored.restore(snap)
        report_b = restored.run([list(b) for b in suffix],
                                duration_slots=3)
        assert report_a.as_dict() == report_b.as_dict()
        assert report_a.hop_histogram == report_b.hop_histogram
        assert (original.allocator._occupancy
                == restored.allocator._occupancy).all()
        assert (original.router._rng.bit_generator.state
                == restored.router._rng.bit_generator.state)

    @pytest.mark.parametrize("batch_admission", [True, False])
    def test_round_trip_across_fail_and_repair(self, batch_admission):
        kwargs = dict(n_nodes=10, planes=3, flows_per_wavelength=2,
                      batch_admission=batch_admission)
        original = AWGRNetworkSimulator(rng_seed=3, **kwargs)
        original.run(mixed_batches(4, n_batches=3), duration_slots=4)
        original.fail_plane(0)
        snap_failed = json_round_trip(original.snapshot())

        restored = AWGRNetworkSimulator(rng_seed=555, **kwargs)
        restored.restore(snap_failed)
        assert restored.allocator.failed_planes == frozenset({0})
        # Repair + more traffic on both; still bit-identical.
        original.repair_plane(0)
        restored.repair_plane(0)
        suffix = mixed_batches(5, n_batches=3)
        report_a = original.run([list(b) for b in suffix],
                                duration_slots=4)
        report_b = restored.run([list(b) for b in suffix],
                                duration_slots=4)
        assert report_a.as_dict() == report_b.as_dict()

    def test_in_flight_flows_survive_and_release_cleanly(self):
        sim = AWGRNetworkSimulator(n_nodes=6, planes=2,
                                   flows_per_wavelength=2, rng_seed=0)
        sim.run(mixed_batches(6, n_batches=2, n_nodes=6),
                duration_slots=5)
        occupied = int(sim.allocator._occupancy.sum())
        assert occupied > 0  # flows still in flight
        restored = AWGRNetworkSimulator(n_nodes=6, planes=2,
                                        flows_per_wavelength=2,
                                        rng_seed=1)
        restored.restore(json_round_trip(sim.snapshot()))
        assert int(restored.allocator._occupancy.sum()) == occupied
        restored.drain()  # carried reservations must release exactly
        assert int(restored.allocator._occupancy.sum()) == 0

    def test_config_mismatch_rejected(self):
        a = AWGRNetworkSimulator(n_nodes=8, planes=3)
        b = AWGRNetworkSimulator(n_nodes=8, planes=5)
        with pytest.raises(ValueError, match="config"):
            b.restore(a.snapshot())
        # Line rate changes slot arithmetic, so it must guard too.
        c = AWGRNetworkSimulator(n_nodes=8, planes=3,
                                 gbps_per_wavelength=50.0)
        with pytest.raises(ValueError, match="config"):
            c.restore(a.snapshot())


class TestWSSSimulatorSnapshot:
    def test_restore_then_run_is_bit_identical(self):
        kwargs = dict(n_nodes=8, n_switches=3, wavelengths_per_port=8,
                      reconfig_period=2)
        original = WSSNetworkSimulator(**kwargs)
        original.run(mixed_batches(8, n_batches=3, n_nodes=8))
        original.fabric.reconfig_time_s = 0.05  # mid-run lag change
        snap = json_round_trip(original.snapshot())
        suffix = mixed_batches(9, n_batches=3, n_nodes=8)
        report_a = original.run([list(b) for b in suffix])

        restored = WSSNetworkSimulator(**kwargs)
        restored.restore(snap)
        report_b = restored.run([list(b) for b in suffix])
        assert report_a.as_dict() == report_b.as_dict()
        assert report_a.per_slot_served == report_b.per_slot_served
        for cfg_a, cfg_b in zip(original.fabric.configs,
                                restored.fabric.configs):
            assert (cfg_a.assignment == cfg_b.assignment).all()

    def test_switch_count_mismatch_rejected(self):
        fabric_snap = WSSNetworkSimulator(n_nodes=4, n_switches=3
                                          ).fabric.snapshot()
        fabric_snap["n_switches"] = 2  # claims fewer than it carries
        with pytest.raises(ValueError, match="switch count"):
            WSSNetworkSimulator(n_nodes=4, n_switches=3
                                ).fabric.restore(fabric_snap)
