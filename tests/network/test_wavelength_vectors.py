"""Vectorized capacity views used by the fast routing path."""

import numpy as np
import pytest

from repro.network.wavelength import WavelengthAllocator


@pytest.fixture
def alloc():
    a = WavelengthAllocator(n_nodes=5, planes=3, flows_per_wavelength=4)
    a.allocate(0, 1, slots=5)
    a.allocate(0, 2, slots=2)
    a.allocate(3, 1, slots=7)
    return a


class TestFreeSlotVectors:
    def test_free_from_matches_scalar(self, alloc):
        vec = alloc.free_slots_from(0)
        for dst in range(5):
            assert vec[dst] == alloc.free_slots(0, dst)

    def test_free_to_matches_scalar(self, alloc):
        vec = alloc.free_slots_to(1)
        for src in range(5):
            assert vec[src] == alloc.free_slots(src, 1)

    def test_shapes(self, alloc):
        assert alloc.free_slots_from(2).shape == (5,)
        assert alloc.free_slots_to(2).shape == (5,)

    def test_respects_plane_failure(self, alloc):
        before = alloc.free_slots_from(4).copy()
        alloc.fail_plane(0)
        after = alloc.free_slots_from(4)
        assert np.all(after == before - 4)  # one plane x 4 sub-slots

    def test_out_of_range(self, alloc):
        with pytest.raises(ValueError):
            alloc.free_slots_from(9)
        with pytest.raises(ValueError):
            alloc.free_slots_to(-1)


class TestCandidateVectorization:
    def test_candidates_match_bruteforce(self):
        from repro.network.routing import IndirectRouter
        alloc = WavelengthAllocator(n_nodes=8, planes=2,
                                    flows_per_wavelength=1)
        router = IndirectRouter(alloc)
        # Saturate some links to create structure.
        alloc.allocate(0, 3, slots=2)
        alloc.allocate(5, 1, slots=2)
        candidates = set(router.candidate_intermediates(0, 1).tolist())
        expected = set()
        for mid in range(8):
            if mid in (0, 1):
                continue
            if (alloc.has_capacity(0, mid)
                    and alloc.has_capacity(mid, 1)):
                expected.add(mid)
        assert candidates == expected
