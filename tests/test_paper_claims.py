"""The machine-checkable paper-claims ledger."""

import pytest

from repro.paper import (
    ALL_CLAIMS,
    Claim,
    ClaimResult,
    failed_claims,
    validate_performance,
    validate_structural,
)


class TestClaim:
    def test_exact_check(self):
        claim = Claim("x", "§", "d", 350)
        assert claim.check(350)
        assert not claim.check(349)

    def test_absolute_tolerance(self):
        claim = Claim("x", "§", "d", 0.23, tolerance=0.04)
        assert claim.check(0.26)
        assert not claim.check(0.28)

    def test_relative_tolerance(self):
        claim = Claim("x", "§", "d", 100.0, tolerance=0.1, relative=True)
        assert claim.check(109.0)
        assert not claim.check(111.0)

    def test_result_row(self):
        result = ClaimResult(Claim("x", "§1", "d", 1.0, 0.5), 1.2)
        row = result.as_row()
        assert row["ok"]
        assert row["claim"] == "x"


class TestLedger:
    def test_claim_ids_unique(self):
        ids = [c.claim_id for c in ALL_CLAIMS]
        assert len(set(ids)) == len(ids)

    def test_every_claim_cites_a_section(self):
        assert all(c.section for c in ALL_CLAIMS)

    def test_structural_claims_all_pass(self):
        results = validate_structural()
        bad = [r for r in results if not r.ok]
        assert not bad, [
            (r.claim.claim_id, r.measured) for r in bad]

    @pytest.mark.slow
    def test_performance_claims_all_pass(self):
        results = validate_performance()
        bad = [r for r in results if not r.ok]
        assert not bad, [
            (r.claim.claim_id, r.claim.paper_value, r.measured)
            for r in bad]

    @pytest.mark.slow
    def test_failed_claims_empty_on_healthy_build(self):
        assert failed_claims() == []
