"""Unit-conversion helpers."""

import math

import pytest

from repro import units


class TestBandwidthConversions:
    def test_gbps_to_gbyte_s(self):
        assert units.gbps_to_gbyte_s(800.0) == 100.0

    def test_gbyte_s_to_gbps(self):
        assert units.gbyte_s_to_gbps(100.0) == 800.0

    def test_roundtrip(self):
        assert units.gbps_to_gbyte_s(units.gbyte_s_to_gbps(12.5)) == 12.5

    def test_tbyte_s_to_gbps(self):
        # 2 TB/s escape = 16,000 Gbps (the Table I computation base).
        assert units.tbyte_s_to_gbps(2.0) == 16_000.0

    def test_gbps_to_tbyte_s_inverse(self):
        assert math.isclose(units.gbps_to_tbyte_s(16_000.0), 2.0)


class TestEnergyPower:
    def test_pj_per_bit_to_watts(self):
        # 30 pJ/bit at 16 Tbps = 480 W (Table I, 100G row).
        assert math.isclose(units.pj_per_bit_to_watts(30.0, 16_000.0), 480.0)

    def test_watts_to_pj_per_bit_roundtrip(self):
        w = units.pj_per_bit_to_watts(0.5, 51_200.0)
        assert math.isclose(units.watts_to_pj_per_bit(w, 51_200.0), 0.5)

    def test_watts_to_pj_per_bit_rejects_zero_bw(self):
        with pytest.raises(ValueError):
            units.watts_to_pj_per_bit(1.0, 0.0)


class TestLatency:
    def test_propagation_4m_is_20ns(self):
        assert units.propagation_latency_ns(4.0) == 20.0

    def test_propagation_rejects_negative(self):
        with pytest.raises(ValueError):
            units.propagation_latency_ns(-1.0)

    def test_serialization_256bit_at_200gbps(self):
        # §III-C3: ~10 ns serialization at 200 Gbps for a FEC block;
        # flit-level: 256 bits / 200 Gbps = 1.28 ns.
        assert math.isclose(
            units.serialization_latency_ns(256, 200.0), 1.28)

    def test_serialization_rejects_zero_bw(self):
        with pytest.raises(ValueError):
            units.serialization_latency_ns(256, 0.0)

    def test_ns_cycles_roundtrip(self):
        assert math.isclose(
            units.cycles_to_ns(units.ns_to_cycles(35.0, 2.0), 2.0), 35.0)

    def test_ns_to_cycles_at_2ghz(self):
        assert units.ns_to_cycles(35.0, 2.0) == 70.0

    def test_cycles_rejects_bad_clock(self):
        with pytest.raises(ValueError):
            units.ns_to_cycles(1.0, 0.0)
        with pytest.raises(ValueError):
            units.cycles_to_ns(1.0, -1.0)


class TestConstants:
    def test_fiber_speed_consistent_with_c(self):
        # 5 ns/m corresponds to light at ~c/1.5.
        effective_speed = units.SPEED_OF_LIGHT_M_S / units.FIBER_REFRACTIVE_INDEX
        ns_per_meter = 1e9 / effective_speed
        assert abs(ns_per_meter - units.FIBER_NS_PER_METER) < 0.1
