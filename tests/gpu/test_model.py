"""Analytical A100 model (PPT-GPU substitute)."""

import pytest

from repro.gpu.kernels import ApplicationSpec, KernelSpec
from repro.gpu.memory import GPUMemoryModel
from repro.gpu.model import A100Model


def kernel(**kwargs):
    defaults = dict(name="k", instructions=10_000_000,
                    mem_txn_per_instr=0.1, llc_miss_rate=0.4,
                    occupancy=0.5, ilp=1.0)
    defaults.update(kwargs)
    return KernelSpec(**defaults)


def app(*kernels):
    return ApplicationSpec("test.app", "test", tuple(kernels))


class TestKernelTiming:
    def test_compute_bound_kernel(self):
        model = A100Model()
        k = kernel(mem_txn_per_instr=0.001, llc_miss_rate=0.05,
                   occupancy=0.9)
        res = model.kernel_cycles(k)
        assert not res.memory_bound
        assert res.compute_cycles > res.bandwidth_cycles

    def test_memory_bound_kernel(self):
        model = A100Model()
        k = kernel(mem_txn_per_instr=0.3, llc_miss_rate=0.8)
        res = model.kernel_cycles(k)
        assert res.memory_bound

    def test_occupancy_hides_latency(self):
        model = A100Model()
        low = model.kernel_cycles(kernel(occupancy=0.1))
        high = model.kernel_cycles(kernel(occupancy=0.9))
        assert low.exposed_latency_cycles > high.exposed_latency_cycles

    def test_ilp_hides_latency(self):
        model = A100Model()
        low = model.kernel_cycles(kernel(ilp=1.0))
        high = model.kernel_cycles(kernel(ilp=2.0))
        assert low.exposed_latency_cycles > high.exposed_latency_cycles

    def test_validation(self):
        with pytest.raises(ValueError):
            A100Model(sm_count=0)
        with pytest.raises(ValueError):
            A100Model(hiding_efficiency=1.5)


class TestSlowdown:
    def test_zero_extra_zero_slowdown(self):
        model = A100Model()
        assert model.slowdown(app(kernel()), 0.0) == pytest.approx(0.0)

    def test_slowdown_monotone_in_latency(self):
        model = A100Model()
        a = app(kernel())
        values = [model.slowdown(a, ns) for ns in (25.0, 30.0, 35.0, 85.0)]
        assert values == sorted(values)
        assert values[0] > 0

    def test_compute_bound_barely_affected(self):
        model = A100Model()
        a = app(kernel(mem_txn_per_instr=0.002, llc_miss_rate=0.05,
                       occupancy=0.9, ilp=1.5))
        assert model.slowdown(a, 35.0) < 0.01

    def test_latency_sensitive_kernel_slows(self):
        model = A100Model()
        a = app(kernel(mem_txn_per_instr=0.15, llc_miss_rate=0.7,
                       occupancy=0.25))
        assert model.slowdown(a, 35.0) > 0.05

    def test_gpu_tolerates_better_than_typical_cpu(self):
        # Fig. 11's message: GPU slowdowns stay low where CPUs suffer.
        model = A100Model()
        a = app(kernel(mem_txn_per_instr=0.13, llc_miss_rate=0.6,
                       occupancy=0.27))
        assert model.slowdown(a, 35.0) < 0.15


class TestApplicationAggregation:
    def test_cycles_sum_over_kernels(self):
        model = A100Model()
        k1 = kernel(name="k1", instructions=5_000_000)
        k2 = kernel(name="k2", instructions=5_000_000)
        combined = model.application_cycles(app(k1, k2))
        separate = (model.kernel_cycles(k1).cycles
                    + model.kernel_cycles(k2).cycles)
        assert combined.cycles == pytest.approx(separate)

    def test_custom_memory_model(self):
        model = A100Model()
        throttled = GPUMemoryModel(hbm_bandwidth_gbyte_s=400.0)
        a = app(kernel(mem_txn_per_instr=0.2, llc_miss_rate=0.8))
        assert (model.application_cycles(a, throttled).cycles
                > model.application_cycles(a).cycles)
