"""GPU memory model."""

import pytest

from repro.gpu.memory import GPUMemoryModel


class TestGPUMemoryModel:
    def test_latency_composition(self):
        mem = GPUMemoryModel(hbm_latency_ns=220.0, extra_latency_ns=35.0)
        assert mem.total_hbm_latency_ns == 255.0

    def test_cycles_at_a100_clock(self):
        mem = GPUMemoryModel(extra_latency_ns=0.0)
        assert mem.total_hbm_latency_cycles == pytest.approx(220 * 1.41)

    def test_with_extra(self):
        base = GPUMemoryModel()
        photonic = base.with_extra(35.0)
        assert photonic.extra_latency_ns == 35.0
        assert photonic.hbm_latency_ns == base.hbm_latency_ns
        assert photonic.hbm_bandwidth_gbyte_s == base.hbm_bandwidth_gbyte_s

    def test_bandwidth_cycles(self):
        mem = GPUMemoryModel()
        # 1e9 transactions x 64 B = 64 GB at 1555.2 GB/s = 41.2 ms
        # = 58.0M cycles at 1.41 GHz.
        cycles = mem.bandwidth_cycles(1e9)
        seconds = 64e9 / 1555.2e9
        assert cycles == pytest.approx(seconds * 1.41e9)

    def test_bandwidth_cycles_scale_linearly(self):
        mem = GPUMemoryModel()
        assert mem.bandwidth_cycles(2e6) == pytest.approx(
            2 * mem.bandwidth_cycles(1e6))

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUMemoryModel(hbm_latency_ns=0.0)
        with pytest.raises(ValueError):
            GPUMemoryModel(extra_latency_ns=-1.0)
        with pytest.raises(ValueError):
            GPUMemoryModel(hbm_bandwidth_gbyte_s=0.0)
