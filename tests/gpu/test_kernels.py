"""GPU kernel/application descriptors."""

import pytest

from repro.gpu.kernels import ApplicationSpec, KernelSpec


def kernel(**kwargs):
    defaults = dict(name="k", instructions=1_000_000,
                    mem_txn_per_instr=0.1, llc_miss_rate=0.4,
                    occupancy=0.5, ilp=1.0)
    defaults.update(kwargs)
    return KernelSpec(**defaults)


class TestKernelSpec:
    def test_hbm_txn_per_instr(self):
        k = kernel()
        assert k.hbm_txn_per_instr == pytest.approx(0.04)

    def test_hbm_transactions(self):
        k = kernel()
        assert k.hbm_transactions == pytest.approx(40_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            kernel(instructions=0)
        with pytest.raises(ValueError):
            kernel(llc_miss_rate=1.5)
        with pytest.raises(ValueError):
            kernel(occupancy=0.0)
        with pytest.raises(ValueError):
            kernel(ilp=0.5)
        with pytest.raises(ValueError):
            kernel(mem_txn_per_instr=-0.1)


class TestApplicationSpec:
    def test_aggregates(self):
        app = ApplicationSpec("a", "suite", (
            kernel(name="k1", instructions=1_000_000, llc_miss_rate=0.2),
            kernel(name="k2", instructions=3_000_000, llc_miss_rate=0.6),
        ))
        assert app.instructions == 4_000_000
        # Transaction-weighted miss rate (equal txn/instr): 0.5.
        assert app.llc_miss_rate == pytest.approx(
            (1 * 0.2 + 3 * 0.6) / 4)

    def test_needs_kernels(self):
        with pytest.raises(ValueError):
            ApplicationSpec("a", "suite", ())

    def test_single_kernel_collapse(self):
        app = ApplicationSpec("a", "suite", (
            kernel(name="k1", occupancy=0.4),
            kernel(name="k2", occupancy=0.8),
        ))
        merged = app.single_kernel()
        assert merged.instructions == app.instructions
        assert merged.occupancy == pytest.approx(0.6)
        assert merged.llc_miss_rate == pytest.approx(app.llc_miss_rate)

    def test_hbm_txn_per_instr_weighted(self):
        app = ApplicationSpec("a", "suite", (
            kernel(name="k1", mem_txn_per_instr=0.2, llc_miss_rate=0.5),
            kernel(name="k2", mem_txn_per_instr=0.0, llc_miss_rate=0.5),
        ))
        assert app.hbm_txn_per_instr == pytest.approx(0.05)

    def test_zero_traffic_miss_rate(self):
        app = ApplicationSpec("a", "suite",
                              (kernel(mem_txn_per_instr=0.0),))
        assert app.llc_miss_rate == 0.0
