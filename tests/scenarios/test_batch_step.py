"""Scalar-vs-batched backend equivalence (the PR 8 epoch hot path).

Mirror of :mod:`tests.network.test_batch_admission` one layer up: each
backend's ``batch_step=True`` (or ``batch_admission=True``) path must
be an *exact* replay of its per-flow reference loop — bit-identical
:class:`~repro.scenarios.backends.EpochReport` streams (including the
raw slowdown samples and extras) across uniform, hotspot, and
failure-injected workloads, plus the registered scenarios with their
scripted events. These are seeded property-style suites: each case
loops over several seeds rather than one hand-picked instance.
"""

import numpy as np
import pytest

from repro.network.traffic import FlowBatch, hotspot_batch, uniform_batch
from repro.scenarios.backends import (
    AWGRBackend,
    ElectronicBackend,
    WSSBackend,
)
from repro.scenarios.library import get_scenario
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.scenario import ScenarioEvent


def make_twins(backend_cls, **kwargs):
    """Twin backends: per-flow reference and vectorized hot path."""
    flag = ("batch_admission" if backend_cls is AWGRBackend
            else "batch_step")
    scalar = backend_cls(**{flag: False, **kwargs})
    batched = backend_cls(**{flag: True, **kwargs})
    return scalar, batched


def assert_identical_epochs(scalar, batched, batches,
                            events=()) -> None:
    """Step both paths through the same stream; require bit-identical
    reports (and bit-identical snapshots where state is shared)."""
    events = dict(events)
    for i, batch in enumerate(batches):
        for event in events.get(i, []):
            assert scalar.apply_event(event) == batched.apply_event(event)
        report_scalar = scalar.step(batch)
        report_batched = batched.step(batch)
        assert report_scalar.to_dict() == report_batched.to_dict(), (
            f"epoch {i} diverged")
        # Float equality above is bit-exact only if the samples are:
        # re-check the slowdown tails explicitly as arrays.
        assert np.array_equal(np.asarray(report_scalar.slowdowns),
                              np.asarray(report_batched.slowdowns))
    assert scalar.snapshot() == batched.snapshot()


def wss_workloads(seed: int, n_nodes: int, n_flows: int,
                  epochs: int, gbps: float):
    """Seeded epoch stream mixing uniform and hotspot batches."""
    rng = np.random.default_rng(seed)
    batches = []
    for epoch in range(epochs):
        if epoch % 3 == 2:
            batches.append(hotspot_batch(n_nodes, epoch % n_nodes,
                                         n_flows, gbps=gbps, rng=rng))
        else:
            batches.append(uniform_batch(n_nodes, n_flows, gbps=gbps,
                                         rng=rng))
    return batches


class TestWSSBitIdentity:
    @pytest.mark.parametrize("seed", range(5))
    def test_uniform_light(self, seed):
        scalar, batched = make_twins(WSSBackend, n_nodes=12,
                                     n_switches=3)
        batches = [uniform_batch(12, 40, gbps=5.0, rng=100 + seed)
                   for _ in range(4)]
        assert_identical_epochs(scalar, batched, batches)

    @pytest.mark.parametrize("seed", range(5))
    def test_hotspot_oversubscribed_with_lag(self, seed):
        # reconfig_period > 1 makes the scheduler serve stale
        # configurations, so flows see fractional service (and some
        # pairs see zero → blocked) — the interesting slowdown regime.
        scalar, batched = make_twins(WSSBackend, n_nodes=10,
                                     n_switches=2,
                                     wavelengths_per_port=4,
                                     reconfig_period=3)
        batches = wss_workloads(200 + seed, n_nodes=10, n_flows=60,
                                epochs=6, gbps=30.0)
        assert_identical_epochs(scalar, batched, batches)
        assert batched.fabric.reconfig_time_s > 0

    @pytest.mark.parametrize("seed", range(4))
    def test_switch_failure_and_repair(self, seed):
        scalar, batched = make_twins(WSSBackend, n_nodes=8,
                                     n_switches=3,
                                     wavelengths_per_port=2,
                                     reconfig_period=2)
        batches = wss_workloads(300 + seed, n_nodes=8, n_flows=50,
                                epochs=6, gbps=40.0)
        events = {
            1: [ScenarioEvent(epoch=1, action="fail_plane", value=0)],
            3: [ScenarioEvent(epoch=3, action="set_reconfig_period",
                              value=1)],
            4: [ScenarioEvent(epoch=4, action="repair_plane", value=0)],
        }
        assert_identical_epochs(scalar, batched, batches, events)

    def test_empty_epoch(self):
        scalar, batched = make_twins(WSSBackend, n_nodes=6)
        assert_identical_epochs(
            scalar, batched,
            [FlowBatch.empty(), uniform_batch(6, 10, rng=0),
             FlowBatch.empty()])


class TestElectronicBitIdentity:
    @pytest.mark.parametrize("seed", range(5))
    def test_uniform_within_caps(self, seed):
        scalar, batched = make_twins(ElectronicBackend, n_nodes=12)
        batches = [uniform_batch(12, 40, gbps=5.0, rng=400 + seed)
                   for _ in range(4)]
        assert_identical_epochs(scalar, batched, batches)

    @pytest.mark.parametrize("seed", range(5))
    def test_hotspot_saturates_lanes(self, seed):
        # One lane per endpoint + hotspot traffic drives the ingress
        # cap well below demand, so shares are fractional and the
        # 1/share slowdowns are non-trivial floats.
        scalar, batched = make_twins(ElectronicBackend, n_nodes=10,
                                     lanes_per_endpoint=1)
        batches = wss_workloads(500 + seed, n_nodes=10, n_flows=80,
                                epochs=5, gbps=17.3)
        assert_identical_epochs(scalar, batched, batches)
        assert any(s > 1.0 for s in batched.step(
            uniform_batch(10, 80, gbps=17.3, rng=seed)).slowdowns)

    def test_empty_epoch(self):
        scalar, batched = make_twins(ElectronicBackend, n_nodes=6)
        assert_identical_epochs(
            scalar, batched,
            [FlowBatch.empty(), uniform_batch(6, 10, rng=0)])


class TestScenarioEpochLoopBitIdentity:
    """Full ScenarioRunner loops — generation → events → admission →
    report — must match between the object path and the batch path on
    every backend and registered scenario."""

    SCENARIOS = ("demo", "diurnal_cori", "reconfig_lag")

    @staticmethod
    def run_pair(name: str, backend_cls, seed: int, **kwargs):
        scenario = get_scenario(name)
        scalar, batched = make_twins(backend_cls,
                                     n_nodes=scenario.n_nodes, **kwargs)
        report_scalar = ScenarioRunner(scenario, scalar).run(seed=seed)
        report_batched = ScenarioRunner(scenario, batched).run(seed=seed)
        return report_scalar, report_batched

    @pytest.mark.parametrize("name", SCENARIOS)
    @pytest.mark.parametrize("seed", [0, 7])
    def test_awgr(self, name, seed):
        a, b = self.run_pair(name, AWGRBackend, seed, rng_seed=seed)
        assert [e.to_dict() for e in a.epochs] == \
            [e.to_dict() for e in b.epochs]
        assert a.as_dict() == b.as_dict()

    @pytest.mark.parametrize("name", SCENARIOS)
    @pytest.mark.parametrize("seed", [0, 7])
    def test_wss(self, name, seed):
        a, b = self.run_pair(name, WSSBackend, seed)
        assert [e.to_dict() for e in a.epochs] == \
            [e.to_dict() for e in b.epochs]
        assert a.as_dict() == b.as_dict()

    @pytest.mark.parametrize("name", SCENARIOS)
    @pytest.mark.parametrize("seed", [0, 7])
    def test_electronic(self, name, seed):
        a, b = self.run_pair(name, ElectronicBackend, seed)
        assert [e.to_dict() for e in a.epochs] == \
            [e.to_dict() for e in b.epochs]
        assert a.as_dict() == b.as_dict()


class TestInputFormEquivalence:
    """step(FlowBatch) and step(list[Flow]) of the same flows must be
    bit-identical on every backend — the FabricBackend contract."""

    @pytest.mark.parametrize("backend_cls,kwargs", [
        (AWGRBackend, {"rng_seed": 3}),
        (WSSBackend, {"reconfig_period": 2}),
        (ElectronicBackend, {"lanes_per_endpoint": 1}),
    ])
    def test_batch_and_list_forms_match(self, backend_cls, kwargs):
        via_batch = backend_cls(n_nodes=9, **kwargs)
        via_list = backend_cls(n_nodes=9, **kwargs)
        rng_a = np.random.default_rng(42)
        rng_b = np.random.default_rng(42)
        for _ in range(4):
            batch = uniform_batch(9, 30, gbps=26.0, rng=rng_a)
            flows = uniform_batch(9, 30, gbps=26.0, rng=rng_b).to_flows()
            report_a = via_batch.step(batch)
            report_b = via_list.step(flows)
            assert report_a.to_dict() == report_b.to_dict()
