"""ScenarioRunner: event application, streaming, aggregation."""

import pytest

from repro.scenarios import (
    Episode,
    Scenario,
    ScenarioEvent,
    ScenarioRunner,
    make_backend,
    run_replicated,
)


def scripted_scenario(events=(), n_epochs=6, flows=6):
    return Scenario(
        name="scripted", n_nodes=8, n_epochs=n_epochs,
        episodes=(Episode(kind="uniform", flows=flows),),
        events=tuple(events))


class TestRun:
    def test_one_epoch_report_per_epoch(self):
        runner = ScenarioRunner(scripted_scenario(),
                                make_backend("awgr", 8))
        report = runner.run(seed=0)
        assert len(report.epochs) == 6
        assert [e.epoch for e in report.epochs] == list(range(6))

    def test_deterministic_for_fixed_seed(self):
        a = ScenarioRunner(scripted_scenario(),
                           make_backend("awgr", 8, seed=5)).run(seed=5)
        b = ScenarioRunner(scripted_scenario(),
                           make_backend("awgr", 8, seed=5)).run(seed=5)
        assert a.as_dict() == b.as_dict()
        assert a.rows() == b.rows()

    def test_seed_changes_traffic(self):
        stochastic = scripted_scenario(
            flows={"dist": "poisson", "mean": 6})
        a = ScenarioRunner(stochastic,
                           make_backend("awgr", 8)).run(seed=1)
        b = ScenarioRunner(stochastic,
                           make_backend("awgr", 8)).run(seed=2)
        assert a.rows() != b.rows()

    def test_events_applied_and_visible(self):
        events = [ScenarioEvent(epoch=3, action="fail_plane", value=0)]
        runner = ScenarioRunner(scripted_scenario(events),
                                make_backend("awgr", 8))
        report = runner.run(seed=0)
        assert report.events_applied == 1
        healthy = [e.extras["healthy_planes"] for e in report.epochs]
        assert healthy == [5, 5, 5, 4, 4, 4]

    def test_unsupported_events_counted(self):
        events = [ScenarioEvent(epoch=1, action="fail_plane", value=0)]
        runner = ScenarioRunner(scripted_scenario(events),
                                make_backend("electronic", 8))
        report = runner.run(seed=0)
        assert report.events_ignored == 1
        assert report.events_applied == 0


class TestAggregates:
    def test_conservation(self):
        report = ScenarioRunner(scripted_scenario(),
                                make_backend("awgr", 8)).run(seed=0)
        assert report.carried_gbps + report.blocked_gbps == (
            pytest.approx(report.offered_gbps))
        assert 0.0 <= report.throughput_ratio <= 1.0
        assert 0.0 <= report.acceptance_ratio <= 1.0

    def test_as_dict_shape(self):
        report = ScenarioRunner(scripted_scenario(),
                                make_backend("wss", 8)).run(seed=0)
        d = report.as_dict()
        assert d["scenario"] == "scripted"
        assert d["fabric"] == "wss"
        assert d["epochs"] == 6
        assert set(d) >= {"offered_gbps", "carried_gbps",
                          "blocked_gbps", "indirect_fraction",
                          "slowdown_p50", "slowdown_p99"}

    def test_slowdown_quantiles_default_when_idle(self):
        scenario = Scenario(
            name="idle", n_nodes=8, n_epochs=2,
            episodes=(Episode(kind="uniform", flows=0),))
        report = ScenarioRunner(scenario,
                                make_backend("awgr", 8)).run(seed=0)
        assert report.slowdown_quantiles() == {0.5: 1.0, 0.99: 1.0}

    def test_zero_offered_run_is_not_a_perfect_fabric(self):
        # Regression: an idle scenario used to report
        # throughput_ratio == 1.0, which read as "perfect fabric" in
        # aggregated CI tables.
        scenario = Scenario(
            name="idle", n_nodes=8, n_epochs=2,
            episodes=(Episode(kind="uniform", flows=0),))
        report = ScenarioRunner(scenario,
                                make_backend("awgr", 8)).run(seed=0)
        assert report.offered_gbps == 0.0
        assert report.throughput_ratio == 0.0
        assert report.as_dict()["throughput_ratio"] == 0.0
        # Same idle-run-reads-as-perfect bug, flow-count flavor: the
        # acceptance ratio of a zero-offered run must be 0.0 too.
        assert report.acceptance_ratio == 0.0
        assert report.as_dict()["acceptance_ratio"] == 0.0


class TestSeedingModes:
    def test_per_epoch_is_the_default_and_matches_batch_at(self):
        scenario = scripted_scenario(
            flows={"dist": "poisson", "mean": 6})
        runner = ScenarioRunner(scenario, make_backend("awgr", 8))
        assert runner.seeding == "per-epoch"
        report = runner.run(seed=3)
        offered = [e.offered for e in report.epochs]
        assert offered == [len(scenario.batch_at(i, base_seed=3))
                           for i in range(scenario.n_epochs)]

    def test_sequential_mode_replays_threaded_generator(self):
        from repro.network.traffic import as_generator
        scenario = scripted_scenario(
            flows={"dist": "poisson", "mean": 6})
        report = ScenarioRunner(scenario, make_backend("awgr", 8),
                                seeding="sequential").run(seed=3)
        rng = as_generator(3)
        expected = [len(scenario.batch(i, rng))
                    for i in range(scenario.n_epochs)]
        assert [e.offered for e in report.epochs] == expected

    def test_modes_differ_for_stochastic_scenarios(self):
        scenario = scripted_scenario(
            flows={"dist": "poisson", "mean": 6})
        per_epoch = ScenarioRunner(scenario,
                                   make_backend("awgr", 8)).run(seed=3)
        sequential = ScenarioRunner(scenario, make_backend("awgr", 8),
                                    seeding="sequential").run(seed=3)
        assert per_epoch.rows() != sequential.rows()

    def test_unknown_mode_rejected(self):
        runner = ScenarioRunner(scripted_scenario(),
                                make_backend("awgr", 8),
                                seeding="bogus")
        with pytest.raises(ValueError, match="seeding"):
            runner.run(seed=0)


class TestRunReplicated:
    def test_ci_over_seeds(self):
        summary = run_replicated(
            scripted_scenario(),
            lambda seed: make_backend("awgr", 8, seed=seed),
            repeats=3, base_seed=10)
        assert summary["offered_gbps"]["n"] == 3.0
        ci = summary["throughput_ratio"]
        assert ci["ci_low"] <= ci["mean"] <= ci["ci_high"]

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            run_replicated(scripted_scenario(),
                           lambda seed: make_backend("awgr", 8),
                           repeats=0)


class TestStepEpochs:
    """The reentrant core: incremental slices == one monolithic run."""

    def event_scenario(self):
        return scripted_scenario(
            events=[ScenarioEvent(epoch=2, action="fail_plane",
                                  value=0),
                    ScenarioEvent(epoch=4, action="repair_plane",
                                  value=0)],
            n_epochs=8, flows={"dist": "poisson", "mean": 6})

    @pytest.mark.parametrize("backend", ["awgr", "wss", "electronic"])
    def test_n_single_steps_equal_one_run(self, backend):
        scenario = self.event_scenario()
        whole = ScenarioRunner(
            scenario, make_backend(backend, 8, seed=4)).run(seed=4)
        runner = ScenarioRunner(scenario,
                                make_backend(backend, 8, seed=4))
        report = None
        for epoch in range(scenario.n_epochs):
            report = runner.step_epochs(epoch, epoch + 1, seed=4,
                                        report=report)
        assert report.rows() == whole.rows()
        assert report.as_dict() == whole.as_dict()

    @pytest.mark.parametrize("backend", ["awgr", "wss", "electronic"])
    def test_uneven_slices_equal_one_run(self, backend):
        scenario = self.event_scenario()
        whole = ScenarioRunner(
            scenario, make_backend(backend, 8, seed=9)).run(seed=9)
        runner = ScenarioRunner(scenario,
                                make_backend(backend, 8, seed=9))
        report = None
        cursor = 0
        for width in (1, 3, 2, 1, 1):
            report = runner.step_epochs(cursor, cursor + width,
                                        seed=9, report=report)
            cursor += width
        assert cursor == scenario.n_epochs
        assert report.rows() == whole.rows()

    def test_sequential_seeding_threads_the_rng(self):
        from repro.network.traffic import as_generator
        scenario = scripted_scenario(
            flows={"dist": "poisson", "mean": 6})
        whole = ScenarioRunner(
            scenario, make_backend("awgr", 8, seed=2),
            seeding="sequential").run(seed=2)
        runner = ScenarioRunner(scenario,
                                make_backend("awgr", 8, seed=2),
                                seeding="sequential")
        rng = as_generator(2)
        report = None
        for epoch in range(scenario.n_epochs):
            report = runner.step_epochs(epoch, epoch + 1, seed=2,
                                        report=report, rng=rng)
        assert report.rows() == whole.rows()

    def test_sequential_without_rng_rejected(self):
        runner = ScenarioRunner(scripted_scenario(),
                                make_backend("awgr", 8),
                                seeding="sequential")
        with pytest.raises(ValueError, match="rng"):
            runner.step_epochs(0, 1)

    def test_range_validation(self):
        runner = ScenarioRunner(scripted_scenario(),
                                make_backend("awgr", 8))
        with pytest.raises(ValueError, match="epoch range"):
            runner.step_epochs(4, 2)
        with pytest.raises(ValueError, match="epoch range"):
            runner.step_epochs(0, 7)
        with pytest.raises(ValueError, match="epoch range"):
            runner.step_epochs(-1, 2)
