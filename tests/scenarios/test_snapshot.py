"""Per-backend snapshot/restore round trips (the carry-mode contract).

For every fabric backend: ``restore(snapshot())`` on an identically
configured fresh instance, then N epochs, must be bit-identical to
stepping the original instance those N epochs without the round trip —
including after ``fail_plane``/``repair_plane`` events and with batch
admission both on and off. All snapshots are pushed through the result
cache's JSON encoding first, exactly as the sharded runner stores them.
"""

import pytest

from repro.experiments.cache import decode_metrics, encode_metrics
from repro.scenarios import (
    Episode,
    Scenario,
    ScenarioEvent,
    make_backend,
)

N_NODES = 10


def json_round_trip(snapshot: dict) -> dict:
    return decode_metrics(encode_metrics(snapshot))


def scenario_with_events(n_epochs=8):
    return Scenario(
        name="snapshot-probe", n_nodes=N_NODES, n_epochs=n_epochs,
        episodes=(
            Episode(kind="uniform",
                    flows={"dist": "poisson", "mean": 8}, gbps=25.0),
            Episode(kind="hotspot",
                    flows={"dist": "pareto", "minimum": 3,
                           "alpha": 1.5},
                    gbps=75.0, params={"hotspot": 0}),
        ),
        events=(
            ScenarioEvent(epoch=1, action="fail_plane", value=0),
            ScenarioEvent(epoch=2, action="set_reconfig_time",
                          value=0.05),
            ScenarioEvent(epoch=5, action="repair_plane", value=0),
        ))


def drive(backend, scenario, start, stop, base_seed=3):
    """Step epochs [start, stop) with events, exactly as runners do."""
    reports = []
    for epoch in range(start, stop):
        for event in scenario.events_at(epoch):
            backend.apply_event(event)
        reports.append(backend.step(scenario.batch_at(epoch, base_seed)))
    return [r.to_dict() for r in reports]


def backend_under_test(name, **params):
    return make_backend(name, N_NODES, seed=7, **params)


BACKEND_PARAMS = [
    ("awgr", {"batch_admission": True}),
    ("awgr", {"batch_admission": False}),
    ("wss", {"n_switches": 3, "wavelengths_per_port": 8,
             "reconfig_period": 2}),
    ("electronic", {}),
    ("full_mesh", {"links_per_pair": 2, "gbps_per_link": 40.0}),
    ("dragonfly", {"n_groups": 5, "routing": "minimal",
                   "gbps_per_global_link": 25.0}),
    ("dragonfly", {"n_groups": 5, "routing": "valiant",
                   "gbps_per_global_link": 25.0}),
]


@pytest.mark.parametrize("name,params", BACKEND_PARAMS)
class TestBackendSnapshotRoundTrip:
    def test_restore_then_epochs_bit_identical(self, name, params):
        scenario = scenario_with_events()
        split = 4
        original = backend_under_test(name, **params)
        drive(original, scenario, 0, split)
        snap = json_round_trip(original.snapshot())

        tail_a = drive(original, scenario, split, scenario.n_epochs)
        restored = backend_under_test(name, **params)
        restored.restore(snap)
        tail_b = drive(restored, scenario, split, scenario.n_epochs)
        assert tail_a == tail_b

    def test_snapshot_between_fail_and_repair(self, name, params):
        # The boundary lands at epoch 3: plane 0 failed at 1, repair
        # not until 5 — restored state must still know the failure.
        scenario = scenario_with_events()
        split = 3
        original = backend_under_test(name, **params)
        drive(original, scenario, 0, split)
        restored = backend_under_test(name, **params)
        restored.restore(json_round_trip(original.snapshot()))
        assert (drive(original, scenario, split, scenario.n_epochs)
                == drive(restored, scenario, split, scenario.n_epochs))

    def test_wrong_backend_snapshot_rejected(self, name, params):
        other = {"awgr": "electronic"}.get(name, "awgr")
        snap = backend_under_test(other).snapshot()
        with pytest.raises(ValueError, match="backend"):
            backend_under_test(name, **params).restore(snap)
