"""The backend plugin registry (one source of truth for names)."""

import pytest

from repro.scenarios import FabricBackend
from repro.scenarios.registry import (
    _REGISTRY,
    available_backends,
    backend_info,
    make_backend,
    register_backend,
)

#: Backends this PR sequence guarantees are always registered.
CORE_BACKENDS = ("awgr", "dragonfly", "electronic", "full_mesh", "wss")


class TestAvailableBackends:
    def test_sorted_and_complete(self):
        names = available_backends()
        assert list(names) == sorted(names)
        assert set(CORE_BACKENDS) <= set(names)

    def test_info_matches_name(self):
        for name in available_backends():
            info = backend_info(name)
            assert info.name == name
            assert isinstance(info.cls, type)

    def test_capability_flags(self):
        # The electronic comparator ignores plane events; everything
        # else honours them. Every core backend has a vectorized twin
        # and a power model.
        for name in CORE_BACKENDS:
            caps = backend_info(name).capabilities()
            assert caps["batch_step"] is True
            assert caps["power"] is True
            assert caps["fail_plane"] is (name != "electronic")


class TestBackendInfoLookup:
    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError) as err:
            backend_info("quantum")
        message = str(err.value)
        assert "quantum" in message
        for name in CORE_BACKENDS:
            assert name in message


class TestRegisterBackend:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_backend("awgr")
            class Dupe:  # pragma: no cover - never constructed
                pass

    def test_plugin_registration_end_to_end(self):
        """A decorated class is immediately constructible by name —
        the add-a-backend contract the README documents."""

        @register_backend("_probe", description="test-only",
                          fail_plane=False, power=False,
                          defaults={"links_per_pair": 1})
        class ProbeBackend:
            def __init__(self, n_nodes, links_per_pair=9):
                self.n_nodes = n_nodes
                self.links_per_pair = links_per_pair
                self.name = "_probe"

            def step(self, flows):  # pragma: no cover - protocol stub
                raise NotImplementedError

            def apply_event(self, event):
                return False

            def snapshot(self):
                return {"backend": self.name}

            def restore(self, state):
                pass

        try:
            assert "_probe" in available_backends()
            built = make_backend("_probe", n_nodes=6, seed=3)
            assert built.n_nodes == 6
            # Registry defaults apply under caller overrides.
            assert built.links_per_pair == 1
            assert make_backend("_probe", 6,
                                links_per_pair=7).links_per_pair == 7
        finally:
            _REGISTRY.pop("_probe")
        assert "_probe" not in available_backends()


class TestMakeBackendSeeding:
    @pytest.mark.parametrize("name", CORE_BACKENDS)
    def test_constructs_protocol_instances(self, name):
        backend = make_backend(name, n_nodes=8, seed=1)
        assert isinstance(backend, FabricBackend)
        assert backend.name == name

    def test_seed_routed_to_declared_param(self):
        assert make_backend("awgr", 8, seed=5).rng_seed == 5
        assert make_backend("dragonfly", 8, seed=5).rng_seed == 5

    def test_explicit_seed_override_wins(self):
        backend = make_backend("dragonfly", 8, seed=5, rng_seed=11)
        assert backend.rng_seed == 11

    def test_seed_ignored_by_deterministic_backends(self):
        # No seed_param declared: the seed must not leak into the
        # constructor as an unexpected keyword.
        assert make_backend("full_mesh", 8, seed=5).name == "full_mesh"
        assert make_backend("wss", 8, seed=5).name == "wss"
