"""Sharded scenario execution: per-epoch seed invariance, chunked
equivalence, checkpointing, interrupt + resume, and carry-mode
(snapshot-carried) chunk boundaries."""

import pytest

from repro.experiments import ResultCache
from repro.experiments.cache import decode_metrics, encode_metrics
from repro.scenarios import (
    BACKENDS,
    SCENARIOS,
    Episode,
    EpochReport,
    Scenario,
    ScenarioEvent,
    ScenarioRunner,
    ShardedScenarioRunner,
    chunk_backend_seed,
    chunk_ranges,
    derive_epoch_seed,
    execute_chunk,
    make_backend,
)


def small_scenario(n_epochs=6):
    return Scenario(
        name="shardable", n_nodes=8, n_epochs=n_epochs,
        episodes=(
            Episode(kind="uniform",
                    flows={"dist": "poisson", "mean": 6}),
            Episode(kind="hotspot", start=2,
                    flows={"dist": "pareto", "minimum": 3,
                           "alpha": 1.5},
                    params={"hotspot": 1}),
        ),
        events=(
            ScenarioEvent(epoch=1, action="fail_plane", value=0),
            ScenarioEvent(epoch=4, action="repair_plane", value=0),
        ))


class TestDeriveEpochSeed:
    def test_deterministic(self):
        assert (derive_epoch_seed("s", 3, 7)
                == derive_epoch_seed("s", 3, 7))

    def test_distinct_across_epochs_names_seeds_streams(self):
        seeds = {derive_epoch_seed("s", e, 0) for e in range(64)}
        assert len(seeds) == 64
        assert (derive_epoch_seed("s", 0, 0)
                != derive_epoch_seed("t", 0, 0))
        assert (derive_epoch_seed("s", 0, 0)
                != derive_epoch_seed("s", 0, 1))
        assert (derive_epoch_seed("s", 0, 0)
                != derive_epoch_seed("s", 0, 0, stream="backend"))

    def test_accepts_scenario_or_name(self):
        scenario = small_scenario()
        assert (derive_epoch_seed(scenario, 2, 5)
                == derive_epoch_seed("shardable", 2, 5))

    def test_chunk0_backend_seed_is_the_base_seed(self):
        # Keeps a single-chunk replay bit-identical to the plain
        # `repro scenario --seed N` run, which builds its backend
        # with seed=N.
        assert chunk_backend_seed("s", 0, 11) == 11
        assert chunk_backend_seed("s", 720, 11) != 11
        assert (chunk_backend_seed("s", 720, 11)
                == chunk_backend_seed("s", 720, 11))


class TestShardInvariance:
    """Satellite acceptance: epoch batches for ``[k, n)`` must be
    bit-identical whether or not epochs ``[0, k)`` were generated
    first, across all registered scenarios."""

    def test_registered_scenarios_generate_suffixes_independently(self):
        for scenario in SCENARIOS.values():
            n = min(scenario.n_epochs, 8)
            k = n // 2
            full = scenario.batches_range(0, n, base_seed=3)
            suffix = scenario.batches_range(k, n, base_seed=3)
            assert suffix == full[k:], scenario.name

    def test_single_epoch_matches_any_order(self):
        scenario = small_scenario()
        later = scenario.batch_at(4, base_seed=9)
        scenario.batch_at(0, base_seed=9)  # draws change nothing
        scenario.batch_at(2, base_seed=9)
        assert scenario.batch_at(4, base_seed=9) == later

    def test_sequential_mode_is_order_dependent(self):
        # The compatibility mode deliberately keeps the historical
        # behavior: one generator threads through the epochs, so
        # suffixes are NOT independent of the prefix.
        scenario = small_scenario()
        full = scenario.batches(3)
        from repro.network.traffic import as_generator
        alone = scenario.batch(4, as_generator(3))
        assert alone != full[4]

    def test_range_validation(self):
        with pytest.raises(ValueError):
            small_scenario(4).batches_range(2, 6)


class TestChunkRanges:
    def test_even_and_ragged_splits(self):
        assert chunk_ranges(6, 2) == [(0, 2), (2, 4), (4, 6)]
        assert chunk_ranges(7, 3) == [(0, 3), (3, 6), (6, 7)]
        assert chunk_ranges(3, 10) == [(0, 3)]

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_ranges(0, 2)
        with pytest.raises(ValueError):
            chunk_ranges(5, 0)


class TestEpochReportRoundTrip:
    def test_to_from_dict_through_cache_json(self):
        report = EpochReport(epoch=3, offered=5, carried=4, blocked=1,
                             indirect=2, offered_gbps=125.0,
                             carried_gbps=100.0,
                             slowdowns=[1.0, 2.0, 2.0, 3.0],
                             extras={"healthy_planes": 4})
        decoded = EpochReport.from_dict(
            decode_metrics(encode_metrics(report.to_dict())))
        assert decoded == report


class TestChunkedEquivalence:
    def test_single_chunk_matches_monolithic_per_epoch_run(self):
        # Exactly the `repro scenario X --seed 5` backend: chunk 0
        # uses base_seed directly, so --shards over one chunk must
        # reproduce the plain run bit for bit.
        scenario = small_scenario()
        backend = make_backend("awgr", scenario.n_nodes, seed=5)
        mono = ScenarioRunner(scenario, backend).run(seed=5)
        sharded = ShardedScenarioRunner(
            scenario, "awgr", chunk_epochs=scenario.n_epochs,
            base_seed=5).run()
        merged = sharded.report()
        assert merged.as_dict() == mono.as_dict()
        assert merged.rows() == mono.rows()

    def test_shard_count_never_changes_aggregates(self, tmp_path):
        scenario = small_scenario()
        single = ShardedScenarioRunner(
            scenario, "awgr", chunk_epochs=2, base_seed=1).run()
        cache = ResultCache(tmp_path)
        for index in range(3):  # three "machines", one shared cache
            ShardedScenarioRunner(
                scenario, "awgr", chunk_epochs=2, shards=3,
                shard_index=index, base_seed=1, cache=cache).run()
        assembled = ShardedScenarioRunner(
            scenario, "awgr", chunk_epochs=2, shards=3, base_seed=1,
            cache=cache).run(resume=True)
        assert assembled.n_cached == len(assembled.chunks)
        assert (assembled.report().as_dict()
                == single.report().as_dict())
        assert assembled.report().rows() == single.report().rows()

    def test_pool_workers_match_inline(self):
        scenario = small_scenario()
        inline = ShardedScenarioRunner(
            scenario, "awgr", chunk_epochs=2, base_seed=1).run()
        pooled = ShardedScenarioRunner(
            scenario, "awgr", chunk_epochs=2, base_seed=1,
            workers=2).run()
        assert pooled.report().as_dict() == inline.report().as_dict()

    def test_event_totals_match_monolithic(self):
        # fail at 1 / repair at 4 land in different chunks; the
        # repair chunk replays the failure for state but must not
        # recount it.
        scenario = small_scenario()
        sharded = ShardedScenarioRunner(
            scenario, "awgr", chunk_epochs=2, base_seed=0).run()
        merged = sharded.report()
        assert merged.events_applied == 2
        assert merged.events_ignored == 0
        healthy = [e.extras["healthy_planes"] for e in merged.epochs]
        assert healthy == [5, 4, 4, 4, 5, 5]


class TestInterruptResume:
    def test_partial_shard_then_resume_recomputes_only_the_rest(
            self, tmp_path):
        scenario = small_scenario()
        cache = ResultCache(tmp_path)
        kwargs = dict(chunk_epochs=2, shards=2, base_seed=4,
                      cache=cache)
        # "Interrupt": only shard 0 ever ran before the crash.
        first = ShardedScenarioRunner(
            scenario, "awgr", shard_index=0, **kwargs).run()
        assert first.n_computed == 2 and first.n_pending == 1
        assert not first.complete
        with pytest.raises(RuntimeError, match="incomplete"):
            first.report()
        # Resume from the checkpoints: shard 0's chunks load, only
        # the missing chunk is computed.
        resumed = ShardedScenarioRunner(
            scenario, "awgr", **kwargs).run(resume=True)
        assert resumed.n_cached == 2 and resumed.n_computed == 1
        fresh = ShardedScenarioRunner(
            scenario, "awgr", chunk_epochs=2, base_seed=4).run()
        assert resumed.report().as_dict() == fresh.report().as_dict()

    def test_resume_false_recomputes_and_refreshes(self, tmp_path):
        scenario = small_scenario()
        cache = ResultCache(tmp_path)
        runner = ShardedScenarioRunner(scenario, "awgr",
                                       chunk_epochs=3, base_seed=0,
                                       cache=cache)
        runner.run()
        refreshed = runner.run(resume=False)
        assert refreshed.n_computed == len(refreshed.chunks)
        assert refreshed.n_cached == 0

    def test_chunk_size_is_part_of_the_checkpoint_identity(
            self, tmp_path):
        scenario = small_scenario()
        cache = ResultCache(tmp_path)
        ShardedScenarioRunner(scenario, "awgr", chunk_epochs=2,
                              base_seed=0, cache=cache).run()
        other = ShardedScenarioRunner(scenario, "awgr", chunk_epochs=3,
                                      base_seed=0, cache=cache
                                      ).run(resume=True)
        assert other.n_cached == 0  # no cross-granularity reuse

    def test_failed_chunk_recorded_not_raised(self, tmp_path):
        scenario = small_scenario()
        # Failing the last WSS switch raises inside the backend; the
        # runner must record the chunk failure and keep going.
        result = ShardedScenarioRunner(
            scenario, "wss", backend_params={"n_switches": 1},
            chunk_epochs=2, base_seed=0).run()
        assert result.n_failed >= 1
        assert not result.complete
        failed = [c for c in result.chunks if c.state == "failed"]
        assert "RuntimeError" in failed[0].error


def sustained_scenario(n_epochs=9):
    """Capacity-bound load whose in-flight flows cross boundaries.

    The 125 Gbps hotspot flows occupy 5 sub-slots for 2 epochs each,
    so a reset boundary (which drops them) visibly changes the next
    chunk's admission — the probe that separates carry from reset.
    """
    return Scenario(
        name="sustained", n_nodes=10, n_epochs=n_epochs,
        episodes=(
            Episode(kind="uniform",
                    flows={"dist": "poisson", "mean": 12}, gbps=25.0),
            Episode(kind="hotspot", flows=6, gbps=125.0,
                    params={"hotspot": 0}),
        ),
        events=(
            ScenarioEvent(epoch=2, action="fail_plane", value=0),
            ScenarioEvent(epoch=6, action="repair_plane", value=0),
        ))


class TestCarryBoundaries:
    """Tentpole acceptance: carry-mode chunked replays are bit-exact."""

    def test_carry_matches_monolithic_all_scenarios_and_backends(self):
        # The full acceptance matrix: every registered scenario x
        # every backend, chunked with carried snapshots, must merge
        # to the monolithic run bit for bit (aggregates AND rows).
        for scenario in SCENARIOS.values():
            trimmed = scenario.with_epochs(min(scenario.n_epochs, 8))
            for backend in BACKENDS:
                mono = ScenarioRunner(
                    trimmed,
                    make_backend(backend, trimmed.n_nodes, seed=3),
                ).run(seed=3)
                merged = ShardedScenarioRunner(
                    trimmed, backend, chunk_epochs=3,
                    boundary="carry", base_seed=3).run().report()
                assert merged.as_dict() == mono.as_dict(), \
                    (scenario.name, backend)
                assert merged.rows() == mono.rows(), \
                    (scenario.name, backend)

    def test_carry_exact_where_reset_drifts(self):
        # The bug this PR fixes: under sustained load, reset-mode
        # boundaries drop in-flight flows and the merged aggregates
        # drift from the monolithic run; carry mode must not.
        scenario = sustained_scenario()
        mono = ScenarioRunner(
            scenario, make_backend("awgr", scenario.n_nodes, seed=0),
        ).run(seed=0).as_dict()
        carry = ShardedScenarioRunner(
            scenario, "awgr", chunk_epochs=3,
            boundary="carry", base_seed=0).run().report().as_dict()
        reset = ShardedScenarioRunner(
            scenario, "awgr", chunk_epochs=3,
            boundary="reset", base_seed=0).run().report().as_dict()
        assert carry == mono
        assert reset != mono  # the drift carry mode exists to remove

    def test_carry_chunk_size_invariance(self):
        scenario = sustained_scenario()
        reports = [
            ShardedScenarioRunner(
                scenario, "awgr", chunk_epochs=chunk,
                boundary="carry", base_seed=5).run().report().as_dict()
            for chunk in (1, 2, 4, scenario.n_epochs)]
        assert all(r == reports[0] for r in reports[1:])

    def test_carry_pipelines_across_shards_via_shared_cache(
            self, tmp_path):
        # A shard can only compute a chunk once its predecessor's
        # checkpoint exists: alternating shard passes over one cache
        # converge on the full replay, bit-identical to monolithic.
        scenario = sustained_scenario()
        cache = ResultCache(tmp_path)
        kwargs = dict(chunk_epochs=2, boundary="carry", base_seed=1,
                      cache=cache)
        first = ShardedScenarioRunner(scenario, "awgr", shards=2,
                                      shard_index=0, **kwargs).run()
        # Owns chunks 0, 2, 4 but can only run chunk 0: chunk 1's
        # snapshot does not exist yet.
        assert first.n_computed == 1
        assert first.chunks[0].state == "computed"
        assert all(c.state == "pending" for c in first.chunks[1:])
        for _ in range(len(first.chunks)):
            for index in range(2):
                ShardedScenarioRunner(scenario, "awgr", shards=2,
                                      shard_index=index,
                                      **kwargs).run(resume=True)
        assembled = ShardedScenarioRunner(
            scenario, "awgr", shards=2, **kwargs).run(resume=True)
        assert assembled.complete
        assert assembled.n_cached == len(assembled.chunks)
        mono = ScenarioRunner(
            scenario, make_backend("awgr", scenario.n_nodes, seed=1),
        ).run(seed=1)
        assert assembled.report().as_dict() == mono.as_dict()

    def test_carry_resume_restores_last_checkpointed_snapshot(
            self, tmp_path):
        # "Interrupt" after the first chunk; the resume pass must
        # restore its snapshot rather than recompute it, and still
        # match an uninterrupted carry run.
        scenario = sustained_scenario()
        cache = ResultCache(tmp_path)
        kwargs = dict(chunk_epochs=4, boundary="carry", base_seed=2,
                      cache=cache)
        partial = ShardedScenarioRunner(scenario, "awgr", shards=3,
                                        shard_index=0, **kwargs).run()
        assert partial.n_computed == 1 and not partial.complete
        resumed = ShardedScenarioRunner(scenario, "awgr",
                                        **kwargs).run(resume=True)
        assert resumed.n_cached == 1
        assert resumed.n_computed == len(resumed.chunks) - 1
        uninterrupted = ShardedScenarioRunner(
            scenario, "awgr", chunk_epochs=4, boundary="carry",
            base_seed=2).run()
        assert (resumed.report().as_dict()
                == uninterrupted.report().as_dict())

    def test_carry_and_reset_checkpoints_never_mix(self, tmp_path):
        scenario = sustained_scenario()
        cache = ResultCache(tmp_path)
        ShardedScenarioRunner(scenario, "awgr", chunk_epochs=3,
                              boundary="carry", base_seed=0,
                              cache=cache).run()
        reset = ShardedScenarioRunner(scenario, "awgr", chunk_epochs=3,
                                      boundary="reset", base_seed=0,
                                      cache=cache).run(resume=True)
        assert reset.n_cached == 0  # no cross-mode reuse

    def test_carry_failed_chunk_blocks_successors(self):
        # Failing the last WSS switch raises at epoch 1, inside chunk
        # 0; every later chunk must stay pending (its predecessor
        # snapshot is gone), never continue from wrong state.
        scenario = small_scenario()
        result = ShardedScenarioRunner(
            scenario, "wss", backend_params={"n_switches": 1},
            chunk_epochs=2, boundary="carry", base_seed=0).run()
        states = [c.state for c in result.chunks]
        assert states[0] == "failed"
        assert all(s == "pending" for s in states[1:])
        assert not result.complete

    def test_carry_chunk_without_snapshot_rejected(self):
        scenario = small_scenario()
        with pytest.raises(ValueError, match="snapshot"):
            execute_chunk(scenario.to_config(), "awgr", {}, 2, 4,
                          base_seed=0, boundary="carry")

    def test_unknown_boundary_rejected(self):
        with pytest.raises(ValueError, match="boundary"):
            ShardedScenarioRunner(small_scenario(), boundary="merge")
        with pytest.raises(ValueError, match="boundary"):
            execute_chunk(small_scenario().to_config(), "awgr", {},
                          0, 2, base_seed=0, boundary="merge")


class TestEventsReplayed:
    """Satellite: replay counters count *applied* events only."""

    def test_ignored_events_do_not_count_as_replayed(self):
        # The electronic backend supports no events: replaying the
        # pre-chunk script applies nothing, so events_replayed must be
        # 0 (the old code counted every scripted event).
        scenario = small_scenario()
        payload = execute_chunk(scenario.to_config(), "electronic",
                                {}, 4, 6, base_seed=0)
        assert payload["events_replayed"] == 0
        # The AWGR backend applies both the failure and the repair.
        payload = execute_chunk(scenario.to_config(), "awgr", {},
                                5, 6, base_seed=0)
        assert payload["events_replayed"] == 2

    def test_rows_surface_replay_cost(self):
        scenario = small_scenario()
        result = ShardedScenarioRunner(scenario, "awgr",
                                       chunk_epochs=2,
                                       base_seed=0).run()
        rows = result.rows()
        # fail_plane@1 precedes chunks 1 and 2; repair_plane@4 fires
        # *inside* chunk 2, so it is applied there, not replayed.
        assert [r["events_replayed"] for r in rows] == [0, 1, 1]
        carry_rows = ShardedScenarioRunner(
            scenario, "awgr", chunk_epochs=2, boundary="carry",
            base_seed=0).run().rows()
        assert [r["events_replayed"] for r in carry_rows] == [0, 0, 0]


class TestValidation:
    def test_shard_index_range(self):
        with pytest.raises(ValueError):
            ShardedScenarioRunner(small_scenario(), shards=2,
                                  shard_index=2)

    def test_workers_positive(self):
        with pytest.raises(ValueError):
            ShardedScenarioRunner(small_scenario(), workers=0)


class TestErrorContext:
    """Satellite: chunk failures name the scenario and chunk/epochs.

    A bare config-mismatch ValueError from ``restore`` used to print
    only the two config dicts; week-scale sweeps need to know *which*
    scenario and chunk rejected the carried snapshot.
    """

    def test_restore_mismatch_names_scenario_and_epochs(self):
        scenario = small_scenario()
        foreign = make_backend("awgr", 4, seed=0).snapshot()
        with pytest.raises(ValueError) as excinfo:
            execute_chunk(scenario.to_config(), "awgr", {}, 2, 4,
                          base_seed=0, boundary="carry",
                          snapshot=foreign)
        message = str(excinfo.value)
        assert "scenario 'shardable'" in message
        assert "epochs [2, 4)" in message
        assert "cannot restore the carried snapshot" in message
        # The underlying mismatch diagnostic still names the fields.
        assert "differing fields" in message
        assert "n_nodes" in message

    def test_mismatch_message_lists_only_differing_fields(self):
        mine = make_backend("awgr", 8, seed=0)
        foreign = make_backend("awgr", 4, seed=0).snapshot()
        with pytest.raises(ValueError, match=r"differing fields"):
            mine.restore(foreign)
        try:
            mine.restore(foreign)
        except ValueError as exc:
            fields = str(exc).split("differing fields: ")[1]
            fields = fields.split("]")[0]
            assert "n_nodes" in fields
            assert "n_planes" not in fields  # equal in both configs

    def test_carry_chunk_error_names_chunk_and_scenario(self):
        # Failing the only WSS switch raises inside the backend; the
        # recorded error must locate the chunk, not just repeat the
        # exception text.
        result = ShardedScenarioRunner(
            small_scenario(), "wss", backend_params={"n_switches": 1},
            chunk_epochs=2, boundary="carry", base_seed=0).run()
        failed = [c for c in result.chunks if c.state == "failed"]
        assert failed[0].error.startswith(
            f"chunk {failed[0].index} of scenario 'shardable': ")

    def test_reset_chunk_error_names_chunk_and_scenario(self):
        result = ShardedScenarioRunner(
            small_scenario(), "wss", backend_params={"n_switches": 1},
            chunk_epochs=2, base_seed=0).run()
        failed = [c for c in result.chunks if c.state == "failed"]
        assert failed[0].error.startswith(
            f"chunk {failed[0].index} of scenario 'shardable': ")
