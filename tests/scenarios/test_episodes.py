"""Episodes: samplers, envelopes, flow generation."""

import numpy as np
import pytest

from repro.scenarios.episodes import (
    EPISODE_KINDS,
    Episode,
    envelope_value,
    sample_count,
)


class TestSampleCount:
    def test_plain_int_is_fixed(self):
        rng = np.random.default_rng(0)
        assert sample_count(7, rng) == 7

    def test_fixed_dict(self):
        rng = np.random.default_rng(0)
        assert sample_count({"dist": "fixed", "value": 3}, rng) == 3

    def test_poisson_mean(self):
        rng = np.random.default_rng(1)
        draws = [sample_count({"dist": "poisson", "mean": 10}, rng)
                 for _ in range(2000)]
        assert 9.5 < np.mean(draws) < 10.5

    def test_lognormal_median(self):
        rng = np.random.default_rng(2)
        draws = [sample_count({"dist": "lognormal", "median": 8,
                               "sigma": 0.5}, rng)
                 for _ in range(2000)]
        assert 7 <= np.median(draws) <= 9

    def test_pareto_heavy_tail(self):
        rng = np.random.default_rng(3)
        draws = [sample_count({"dist": "pareto", "minimum": 5,
                               "alpha": 1.5}, rng)
                 for _ in range(2000)]
        assert min(draws) >= 5
        # Heavy tail: the max dwarfs the median.
        assert max(draws) > 5 * np.median(draws)

    def test_negative_fixed_rejected(self):
        with pytest.raises(ValueError):
            sample_count(-1, np.random.default_rng(0))

    def test_unknown_dist_rejected(self):
        with pytest.raises(ValueError):
            sample_count({"dist": "cauchy"}, np.random.default_rng(0))


class TestEnvelope:
    def test_none_is_unity(self):
        assert envelope_value(None, 3, 10) == 1.0

    def test_constant(self):
        assert envelope_value({"kind": "constant", "value": 0.4},
                              0, 10) == 0.4

    def test_ramp_endpoints(self):
        spec = {"kind": "ramp", "start": 0.0, "end": 1.0}
        assert envelope_value(spec, 0, 11) == 0.0
        assert envelope_value(spec, 10, 11) == 1.0
        assert envelope_value(spec, 5, 11) == pytest.approx(0.5)

    def test_diurnal_trough_and_peak(self):
        spec = {"kind": "diurnal", "period": 24, "low": 0.2,
                "high": 1.0}
        assert envelope_value(spec, 0, 24) == pytest.approx(0.2)
        assert envelope_value(spec, 12, 24) == pytest.approx(1.0)
        # Periodic.
        assert envelope_value(spec, 24, 48) == pytest.approx(0.2)

    def test_burst_duty_cycle(self):
        spec = {"kind": "burst", "period": 4, "duty": 0.5,
                "low": 0.0, "high": 1.0}
        values = [envelope_value(spec, t, 8) for t in range(8)]
        assert values == [1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            envelope_value({"kind": "square"}, 0, 10)


class TestEpisode:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Episode(kind="chaos")

    def test_activity_window(self):
        ep = Episode(kind="uniform", start=2, duration=3)
        assert [ep.active(e) for e in range(7)] == [
            False, False, True, True, True, False, False]

    def test_open_ended_runs_to_scenario_end(self):
        ep = Episode(kind="uniform", start=1)
        assert ep.active(1_000_000)

    def test_inactive_epoch_emits_nothing(self):
        ep = Episode(kind="uniform", start=5, flows=4)
        assert ep.generate(0, 10, 8, np.random.default_rng(0)) == []

    def test_uniform_generation_count_and_bounds(self):
        ep = Episode(kind="uniform", flows=12, gbps=10.0)
        flows = ep.generate(0, 10, 8, np.random.default_rng(0))
        assert len(flows) == 12
        assert all(0 <= f.src < 8 and 0 <= f.dst < 8 for f in flows)
        assert all(f.gbps == 10.0 for f in flows)

    def test_hotspot_targets_param(self):
        ep = Episode(kind="hotspot", flows=6, params={"hotspot": 3})
        flows = ep.generate(0, 10, 8, np.random.default_rng(0))
        assert all(f.dst == 3 for f in flows)

    def test_envelope_scales_count(self):
        ep = Episode(kind="uniform", flows=10,
                     envelope={"kind": "constant", "value": 0.5})
        flows = ep.generate(0, 10, 8, np.random.default_rng(0))
        assert len(flows) == 5

    def test_zero_intensity_emits_nothing(self):
        ep = Episode(kind="collective",
                     envelope={"kind": "constant", "value": 0.0})
        assert ep.generate(0, 10, 8, np.random.default_rng(0)) == []

    def test_collective_ring_over_nodes(self):
        ep = Episode(kind="collective", gbps=50.0,
                     params={"nodes": [0, 1, 2]})
        flows = ep.generate(0, 10, 8, np.random.default_rng(0))
        assert [(f.src, f.dst) for f in flows] == [(0, 1), (1, 2),
                                                   (2, 0)]
        assert all(f.gbps == 50.0 for f in flows)

    def test_collective_envelope_scales_gbps(self):
        ep = Episode(kind="collective", gbps=50.0,
                     envelope={"kind": "constant", "value": 0.5},
                     params={"nodes": [0, 1]})
        flows = ep.generate(0, 10, 8, np.random.default_rng(0))
        assert all(f.gbps == 25.0 for f in flows)

    def test_cpu_mem_defaults_split_rack(self):
        ep = Episode(kind="cpu-mem")
        flows = ep.generate(0, 10, 8, np.random.default_rng(0))
        assert len(flows) == 4
        assert all(f.src < 4 <= f.dst for f in flows)

    def test_cori_replay_resamples_per_epoch(self):
        ep = Episode(kind="cori-replay",
                     params={"peak_gbps": 1000.0})
        rng = np.random.default_rng(0)
        a = ep.generate(0, 10, 8, rng)
        b = ep.generate(1, 10, 8, rng)
        assert [f.gbps for f in a] != [f.gbps for f in b]
        assert all(f.kind == "cori-replay" for f in a)

    def test_two_node_rack_pairs_cleanly(self):
        # Default node split on the smallest legal rack must not
        # self-pair.
        for kind in ("cpu-mem", "gpu-hbm", "cori-replay"):
            flows = Episode(kind=kind).generate(
                0, 4, 2, np.random.default_rng(0))
            assert flows
            assert all(f.src != f.dst for f in flows)

    def test_full_rack_node_set_rejected_clearly(self):
        ep = Episode(kind="gpu-hbm",
                     params={"nodes": list(range(8))})
        with pytest.raises(ValueError, match="no peer nodes"):
            ep.generate(0, 4, 8, np.random.default_rng(0))

    def test_every_kind_generates(self):
        rng = np.random.default_rng(0)
        for kind in EPISODE_KINDS:
            flows = Episode(kind=kind, flows=4).generate(0, 10, 8, rng)
            assert isinstance(flows, list)
            assert all(f.src != f.dst for f in flows)


class TestGenerateBatchTwin:
    """generate is the object view of generate_batch (SIM006): same
    flows, same RNG consumption, for every episode kind."""

    EPISODES = [
        Episode(kind="uniform", flows={"dist": "poisson", "mean": 12},
                gbps=20.0),
        Episode(kind="hotspot", flows=9, params={"hotspot": 3}),
        Episode(kind="cpu-mem", envelope={"kind": "ramp", "start": 0.2,
                                          "end": 1.0}, duration=8),
        Episode(kind="gpu-hbm", params={"nodes": [0, 1, 2]}),
        Episode(kind="collective", params={"nodes": [1, 3, 5]}),
        Episode(kind="cori-replay", params={"peak_gbps": 512.0}),
    ]

    @pytest.mark.parametrize("episode", EPISODES,
                             ids=[e.kind for e in EPISODES])
    def test_same_flows_and_rng_stream(self, episode):
        for epoch in (0, 3, 7):
            rng_a = np.random.default_rng(42)
            rng_b = np.random.default_rng(42)
            flows = episode.generate(epoch, 16, 8, rng_a)
            batch = episode.generate_batch(epoch, 16, 8, rng_b)
            assert flows == batch.to_flows()
            # Both twins consumed the identical RNG stream.
            assert (rng_a.integers(0, 1 << 30)
                    == rng_b.integers(0, 1 << 30))

    def test_inactive_epoch_is_empty_in_both(self):
        episode = Episode(kind="uniform", start=5, duration=2, flows=4)
        rng = np.random.default_rng(0)
        assert episode.generate(0, 16, 8, rng) == []
        assert len(episode.generate_batch(0, 16, 8, rng)) == 0
