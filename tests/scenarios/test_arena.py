"""One-pass arena == M independent runs (the tentpole invariant)."""

import json

import pytest

from repro.scenarios import (
    ScenarioRunner,
    available_backends,
    make_backend,
)
from repro.scenarios.arena import run_arena
from repro.scenarios.library import get_scenario

SEED = 5


@pytest.fixture(scope="module")
def arena():
    """One full-field race over the demo scenario, shared by the
    equivalence assertions below."""
    return run_arena(get_scenario("demo"), seed=SEED)


class TestOnePassEquivalence:
    def test_races_every_registered_backend(self, arena):
        assert arena.backends == available_backends()

    @pytest.mark.parametrize("name", available_backends())
    def test_bit_identical_to_independent_run(self, arena, name):
        """The load-bearing claim: sharing one generated batch per
        epoch across contenders changes nothing — each backend's
        report stream is bit-identical to its own solo
        ScenarioRunner run."""
        scenario = get_scenario("demo")
        solo = ScenarioRunner(
            scenario,
            make_backend(name, scenario.n_nodes, seed=SEED),
        ).run(seed=SEED)
        raced = arena.reports[name]
        assert ([e.to_dict() for e in raced.epochs]
                == [e.to_dict() for e in solo.epochs])
        assert raced.as_dict() == solo.as_dict()

    def test_events_applied_per_capability(self, arena):
        # demo scripts one fail_plane event: honoured by plane-aware
        # backends, counted as ignored by the electronic comparator.
        assert arena.reports["awgr"].events_applied == 1
        assert arena.reports["full_mesh"].events_applied == 1
        assert arena.reports["electronic"].events_applied == 0
        assert arena.reports["electronic"].events_ignored == 1


class TestArenaReport:
    def test_as_dict_is_json_stable(self, arena):
        payload = arena.as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["scenario"] == "demo"
        assert payload["seed"] == SEED
        assert len(payload["rows"]) == len(arena.backends)

    def test_rows_carry_power_and_efficiency(self, arena):
        for row in arena.rows():
            assert row["power_w"] is None or row["power_w"] > 0
            if row["power_w"]:
                assert row["gbps_per_watt"] == pytest.approx(
                    row["carried_gbps"] / row["power_w"])

    def test_frontiers_are_ordered(self, arena):
        iso_perf = arena.iso_performance()
        powers = [r["iso_power_w"] for r in iso_perf
                  if r["iso_power_w"] is not None]
        assert powers == sorted(powers)
        iso_power = arena.iso_power()
        carried = [r["iso_carried_gbps"] for r in iso_power]
        assert carried == sorted(carried, reverse=True)
        # Both frontiers cover every powered contender.
        assert len(iso_perf) == len(arena.frontier_points())
        assert len(iso_power) == len(arena.frontier_points())


class TestArenaOptions:
    def test_subset_race_preserves_order(self):
        arena = run_arena(get_scenario("demo"),
                          backends=("electronic", "awgr"), seed=1)
        assert arena.backends == ("electronic", "awgr")

    def test_backend_params_forwarded(self):
        arena = run_arena(
            get_scenario("demo"), backends=("full_mesh",), seed=1,
            backend_params={"full_mesh": {"links_per_pair": 2}})
        first = arena.reports["full_mesh"].epochs[0]
        assert first.extras["healthy_link_planes"] == 2

    def test_empty_race_rejected(self):
        with pytest.raises(ValueError, match="no backends"):
            run_arena(get_scenario("demo"), backends=())

    def test_duplicate_contender_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_arena(get_scenario("demo"),
                      backends=("awgr", "awgr"))

    def test_unknown_contender_lists_known(self):
        with pytest.raises(KeyError, match="awgr"):
            run_arena(get_scenario("demo"), backends=("quantum",))

    def test_params_for_unraced_backend_rejected(self):
        with pytest.raises(ValueError, match="not in the race"):
            run_arena(get_scenario("demo"), backends=("awgr",),
                      backend_params={"wss": {"n_switches": 2}})
