"""Scenario model: composition, events, JSON round trip."""

import numpy as np
import pytest

from repro.experiments.spec import canonical_json
from repro.scenarios import Episode, Scenario, ScenarioEvent


def small_scenario(**overrides):
    kwargs = dict(
        name="test",
        n_nodes=8,
        n_epochs=4,
        episodes=(
            Episode(kind="uniform", flows=5),
            Episode(kind="hotspot", start=2, flows=3,
                    params={"hotspot": 1}),
        ),
        events=(ScenarioEvent(epoch=2, action="fail_plane", value=0),))
    kwargs.update(overrides)
    return Scenario(**kwargs)


class TestValidation:
    def test_needs_episodes(self):
        with pytest.raises(ValueError):
            small_scenario(episodes=())

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            small_scenario(n_nodes=1)

    def test_needs_epochs(self):
        with pytest.raises(ValueError):
            small_scenario(n_epochs=0)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            ScenarioEvent(epoch=-1, action="fail_plane")
        with pytest.raises(ValueError):
            ScenarioEvent(epoch=0, action="")


class TestComposition:
    def test_batch_concatenates_active_episodes(self):
        scenario = small_scenario()
        rng = np.random.default_rng(0)
        early = scenario.batch(0, rng)
        late = scenario.batch(2, rng)
        assert len(early) == 5           # only the uniform episode
        assert len(late) == 8            # uniform + hotspot

    def test_batches_covers_every_epoch(self):
        batches = small_scenario().batches(0)
        assert len(batches) == 4

    def test_batches_accepts_int_seed_reproducibly(self):
        a = small_scenario().batches(3)
        b = small_scenario().batches(3)
        assert [[(f.src, f.dst, f.gbps) for f in batch]
                for batch in a] == [
               [(f.src, f.dst, f.gbps) for f in batch]
                for batch in b]

    def test_events_at(self):
        scenario = small_scenario()
        assert scenario.events_at(0) == []
        assert len(scenario.events_at(2)) == 1

    def test_with_epochs(self):
        assert small_scenario().with_epochs(9).n_epochs == 9


class TestRoundTrip:
    def test_to_from_config_identity(self):
        scenario = small_scenario()
        clone = Scenario.from_config(scenario.to_config())
        assert clone == scenario

    def test_config_is_cache_hashable(self):
        # The sweep engine requires JSON-stable configs; this is what
        # lets scenarios ride inside ExperimentSpec grids.
        payload = canonical_json(small_scenario().to_config())
        assert "uniform" in payload

    def test_from_config_accepts_json_lists(self):
        import json
        config = json.loads(canonical_json(small_scenario().to_config()))
        clone = Scenario.from_config(config)
        assert clone.n_nodes == 8
        assert len(clone.episodes) == 2
        assert clone.events[0].action == "fail_plane"
