"""Topology contenders: full mesh and dragonfly behavior, plus
scalar-vs-batched bit-identity (the ``batch_step`` twin discipline
SIM006 enforces for :class:`FullMeshBackend` and
:class:`DragonflyBackend`)."""

import numpy as np
import pytest

from repro.network.traffic import (
    Flow,
    FlowBatch,
    hotspot_batch,
    uniform_batch,
)
from repro.scenarios import ScenarioEvent
from repro.scenarios.topologies import (
    DragonflyBackend,
    FullMeshBackend,
)


def make_twins(backend_cls, **kwargs):
    """Twin backends: per-flow reference and vectorized hot path."""
    scalar = backend_cls(batch_step=False, **kwargs)
    batched = backend_cls(batch_step=True, **kwargs)
    return scalar, batched


def assert_identical_epochs(scalar, batched, batches,
                            events=()) -> None:
    events = dict(events)
    for i, batch in enumerate(batches):
        for event in events.get(i, []):
            assert scalar.apply_event(event) == batched.apply_event(event)
        report_scalar = scalar.step(batch)
        report_batched = batched.step(batch)
        assert report_scalar.to_dict() == report_batched.to_dict(), (
            f"epoch {i} diverged")
        assert np.array_equal(np.asarray(report_scalar.slowdowns),
                              np.asarray(report_batched.slowdowns))
    assert scalar.snapshot() == batched.snapshot()


class TestFullMeshBehavior:
    def test_under_capacity_serves_everything_at_unity(self):
        backend = FullMeshBackend(n_nodes=8)
        report = backend.step([Flow(1, 0, 25.0), Flow(2, 3, 25.0)])
        assert report.carried == 2
        assert report.slowdowns == [1.0, 1.0]
        assert report.extras["healthy_link_planes"] == 4

    def test_no_cross_pair_interference(self):
        # Pair (1, 0) is oversubscribed 2x; pair (2, 3) must not
        # notice — the mesh's defining property.
        backend = FullMeshBackend(n_nodes=8, links_per_pair=1,
                                  gbps_per_link=100.0)
        report = backend.step(
            [Flow(1, 0, 100.0), Flow(1, 0, 100.0), Flow(2, 3, 50.0)])
        assert report.slowdowns == [2.0, 2.0, 1.0]
        assert report.carried_gbps == pytest.approx(150.0)

    def test_fail_plane_shrinks_every_pair(self):
        backend = FullMeshBackend(n_nodes=6, links_per_pair=2,
                                  gbps_per_link=50.0)
        assert backend.apply_event(
            ScenarioEvent(epoch=0, action="fail_plane", value=0))
        assert backend.healthy_link_planes == 1
        report = backend.step([Flow(1, 0, 100.0)])
        assert report.slowdowns == [2.0]
        # Idempotent; repair restores.
        backend.apply_event(
            ScenarioEvent(epoch=0, action="fail_plane", value=0))
        assert backend.healthy_link_planes == 1
        backend.apply_event(
            ScenarioEvent(epoch=0, action="repair_plane", value=0))
        assert backend.healthy_link_planes == 2

    def test_all_planes_failed_blocks_outright(self):
        backend = FullMeshBackend(n_nodes=4, links_per_pair=1)
        backend.apply_event(
            ScenarioEvent(epoch=0, action="fail_plane", value=0))
        report = backend.step([Flow(1, 0, 25.0)])
        assert report.blocked == 1
        assert report.carried == 0

    def test_out_of_range_plane_rejected(self):
        backend = FullMeshBackend(n_nodes=4, links_per_pair=2)
        with pytest.raises(ValueError, match="out of range"):
            backend.apply_event(
                ScenarioEvent(epoch=0, action="fail_plane", value=2))

    def test_unknown_event_unsupported(self):
        backend = FullMeshBackend(n_nodes=4)
        assert not backend.apply_event(
            ScenarioEvent(epoch=0, action="set_reconfig_time",
                          value=1.0))

    def test_power_scales_with_n_squared(self):
        p8 = FullMeshBackend(n_nodes=8).power_w()
        p16 = FullMeshBackend(n_nodes=16).power_w()
        assert p16 / p8 == pytest.approx((16 * 15) / (8 * 7))

    def test_param_validation(self):
        with pytest.raises(ValueError, match="n_nodes"):
            FullMeshBackend(n_nodes=1)
        with pytest.raises(ValueError, match="links_per_pair"):
            FullMeshBackend(n_nodes=4, links_per_pair=0)
        with pytest.raises(ValueError, match="gbps_per_link"):
            FullMeshBackend(n_nodes=4, gbps_per_link=0.0)


class TestDragonflyBehavior:
    def test_intra_group_is_one_hop(self):
        # Nodes 0 and 1 share group 0 (8 nodes / 4 groups = size 2).
        backend = DragonflyBackend(n_nodes=8, n_groups=4)
        report = backend.step([Flow(0, 1, 25.0)])
        assert report.slowdowns == [1.0]
        assert report.indirect == 0
        assert report.extras["routing"] == "minimal"

    def test_minimal_inter_group_is_two_hops(self):
        backend = DragonflyBackend(n_nodes=8, n_groups=4)
        report = backend.step([Flow(0, 7, 25.0)])
        assert report.slowdowns == [2.0]
        assert report.indirect == 0

    def test_minimal_hotspot_contends_one_channel(self):
        # Group 0 -> group 1: 4 x 50 Gbps onto one 2 x 50 Gbps
        # channel => every flow gets half service, slowdown 4.0.
        backend = DragonflyBackend(n_nodes=8, n_groups=4,
                                   global_links=2,
                                   gbps_per_global_link=50.0)
        report = backend.step([Flow(0, 2, 50.0), Flow(0, 3, 50.0),
                               Flow(1, 2, 50.0), Flow(1, 3, 50.0)])
        assert report.slowdowns == [4.0] * 4
        assert report.carried_gbps == pytest.approx(100.0)

    def test_valiant_spreads_and_reports_indirect(self):
        backend = DragonflyBackend(n_nodes=16, n_groups=4,
                                   routing="valiant", rng_seed=1)
        flows = [Flow(src, 12 + src % 4, 25.0) for src in range(8)]
        report = backend.step(flows)
        assert report.extras["routing"] == "valiant"
        # With 4 groups the draw detours ~half the flows; seed 1 must
        # produce at least one detour (3 hops) and count it indirect.
        assert report.indirect > 0
        assert max(report.slowdowns) >= 3.0

    def test_fail_plane_halves_global_capacity(self):
        backend = DragonflyBackend(n_nodes=8, n_groups=4,
                                   global_links=2,
                                   gbps_per_global_link=50.0)
        assert backend.apply_event(
            ScenarioEvent(epoch=0, action="fail_plane", value=0))
        assert backend.healthy_global_links == 1
        report = backend.step([Flow(0, 7, 100.0)])
        assert report.slowdowns == [4.0]  # 2 hops / 0.5 service
        with pytest.raises(ValueError, match="out of range"):
            backend.apply_event(
                ScenarioEvent(epoch=0, action="fail_plane", value=5))

    def test_param_validation(self):
        with pytest.raises(ValueError, match="n_groups"):
            DragonflyBackend(n_nodes=4, n_groups=9)
        with pytest.raises(ValueError, match="routing"):
            DragonflyBackend(n_nodes=8, routing="adaptive")
        with pytest.raises(ValueError, match="global_links"):
            DragonflyBackend(n_nodes=8, global_links=0)

    def test_power_is_sub_quadratic_in_nodes(self):
        # Doubling nodes at fixed group count must cost the dragonfly
        # less than the mesh's N² growth.
        d8 = DragonflyBackend(n_nodes=8, n_groups=4).power_w()
        d16 = DragonflyBackend(n_nodes=16, n_groups=4).power_w()
        m8 = FullMeshBackend(n_nodes=8).power_w()
        m16 = FullMeshBackend(n_nodes=16).power_w()
        assert d16 / d8 < m16 / m8


def mixed_workloads(seed: int, n_nodes: int, n_flows: int,
                    epochs: int, gbps: float):
    """Seeded epoch stream mixing uniform and hotspot batches."""
    rng = np.random.default_rng(seed)
    batches = []
    for epoch in range(epochs):
        if epoch % 3 == 2:
            batches.append(hotspot_batch(n_nodes, epoch % n_nodes,
                                         n_flows, gbps=gbps, rng=rng))
        else:
            batches.append(uniform_batch(n_nodes, n_flows, gbps=gbps,
                                         rng=rng))
    return batches


class TestFullMeshBitIdentity:
    @pytest.mark.parametrize("seed", range(5))
    def test_mixed_oversubscribed(self, seed):
        scalar, batched = make_twins(FullMeshBackend, n_nodes=10,
                                     links_per_pair=1,
                                     gbps_per_link=40.0)
        batches = mixed_workloads(600 + seed, n_nodes=10, n_flows=60,
                                  epochs=6, gbps=30.0)
        assert_identical_epochs(scalar, batched, batches)

    @pytest.mark.parametrize("seed", range(4))
    def test_plane_failure_and_repair(self, seed):
        scalar, batched = make_twins(FullMeshBackend, n_nodes=8,
                                     links_per_pair=2,
                                     gbps_per_link=30.0)
        batches = mixed_workloads(700 + seed, n_nodes=8, n_flows=50,
                                  epochs=6, gbps=40.0)
        events = {
            1: [ScenarioEvent(epoch=1, action="fail_plane", value=0)],
            4: [ScenarioEvent(epoch=4, action="repair_plane", value=0)],
        }
        assert_identical_epochs(scalar, batched, batches, events)

    def test_empty_epoch(self):
        scalar, batched = make_twins(FullMeshBackend, n_nodes=6)
        assert_identical_epochs(
            scalar, batched,
            [FlowBatch.empty(), uniform_batch(6, 10, rng=0),
             FlowBatch.empty()])


class TestDragonflyBitIdentity:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("routing", ["minimal", "valiant"])
    def test_mixed_oversubscribed(self, routing, seed):
        scalar, batched = make_twins(DragonflyBackend, n_nodes=12,
                                     n_groups=3, routing=routing,
                                     rng_seed=seed,
                                     gbps_per_global_link=20.0)
        batches = mixed_workloads(800 + seed, n_nodes=12, n_flows=60,
                                  epochs=6, gbps=30.0)
        assert_identical_epochs(scalar, batched, batches)

    @pytest.mark.parametrize("seed", range(4))
    def test_valiant_with_plane_failure(self, seed):
        # The Valiant RNG stream must stay aligned across the event.
        scalar, batched = make_twins(DragonflyBackend, n_nodes=10,
                                     n_groups=5, routing="valiant",
                                     rng_seed=40 + seed,
                                     global_links=2,
                                     gbps_per_global_link=25.0)
        batches = mixed_workloads(900 + seed, n_nodes=10, n_flows=50,
                                  epochs=6, gbps=35.0)
        events = {
            1: [ScenarioEvent(epoch=1, action="fail_plane", value=1)],
            4: [ScenarioEvent(epoch=4, action="repair_plane", value=1)],
        }
        assert_identical_epochs(scalar, batched, batches, events)

    def test_empty_epoch(self):
        scalar, batched = make_twins(DragonflyBackend, n_nodes=6,
                                     n_groups=3, routing="valiant")
        assert_identical_epochs(
            scalar, batched,
            [FlowBatch.empty(), uniform_batch(6, 10, rng=0),
             FlowBatch.empty()])


class TestInputFormEquivalence:
    """step(FlowBatch) and step(list[Flow]) must be bit-identical —
    the FabricBackend contract, extended to the topology contenders."""

    @pytest.mark.parametrize("backend_cls,kwargs", [
        (FullMeshBackend, {"links_per_pair": 1, "gbps_per_link": 40.0}),
        (DragonflyBackend, {"n_groups": 3, "routing": "valiant",
                            "rng_seed": 3}),
    ])
    def test_batch_and_list_forms_match(self, backend_cls, kwargs):
        via_batch = backend_cls(n_nodes=9, **kwargs)
        via_list = backend_cls(n_nodes=9, **kwargs)
        rng_a = np.random.default_rng(42)
        rng_b = np.random.default_rng(42)
        for _ in range(4):
            batch = uniform_batch(9, 30, gbps=26.0, rng=rng_a)
            flows = uniform_batch(9, 30, gbps=26.0, rng=rng_b).to_flows()
            assert (via_batch.step(batch).to_dict()
                    == via_list.step(flows).to_dict())
