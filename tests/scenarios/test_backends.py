"""Fabric backends behind the step/apply_event protocol."""

import pytest

from repro.network.traffic import Flow
from repro.scenarios import (
    AWGRBackend,
    ElectronicBackend,
    EpochReport,
    FabricBackend,
    WSSBackend,
    ScenarioEvent,
    make_backend,
)


def wavelength_flows(n, dst=0, gbps=25.0):
    return [Flow(src, dst, gbps) for src in range(1, n + 1)]


class TestEpochReport:
    def test_blocked_gbps(self):
        report = EpochReport(epoch=0, offered_gbps=100.0,
                             carried_gbps=80.0)
        assert report.blocked_gbps == 20.0

    def test_idle_epoch_ratios(self):
        # Regression: a zero-offered epoch used to report a perfect
        # 1.0 acceptance ratio, so idle runs read as "perfect fabric"
        # in aggregated tables (the same bug throughput_ratio had).
        report = EpochReport(epoch=0)
        assert report.acceptance_ratio == 0.0
        assert report.indirect_fraction == 0.0

    def test_nonzero_offered_acceptance(self):
        report = EpochReport(epoch=0, offered=4, carried=3)
        assert report.acceptance_ratio == 0.75


class TestMakeBackend:
    @pytest.mark.parametrize("name", ["awgr", "wss", "electronic"])
    def test_constructs_protocol_instances(self, name):
        backend = make_backend(name, n_nodes=8, seed=1)
        assert isinstance(backend, FabricBackend)
        assert backend.name == name

    def test_unknown_backend(self):
        with pytest.raises(KeyError, match="awgr"):
            make_backend("quantum", n_nodes=8)

    def test_params_forwarded(self):
        backend = make_backend("awgr", n_nodes=8, planes=3)
        assert backend.sim.allocator.planes == 3


class TestAWGRBackend:
    def test_direct_flows_have_unity_slowdown(self):
        backend = AWGRBackend(n_nodes=8, duration_slots=1)
        report = backend.step(wavelength_flows(4))
        assert report.carried == 4
        assert report.blocked == 0
        assert report.slowdowns == [1.0, 1.0, 1.0, 1.0]
        assert report.extras["healthy_planes"] == 5

    def test_pair_overload_goes_indirect(self):
        backend = AWGRBackend(n_nodes=8, planes=2, duration_slots=1)
        # Six same-pair wavelength flows vs two direct wavelengths.
        report = backend.step([Flow(1, 0, 25.0) for _ in range(6)])
        assert report.carried > 2
        assert report.indirect > 0
        assert max(report.slowdowns) >= 2.0

    def test_fail_plane_event_reduces_capacity(self):
        backend = AWGRBackend(n_nodes=8, duration_slots=1)
        assert backend.apply_event(
            ScenarioEvent(epoch=0, action="fail_plane", value=0))
        assert backend.sim.allocator.healthy_planes == 4
        # Idempotent within a run.
        assert backend.apply_event(
            ScenarioEvent(epoch=0, action="fail_plane", value=0))
        assert backend.sim.allocator.healthy_planes == 4

    def test_fail_plane_drops_resident_flows_cleanly(self):
        backend = AWGRBackend(n_nodes=8, planes=2, duration_slots=10)
        backend.step([Flow(1, 0, 25.0) for _ in range(4)])
        backend.apply_event(
            ScenarioEvent(epoch=0, action="fail_plane", value=0))
        backend.apply_event(
            ScenarioEvent(epoch=0, action="repair_plane", value=0))
        # Surviving occupancy must release without underflow as the
        # remaining flows retire.
        for _ in range(12):
            backend.step([])
        assert backend.sim.allocator.utilization() == 0.0

    def test_repair_restores_capacity(self):
        backend = AWGRBackend(n_nodes=8)
        backend.apply_event(
            ScenarioEvent(epoch=0, action="fail_plane", value=1))
        backend.apply_event(
            ScenarioEvent(epoch=0, action="repair_plane", value=1))
        assert backend.sim.allocator.healthy_planes == 5

    def test_unknown_event_unsupported(self):
        backend = AWGRBackend(n_nodes=8)
        assert not backend.apply_event(
            ScenarioEvent(epoch=0, action="set_reconfig_time",
                          value=1.0))


class TestWSSBackend:
    def test_serves_and_reports(self):
        backend = WSSBackend(n_nodes=8)
        report = backend.step(wavelength_flows(4))
        assert report.offered == 4
        assert report.carried > 0
        assert 0.0 < report.carried_gbps <= report.offered_gbps
        assert report.extras["reconfigured"] is True

    def test_reconfig_period_respected(self):
        backend = WSSBackend(n_nodes=8, reconfig_period=3)
        flags = [backend.step(wavelength_flows(3)).extras["reconfigured"]
                 for _ in range(6)]
        assert flags == [True, False, False, True, False, False]

    def test_set_reconfig_period_event(self):
        backend = WSSBackend(n_nodes=8, reconfig_period=4)
        assert backend.apply_event(ScenarioEvent(
            epoch=0, action="set_reconfig_period", value=1))
        flags = [backend.step(wavelength_flows(3)).extras["reconfigured"]
                 for _ in range(3)]
        assert flags == [True, True, True]

    def test_set_reconfig_time_event_costs_downtime(self):
        backend = WSSBackend(n_nodes=8, slot_time_s=1.0)
        assert backend.apply_event(ScenarioEvent(
            epoch=0, action="set_reconfig_time", value=0.5))
        report = backend.step(wavelength_flows(4))
        assert report.extras["downtime_fraction"] > 0.4

    def test_fail_plane_drops_a_switch(self):
        backend = WSSBackend(n_nodes=8, n_switches=3)
        assert backend.apply_event(
            ScenarioEvent(epoch=0, action="fail_plane", value=0))
        assert len(backend.fabric.configs) == 2
        backend.apply_event(
            ScenarioEvent(epoch=0, action="repair_plane", value=0))
        assert len(backend.fabric.configs) == 3
        # The repaired fabric still serves traffic.
        assert backend.step(wavelength_flows(4)).carried > 0


class TestElectronicBackend:
    def test_under_cap_serves_everything(self):
        backend = ElectronicBackend(n_nodes=8)
        report = backend.step(wavelength_flows(4))
        assert report.carried == 4
        assert report.carried_gbps == pytest.approx(100.0)
        assert report.slowdowns == [1.0] * 4
        assert report.extras["added_latency_ns"] > 35.0

    def test_ingress_congestion_stretches_flows(self):
        backend = ElectronicBackend(n_nodes=8, lanes_per_endpoint=1)
        # 7 x 25 Gbps converging on node 0 vs a 32 Gbps ingress cap.
        report = backend.step(wavelength_flows(7))
        assert report.carried_gbps < report.offered_gbps
        assert min(report.slowdowns) > 1.0

    def test_events_unsupported(self):
        backend = ElectronicBackend(n_nodes=8)
        assert not backend.apply_event(
            ScenarioEvent(epoch=0, action="fail_plane", value=0))
