"""Registered scenarios, sweep bindings, and the pinned diurnal run."""

import pytest

from repro.experiments import ResultCache, SweepRunner, get_experiment
from repro.scenarios import (
    SCENARIOS,
    demo_scenario,
    get_scenario,
    scenario_task,
)


class TestRegistry:
    def test_known_scenarios_registered(self):
        assert {"demo", "diurnal_cori", "reconfig_lag"} <= set(SCENARIOS)

    def test_get_scenario_unknown_lists_known(self):
        with pytest.raises(KeyError, match="diurnal_cori"):
            get_scenario("nope")

    def test_registered_scenarios_round_trip(self):
        from repro.scenarios import Scenario
        for scenario in SCENARIOS.values():
            clone = Scenario.from_config(scenario.to_config())
            assert clone == scenario


class TestScenarioTask:
    def test_accepts_inline_config(self):
        config = {"scenario": demo_scenario().to_config(),
                  "backend": "awgr", "rng_seed": 3}
        report = scenario_task(config, seed=999)
        assert report.scenario == "demo"
        assert len(report.epochs) == demo_scenario().n_epochs

    def test_accepts_registered_name_and_epoch_override(self):
        config = {"scenario": "demo", "backend": "awgr",
                  "n_epochs": 2, "rng_seed": 3}
        report = scenario_task(config, seed=0)
        assert len(report.epochs) == 2

    def test_demo_truncated_to_ci_smoke_still_fires_event(self):
        # The CI smoke step runs `repro scenario --demo --epochs 3`;
        # the demo's plane-failure event must fire inside that
        # truncated horizon or the smoke step stops covering
        # apply_event.
        config = {"scenario": "demo", "backend": "awgr",
                  "n_epochs": 3, "rng_seed": 0}
        report = scenario_task(config, seed=0)
        assert report.events_applied == 1

    def test_engine_seed_used_when_rng_seed_absent(self):
        config = {"scenario": "demo", "backend": "awgr"}
        a = scenario_task(config, seed=1).as_dict()
        b = scenario_task(config, seed=2).as_dict()
        assert a != b

    def test_backend_params_forwarded(self):
        config = {"scenario": "demo", "backend": "awgr",
                  "rng_seed": 0, "planes": 3}
        report = scenario_task(config, seed=0)
        assert report.epochs[0].extras["healthy_planes"] == 3


class TestDiurnalRegression:
    """Acceptance pin: the diurnal Cori replay with a noon plane
    failure must reproduce these aggregates bit-identically, including
    through the result cache.

    Values pinned under counter-based per-epoch seeding (spec
    version 2); the pre-sharding sequential-generator pins died with
    version 1."""

    def test_pinned_aggregates_and_cache_replay(self, tmp_path):
        spec = get_experiment("scenario_diurnal_cori")
        cache = ResultCache(tmp_path)
        first = SweepRunner(workers=1, cache=cache).run(spec)
        second = SweepRunner(workers=1, cache=cache).run(spec)
        # Bit-identical across two runs via the cache.
        assert second.n_cached == len(spec) == 2
        assert first.rows() == second.rows()

        rows = {row["fabric"]: row for row in first.rows()}
        awgr, wss = rows["awgr"], rows["wss"]
        # Same offered day on both fabrics.
        assert awgr["offered_gbps"] == pytest.approx(
            wss["offered_gbps"], rel=1e-12)
        # Pinned accepted bandwidth and indirect-route fraction.
        assert awgr["carried_gbps"] == pytest.approx(
            9617.543072965238, rel=1e-9)
        assert awgr["indirect_fraction"] == pytest.approx(
            0.10371819960861056, rel=1e-9)
        assert awgr["slowdown_p99"] == pytest.approx(3.0)
        assert wss["carried_gbps"] == pytest.approx(
            6358.4768000328695, rel=1e-9)
        assert wss["indirect_fraction"] == 0.0
        # The failure is scripted into both runs.
        assert awgr["events_applied"] == 2

    def test_reconfig_lag_monotone_in_period(self):
        spec = get_experiment("scenario_reconfig_lag")
        rows = SweepRunner(workers=1).run(spec).rows()
        served = [r["throughput_ratio"] for r in rows]
        # Rarer reconfiguration = staler configurations = less served
        # bandwidth, under a mid-run demand shift.
        assert served == sorted(served, reverse=True)
