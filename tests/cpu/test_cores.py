"""In-order and OOO core timing models (paper §VI-B)."""

import pytest

from repro.cpu.caches import CacheStats
from repro.cpu.core_inorder import InOrderCore
from repro.cpu.core_ooo import OutOfOrderCore
from repro.cpu.memory import MemoryModel


def stats(instructions=1000, mem=400, l1=300, l2=40, llc=30, dram=30):
    return CacheStats(instructions=instructions, mem_accesses=mem,
                      l1_hits=l1, l2_hits=l2, llc_hits=llc,
                      dram_accesses=dram)


BASELINE = MemoryModel()  # 25 ns base, 0 extra, 2 GHz


class TestInOrderCore:
    def test_cycle_accounting(self):
        core = InOrderCore(cpi_base=1.0)
        result = core.execute(stats(), BASELINE)
        expected = (1000 * 1.0          # compute
                    + 40 * 8.0          # L2-serviced
                    + 30 * 20.0         # LLC-serviced
                    + 30 * (20.0 + 50.0))  # DRAM (LLC traversal + 25 ns)
        assert result.cycles == pytest.approx(expected)

    def test_extra_latency_only_hits_dram_path(self):
        core = InOrderCore()
        base = core.execute(stats(), BASELINE)
        slow = core.execute(stats(), BASELINE.with_extra(35.0))
        assert slow.cycles - base.cycles == pytest.approx(30 * 70.0)
        assert slow.compute_cycles == base.compute_cycles
        assert slow.l2_stall_cycles == base.l2_stall_cycles

    def test_slowdown_zero_without_dram(self):
        core = InOrderCore()
        s = stats(l1=330, l2=40, llc=30, dram=0)
        assert core.slowdown(s, BASELINE, 35.0) == 0.0

    def test_slowdown_monotone_in_latency(self):
        core = InOrderCore()
        s = stats()
        values = [core.slowdown(s, BASELINE, ns) for ns in (25, 30, 35, 85)]
        assert values == sorted(values)
        assert values[0] > 0

    def test_memory_stall_fraction(self):
        core = InOrderCore()
        result = core.execute(stats(), BASELINE)
        assert 0 < result.memory_stall_fraction < 1

    def test_validation(self):
        with pytest.raises(ValueError):
            InOrderCore(cpi_base=0.0)


class TestOutOfOrderCore:
    def test_faster_baseline_than_inorder(self):
        inorder = InOrderCore(cpi_base=1.0)
        ooo = OutOfOrderCore(cpi_exec=0.45, mlp=2.0)
        s = stats()
        assert (ooo.execute(s, BASELINE).cycles
                < inorder.execute(s, BASELINE).cycles)

    def test_mlp_divides_miss_stall(self):
        low = OutOfOrderCore(mlp=1.0)
        high = OutOfOrderCore(mlp=4.0)
        s = stats()
        assert (high.execute(s, BASELINE).dram_stall_cycles
                == pytest.approx(
                    low.execute(s, BASELINE).dram_stall_cycles / 4.0))

    def test_hide_window_absorbs_latency(self):
        core = OutOfOrderCore(hide_cycles=70.0, mlp=1.0)
        # Miss path = 20 + 50 = 70 cycles, fully hidden at baseline.
        result = core.execute(stats(), BASELINE)
        assert result.dram_stall_cycles == 0.0
        # But the 35 ns adder becomes exposed.
        slow = core.execute(stats(), BASELINE.with_extra(35.0))
        assert slow.dram_stall_cycles == pytest.approx(30 * 70.0)

    def test_partial_exposure_scales_hits(self):
        full = OutOfOrderCore(partial_exposure=1.0)
        part = OutOfOrderCore(partial_exposure=0.5)
        s = stats()
        assert (part.execute(s, BASELINE).l2_stall_cycles
                == pytest.approx(
                    full.execute(s, BASELINE).l2_stall_cycles / 2))

    def test_slowdown_monotone_in_latency(self):
        core = OutOfOrderCore()
        s = stats()
        values = [core.slowdown(s, BASELINE, ns) for ns in (25, 30, 35, 85)]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(ValueError):
            OutOfOrderCore(mlp=0.5)
        with pytest.raises(ValueError):
            OutOfOrderCore(cpi_exec=0.0)
        with pytest.raises(ValueError):
            OutOfOrderCore(partial_exposure=1.5)
        with pytest.raises(ValueError):
            OutOfOrderCore(hide_cycles=-1.0)


class TestRelativeBehaviour:
    def test_low_mlp_memory_bound_ooo_slows_less_than_inorder(self):
        """Dependence-bound codes (NW): OOO relative slowdown below
        in-order because its baseline keeps a serialization floor."""
        s = stats(instructions=1000, mem=350, l1=100, l2=10, llc=30,
                  dram=210)
        inorder = InOrderCore(cpi_base=1.0)
        ooo = OutOfOrderCore(cpi_exec=1.5, mlp=6.0)
        assert (ooo.slowdown(s, BASELINE, 35.0)
                < inorder.slowdown(s, BASELINE, 35.0))

    def test_streaming_ooo_slows_more_than_inorder(self):
        """Throughput codes (Parsec): OOO baseline is fast, so the same
        adder is a larger relative hit."""
        s = stats(instructions=1000, mem=300, l1=250, l2=20, llc=15,
                  dram=15)
        inorder = InOrderCore(cpi_base=1.0)
        ooo = OutOfOrderCore(cpi_exec=0.35, mlp=1.5)
        assert (ooo.slowdown(s, BASELINE, 35.0)
                > inorder.slowdown(s, BASELINE, 35.0))
