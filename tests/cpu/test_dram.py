"""DRAM channel model."""

import pytest

from repro.cpu.dram import DRAMChannel, calibration_consistency


class TestService:
    def test_mean_service_between_hit_and_miss(self):
        ch = DRAMChannel()
        assert ch.row_hit_ns < ch.mean_service_ns < ch.row_miss_ns

    def test_all_hits(self):
        ch = DRAMChannel(row_hit_rate=1.0)
        assert ch.mean_service_ns == ch.row_hit_ns

    def test_validation(self):
        with pytest.raises(ValueError):
            DRAMChannel(banks=0)
        with pytest.raises(ValueError):
            DRAMChannel(row_hit_ns=50.0, row_miss_ns=40.0)
        with pytest.raises(ValueError):
            DRAMChannel(row_hit_rate=1.5)


class TestQueueing:
    def test_zero_load_zero_queueing(self):
        assert DRAMChannel().queueing_ns(0.0) == 0.0

    def test_monotone_in_load(self):
        ch = DRAMChannel()
        values = [ch.queueing_ns(d) for d in (1.0, 10.0, 20.0, 25.0)]
        assert values == sorted(values)

    def test_blows_up_near_saturation(self):
        ch = DRAMChannel()
        assert ch.queueing_ns(25.5) > 10 * ch.queueing_ns(12.8)

    def test_saturation_clamped(self):
        ch = DRAMChannel()
        assert ch.utilization(1000.0) < 1.0

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            DRAMChannel().queueing_ns(-1.0)


class TestEffectiveLatency:
    def test_blp_amortizes_device_time(self):
        ch = DRAMChannel()
        serial = ch.effective_miss_latency_ns(5.0, blp=1.0)
        overlapped = ch.effective_miss_latency_ns(5.0, blp=4.0)
        assert overlapped < serial

    def test_load_raises_effective_latency(self):
        ch = DRAMChannel()
        light = ch.effective_miss_latency_ns(1.0)
        heavy = ch.effective_miss_latency_ns(20.0)
        assert heavy > light

    def test_blp_validation(self):
        with pytest.raises(ValueError):
            DRAMChannel().effective_miss_latency_ns(1.0, blp=0.5)

    def test_unloaded_latency_near_ddr4_figures(self):
        # Unloaded full response (controller + device, no overlap)
        # sits in the tens of ns, consistent with §III-A's ~90 ns
        # being a loaded worst-case figure.
        ch = DRAMChannel()
        assert 20.0 < ch.loaded_latency_ns(0.0) < 60.0


class TestCalibrationConsistency:
    def test_memory_model_default_justified(self):
        """The EXPERIMENTS.md claim: 25 ns effective miss latency falls
        out of the DRAM model at production-like load with BLP 4."""
        report = calibration_consistency()
        assert report["within_band"]
        assert report["effective_miss_latency_ns"] == pytest.approx(
            25.0, abs=10.0)
