"""Memory latency model."""

import pytest

from repro.cpu.memory import MemoryModel


class TestMemoryModel:
    def test_total_latency(self):
        mem = MemoryModel(base_latency_ns=25.0, extra_latency_ns=35.0)
        assert mem.total_latency_ns == 60.0

    def test_cycles_at_2ghz(self):
        mem = MemoryModel(base_latency_ns=25.0, extra_latency_ns=35.0,
                          clock_ghz=2.0)
        assert mem.total_latency_cycles == 120.0
        assert mem.extra_latency_cycles == 70.0

    def test_with_extra_copies(self):
        base = MemoryModel()
        photonic = base.with_extra(35.0)
        assert base.extra_latency_ns == 0.0
        assert photonic.extra_latency_ns == 35.0
        assert photonic.base_latency_ns == base.base_latency_ns

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryModel(base_latency_ns=-1.0)
        with pytest.raises(ValueError):
            MemoryModel(clock_ghz=0.0)


class TestMissCycleInflation:
    def test_35ns_in_paper_band(self):
        # §VI-B1: "the cycles the LLC spends in a miss increase by 50%
        # to 150%".
        mem = MemoryModel().with_extra(35.0)
        inflation = mem.miss_cycle_inflation(llc_penalty_cycles=20.0)
        assert 0.5 <= inflation <= 1.5

    def test_zero_extra_zero_inflation(self):
        assert MemoryModel().miss_cycle_inflation() == 0.0

    def test_electronic_inflation_larger(self):
        photonic = MemoryModel().with_extra(35.0).miss_cycle_inflation()
        electronic = MemoryModel().with_extra(85.0).miss_cycle_inflation()
        assert electronic > photonic
