"""CPU simulation facade."""

import pytest

from repro.cpu.simulator import CPUSimulator
from repro.cpu.trace import TraceSpec


@pytest.fixture
def sim():
    return CPUSimulator()


def spec(dram=0.1):
    return TraceSpec(name="suite.bench.size", instructions=100_000,
                     mem_ratio=0.3, l1_fraction=0.7 - dram,
                     l2_fraction=0.1, llc_fraction=0.2)


class TestFacade:
    def test_cache_stats_deterministic(self, sim):
        a = sim.cache_stats(spec())
        b = sim.cache_stats(spec())
        assert a == b

    def test_run_inorder(self, sim):
        res = sim.run_inorder(spec(), extra_latency_ns=35.0)
        assert res.core == "inorder"
        assert res.extra_latency_ns == 35.0
        assert res.slowdown > 0

    def test_run_ooo(self, sim):
        res = sim.run_ooo(spec(), extra_latency_ns=35.0, mlp=2.0)
        assert res.core == "ooo"
        assert res.slowdown > 0

    def test_reusing_stats_consistent(self, sim):
        s = spec()
        stats = sim.cache_stats(s)
        a = sim.run_inorder(s, 35.0, stats=stats)
        b = sim.run_inorder(s, 35.0, stats=stats)
        assert a.slowdown == b.slowdown

    def test_result_fields(self, sim):
        res = sim.run_inorder(spec(), 35.0)
        assert 0 <= res.llc_miss_rate <= 1
        assert res.dram_per_instruction > 0
        assert 0 < res.memory_stall_fraction < 1
        assert res.speedup_vs == pytest.approx(1 + res.slowdown)

    def test_miss_cycle_inflation_in_band(self, sim):
        # §VI-B1 again, now through the full pipeline.
        res = sim.run_inorder(spec(), 35.0)
        assert 0.5 <= res.miss_cycle_inflation <= 1.5

    def test_latency_sensitivity_ordering(self, sim):
        s = spec()
        stats = sim.cache_stats(s)
        slow = [sim.run_inorder(s, ns, stats=stats).slowdown
                for ns in (25.0, 30.0, 35.0)]
        assert slow == sorted(slow)

    def test_25ns_roughly_halves_35ns_ooo(self, sim):
        # §VI-B2: "reducing the additional latency to 25 ns from 35 ns
        # reduces application slowdown by about half" (OOO cores, where
        # the hide window eats a fixed share).
        s = spec()
        stats = sim.cache_stats(s)
        s25 = sim.run_ooo(s, 25.0, stats=stats).slowdown
        s35 = sim.run_ooo(s, 35.0, stats=stats).slowdown
        assert 0.35 < s25 / s35 < 0.75
