"""Cache models: exact LRU simulator and stack-distance fast path."""

import numpy as np
import pytest

from repro.cpu.caches import (
    CacheConfig,
    CacheHierarchy,
    CacheStats,
    ExactHierarchy,
    SetAssociativeCache,
    simulate_hierarchy,
)


class TestCacheConfig:
    def test_geometry(self):
        cfg = CacheConfig("L1", 32 * 1024, line_bytes=64, associativity=8)
        assert cfg.lines == 512
        assert cfg.sets == 64

    def test_effective_lines(self):
        cfg = CacheConfig("L1", 32 * 1024, effective_capacity_factor=0.5)
        assert cfg.effective_lines == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 0)
        with pytest.raises(ValueError):
            CacheConfig("bad", 100, line_bytes=64)  # not a multiple
        with pytest.raises(ValueError):
            CacheConfig("bad", 1024, associativity=0)
        with pytest.raises(ValueError):
            CacheConfig("bad", 1024, effective_capacity_factor=0.0)


class TestSetAssociativeCache:
    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache(CacheConfig("t", 1024, line_bytes=64,
                                                associativity=2))
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(63)      # same line
        assert cache.hits == 2
        assert cache.misses == 1

    def test_lru_eviction(self):
        # 2 sets x 2 ways; lines mapping to set 0: 0, 2, 4 (line index
        # stride = sets).
        cfg = CacheConfig("t", 4 * 64, line_bytes=64, associativity=2)
        cache = SetAssociativeCache(cfg)
        a, b, c = 0, 2 * 64, 4 * 64  # all map to set 0
        cache.access(a)
        cache.access(b)
        cache.access(c)              # evicts a (LRU)
        assert not cache.access(a)   # a was evicted
        assert cache.access(c)       # c still resident

    def test_lru_update_on_hit(self):
        cfg = CacheConfig("t", 4 * 64, line_bytes=64, associativity=2)
        cache = SetAssociativeCache(cfg)
        a, b, c = 0, 2 * 64, 4 * 64
        cache.access(a)
        cache.access(b)
        cache.access(a)              # a becomes MRU
        cache.access(c)              # evicts b
        assert cache.access(a)
        assert not cache.access(b)

    def test_working_set_within_capacity_all_hits(self):
        cfg = CacheConfig("t", 64 * 64, line_bytes=64, associativity=64)
        cache = SetAssociativeCache(cfg)
        addrs = [i * 64 for i in range(32)]
        for a in addrs:
            cache.access(a)
        cache.hits = cache.misses = 0
        for _ in range(10):
            for a in addrs:
                assert cache.access(a)
        assert cache.miss_rate == 0.0

    def test_reset(self):
        cache = SetAssociativeCache(CacheConfig("t", 1024, line_bytes=64))
        cache.access(0)
        cache.reset()
        assert cache.accesses == 0
        assert not cache.access(0)

    def test_negative_address_rejected(self):
        cache = SetAssociativeCache(CacheConfig("t", 1024, line_bytes=64))
        with pytest.raises(ValueError):
            cache.access(-1)


class TestStackDistanceModel:
    def test_classification(self):
        h = CacheHierarchy()
        c1, c2, c3 = h.level_line_thresholds()
        sd = np.array([0, c1 - 1, c1, c2 - 1, c2, c3 - 1, c3, 10 * c3])
        stats = simulate_hierarchy(sd, instructions=100)
        assert stats.l1_hits == 2
        assert stats.l2_hits == 2
        assert stats.llc_hits == 2
        assert stats.dram_accesses == 2

    def test_llc_miss_rate(self):
        h = CacheHierarchy()
        _, c2, c3 = h.level_line_thresholds()
        sd = np.array([c2] * 3 + [c3] * 1, dtype=float)
        stats = simulate_hierarchy(sd, instructions=10)
        assert stats.llc_miss_rate == pytest.approx(0.25)

    def test_instruction_consistency_checked(self):
        with pytest.raises(ValueError):
            simulate_hierarchy(np.zeros(10), instructions=5)

    def test_agrees_with_exact_lru_on_scan(self):
        """Cyclic scan over W lines: SD model and exact LRU agree.

        A repeating scan of W distinct lines has stack distance W-1 for
        every non-cold access, so both models put it entirely in the
        first level whose capacity exceeds W.
        """
        w = 128   # fits L1 (512 lines)
        l1 = CacheConfig("L1", 32 * 1024, effective_capacity_factor=1.0)
        exact = SetAssociativeCache(
            CacheConfig("L1", 32 * 1024, associativity=512))
        addrs = [i * 64 for i in range(w)]
        for _ in range(4):
            for a in addrs:
                exact.access(a)
        exact_miss = exact.misses  # only cold misses
        assert exact_miss == w
        sd = np.full(4 * w, w - 1, dtype=float)
        h = CacheHierarchy(l1=l1)
        stats = simulate_hierarchy(sd, instructions=4 * w, hierarchy=h)
        assert stats.l1_hits == 4 * w  # steady-state view (no cold)

    def test_hierarchy_must_grow(self):
        small = CacheConfig("L1", 32 * 1024)
        with pytest.raises(ValueError):
            CacheHierarchy(l1=small, l2=small)


class TestExactHierarchy:
    def test_serviced_levels(self):
        eh = ExactHierarchy()
        level = eh.access(0)
        assert level == "DRAM"       # cold miss everywhere
        assert eh.access(0) == "L1"  # now resident

    def test_stats_conversion(self):
        eh = ExactHierarchy()
        for i in range(10):
            eh.access(i * 64)
        stats = eh.stats(instructions=40)
        assert stats.mem_accesses == 10
        assert stats.dram_accesses == 10


class TestCacheStats:
    def test_outcome_conservation_enforced(self):
        with pytest.raises(ValueError):
            CacheStats(instructions=10, mem_accesses=5,
                       l1_hits=1, l2_hits=1, llc_hits=1, dram_accesses=1)

    def test_derived_metrics(self):
        stats = CacheStats(instructions=100, mem_accesses=40,
                           l1_hits=20, l2_hits=10, llc_hits=5,
                           dram_accesses=5)
        assert stats.llc_accesses == 10
        assert stats.llc_miss_rate == 0.5
        assert stats.dram_per_instruction == 0.05
        assert stats.mem_ratio == 0.4

    def test_zero_llc_accesses(self):
        stats = CacheStats(instructions=10, mem_accesses=4,
                           l1_hits=4, l2_hits=0, llc_hits=0,
                           dram_accesses=0)
        assert stats.llc_miss_rate == 0.0
