"""Synthetic trace generation."""

import numpy as np
import pytest

from repro.cpu.caches import CacheHierarchy, simulate_hierarchy
from repro.cpu.trace import TraceSpec, generate_trace


def spec(**kwargs):
    defaults = dict(name="test.bench.large", instructions=100_000,
                    mem_ratio=0.3, l1_fraction=0.6, l2_fraction=0.1,
                    llc_fraction=0.2)
    defaults.update(kwargs)
    return TraceSpec(**defaults)


class TestTraceSpec:
    def test_dram_fraction(self):
        s = spec()
        assert s.dram_fraction == pytest.approx(0.1)

    def test_mem_accesses(self):
        assert spec().mem_accesses == 30_000

    def test_expected_llc_miss_rate(self):
        s = spec()
        assert s.expected_llc_miss_rate == pytest.approx(0.1 / 0.3)

    def test_no_llc_traffic(self):
        s = spec(l1_fraction=0.9, l2_fraction=0.1, llc_fraction=0.0)
        assert s.expected_llc_miss_rate == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            spec(mem_ratio=0.0)
        with pytest.raises(ValueError):
            spec(l1_fraction=0.9, l2_fraction=0.2)  # sums > 1
        with pytest.raises(ValueError):
            spec(l1_fraction=-0.1)
        with pytest.raises(ValueError):
            spec(instructions=0)


class TestGeneration:
    def test_trace_length(self):
        trace = generate_trace(spec())
        assert trace.mem_accesses == 30_000

    def test_deterministic_by_name(self):
        a = generate_trace(spec())
        b = generate_trace(spec())
        np.testing.assert_array_equal(a.stack_distances, b.stack_distances)

    def test_explicit_seed_overrides(self):
        a = generate_trace(spec(), seed=1)
        b = generate_trace(spec(), seed=2)
        assert not np.array_equal(a.stack_distances, b.stack_distances)

    def test_cache_sim_recovers_fractions(self):
        s = spec()
        trace = generate_trace(s)
        stats = simulate_hierarchy(trace.stack_distances, s.instructions)
        n = s.mem_accesses
        assert stats.l1_hits / n == pytest.approx(0.6, abs=0.01)
        assert stats.l2_hits / n == pytest.approx(0.1, abs=0.01)
        assert stats.llc_hits / n == pytest.approx(0.2, abs=0.01)
        assert stats.dram_accesses / n == pytest.approx(0.1, abs=0.01)

    def test_llc_miss_rate_matches_expectation(self):
        s = spec()
        trace = generate_trace(s)
        stats = simulate_hierarchy(trace.stack_distances, s.instructions)
        assert stats.llc_miss_rate == pytest.approx(
            s.expected_llc_miss_rate, abs=0.02)

    def test_pure_l1_workload(self):
        s = spec(l1_fraction=1.0, l2_fraction=0.0, llc_fraction=0.0)
        trace = generate_trace(s)
        stats = simulate_hierarchy(trace.stack_distances, s.instructions)
        assert stats.dram_accesses == 0
        assert stats.l1_hits == s.mem_accesses

    def test_respects_custom_hierarchy(self):
        h = CacheHierarchy()
        trace = generate_trace(spec(), hierarchy=h)
        c3 = h.llc.effective_lines
        # DRAM-pool distances stay within the documented [c3, 4*c3) band.
        beyond = trace.stack_distances[trace.stack_distances >= c3]
        assert beyond.size > 0
        assert beyond.max() < 4 * c3
