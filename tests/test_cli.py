"""Command-line interface."""

import pytest

from repro.cli import _ALL_ORDER, _COMMANDS, build_parser, main


class TestParser:
    def test_every_command_registered(self):
        parser = build_parser()
        for name in _COMMANDS:
            args = parser.parse_args([name] + (
                [] if name not in ("fig6", "fig7", "fig9", "fig11")
                else []))
            assert args.command == name

    def test_all_order_covers_known_commands(self):
        assert set(_ALL_ORDER) <= set(_COMMANDS)

    def test_latency_flag(self):
        args = build_parser().parse_args(["fig6", "--latency", "25"])
        assert args.latency == 25.0

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestExecution:
    @pytest.mark.parametrize("command", [
        "table1", "table2", "table3", "table4", "fig5", "power",
        "bandwidth", "isoperf", "linkbudget"])
    def test_fast_commands_run(self, command, capsys):
        assert main([command]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) > 2

    def test_table3_output_content(self, capsys):
        main(["table3"])
        out = capsys.readouterr().out
        assert "350" in out
        assert "ddr4" in out

    def test_fig9_with_latency(self, capsys):
        assert main(["fig9", "--latency", "25"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 9 @ 25.0 ns" in out

    def test_isoperf_empirical(self, capsys):
        assert main(["isoperf", "--empirical"]) == 0
        out = capsys.readouterr().out
        assert "pooling factor" in out
