"""Command-line interface."""

import pytest

from repro.cli import _ALL_ORDER, _COMMANDS, build_parser, main


class TestParser:
    def test_every_command_registered(self):
        parser = build_parser()
        for name in _COMMANDS:
            args = parser.parse_args([name] + (
                [] if name not in ("fig6", "fig7", "fig9", "fig11")
                else []))
            assert args.command == name

    def test_all_order_covers_known_commands(self):
        assert set(_ALL_ORDER) <= set(_COMMANDS)

    def test_latency_flag(self):
        args = build_parser().parse_args(["fig6", "--latency", "25"])
        assert args.latency == 25.0

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestExecution:
    @pytest.mark.parametrize("command", [
        "table1", "table2", "table3", "table4", "fig5", "power",
        "bandwidth", "isoperf", "linkbudget"])
    def test_fast_commands_run(self, command, capsys):
        assert main([command]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) > 2

    def test_table3_output_content(self, capsys):
        main(["table3"])
        out = capsys.readouterr().out
        assert "350" in out
        assert "ddr4" in out

    def test_fig9_with_latency(self, capsys):
        assert main(["fig9", "--latency", "25"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 9 @ 25.0 ns" in out

    def test_isoperf_empirical(self, capsys):
        assert main(["isoperf", "--empirical"]) == 0
        out = capsys.readouterr().out
        assert "pooling factor" in out


class TestSweep:
    def test_list_shows_registered_experiments(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        assert "ablation_staleness" in out
        assert "case_a_vs_case_b" in out

    def test_missing_experiment_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep"])

    def test_unknown_experiment_errors(self, capsys):
        with pytest.raises(SystemExit, match="ablation_staleness"):
            main(["sweep", "nope", "--no-cache"])

    def test_zero_workers_errors(self):
        with pytest.raises(SystemExit, match="workers"):
            main(["sweep", "indirect_routing", "--workers", "0",
                  "--no-cache"])

    def test_sweep_runs_and_second_invocation_is_cached(
            self, capsys, tmp_path):
        argv = ["sweep", "ablation_staleness", "--workers", "2",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0 cached, 4 run" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "4 cached, 0 run" in second
        # identical rows either way (ignore the timing line)
        strip = lambda s: [ln for ln in s.splitlines()
                           if " tasks (" not in ln]
        assert strip(first) == strip(second)

    def test_no_cache_always_recomputes(self, capsys, tmp_path):
        argv = ["sweep", "indirect_routing", "--no-cache"]
        assert main(argv) == 0
        assert "0 cached, 2 run" in capsys.readouterr().out
        assert main(argv) == 0
        assert "0 cached, 2 run" in capsys.readouterr().out

    def test_list_includes_scenario_sweeps(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        assert "scenario_diurnal_cori" in out
        assert "ablation_awgr_planes" in out
        assert "power_overhead" in out


class TestScenario:
    def test_list_shows_registered_scenarios(self, capsys):
        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        assert "diurnal_cori" in out
        assert "reconfig_lag" in out

    def test_missing_scenario_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["scenario"])

    def test_unknown_scenario_errors(self):
        with pytest.raises(SystemExit, match="diurnal_cori"):
            main(["scenario", "nope"])

    def test_demo_runs_with_epoch_override(self, capsys):
        assert main(["scenario", "--demo", "--epochs", "3"]) == 0
        out = capsys.readouterr().out
        assert "per-epoch" in out
        assert "Aggregate" in out
        # One header + separator + three epoch rows.
        assert "epoch" in out

    def test_bad_epochs_errors(self):
        with pytest.raises(SystemExit, match="epochs"):
            main(["scenario", "--demo", "--epochs", "0"])

    def test_diurnal_on_both_backends(self, capsys):
        # The acceptance-criterion path: the diurnal Cori replay with
        # its mid-run plane failure runs end-to-end on AWGR and WSS
        # via the CLI.
        for backend in ("awgr", "wss"):
            assert main(["scenario", "diurnal_cori",
                         "--backend", backend]) == 0
            out = capsys.readouterr().out
            assert "diurnal_cori" in out
            assert "indirect_fraction" in out
            assert "events_applied" in out

    def test_repeats_reports_ci(self, capsys):
        assert main(["scenario", "--demo", "--epochs", "2",
                     "--repeats", "3"]) == 0
        out = capsys.readouterr().out
        assert "ci_low" in out
        assert "ci_high" in out
