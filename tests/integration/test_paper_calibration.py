"""Integration: paper-shape assertions across the full pipeline.

These are the reproduction's acceptance tests: every headline number
or qualitative relationship the paper reports must emerge from the
substrates within a tolerance band (shape, not exact replay — see
EXPERIMENTS.md for the per-figure comparison).
"""

import numpy as np
import pytest

from repro.analysis.stats import pearson
from repro.core.slowdown import (
    cpu_gpu_rodinia_comparison,
    overall_mean,
    run_cpu_study,
    run_gpu_study,
    suite_summary,
)


@pytest.fixture(scope="module")
def cpu35():
    return run_cpu_study(35.0)


@pytest.fixture(scope="module")
def summaries(cpu35):
    return {(s.suite, s.input_size, s.core): s for s in suite_summary(cpu35)}


class TestFig6SuiteAverages:
    def test_parsec_large(self, summaries):
        # Paper: 23% in-order / 41% OOO.
        assert summaries[("parsec", "large", "inorder")].mean_slowdown == \
            pytest.approx(0.23, abs=0.04)
        assert summaries[("parsec", "large", "ooo")].mean_slowdown == \
            pytest.approx(0.41, abs=0.06)

    def test_parsec_medium(self, summaries):
        # Paper: 13% in-order / 24% OOO.
        assert summaries[("parsec", "medium", "inorder")].mean_slowdown == \
            pytest.approx(0.13, abs=0.03)
        assert summaries[("parsec", "medium", "ooo")].mean_slowdown == \
            pytest.approx(0.24, abs=0.05)

    def test_rodinia_both_cores_16pct(self, summaries):
        assert summaries[("rodinia", "default", "inorder")].mean_slowdown \
            == pytest.approx(0.16, abs=0.04)
        assert summaries[("rodinia", "default", "ooo")].mean_slowdown == \
            pytest.approx(0.16, abs=0.04)

    def test_nas_negligible(self, summaries):
        for cls in ("A", "B", "C"):
            for core in ("inorder", "ooo"):
                assert summaries[("nas", cls, core)].mean_slowdown < 0.05

    def test_nw_worst_case(self, cpu35):
        # Paper: "Benchmark NW shows the largest slowdown of
        # approximately 79% for in-order cores and 55% for OOO cores."
        nw = {r.core: r.slowdown for r in cpu35
              if r.name == "rodinia.nw.default"}
        assert nw["inorder"] == pytest.approx(0.79, abs=0.06)
        assert nw["ooo"] == pytest.approx(0.55, abs=0.06)

    def test_overall_means_excluding_nas(self, cpu35):
        # Paper: "the average slowdown with in-order cores is 15% and
        # with OOO cores 22%" (NAS-weighting differs; see
        # EXPERIMENTS.md).
        no_nas = [r for r in cpu35 if not r.name.startswith("nas")]
        for core, target in (("inorder", 0.15), ("ooo", 0.22)):
            mean = float(np.mean([r.slowdown for r in no_nas
                                  if r.core == core]))
            assert mean == pytest.approx(target, abs=0.05)

    def test_ooo_exceeds_inorder_on_parsec(self, summaries):
        for size in ("small", "medium", "large"):
            assert (summaries[("parsec", size, "ooo")].mean_slowdown
                    > summaries[("parsec", size, "inorder")].mean_slowdown)


class TestFig7Correlation:
    def test_parsec_large_inorder(self, cpu35):
        rows = [r for r in cpu35 if r.core == "inorder"
                and r.name.startswith("parsec") and "large" in r.name]
        r = pearson([x.slowdown for x in rows],
                    [x.llc_miss_rate for x in rows])
        assert r > 0.80  # paper: 0.89

    def test_rodinia_inorder(self, cpu35):
        rows = [r for r in cpu35 if r.core == "inorder"
                and r.name.startswith("rodinia")]
        r = pearson([x.slowdown for x in rows],
                    [x.llc_miss_rate for x in rows])
        assert r > 0.70  # paper: 0.76

    def test_rodinia_ooo(self, cpu35):
        rows = [r for r in cpu35 if r.core == "ooo"
                and r.name.startswith("rodinia")]
        r = pearson([x.slowdown for x in rows],
                    [x.llc_miss_rate for x in rows])
        assert r > 0.80  # paper: 0.93

    def test_streamcluster_cliff(self, cpu35):
        # LLC miss <0.5% and negligible slowdown on small/medium; >60%
        # miss and ~57% slowdown on large.
        rows = {r.name: r for r in cpu35 if r.core == "inorder"
                and "streamcluster" in r.name}
        small = rows["parsec.streamcluster.small"]
        large = rows["parsec.streamcluster.large"]
        assert small.llc_miss_rate < 0.01
        assert small.slowdown < 0.01
        assert large.llc_miss_rate > 0.60
        assert large.slowdown == pytest.approx(0.57, abs=0.05)

    def test_miss_cycle_inflation_band(self, cpu35):
        # "the cycles the LLC spends in a miss increase by 50% to 150%
        # across benchmarks for in-order and OOO cores".
        inflations = [r.miss_cycle_inflation for r in cpu35
                      if r.dram_per_instruction > 1e-4]
        assert all(0.5 <= v <= 1.55 for v in inflations)


class TestFig8Sensitivity:
    def test_25ns_halves_35ns(self):
        # "reducing the additional latency to 25 ns from 35 ns reduces
        # application slowdown by about half."
        from repro.workloads.cpu_suites import parsec_benchmarks
        benches = parsec_benchmarks("large")
        s25 = run_cpu_study(25.0, benchmarks=benches, cores=("ooo",))
        s35 = run_cpu_study(35.0, benchmarks=benches, cores=("ooo",))
        m25 = float(np.mean([r.slowdown for r in s25]))
        m35 = float(np.mean([r.slowdown for r in s35]))
        assert 0.35 < m25 / m35 < 0.75

    def test_monotone_in_latency(self):
        from repro.workloads.cpu_suites import rodinia_cpu_benchmarks
        means = []
        for ns in (25.0, 30.0, 35.0):
            res = run_cpu_study(ns, benchmarks=rodinia_cpu_benchmarks(),
                                cores=("inorder",))
            means.append(float(np.mean([r.slowdown for r in res])))
        assert means == sorted(means)


class TestFig9Fig10GPU:
    @pytest.fixture(scope="class")
    def gpu35(self):
        return run_gpu_study(35.0)

    def test_average_near_5_35pct(self, gpu35):
        mean = float(np.mean([g.slowdown for g in gpu35]))
        assert mean == pytest.approx(0.0535, abs=0.02)

    def test_miss_rate_correlation(self, gpu35):
        r = pearson([g.slowdown for g in gpu35],
                    [g.llc_miss_rate for g in gpu35])
        assert r > 0.80  # paper: 0.87

    def test_hbm_txn_correlation(self, gpu35):
        r = pearson([g.slowdown for g in gpu35],
                    [g.hbm_txn_per_instr for g in gpu35])
        assert r > 0.70  # paper: 0.79


class TestFig11CPUvsGPU:
    def test_gpu_max_12pct(self):
        rows = cpu_gpu_rodinia_comparison(35.0)
        assert max(r.gpu for r in rows) == pytest.approx(0.12, abs=0.03)

    def test_gpu_tolerates_better_on_average(self):
        rows = cpu_gpu_rodinia_comparison(35.0)
        gpu_mean = float(np.mean([r.gpu for r in rows]))
        inorder_mean = float(np.mean([r.inorder for r in rows]))
        ooo_mean = float(np.mean([r.ooo for r in rows]))
        assert gpu_mean < inorder_mean
        assert gpu_mean < ooo_mean


class TestAbstractHeadlines:
    def test_25_cpu_benchmark_speedup(self):
        """Abstract: 11% average (46% max) speedup for CPU benchmarks
        vs. electronic switches; we accept the in-order/OOO band."""
        from repro.core.comparison import electronic_vs_photonic
        _, summaries = electronic_vs_photonic()
        by_core = {s.core: s for s in summaries}
        assert 0.05 < by_core["inorder"].mean_speedup < 0.15
        assert 0.08 < by_core["ooo"].mean_speedup < 0.20

    def test_gpu_speedup_near_61pct(self):
        from repro.core.comparison import electronic_vs_photonic
        _, summaries = electronic_vs_photonic()
        gpu = next(s for s in summaries if s.core == "gpu")
        assert gpu.mean_speedup == pytest.approx(0.61, abs=0.15)

    def test_44pct_fewer_chips(self):
        from repro.core.isoperf import iso_performance_comparison
        res = run_cpu_study(35.0, cores=("inorder",))
        cpu_slow = overall_mean(res, "inorder")
        gpu_slow = float(np.mean([g.slowdown for g in run_gpu_study(35.0)]))
        result = iso_performance_comparison(cpu_slowdown=cpu_slow,
                                            gpu_slowdown=gpu_slow)
        assert result.module_reduction == pytest.approx(0.44, abs=0.03)
