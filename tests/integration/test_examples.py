"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parents[2].joinpath("examples")
    .glob("*.py"))

FAST = {"quickstart.py", "photonic_link_budget.py",
        "indirect_routing_demo.py", "design_custom_rack.py"}


def _run(path: pathlib.Path) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, str(path)],
                          capture_output=True, text=True, timeout=600)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize("path", [p for p in EXAMPLES
                                  if p.name in FAST],
                         ids=lambda p: p.name)
def test_fast_examples_run(path):
    result = _run(path)
    assert result.returncode == 0, result.stderr[-2000:]
    assert len(result.stdout.splitlines()) > 5


@pytest.mark.slow
@pytest.mark.parametrize("path", [p for p in EXAMPLES
                                  if p.name not in FAST],
                         ids=lambda p: p.name)
def test_slow_examples_run(path):
    result = _run(path)
    assert result.returncode == 0, result.stderr[-2000:]
    assert "Reading:" in result.stdout or result.stdout
