"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.caches import CacheHierarchy, simulate_hierarchy
from repro.cpu.core_inorder import InOrderCore
from repro.cpu.core_ooo import OutOfOrderCore
from repro.cpu.memory import MemoryModel
from repro.cpu.trace import TraceSpec, generate_trace
from repro.network.wavelength import WavelengthAllocator
from repro.photonics.awgr import awgr_output_port, awgr_wavelength_for_pair
from repro.photonics.fec import flit_error_rate
from repro.units import gbps_to_gbyte_s, gbyte_s_to_gbps


class TestAWGRProperties:
    @given(n=st.integers(2, 400), src=st.integers(0, 399),
           dst=st.integers(0, 399))
    def test_wavelength_roundtrip(self, n, src, dst):
        src, dst = src % n, dst % n
        w = awgr_wavelength_for_pair(n, src, dst)
        assert awgr_output_port(n, src, w) == dst

    @given(n=st.integers(2, 64), w=st.integers(0, 63))
    def test_fixed_wavelength_is_bijection(self, n, w):
        w = w % n
        outputs = [awgr_output_port(n, p, w) for p in range(n)]
        assert sorted(outputs) == list(range(n))

    @given(n=st.integers(2, 64), src=st.integers(0, 63))
    def test_distinct_destinations_distinct_wavelengths(self, n, src):
        src = src % n
        wavelengths = [awgr_wavelength_for_pair(n, src, d)
                       for d in range(n)]
        assert len(set(wavelengths)) == n


class TestFECProperties:
    @given(p=st.floats(1e-12, 0.2), bits=st.integers(64, 1024))
    def test_failure_probability_is_probability(self, p, bits):
        fer = flit_error_rate(p, flit_bits=bits)
        assert 0.0 <= fer <= 1.0

    @given(p=st.floats(1e-9, 1e-3))
    def test_correction_strictly_helps(self, p):
        assert (flit_error_rate(p, correctable_bursts=1)
                < flit_error_rate(p, correctable_bursts=0))

    @given(p1=st.floats(1e-10, 1e-4), factor=st.floats(1.5, 100.0))
    def test_monotone(self, p1, factor):
        p2 = min(p1 * factor, 0.5)
        assert flit_error_rate(p1) <= flit_error_rate(p2)


class TestUnitProperties:
    @given(x=st.floats(1e-6, 1e9))
    def test_bandwidth_roundtrip(self, x):
        assert np.isclose(gbyte_s_to_gbps(gbps_to_gbyte_s(x)), x)


class TestAllocatorConservation:
    @given(ops=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5),
                  st.integers(1, 4)),
        min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_allocate_release_conserves(self, ops):
        alloc = WavelengthAllocator(n_nodes=6, planes=3,
                                    flows_per_wavelength=4)
        held = []
        for (src, dst, slots) in ops:
            if src == dst:
                continue
            if alloc.has_capacity(src, dst, slots):
                planes = alloc.allocate(src, dst, slots)
                held.append((src, dst, planes))
        for (src, dst, planes) in held:
            alloc.release(src, dst, planes)
        assert alloc.utilization() == 0.0

    @given(slots=st.integers(1, 12))
    def test_free_plus_used_is_capacity(self, slots):
        alloc = WavelengthAllocator(n_nodes=4, planes=3,
                                    flows_per_wavelength=4)
        total = 12
        take = min(slots, total)
        alloc.allocate(0, 1, take)
        assert alloc.used_slots(0, 1) + alloc.free_slots(0, 1) == total


class TestTimingMonotonicity:
    @given(extra=st.floats(0.0, 200.0),
           dram_fraction=st.floats(0.01, 0.5))
    @settings(max_examples=40, deadline=None)
    def test_inorder_slowdown_nonnegative_and_monotone(self, extra,
                                                       dram_fraction):
        spec = TraceSpec(name="prop.bench.x", instructions=20_000,
                         mem_ratio=0.3,
                         l1_fraction=0.9 - dram_fraction,
                         l2_fraction=0.05,
                         llc_fraction=0.05)
        trace = generate_trace(spec, seed=0)
        stats = simulate_hierarchy(trace.stack_distances,
                                   spec.instructions)
        core = InOrderCore()
        baseline = MemoryModel()
        s = core.slowdown(stats, baseline, extra)
        assert s >= 0.0
        assert core.slowdown(stats, baseline, extra + 10.0) >= s

    @given(mlp=st.floats(1.0, 16.0))
    @settings(max_examples=30, deadline=None)
    def test_ooo_mlp_never_hurts(self, mlp):
        spec = TraceSpec(name="prop.bench.y", instructions=20_000,
                         mem_ratio=0.3, l1_fraction=0.6,
                         l2_fraction=0.1, llc_fraction=0.1)
        trace = generate_trace(spec, seed=1)
        stats = simulate_hierarchy(trace.stack_distances,
                                   spec.instructions)
        baseline = MemoryModel()
        weak = OutOfOrderCore(mlp=1.0).execute(stats, baseline).cycles
        strong = OutOfOrderCore(mlp=mlp).execute(stats, baseline).cycles
        assert strong <= weak


class TestTraceProperties:
    @given(l1=st.floats(0.0, 1.0), l2=st.floats(0.0, 1.0),
           llc=st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_fractions_recovered(self, l1, l2, llc):
        total = l1 + l2 + llc
        if total > 0:
            l1, l2, llc = (0.9 * v / max(total, 1.0) for v in (l1, l2, llc))
        spec = TraceSpec(name="prop.bench.z", instructions=50_000,
                         mem_ratio=0.4, l1_fraction=l1,
                         l2_fraction=l2, llc_fraction=llc)
        trace = generate_trace(spec, seed=2)
        stats = simulate_hierarchy(trace.stack_distances,
                                   spec.instructions,
                                   CacheHierarchy())
        n = stats.mem_accesses
        assert abs(stats.l1_hits / n - l1) < 0.03
        assert abs(stats.dram_accesses / n - spec.dram_fraction) < 0.03
