"""Property-based tests for the extended subsystems."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.reconfig import schedule_demand
from repro.photonics.cxl import CXLFlit, CXLLink
from repro.photonics.linkbudget import LinkBudget
from repro.workloads.calibration import (
    CalibrationError,
    solve_trace_fractions,
)


class TestSchedulerProperties:
    @given(n=st.integers(2, 16), w=st.integers(1, 16),
           seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_budgets_always_respected(self, n, w, seed):
        rng = np.random.default_rng(seed)
        demand = rng.random((n, n)) * rng.integers(1, 100)
        assignment = schedule_demand(demand, w)
        assert (assignment >= 0).all()
        assert (assignment.sum(axis=1) <= w).all()
        assert (assignment.sum(axis=0) <= w).all()
        assert (np.diag(assignment) == 0).all()

    @given(n=st.integers(2, 12), w=st.integers(2, 12),
           stagger=st.integers(0, 64))
    @settings(max_examples=40, deadline=None)
    def test_stagger_preserves_budgets(self, n, w, stagger):
        rng = np.random.default_rng(1)
        demand = rng.random((n, n))
        assignment = schedule_demand(demand, w, stagger=stagger)
        assert (assignment.sum(axis=1) <= w).all()
        assert (assignment.sum(axis=0) <= w).all()

    @given(n=st.integers(2, 10), w=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_uniform_demand_fills_at_least_half_capacity(self, n, w):
        demand = np.ones((n, n))
        np.fill_diagonal(demand, 0.0)
        assignment = schedule_demand(demand, w)
        # Greedy per-source assignment can strand ports under output
        # contention (it is a heuristic, not a matcher), but like any
        # greedy maximal assignment it achieves at least half of the
        # n*w optimum on symmetric all-to-all demand.
        assert assignment.sum() >= n * w / 2


class TestLinkBudgetProperties:
    @given(il=st.floats(0.0, 30.0), fiber=st.floats(0.0, 100.0))
    @settings(max_examples=60, deadline=None)
    def test_margin_decreases_with_loss(self, il, fiber):
        budget = LinkBudget()
        base = budget.margin_db(il, fiber_m=fiber)
        worse = budget.margin_db(il + 1.0, fiber_m=fiber)
        assert worse < base

    @given(il=st.floats(0.0, 25.0))
    @settings(max_examples=40, deadline=None)
    def test_closes_iff_margin_nonnegative(self, il):
        budget = LinkBudget()
        assert budget.closes(il) == (budget.margin_db(il) >= 0.0)

    @given(launch=st.floats(-5.0, 20.0))
    @settings(max_examples=40, deadline=None)
    def test_max_tolerable_loss_is_tight(self, launch):
        budget = LinkBudget(laser_dbm_per_wavelength=launch)
        limit = budget.max_insertion_loss_db()
        if limit > 0:
            assert budget.closes(limit - 1e-6)
            assert not budget.closes(limit + 1e-6)


class TestCXLProperties:
    @given(payload=st.integers(0, 100_000))
    @settings(max_examples=60, deadline=None)
    def test_flit_count_covers_payload(self, payload):
        flit = CXLFlit()
        flits = flit.flits_for_payload(payload)
        assert flits * flit.payload_bytes >= payload
        if payload > 0:
            assert (flits - 1) * flit.payload_bytes < payload

    @given(gbps=st.floats(1.0, 2048.0), ber=st.floats(1e-12, 1e-4))
    @settings(max_examples=50, deadline=None)
    def test_effective_bandwidth_bounded(self, gbps, ber):
        link = CXLLink(wire_gbps=gbps)
        eff = link.effective_gbps(ber)
        assert 0 < eff < gbps

    @given(bytes_=st.integers(1, 4096))
    @settings(max_examples=40, deadline=None)
    def test_latency_monotone_in_payload(self, bytes_):
        link = CXLLink()
        assert (link.one_way_latency_ns(bytes_ + 238)
                >= link.one_way_latency_ns(bytes_))


class TestCalibrationProperties:
    @given(target=st.floats(0.01, 0.5), miss=st.floats(0.2, 0.9),
           mem_ratio=st.floats(0.1, 0.5))
    @settings(max_examples=60, deadline=None)
    def test_solved_fractions_valid(self, target, miss, mem_ratio):
        try:
            frac = solve_trace_fractions(target, miss, mem_ratio)
        except CalibrationError:
            return  # infeasible corner, correctly rejected
        for v in (frac.l1_fraction, frac.l2_fraction,
                  frac.llc_fraction, frac.dram_fraction):
            assert -1e-9 <= v <= 1.0 + 1e-9
        total = (frac.l1_fraction + frac.l2_fraction
                 + frac.llc_fraction + frac.dram_fraction)
        assert abs(total - 1.0) < 1e-6

    @given(miss=st.floats(0.05, 0.95))
    @settings(max_examples=40, deadline=None)
    def test_feasibility_frontier_monotone_in_miss_rate(self, miss):
        """Higher LLC miss rates admit higher slowdown targets — the
        mechanism behind the Fig. 7 correlation."""
        # Find the largest feasible target at this miss rate by probe.
        lo, hi = 0.0, 1.5
        for _ in range(24):
            mid = (lo + hi) / 2
            try:
                solve_trace_fractions(mid, miss, 0.3)
                lo = mid
            except CalibrationError:
                hi = mid
        frontier_here = lo
        # A clearly higher miss rate must admit at least this target.
        higher = min(0.99, miss + 0.04)
        try:
            solve_trace_fractions(frontier_here, higher, 0.3)
        except CalibrationError as exc:  # pragma: no cover
            raise AssertionError(
                f"frontier not monotone: {frontier_here} feasible at "
                f"{miss} but not at {higher}") from exc
