"""Property test: snapshots survive plain-JSON serialization exactly.

The runtime complement to the static SIM001/SIM004 rules: for every
registered fabric backend, at any split point, under any seed,
``restore(json.loads(json.dumps(snapshot())))`` on a fresh instance
followed by the remaining epochs is bit-identical to never having
stopped. Uses stdlib ``json`` directly — stricter than the result
cache's encoder, which would mask a payload that only *its* custom
hooks can carry.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    BACKENDS,
    Episode,
    Scenario,
    ScenarioEvent,
    make_backend,
)

N_NODES = 8
MAX_EPOCHS = 6


def probe_scenario(n_epochs):
    return Scenario(
        name="jsonprop", n_nodes=N_NODES, n_epochs=n_epochs,
        episodes=(
            Episode(kind="uniform",
                    flows={"dist": "poisson", "mean": 6}, gbps=30.0),
            Episode(kind="hotspot",
                    flows={"dist": "pareto", "minimum": 2,
                           "alpha": 1.4},
                    gbps=60.0, params={"hotspot": 1}),
        ),
        events=(
            ScenarioEvent(epoch=1, action="fail_plane", value=0),
            ScenarioEvent(epoch=3, action="repair_plane", value=0),
        ))


def drive(backend, scenario, start, stop, base_seed):
    reports = []
    for epoch in range(start, stop):
        for event in scenario.events_at(epoch):
            backend.apply_event(event)
        reports.append(backend.step(scenario.batch_at(epoch, base_seed)))
    return [r.to_dict() for r in reports]


@pytest.mark.parametrize("name", BACKENDS)
class TestJsonRoundTripProperty:
    @given(seed=st.integers(0, 2**32 - 1),
           n_epochs=st.integers(2, MAX_EPOCHS),
           split_num=st.integers(1, MAX_EPOCHS - 1))
    @settings(max_examples=12, deadline=None)
    def test_restore_after_json_is_bit_identical(self, name, seed,
                                                 n_epochs, split_num):
        split = min(split_num, n_epochs - 1)
        scenario = probe_scenario(n_epochs)
        original = make_backend(name, N_NODES, seed=11)
        drive(original, scenario, 0, split, base_seed=seed)

        wire = json.dumps(original.snapshot())
        restored = make_backend(name, N_NODES, seed=11)
        restored.restore(json.loads(wire))

        tail_original = drive(original, scenario, split, n_epochs,
                              base_seed=seed)
        tail_restored = drive(restored, scenario, split, n_epochs,
                              base_seed=seed)
        assert tail_original == tail_restored

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_snapshot_is_json_pure(self, name, seed):
        """The snapshot dict itself survives the round trip unchanged
        (no tuples/sets/numpy values hiding anywhere)."""
        scenario = probe_scenario(3)
        backend = make_backend(name, N_NODES, seed=11)
        drive(backend, scenario, 0, 3, base_seed=seed)
        snapshot = backend.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
