"""Property test: FlowBatch survives plain-JSON serialization exactly.

``FlowBatch.from_dict(json.loads(json.dumps(batch.to_dict())))`` must
reproduce the batch bit-for-bit for arbitrary endpoint/bandwidth/kind
contents — the snapshot form in-flight batches ride through carry-mode
chunking and the service store.
"""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.traffic import FlowBatch

# Endpoint pairs with src != dst, loads strictly positive and finite
# (including subnormal-ish tiny values and awkward decimals that only
# survive JSON via exact repr round-tripping).
flow_entries = st.lists(
    st.tuples(
        st.integers(0, 511), st.integers(0, 511),
        st.floats(min_value=1e-12, max_value=1e9,
                  allow_nan=False, allow_infinity=False),
        st.integers(0, 3),
    ).filter(lambda t: t[0] != t[1]),
    min_size=0, max_size=64)


@given(entries=flow_entries,
       kinds=st.lists(st.text(min_size=0, max_size=12),
                      min_size=4, max_size=4, unique=True))
@settings(max_examples=60, deadline=None)
def test_json_round_trip_is_exact(entries, kinds):
    batch = FlowBatch(
        src=np.array([e[0] for e in entries], dtype=np.int64),
        dst=np.array([e[1] for e in entries], dtype=np.int64),
        gbps=np.array([e[2] for e in entries], dtype=np.float64),
        kinds=kinds,
        kind_codes=np.array([e[3] for e in entries], dtype=np.int64))
    again = FlowBatch.from_dict(json.loads(json.dumps(batch.to_dict())))
    assert np.array_equal(again.src, batch.src)
    assert np.array_equal(again.dst, batch.dst)
    # bitwise float equality, not approx
    assert again.gbps.tobytes() == batch.gbps.tobytes()
    assert again.kinds == batch.kinds
    assert np.array_equal(again.kind_codes, batch.kind_codes)
    assert json.dumps(again.to_dict()) == json.dumps(batch.to_dict())
