"""Property-based tests for the placement engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import JobRequest
from repro.core.placement import MCMDirectory, PlacementEngine

job_strategy = st.builds(
    lambda i, cpus, gpus, mem, nic: JobRequest(
        f"job-{i}", cpus=cpus, gpus=gpus,
        memory_gbyte=float(mem), nic_gbps=float(nic)),
    i=st.integers(0, 10_000),
    cpus=st.integers(1, 8),      # >=1 keeps requests non-empty
    gpus=st.integers(0, 16),
    mem=st.integers(0, 2048),
    nic=st.integers(0, 800),
)


def _distinct_ids(jobs):
    seen = set()
    out = []
    for job in jobs:
        if job.job_id not in seen and (
                job.cpus or job.gpus or job.memory_gbyte
                or job.nic_gbps):
            seen.add(job.job_id)
            out.append(job)
    return out


class TestPlacementConservation:
    @given(jobs=st.lists(job_strategy, min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_place_unplace_restores_inventory(self, jobs):
        engine = PlacementEngine()
        original = dict(engine.directory.free)
        placed = []
        for job in _distinct_ids(jobs):
            try:
                engine.place(job)
                placed.append(job.job_id)
            except RuntimeError:
                pass  # exhausted; rollback is part of the contract
        for job_id in placed:
            engine.unplace(job_id)
        assert engine.directory.free == original

    @given(jobs=st.lists(job_strategy, min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_free_never_negative_or_overfull(self, jobs):
        engine = PlacementEngine()
        for job in _distinct_ids(jobs):
            try:
                engine.place(job)
            except RuntimeError:
                pass
            for mcm, free in engine.directory.free.items():
                assert 0 <= free <= engine.directory.slots[mcm]

    @given(jobs=st.lists(job_strategy, min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_placed_chips_match_requests(self, jobs):
        engine = PlacementEngine()
        for job in _distinct_ids(jobs):
            try:
                placement = engine.place(job)
            except RuntimeError:
                continue
            assert sum(placement.cpus.values()) == job.cpus
            assert sum(placement.gpus.values()) == job.gpus
            assert sum(placement.hbm.values()) == job.gpus
            if job.memory_gbyte:
                modules = sum(placement.ddr4.values())
                assert modules * 32.0 >= job.memory_gbyte


class TestDirectoryProperties:
    @given(count=st.integers(1, 128))
    @settings(max_examples=30, deadline=None)
    def test_take_exactly_count(self, count):
        from repro.rack.chips import ChipType
        directory = MCMDirectory.for_default_rack()
        taken = directory.take_chips(ChipType.CPU, min(count, 140))
        assert sum(taken.values()) == min(count, 140)
