"""Report rendering."""

import pytest

from repro.analysis.report import render_kv, render_table


class TestRenderTable:
    def test_basic_render(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = render_table(rows)
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "10" in lines[3]

    def test_title(self):
        text = render_table([{"x": 1}], title="Table I")
        assert text.startswith("Table I")

    def test_column_selection(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_missing_values_dash(self):
        text = render_table([{"a": 1, "b": None}])
        assert "-" in text.splitlines()[2]

    def test_scientific_notation_for_tiny(self):
        text = render_table([{"ber": 1e-18}])
        assert "e-18" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_table([])

    def test_bool_rendering(self):
        text = render_table([{"ok": True}])
        assert "yes" in text


class TestRenderKV:
    def test_aligned_pairs(self):
        text = render_kv({"short": 1, "a-much-longer-key": 2})
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_kv({})
