"""Iso-performance / iso-power frontier arithmetic (§VI-E scaling)."""

import json

import pytest

from repro.analysis import (
    FrontierPoint,
    iso_performance_frontier,
    iso_power_frontier,
)


def points():
    return [
        FrontierPoint(backend="lean", carried_gbps=800.0, power_w=4.0),
        FrontierPoint(backend="fast", carried_gbps=1000.0,
                      power_w=100.0),
        FrontierPoint(backend="dead", carried_gbps=0.0, power_w=50.0),
    ]


class TestFrontierPoint:
    def test_efficiency_and_dict(self):
        p = FrontierPoint(backend="x", carried_gbps=500.0, power_w=25.0)
        assert p.gbps_per_watt == 20.0
        row = p.as_dict()
        assert json.loads(json.dumps(row)) == row
        assert row["gbps_per_watt"] == 20.0

    def test_validation(self):
        with pytest.raises(ValueError, match="carried_gbps"):
            FrontierPoint(backend="x", carried_gbps=-1.0, power_w=1.0)
        with pytest.raises(ValueError, match="power_w"):
            FrontierPoint(backend="x", carried_gbps=1.0, power_w=0.0)


class TestIsoPerformance:
    def test_default_target_is_best_carried(self):
        rows = iso_performance_frontier(points())
        assert all(r["target_gbps"] == 1000.0 for r in rows)
        # lean scales 1.25x from 4 W (5 W) — still far cheaper than
        # fast's measured 100 W; dead can't reach any target.
        assert [r["backend"] for r in rows] == ["lean", "fast", "dead"]
        assert rows[0]["iso_power_w"] == pytest.approx(5.0)
        assert rows[1]["iso_power_w"] == pytest.approx(100.0)
        assert rows[2]["iso_power_w"] is None
        assert rows[2]["scale"] is None

    def test_explicit_target(self):
        rows = iso_performance_frontier(points(), target_gbps=400.0)
        by_name = {r["backend"]: r for r in rows}
        assert by_name["lean"]["iso_power_w"] == pytest.approx(2.0)
        assert by_name["fast"]["iso_power_w"] == pytest.approx(40.0)

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError, match="target_gbps"):
            iso_performance_frontier(points(), target_gbps=-1.0)


class TestIsoPower:
    def test_default_budget_is_leanest_power(self):
        rows = iso_power_frontier(points())
        assert all(r["budget_w"] == 4.0 for r in rows)
        # Inside 4 W: lean keeps its 800, fast shrinks 25x to 40,
        # dead still carries nothing.
        assert [r["backend"] for r in rows] == ["lean", "fast", "dead"]
        assert rows[0]["iso_carried_gbps"] == pytest.approx(800.0)
        assert rows[1]["iso_carried_gbps"] == pytest.approx(40.0)
        assert rows[2]["iso_carried_gbps"] == 0.0

    def test_explicit_budget(self):
        rows = iso_power_frontier(points(), budget_w=200.0)
        by_name = {r["backend"]: r for r in rows}
        assert by_name["fast"]["iso_carried_gbps"] == pytest.approx(
            2000.0)

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError, match="budget_w"):
            iso_power_frontier(points(), budget_w=0.0)


class TestValidation:
    def test_empty_points_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            iso_performance_frontier([])
        with pytest.raises(ValueError, match="at least one"):
            iso_power_frontier([])

    def test_duplicate_backends_rejected(self):
        dupes = [FrontierPoint(backend="x", carried_gbps=1.0,
                               power_w=1.0)] * 2
        with pytest.raises(ValueError, match="duplicate"):
            iso_performance_frontier(dupes)
