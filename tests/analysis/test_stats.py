"""Statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import pearson, quantiles, summarize


class TestPearson:
    def test_perfect_positive(self):
        x = [1, 2, 3, 4]
        assert pearson(x, [2, 4, 6, 8]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.random(100)
        y = x * 0.5 + rng.random(100)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_constant_rejected(self):
        with pytest.raises(ValueError):
            pearson([1, 1, 1], [1, 2, 3])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            pearson([1], [2])


class TestSummaries:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["mean"] == 2.0
        assert s["max"] == 3.0
        assert s["min"] == 1.0
        assert s["n"] == 3

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_quantiles(self):
        q = quantiles(range(101), qs=(0.5, 0.99))
        assert q[0.5] == 50.0
        assert q[0.99] == pytest.approx(99.0)

    def test_quantiles_empty_rejected(self):
        with pytest.raises(ValueError):
            quantiles([])
