"""Statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import mean_ci, pearson, quantiles, summarize


class TestPearson:
    def test_perfect_positive(self):
        x = [1, 2, 3, 4]
        assert pearson(x, [2, 4, 6, 8]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.random(100)
        y = x * 0.5 + rng.random(100)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_constant_rejected(self):
        with pytest.raises(ValueError):
            pearson([1, 1, 1], [1, 2, 3])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            pearson([1], [2])


class TestSummaries:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["mean"] == 2.0
        assert s["max"] == 3.0
        assert s["min"] == 1.0
        assert s["n"] == 3

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_quantiles(self):
        q = quantiles(range(101), qs=(0.5, 0.99))
        assert q[0.5] == 50.0
        assert q[0.99] == pytest.approx(99.0)

    def test_quantiles_empty_rejected(self):
        with pytest.raises(ValueError):
            quantiles([])


class TestMeanCI:
    def test_normal_approx_95(self):
        # n=4, mean=2.5, sample std=sqrt(5/3): half = 1.96*s/2.
        ci = mean_ci([1.0, 2.0, 3.0, 4.0])
        s = np.std([1.0, 2.0, 3.0, 4.0], ddof=1)
        assert ci["n"] == 4.0
        assert ci["mean"] == 2.5
        assert ci["half_width"] == pytest.approx(1.959964 * s / 2.0,
                                                 rel=1e-5)
        assert ci["ci_low"] == pytest.approx(2.5 - ci["half_width"])
        assert ci["ci_high"] == pytest.approx(2.5 + ci["half_width"])

    def test_single_observation_zero_width(self):
        ci = mean_ci([3.0])
        assert ci["mean"] == 3.0
        assert ci["half_width"] == 0.0
        assert ci["ci_low"] == ci["ci_high"] == 3.0

    def test_wider_confidence_widens_interval(self):
        values = [1.0, 2.0, 3.0]
        assert (mean_ci(values, confidence=0.99)["half_width"]
                > mean_ci(values, confidence=0.90)["half_width"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([1.0, 2.0], confidence=1.0)
