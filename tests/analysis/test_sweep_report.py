"""Sweep aggregation helpers in the report module."""

import pytest

from repro.analysis.report import (
    aggregate_ci,
    aggregate_rows,
    render_sweep,
    sweep_rows,
)


class FakeSweep:
    spec_name = "fake"

    def __init__(self, rows):
        self._rows = rows

    def rows(self):
        return self._rows

    def summary(self):
        return "fake: 2 tasks"


ROWS = [
    {"period": 1, "acceptance": 1.0, "label": "fresh"},
    {"period": 1, "acceptance": 0.8, "label": "fresh"},
    {"period": 5, "acceptance": 0.6, "label": "stale"},
]


class TestSweepRows:
    def test_passthrough(self):
        assert sweep_rows(FakeSweep(ROWS)) == ROWS

    def test_column_selection_orders_and_fills(self):
        rows = sweep_rows(FakeSweep(ROWS),
                          columns=["acceptance", "missing"])
        assert rows[0] == {"acceptance": 1.0, "missing": None}


class TestAggregateRows:
    def test_groups_and_reduces(self):
        agg = aggregate_rows(ROWS, by="period",
                             metrics=["acceptance"])
        by_period = {row["period"]: row for row in agg}
        assert by_period[1]["n"] == 2
        assert by_period[1]["acceptance_mean"] == pytest.approx(0.9)
        assert by_period[1]["acceptance_min"] == 0.8
        assert by_period[1]["acceptance_max"] == 1.0
        assert by_period[5]["acceptance_mean"] == pytest.approx(0.6)

    def test_non_numeric_metrics_skipped(self):
        agg = aggregate_rows(ROWS, by="period", metrics=["label"])
        assert "label_mean" not in agg[0]

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            aggregate_rows([], by="period", metrics=["acceptance"])


class TestAggregateCI:
    def test_groups_with_confidence_bounds(self):
        agg = aggregate_ci(ROWS, by="period", metrics=["acceptance"])
        by_period = {row["period"]: row for row in agg}
        assert by_period[1]["n"] == 2
        assert by_period[1]["acceptance_mean"] == pytest.approx(0.9)
        assert (by_period[1]["acceptance_ci_low"]
                <= by_period[1]["acceptance_mean"]
                <= by_period[1]["acceptance_ci_high"])
        # Single member: zero-width interval.
        assert by_period[5]["acceptance_ci_low"] == pytest.approx(0.6)
        assert by_period[5]["acceptance_ci_high"] == pytest.approx(0.6)

    def test_non_numeric_metrics_skipped(self):
        agg = aggregate_ci(ROWS, by="period", metrics=["label"])
        assert "label_mean" not in agg[0]

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            aggregate_ci([], by="period", metrics=["acceptance"])


class TestRenderSweep:
    def test_contains_table_and_summary(self):
        text = render_sweep(FakeSweep(ROWS))
        assert "Sweep: fake" in text
        assert "acceptance" in text
        assert "fake: 2 tasks" in text
