"""Gateway e2e: the full HTTP surface against live ephemeral ports."""

import json
import os
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.experiments import ResultCache
from repro.scenarios import (
    Episode,
    Scenario,
    ScenarioRunner,
    make_backend,
)
from repro.service import (
    ServiceClient,
    ServiceError,
    ServiceGateway,
    SessionPool,
    SessionStore,
)


def wire_scenario(n_epochs=20, name="wire"):
    return Scenario(
        name=name, n_nodes=8, n_epochs=n_epochs,
        episodes=(Episode(kind="uniform",
                          flows={"dist": "poisson", "mean": 5}),))


def reference_payloads(scenario, seed=0, backend="awgr"):
    report = ScenarioRunner(
        scenario,
        make_backend(backend, scenario.n_nodes, seed=seed)).run(
            seed=seed)
    return [e.to_dict() for e in report.epochs]


@pytest.fixture
def service(tmp_path):
    store = SessionStore(ResultCache(tmp_path / "sessions"))
    pool = SessionPool(workers=2, slice_epochs=2, store=store)
    gateway = ServiceGateway(pool)
    gateway.start()
    yield ServiceClient(gateway.url), gateway
    gateway.stop()


class TestEndpoints:
    def test_healthz_and_metrics(self, service):
        client, _ = service
        assert client.healthz()["status"] == "ok"
        metrics = client.metrics()
        assert metrics["workers"] == 2
        assert set(metrics["sessions_by_state"]) == {
            "queued", "running", "suspended", "completed", "failed"}

    def test_submit_stream_and_aggregates(self, service):
        client, _ = service
        scenario = wire_scenario()
        summary = client.submit(scenario.to_config(), base_seed=5)
        session_id = summary["id"]
        assert summary["state"] == "queued"
        assert summary["n_epochs"] == 20
        epochs = client.stream_epochs(session_id)
        assert epochs == reference_payloads(scenario, seed=5)
        detail = client.session(session_id)
        assert detail["state"] == "completed"
        assert detail["cursor"] == 20
        assert detail["aggregates"]["epochs"] == 20
        assert detail["aggregates"]["scenario"] == "wire"
        rows = client.sessions()
        assert [r["id"] for r in rows] == [session_id]

    def test_submit_by_name_with_epoch_override(self, service):
        client, _ = service
        summary = client.submit("demo", n_epochs=4)
        detail = client.wait(summary["id"])
        assert detail["cursor"] == 4

    def test_incremental_epoch_poll(self, service):
        client, _ = service
        scenario = wire_scenario(n_epochs=10)
        session_id = client.submit(scenario.to_config())["id"]
        client.wait(session_id)
        full = client.epochs(session_id)
        assert [e["epoch"] for e in full["epochs"]] == list(range(10))
        tail = client.epochs(session_id, since=7)
        assert [e["epoch"] for e in tail["epochs"]] == [7, 8, 9]
        assert tail["cursor"] == 10
        assert tail["state"] == "completed"

    def test_stream_since_resumes_mid_stream(self, service):
        client, _ = service
        scenario = wire_scenario(n_epochs=12)
        session_id = client.submit(scenario.to_config())["id"]
        head = client.stream_epochs(session_id, max_epochs=5)
        tail = client.stream_epochs(session_id, since=5)
        assert [e["epoch"] for e in head + tail] == list(range(12))

    def test_sse_frames_shape(self, service):
        client, _ = service
        scenario = wire_scenario(n_epochs=3)
        session_id = client.submit(scenario.to_config())["id"]
        events = list(client.stream(session_id))
        kinds = [e[0] for e in events]
        assert kinds == ["epoch", "epoch", "epoch", "end"]
        assert [e[1] for e in events[:3]] == [0, 1, 2]
        assert events[-1][2]["state"] == "completed"

    def test_delete(self, service):
        client, _ = service
        session_id = client.submit(wire_scenario(4).to_config())["id"]
        client.wait(session_id)
        assert client.delete(session_id)["deleted"] == session_id
        with pytest.raises(ServiceError) as err:
            client.session(session_id)
        assert err.value.status == 404


class TestErrors:
    def test_unknown_session_404(self, service):
        client, _ = service
        for call in (lambda: client.session("nope"),
                     lambda: client.suspend("nope"),
                     lambda: client.resume("nope"),
                     lambda: client.delete("nope"),
                     lambda: client.fork("nope", at_epoch=0)):
            with pytest.raises(ServiceError) as err:
                call()
            assert err.value.status == 404

    def test_bad_submit_400(self, service):
        client, _ = service
        with pytest.raises(ServiceError) as err:
            client._request("POST", "/sessions", {"no_scenario": 1})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client._request("POST", "/sessions",
                            {"scenario": "demo", "typo_field": 1})
        assert err.value.status == 400
        assert "typo_field" in str(err.value)

    def test_unknown_backend_400(self, service):
        """Unknown backend names bounce at the boundary with the
        registry's name list, instead of failing the session in a
        worker."""
        client, _ = service
        with pytest.raises(ServiceError) as err:
            client.submit("demo", backend="quantum")
        assert err.value.status == 400
        assert "quantum" in str(err.value)
        assert "awgr" in str(err.value)

    def test_registry_backend_session(self, service):
        """A registry-only contender (no hand-written service shim)
        runs to completion over the wire."""
        client, _ = service
        scenario = wire_scenario(6, name="mesh-wire")
        summary = client.submit(scenario.to_config(),
                                backend="full_mesh", base_seed=3)
        epochs = client.stream_epochs(summary["id"])
        assert epochs == reference_payloads(scenario, seed=3,
                                            backend="full_mesh")

    def test_unknown_scenario_name_400(self, service):
        """A bad registered-scenario name is a client error with the
        lookup's message, not a dropped connection."""
        client, _ = service
        with pytest.raises(ServiceError) as err:
            client.submit("no_such_scenario")
        assert err.value.status == 400
        assert "no_such_scenario" in str(err.value)

    def test_unknown_route_404(self, service):
        client, _ = service
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/frobnicate")
        assert err.value.status == 404

    def test_suspend_completed_409(self, service):
        client, _ = service
        session_id = client.submit(wire_scenario(3).to_config())["id"]
        client.wait(session_id)
        with pytest.raises(ServiceError) as err:
            client.suspend(session_id)
        assert err.value.status == 409


class TestSuspendResumeOverHTTP:
    def test_fresh_pool_resume_stream_is_byte_identical(self,
                                                        tmp_path):
        """The acceptance criterion: suspend over HTTP, stand up a
        brand-new pool+gateway on the same store, resume over HTTP,
        and the full epoch stream is byte-identical to an
        uninterrupted monolithic run."""
        scenario = wire_scenario(n_epochs=120, name="migratory")
        store_dir = tmp_path / "sessions"

        first = ServiceGateway(SessionPool(
            workers=2, slice_epochs=2,
            store=SessionStore(ResultCache(store_dir))))
        first.start()
        client = ServiceClient(first.url)
        session_id = client.submit(scenario.to_config(), base_seed=11,
                                   checkpoint_epochs=4)["id"]
        # Let it make real progress, then park it mid-run.
        head = client.stream_epochs(session_id, max_epochs=6)
        suspended = client.suspend(session_id)
        assert suspended["state"] == "suspended"
        cursor = suspended["cursor"]
        assert 0 < cursor < 120
        first.stop()

        second = ServiceGateway(SessionPool(
            workers=2, slice_epochs=2,
            store=SessionStore(ResultCache(store_dir))))
        second.start()
        client2 = ServiceClient(second.url)
        listed = client2.sessions()
        assert [s["id"] for s in listed] == [session_id]
        assert listed[0]["state"] == "suspended"
        resumed = client2.resume(session_id)
        assert resumed["cursor"] == cursor
        remaining = client2.stream_epochs(session_id, since=cursor)
        everything = client2.epochs(session_id)["epochs"]
        second.stop()

        expected = reference_payloads(scenario, seed=11)
        canon = lambda payload: json.dumps(payload, sort_keys=True)
        assert canon(everything) == canon(expected)
        assert canon(remaining) == canon(expected[cursor:])
        assert canon(head) == canon(expected[:6])


@pytest.mark.slow
class TestFreshProcessResume:
    def test_resume_in_a_separate_os_process(self, tmp_path):
        """Same as above but across real OS processes: a `repro
        serve` subprocess hosts the suspend, a second one hosts the
        resume, sharing only the store directory."""
        store = tmp_path / "sessions"
        scenario = wire_scenario(n_epochs=120, name="migratory")

        def spawn():
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve", "--port",
                 "0", "--workers", "2", "--slice-epochs", "2",
                 "--store-dir", str(store)],
                stdout=subprocess.PIPE, text=True,
                env={**os.environ, "PYTHONPATH": "src"})
            banner = proc.stdout.readline()
            url = [w for w in banner.split()
                   if w.startswith("http://")][0]
            return proc, ServiceClient(url)

        proc1, client1 = spawn()
        try:
            session_id = client1.submit(scenario.to_config(),
                                        base_seed=13,
                                        checkpoint_epochs=4)["id"]
            client1.stream_epochs(session_id, max_epochs=5)
            cursor = client1.suspend(session_id)["cursor"]
            client1.shutdown()
            assert proc1.wait(timeout=30) == 0
        finally:
            if proc1.poll() is None:
                proc1.kill()

        proc2, client2 = spawn()
        try:
            client2.resume(session_id)
            everything = client2.epochs(session_id)["epochs"]
            deadline = time.monotonic() + 60
            while (len(everything) < 120
                   and time.monotonic() < deadline):
                time.sleep(0.1)
                everything = client2.epochs(session_id)["epochs"]
            client2.shutdown()
            assert proc2.wait(timeout=30) == 0
        finally:
            if proc2.poll() is None:
                proc2.kill()

        expected = reference_payloads(scenario, seed=13)
        assert (json.dumps(everything, sort_keys=True)
                == json.dumps(expected, sort_keys=True))
        assert cursor < 120


class TestShutdownEndpoint:
    def test_shutdown_stops_the_listener(self, tmp_path):
        pool = SessionPool(workers=1)
        gateway = ServiceGateway(pool)
        gateway.start()
        client = ServiceClient(gateway.url)
        assert client.shutdown()["status"] == "shutting down"
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                urllib.request.urlopen(gateway.url + "/healthz",
                                       timeout=1).read()
            except OSError:
                break
            time.sleep(0.05)
        else:
            pytest.fail("listener still answering after /shutdown")
        gateway.stop()  # idempotent cleanup
