"""Session lifecycle: advance, checkpoint, recover, serialize."""

import json

import pytest

from repro.experiments import ResultCache
from repro.scenarios import (
    Episode,
    Scenario,
    ScenarioEvent,
    ScenarioRunner,
    make_backend,
)
from repro.service.sessions import (
    SESSION_FORMAT,
    Session,
    SessionStore,
)


def service_scenario(n_epochs=12, events=(), name="svc"):
    return Scenario(
        name=name, n_nodes=8, n_epochs=n_epochs,
        episodes=(Episode(kind="uniform",
                          flows={"dist": "poisson", "mean": 6}),),
        events=tuple(events))


def reference_payloads(scenario, seed=0, backend="awgr"):
    report = ScenarioRunner(
        scenario,
        make_backend(backend, scenario.n_nodes, seed=seed)).run(
            seed=seed)
    return [e.to_dict() for e in report.epochs]


class TestAdvance:
    def test_slices_match_monolithic(self):
        scenario = service_scenario()
        session = Session.create("s1", scenario, base_seed=4,
                                 checkpoint_epochs=4)
        while session.remaining:
            session.advance(3)
        assert session.state == "completed"
        assert session.reports == reference_payloads(scenario, seed=4)

    def test_reports_are_json_pure(self):
        session = Session.create("s1", service_scenario(n_epochs=3))
        session.advance(3)
        assert json.loads(json.dumps(session.reports)) == (
            session.reports)

    def test_checkpoint_cadence(self):
        session = Session.create("s1", service_scenario(n_epochs=10),
                                 checkpoint_epochs=4)
        session.advance(10)
        # Attach-time epoch 0, every 4th, and the horizon.
        assert sorted(session.checkpoints) == [0, 4, 8, 10]

    def test_events_counted_per_epoch(self):
        events = [ScenarioEvent(epoch=1, action="fail_plane", value=0),
                  ScenarioEvent(epoch=2, action="repair_plane",
                                value=0)]
        session = Session.create(
            "s1", service_scenario(n_epochs=4, events=events))
        session.advance(4)
        assert session.events_applied == 2
        assert [c[0] for c in session.event_counts] == [0, 1, 1, 0]

    def test_horizon_completes_and_detaches(self):
        session = Session.create("s1", service_scenario(n_epochs=2))
        session.advance(5)
        assert session.state == "completed"
        assert session._backend is None


class TestRecover:
    def test_rolls_back_to_checkpoint_and_replays_exactly(self):
        scenario = service_scenario(n_epochs=12)
        session = Session.create("s1", scenario, base_seed=1,
                                 checkpoint_epochs=4)
        session.advance(7)  # cursor 7, checkpoints {0, 4}
        reference = [dict(r) for r in session.reports]
        dropped = session.recover()
        assert dropped == 3
        assert session.cursor == 4
        assert len(session.reports) == 4
        session.advance(12)
        assert session.reports[:7] == reference
        assert session.reports == reference_payloads(scenario, seed=1)

    def test_event_totals_rolled_back(self):
        events = [ScenarioEvent(epoch=5, action="fail_plane", value=0)]
        session = Session.create(
            "s1", service_scenario(n_epochs=8, events=events),
            checkpoint_epochs=4)
        session.advance(6)
        assert session.events_applied == 1
        session.recover()
        assert session.events_applied == 0
        session.advance(8)
        assert session.events_applied == 1


class TestSerialization:
    def test_record_roundtrip_through_json(self):
        scenario = service_scenario(
            events=[ScenarioEvent(epoch=1, action="fail_plane",
                                  value=0)])
        session = Session.create("s1", scenario, base_seed=2,
                                 checkpoint_epochs=4)
        session.advance(5)
        record = json.loads(json.dumps(session.to_dict()))
        clone = Session.from_record(record)
        assert clone.cursor == session.cursor
        assert clone.reports == session.reports
        assert clone.checkpoints == session.checkpoints
        assert clone.scenario == session.scenario

    def test_resumed_clone_finishes_identically(self):
        scenario = service_scenario(n_epochs=10)
        session = Session.create("s1", scenario, base_seed=6,
                                 checkpoint_epochs=2)
        session.advance(4)
        session.suspend_snapshot()
        clone = Session.from_record(
            json.loads(json.dumps(session.to_dict())))
        clone.state = "queued"
        clone.advance(10)
        assert clone.reports == reference_payloads(scenario, seed=6)

    def test_format_mismatch_rejected(self):
        session = Session.create("s1", service_scenario())
        record = session.to_dict()
        record["format"] = SESSION_FORMAT + 1
        with pytest.raises(ValueError, match="format"):
            Session.from_record(record)

    def test_suspend_mid_slice_snapshots_cursor(self):
        session = Session.create("s1", service_scenario(),
                                 checkpoint_epochs=100)
        session.advance(3)
        session.suspend_snapshot()
        assert session.state == "suspended"
        assert 3 in session.checkpoints
        assert session._backend is None

    def test_suspend_completed_rejected(self):
        session = Session.create("s1", service_scenario(n_epochs=1))
        session.advance(1)
        with pytest.raises(ValueError, match="completed"):
            session.suspend_snapshot()


class TestSnapshotAt:
    def test_between_checkpoints_rebuilds_exactly(self):
        scenario = service_scenario(n_epochs=12)
        session = Session.create("s1", scenario, base_seed=3,
                                 checkpoint_epochs=4)
        session.advance(12)
        # Epoch 6 was never checkpointed; rebuild it and compare to a
        # direct run paused at 6.
        snap = session.snapshot_at(6)
        backend = make_backend("awgr", scenario.n_nodes, seed=3)
        ScenarioRunner(scenario, backend).step_epochs(0, 6, seed=3)
        assert snap == backend.snapshot()

    def test_beyond_cursor_rejected(self):
        session = Session.create("s1", service_scenario())
        session.advance(2)
        with pytest.raises(ValueError, match="computed range"):
            session.snapshot_at(5)


class TestSessionStore:
    def test_save_load_delete_list(self, tmp_path):
        store = SessionStore(ResultCache(tmp_path))
        session = Session.create("alpha", service_scenario())
        session.advance(2)
        session.suspend_snapshot()
        store.save(session)
        assert store.list_ids() == ["alpha"]
        record = store.load("alpha")
        assert record["cursor"] == 2
        assert Session.from_record(record).reports == session.reports
        assert store.delete("alpha") is True
        assert store.delete("alpha") is False
        assert store.load("alpha") is None
        assert store.list_ids() == []

    def test_save_overwrites(self, tmp_path):
        store = SessionStore(ResultCache(tmp_path))
        session = Session.create("alpha", service_scenario())
        session.advance(1)
        session.suspend_snapshot()
        store.save(session)
        session.state = "queued"
        session.advance(2)
        session.suspend_snapshot()
        store.save(session)
        assert store.load("alpha")["cursor"] == 3
        assert store.list_ids() == ["alpha"]
