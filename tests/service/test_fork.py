"""Fork semantics: bit-identical prefixes, divergent futures, no
shared mutable state between parent and child."""

import json

import pytest

from repro.scenarios import (
    Episode,
    Scenario,
    ScenarioEvent,
    ScenarioRunner,
    make_backend,
)
from repro.service import ServiceClient, ServiceGateway, SessionPool
from repro.service.sessions import Session


def fork_scenario(n_epochs=16, events=(), name="forksvc"):
    return Scenario(
        name=name, n_nodes=8, n_epochs=n_epochs,
        episodes=(Episode(kind="uniform",
                          flows={"dist": "poisson", "mean": 6}),),
        events=tuple(events))


def completed_session(scenario, seed=0, checkpoint_epochs=4,
                      session_id="parent"):
    session = Session.create(session_id, scenario, base_seed=seed,
                             checkpoint_epochs=checkpoint_epochs)
    session.advance(scenario.n_epochs)
    return session


def canon(payload):
    return json.dumps(payload, sort_keys=True)


class TestForkDeterminism:
    def test_identical_events_give_bit_identical_streams(self):
        """Fork at N, replay both to N+M with identical events: the
        child's whole stream equals the parent's."""
        scenario = fork_scenario(n_epochs=16)
        parent = completed_session(scenario, seed=7)
        for at_epoch in (0, 3, 4, 11, 16):  # on and off checkpoints
            child = parent.fork(f"c{at_epoch}", at_epoch)
            child.advance(scenario.n_epochs)
            assert canon(child.reports) == canon(parent.reports), (
                f"fork at {at_epoch} drifted")

    def test_divergent_child_keeps_exact_prefix(self):
        scenario = fork_scenario(n_epochs=16)
        parent = completed_session(scenario, seed=3)
        child = parent.fork(
            "child", 6,
            events=(ScenarioEvent(epoch=8, action="fail_plane",
                                  value=2),))
        child.advance(scenario.n_epochs)
        assert canon(child.reports[:6]) == canon(parent.reports[:6])
        assert canon(child.reports[8:]) != canon(parent.reports[8:])
        healthy = [r["extras"]["healthy_planes"]
                   for r in child.reports]
        assert healthy[7] == 5 and healthy[8] == 4

    def test_divergence_does_not_perturb_parent(self):
        """No shared mutable state: running a divergent child leaves
        the parent's record, checkpoints, and future byte-for-byte
        untouched."""
        scenario = fork_scenario(n_epochs=16)
        parent = Session.create("parent", scenario, base_seed=5,
                                checkpoint_epochs=4)
        parent.advance(8)  # fork mid-run, parent still has a future
        before = canon(parent.to_dict())
        child = parent.fork(
            "child", 8,
            events=(ScenarioEvent(epoch=9, action="fail_plane",
                                  value=1),))
        child.advance(scenario.n_epochs)
        assert canon(parent.to_dict()) == before
        parent.advance(scenario.n_epochs)
        unforked = completed_session(scenario, seed=5,
                                     session_id="control")
        assert canon(parent.reports) == canon(unforked.reports)

    def test_child_horizon_override(self):
        scenario = fork_scenario(n_epochs=10)
        parent = completed_session(scenario, seed=1)
        child = parent.fork("longer", 10, n_epochs=20)
        child.advance(20)
        assert child.state == "completed"
        assert child.cursor == 20
        assert canon(child.reports[:10]) == canon(parent.reports)
        # The extension equals an uninterrupted 20-epoch run.
        long_run = ScenarioRunner(
            scenario.with_epochs(20),
            make_backend("awgr", 8, seed=1)).run(seed=1)
        assert canon(child.reports) == canon(
            [e.to_dict() for e in long_run.epochs])

    def test_fork_validation(self):
        parent = completed_session(fork_scenario(n_epochs=8))
        with pytest.raises(ValueError, match="precedes"):
            parent.fork("bad", 4,
                        events=(ScenarioEvent(epoch=2,
                                              action="fail_plane",
                                              value=0),))
        with pytest.raises(ValueError, match="before the fork"):
            parent.fork("bad", 6, n_epochs=4)
        with pytest.raises(ValueError, match="computed range"):
            parent.fork("bad", 99)


class TestForkOverHTTP:
    def test_fork_lineage_and_divergence_end_to_end(self):
        scenario = fork_scenario(n_epochs=14)
        gateway = ServiceGateway(SessionPool(workers=2,
                                             slice_epochs=2))
        gateway.start()
        try:
            client = ServiceClient(gateway.url)
            parent_id = client.submit(scenario.to_config(),
                                      base_seed=9,
                                      checkpoint_epochs=4)["id"]
            parent_epochs = client.stream_epochs(parent_id)
            child = client.fork(
                parent_id, at_epoch=5,
                events=[{"epoch": 7, "action": "fail_plane",
                         "value": 1}])
            assert child["parent"] == parent_id
            assert child["forked_at"] == 5
            assert child["cursor"] == 5
            child_epochs = client.epochs(child["id"])["epochs"]
            deadline_states = ("completed", "failed")
            detail = client.wait(child["id"], states=deadline_states)
            assert detail["state"] == "completed"
            child_epochs = client.epochs(child["id"])["epochs"]
            assert canon(child_epochs[:5]) == canon(parent_epochs[:5])
            assert canon(child_epochs[7:]) != canon(parent_epochs[7:])
            # Parent record untouched by the child's divergence.
            again = client.epochs(parent_id)["epochs"]
            assert canon(again) == canon(parent_epochs)
        finally:
            gateway.stop()
