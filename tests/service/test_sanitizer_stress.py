"""Sanitizer-armed pool stress: 32 sessions over 4 workers with
suspend/resume/fork churn, under ``REPRO_SANITIZE=1``.

The runtime sanitizer (:mod:`repro.checks.runtime`) records every
lock-order edge and guarded-attribute access the service layer makes;
a single inversion or unguarded access anywhere in the run fails the
final ``assert_clean()``. CI runs this file as its own step with the
environment armed from the start; run locally it arms itself via
monkeypatch before any pool (and therefore any lock) is built.
"""

import pytest

from repro.checks.runtime import get_sanitizer
from repro.experiments import ResultCache
from repro.scenarios import Episode, Scenario
from repro.service import SessionPool, SessionStore


@pytest.fixture
def armed_sanitizer(monkeypatch):
    # Must arm before the pool exists: new_condition() reads the
    # environment when the lock is created.
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitizer = get_sanitizer()
    sanitizer.reset()
    yield sanitizer
    sanitizer.reset()


def stress_scenario(seed_name, n_epochs=12):
    return Scenario(
        name=f"sanstress-{seed_name}", n_nodes=8, n_epochs=n_epochs,
        episodes=(Episode(kind="uniform",
                          flows={"dist": "poisson", "mean": 4}),))


def wait_done(session, timeout=120.0):
    assert session.wait_for(lambda s: s.done, timeout=timeout), (
        f"{session.session_id} stuck in {session.state} at "
        f"{session.cursor}")


class TestSanitizedPool:
    def test_32_sessions_4_workers_zero_violations(
            self, armed_sanitizer, tmp_path):
        pool = SessionPool(workers=4, slice_epochs=2,
                           store=SessionStore(ResultCache(tmp_path)))
        sessions = [pool.submit(stress_scenario(i), base_seed=i,
                                checkpoint_epochs=4)
                    for i in range(32)]
        pool.start()
        try:
            # Churn while the fleet runs: park/revive the low third,
            # branch a few mid-flight, drop one outright.
            for session in sessions[:10]:
                try:
                    pool.suspend(session.session_id, timeout=30.0)
                    pool.resume(session.session_id)
                except ValueError:
                    pass  # finished before the suspend landed
            for session in sessions[10:14]:
                try:
                    pool.fork(session.session_id, at_epoch=0)
                except ValueError:
                    pass
            pool.delete(sessions[14].session_id)
            for session_id in pool.list_ids():
                try:
                    session = pool.get(session_id)
                except KeyError:
                    continue
                if session.state == "suspended":
                    continue
                wait_done(session)
        finally:
            pool.shutdown()
        # The acceptance criterion: a full churned run records not a
        # single lock-discipline violation.
        armed_sanitizer.assert_clean()
        # And the run actually exercised the discipline: both service
        # locks appeared, in the one sanctioned order.
        assert ("SessionPool._lock",
                "Session.updated") in armed_sanitizer.edges

    def test_fault_injected_recovery_stays_clean(
            self, armed_sanitizer):
        pool = SessionPool(workers=2, slice_epochs=2, max_retries=3)
        hits = []

        def crash_once(session):
            if session.session_id.endswith("1") and not hits:
                hits.append(session.session_id)
                raise RuntimeError("injected worker crash")

        pool.fault_hook = crash_once
        sessions = [pool.submit(stress_scenario(f"crash{i}"),
                                base_seed=i, checkpoint_epochs=2)
                    for i in range(4)]
        pool.start()
        try:
            for session in sessions:
                wait_done(session)
        finally:
            pool.shutdown()
        assert hits, "fault hook never fired"
        armed_sanitizer.assert_clean()
