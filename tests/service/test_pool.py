"""SessionPool: fair multiplexing, crash recovery, suspend/resume."""

import threading

import pytest

from repro.experiments import ResultCache
from repro.scenarios import Episode, Scenario
from repro.service import SessionNotFound, SessionPool, SessionStore
from repro.service.sessions import Session


def pool_scenario(n_epochs=8, name="poolsvc"):
    return Scenario(
        name=name, n_nodes=8, n_epochs=n_epochs,
        episodes=(Episode(kind="uniform",
                          flows={"dist": "poisson", "mean": 4}),))


def wait_all_done(pool, timeout=60.0):
    deadline = threading.Event()
    for session in list(pool.sessions.values()):
        assert session.wait_for(lambda s: s.done, timeout=timeout), (
            f"{session.session_id} stuck in {session.state} at "
            f"{session.cursor}")
    deadline.set()


def reference_session(scenario, seed=0):
    session = Session.create("ref", scenario, base_seed=seed)
    session.advance(scenario.n_epochs)
    return session


class TestScheduling:
    def test_single_worker_rounds_are_exact_permutations(self):
        """With one worker the recorded slice order IS the FIFO pop
        order: every scheduling round runs each live session exactly
        once before any session runs twice."""
        pool = SessionPool(workers=1, slice_epochs=2)
        pops = []
        pool.fault_hook = lambda s: pops.append(s.session_id)
        scenario = pool_scenario(n_epochs=6)  # 3 slices per session
        ids = [pool.submit(scenario, base_seed=i).session_id
               for i in range(8)]
        pool.start()
        wait_all_done(pool)
        pool.shutdown()
        assert len(pops) == 8 * 3
        for round_index in range(3):
            window = pops[round_index * 8:(round_index + 1) * 8]
            assert sorted(window) == sorted(ids), (
                f"round {round_index} starved "
                f"{set(ids) - set(window)}")

    def test_32_sessions_over_4_workers_never_starve(self):
        """The acceptance-criterion load: 32 sessions multiplexed on
        4 workers. FIFO requeue means no session waits more than one
        full round (plus in-flight jitter of at most workers-1
        slices) between two of its slices, and every session gets
        the same slice count."""
        workers = 4
        pool = SessionPool(workers=workers, slice_epochs=2)
        pops = []
        pop_lock = threading.Lock()

        def record(session):
            with pop_lock:
                pops.append(session.session_id)

        pool.fault_hook = record
        scenario = pool_scenario(n_epochs=8)  # 4 slices per session
        ids = [pool.submit(scenario, base_seed=i).session_id
               for i in range(32)]
        pool.start()
        wait_all_done(pool)
        pool.shutdown()
        assert len(pops) == 32 * 4
        # FIFO bounds the *queue wait* to one round; the pop-to-pop
        # gap additionally spans the session's own slice execution,
        # during which the other workers keep popping (~3/4 of a
        # round at 4 workers), plus recording jitter. Three rounds is
        # comfortably past the structural ~2-round steady state while
        # still catching any real starvation.
        for session_id in ids:
            at = [i for i, sid in enumerate(pops)
                  if sid == session_id]
            assert len(at) == 4  # exact equal share of slices
            assert at[0] < 3 * 32
            gaps = [b - a for a, b in zip(at, at[1:])]
            assert max(gaps) <= 3 * 32, (
                f"{session_id} starved for {max(gaps)} pops")
        # Everyone finished: per-session slice counters agree.
        assert {pool.get(sid).slices for sid in ids} == {4}

    def test_metrics_report_fleet_state(self):
        pool = SessionPool(workers=4, slice_epochs=2)
        scenario = pool_scenario(n_epochs=6)
        for i in range(8):
            pool.submit(scenario, base_seed=i)
        queued = pool.metrics()
        assert queued["sessions_by_state"]["queued"] == 8
        assert queued["queue_depth"] == 8
        pool.start()
        wait_all_done(pool)
        pool.shutdown()
        done = pool.metrics()
        assert done["sessions_by_state"]["completed"] == 8
        assert done["epochs_total"] == 8 * 6
        assert done["epochs_per_s"] > 0
        assert done["max_slice_spread"] == 0  # none active anymore
        assert done["queue_depth"] == 0

    def test_results_match_unpooled_run(self):
        pool = SessionPool(workers=3, slice_epochs=2)
        scenario = pool_scenario(n_epochs=7)
        ids = [pool.submit(scenario, base_seed=seed).session_id
               for seed in (0, 5, 11)]
        pool.start()
        wait_all_done(pool)
        pool.shutdown()
        for session_id, seed in zip(ids, (0, 5, 11)):
            expected = reference_session(scenario, seed=seed)
            assert pool.get(session_id).reports == expected.reports

    def test_submit_accepts_name_and_config(self):
        pool = SessionPool(workers=1)
        by_name = pool.submit("demo", n_epochs=3)
        assert by_name.scenario.name == "demo"
        assert by_name.n_epochs == 3
        config = pool_scenario().to_config()
        by_config = pool.submit(config)
        assert by_config.scenario.name == "poolsvc"
        assert by_name.session_id != by_config.session_id


class TestCrashRecovery:
    def test_worker_death_mid_slice_reruns_from_checkpoint(self):
        """A slice that makes partial progress then dies is rolled
        back to the last checkpoint and re-run bit-identically."""
        pool = SessionPool(workers=2, slice_epochs=2, max_retries=2)
        scenario = pool_scenario(n_epochs=8)
        crashed = threading.Event()

        def die_once_mid_slice(session):
            if session.session_id == "victim" and not crashed.is_set():
                crashed.set()
                session.advance(1)  # partial progress...
                raise RuntimeError("worker died mid-slice")

        pool.fault_hook = die_once_mid_slice
        pool.submit(scenario, base_seed=3, checkpoint_epochs=2,
                    session_id="victim")
        pool.submit(scenario, base_seed=4, session_id="bystander")
        pool.start()
        wait_all_done(pool)
        pool.shutdown()
        assert crashed.is_set()
        victim = pool.get("victim")
        assert victim.state == "completed"
        assert victim.recoveries == 1
        expected = reference_session(scenario, seed=3)
        assert victim.reports == expected.reports
        assert pool.metrics()["recoveries_total"] == 1
        assert pool.metrics()["epochs_total"] == 2 * 8

    def test_retries_exhausted_marks_failed(self):
        pool = SessionPool(workers=1, slice_epochs=2, max_retries=1)

        def always_die(session):
            raise RuntimeError("unlucky host")

        pool.fault_hook = always_die
        session = pool.submit(pool_scenario(), session_id="doomed")
        pool.start()
        assert session.wait_for(lambda s: s.done, timeout=30.0)
        pool.shutdown()
        assert session.state == "failed"
        assert "unlucky host" in session.error
        assert pool.metrics()["sessions_by_state"]["failed"] == 1


class TestSuspendResume:
    def test_roundtrip_through_store(self, tmp_path):
        store = SessionStore(ResultCache(tmp_path))
        pool = SessionPool(workers=2, slice_epochs=2, store=store)
        scenario = pool_scenario(n_epochs=120)
        session = pool.submit(scenario, base_seed=7,
                              checkpoint_epochs=2,
                              session_id="parked")
        pool.start()
        assert session.wait_for(lambda s: s.cursor >= 2, timeout=30.0)
        suspended = pool.suspend("parked")
        assert suspended.state == "suspended"
        assert "parked" not in pool.sessions  # store owns it now
        assert store.load("parked")["state"] == "suspended"
        assert "parked" in pool.list_ids()
        resumed = pool.resume("parked")
        assert resumed.wait_for(lambda s: s.done, timeout=30.0)
        pool.shutdown()
        expected = reference_session(scenario, seed=7)
        assert resumed.reports == expected.reports

    def test_storeless_suspend_stays_in_memory(self):
        pool = SessionPool(workers=1, slice_epochs=2)
        session = pool.submit(pool_scenario(n_epochs=120),
                              session_id="mem")
        pool.start()
        assert session.wait_for(lambda s: s.cursor >= 2, timeout=30.0)
        pool.suspend("mem")
        assert pool.get("mem").state == "suspended"
        resumed = pool.resume("mem")
        assert resumed.wait_for(lambda s: s.done, timeout=60.0)
        pool.shutdown()
        expected = reference_session(pool_scenario(n_epochs=120))
        assert resumed.reports == expected.reports

    def test_resume_on_fresh_pool_is_bit_identical(self, tmp_path):
        """The acceptance-criterion core: suspend here, resume on a
        brand-new pool over the same store, remaining stream exact."""
        scenario = pool_scenario(n_epochs=120)
        first = SessionPool(workers=2, slice_epochs=2,
                            store=SessionStore(ResultCache(tmp_path)))
        session = first.submit(scenario, base_seed=9,
                               checkpoint_epochs=2,
                               session_id="migrant")
        first.start()
        assert session.wait_for(lambda s: s.cursor >= 3, timeout=30.0)
        first.suspend("migrant")
        first.shutdown()
        second = SessionPool(workers=2, slice_epochs=2,
                             store=SessionStore(ResultCache(tmp_path)))
        second.start()
        resumed = second.resume("migrant")
        assert resumed.wait_for(lambda s: s.done, timeout=30.0)
        second.shutdown()
        expected = reference_session(scenario, seed=9)
        assert resumed.state == "completed"
        assert resumed.reports == expected.reports

    def test_resume_unknown_and_unsuspended_rejected(self, tmp_path):
        pool = SessionPool(
            workers=1, store=SessionStore(ResultCache(tmp_path)))
        with pytest.raises(SessionNotFound):
            pool.resume("ghost")
        live = pool.submit(pool_scenario(), session_id="busy")
        with pytest.raises(ValueError, match="not suspended"):
            pool.resume("busy")
        assert live.state == "queued"

    def test_delete_removes_live_and_stored(self, tmp_path):
        store = SessionStore(ResultCache(tmp_path))
        pool = SessionPool(workers=1, store=store)
        pool.submit(pool_scenario(), session_id="gone")
        assert pool.delete("gone") is True
        assert pool.delete("gone") is False
        with pytest.raises(SessionNotFound):
            pool.get("gone")
