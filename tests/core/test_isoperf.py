"""Iso-performance comparison (paper §VI-E)."""

import pytest

from repro.core.isoperf import (
    double_throughput_alternative,
    iso_performance_comparison,
    pooling_reduction_factor,
)
from repro.rack.chips import ChipType


class TestPaperArithmetic:
    def test_baseline_1920(self):
        result = iso_performance_comparison()
        assert result.baseline_total == 1920

    def test_disaggregated_near_1075(self):
        # "our disaggregated rack has 1075 total modules".
        result = iso_performance_comparison()
        assert 1050 < result.disaggregated_total < 1100

    def test_44pct_reduction(self):
        # "an approximately 44% reduction".
        result = iso_performance_comparison()
        assert result.module_reduction == pytest.approx(0.44, abs=0.02)

    def test_overprovision_factors(self):
        # "+6% more GPUs and 15% more CPUs".
        result = iso_performance_comparison()
        assert result.cpu_overprovision == pytest.approx(0.15)
        assert result.gpu_overprovision == pytest.approx(0.0565, abs=0.01)

    def test_memory_nic_reductions(self):
        # "4x fewer memory modules and 2x fewer NICs".
        result = iso_performance_comparison()
        assert result.disaggregated_modules[ChipType.DDR4] == \
            pytest.approx(1024 / 4)
        assert result.disaggregated_modules[ChipType.NIC] == \
            pytest.approx(256 / 2)

    def test_invalid_reduction_rejected(self):
        with pytest.raises(ValueError):
            iso_performance_comparison(memory_reduction=0.0)


class TestEmpiricalPooling:
    def test_memory_pooling_at_least_4x(self):
        # Our synthetic Cori profile supports at least the paper's
        # (conservative) 4x memory-module reduction.
        factor = pooling_reduction_factor("memory_capacity")
        assert factor >= 4.0

    def test_nic_pooling_at_least_2x(self):
        factor = pooling_reduction_factor("nic_bandwidth")
        assert factor >= 2.0

    def test_empirical_mode_runs(self):
        result = iso_performance_comparison(memory_reduction=None,
                                            nic_reduction=None)
        assert result.memory_reduction >= 4.0
        assert result.module_reduction > 0.40

    def test_headroom_reduces_factor(self):
        tight = pooling_reduction_factor("memory_capacity", headroom=1.0)
        loose = pooling_reduction_factor("memory_capacity", headroom=1.5)
        assert loose < tight


class TestDoubleThroughputAlternative:
    def test_7pct_chip_increase(self):
        # "only an approximately 7% chip increase ... doubles
        # computational throughput".
        alt = double_throughput_alternative()
        assert alt["chip_increase"] == pytest.approx(128 / 1920)
        assert alt["chip_increase"] < 0.08
        assert alt["throughput_factor"] == 2.0
