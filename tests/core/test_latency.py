"""Latency budget composition (paper §III-C2, §VI-B)."""

import pytest

from repro.core.latency import (
    PHOTONIC_BUDGET,
    SENSITIVITY_POINTS_NS,
    LatencyBudget,
    photonic_disaggregation_latency_ns,
)


class TestBudget:
    def test_default_is_35ns(self):
        assert PHOTONIC_BUDGET.total_ns == 35.0

    def test_decomposition(self):
        assert PHOTONIC_BUDGET.eoe_conversion_ns == 15.0
        assert PHOTONIC_BUDGET.propagation_ns == 20.0

    def test_shorter_reach(self):
        # 2 m reach => 15 + 10 = 25 ns (the Fig. 8 sweet spot).
        assert PHOTONIC_BUDGET.with_fiber(2.0).total_ns == 25.0

    def test_function_form(self):
        assert photonic_disaggregation_latency_ns() == 35.0
        assert photonic_disaggregation_latency_ns(fiber_m=3.0) == 30.0

    def test_sensitivity_points(self):
        assert SENSITIVITY_POINTS_NS == (25.0, 30.0, 35.0)

    def test_propagation_under_20pct_of_dram(self):
        # §III-C2: "rack-scale resource disaggregation adds 5-20 ns of
        # latency, approximately less than 20% of the typical DRAM
        # latency" (propagation share only).
        budget = LatencyBudget()
        assert budget.propagation_ns / 90.0 < 0.25

    def test_dram_fraction_helper(self):
        assert PHOTONIC_BUDGET.dram_latency_fraction(90.0) == pytest.approx(
            35.0 / 90.0)
        with pytest.raises(ValueError):
            PHOTONIC_BUDGET.dram_latency_fraction(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyBudget(eoe_conversion_ns=-1.0)
        with pytest.raises(ValueError):
            LatencyBudget(fiber_m=-1.0)
