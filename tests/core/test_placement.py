"""Job placement onto MCMs and fabric bandwidth validation."""

import pytest

from repro.core.allocation import JobRequest
from repro.core.placement import (
    MCMDirectory,
    PlacementEngine,
)
from repro.rack.chips import ChipType


class TestDirectory:
    def test_350_mcms(self):
        directory = MCMDirectory.for_default_rack()
        assert directory.n_mcms == 350

    def test_id_ranges_disjoint_and_ordered(self):
        directory = MCMDirectory.for_default_rack()
        ranges = [directory.ids[t] for t in (
            ChipType.CPU, ChipType.GPU, ChipType.NIC, ChipType.HBM,
            ChipType.DDR4)]
        assert ranges[0] == range(0, 10)
        assert ranges[1] == range(10, 181)
        flat = [i for r in ranges for i in r]
        assert flat == list(range(350))

    def test_slot_counts_match_table3(self):
        directory = MCMDirectory.for_default_rack()
        assert directory.slots[0] == 14       # CPU MCM
        assert directory.slots[10] == 3       # GPU MCM
        assert directory.slots[349] == 27     # DDR4 MCM

    def test_take_and_release(self):
        directory = MCMDirectory.for_default_rack()
        taken = directory.take_chips(ChipType.CPU, 20)
        assert sum(taken.values()) == 20
        assert len(taken) == 2   # spills into a second 14-chip MCM
        directory.release_chips(taken)
        assert directory.free[0] == 14

    def test_exhaustion_rolls_back(self):
        directory = MCMDirectory.for_default_rack()
        with pytest.raises(RuntimeError):
            directory.take_chips(ChipType.CPU, 10_000)
        assert directory.free[0] == 14  # rollback happened

    def test_over_release_detected(self):
        directory = MCMDirectory.for_default_rack()
        with pytest.raises(RuntimeError):
            directory.release_chips({0: 1})


class TestPlacement:
    def job(self, job_id="j", cpus=2, gpus=4, memory=256.0, nic=200.0):
        return JobRequest(job_id, cpus=cpus, gpus=gpus,
                          memory_gbyte=memory, nic_gbps=nic)

    def test_place_covers_request(self):
        engine = PlacementEngine()
        placement = engine.place(self.job())
        assert sum(placement.cpus.values()) == 2
        assert sum(placement.gpus.values()) == 4
        assert sum(placement.ddr4.values()) == 8   # 256 GB / 32 GB
        assert sum(placement.hbm.values()) == 4    # one per GPU
        assert sum(placement.nics.values()) == 1   # 200 Gbps -> 1 NIC

    def test_unplace_restores(self):
        engine = PlacementEngine()
        engine.place(self.job())
        engine.unplace("j")
        assert engine.directory.free[0] == 14
        assert not engine.placements

    def test_double_place_rejected(self):
        engine = PlacementEngine()
        engine.place(self.job())
        with pytest.raises(RuntimeError):
            engine.place(self.job())

    def test_unplace_unknown_rejected(self):
        with pytest.raises(RuntimeError):
            PlacementEngine().unplace("ghost")

    def test_all_or_nothing_on_exhaustion(self):
        engine = PlacementEngine()
        with pytest.raises(RuntimeError):
            engine.place(self.job(cpus=1, gpus=10_000))
        # The CPU taken before the GPU failure was rolled back.
        assert engine.directory.free[0] == 14

    def test_jobs_share_mcms(self):
        engine = PlacementEngine()
        a = engine.place(self.job("a", cpus=1, gpus=0, memory=32.0,
                                  nic=0.0))
        b = engine.place(self.job("b", cpus=1, gpus=0, memory=32.0,
                                  nic=0.0))
        # First-fit packs both CPU chips onto MCM 0.
        assert list(a.cpus) == list(b.cpus) == [0]


class TestFlows:
    def test_flow_kinds_present(self):
        engine = PlacementEngine()
        placement = engine.place(JobRequest("j", cpus=2, gpus=3,
                                            memory_gbyte=512.0,
                                            nic_gbps=200.0))
        flows = engine.flows_for(placement)
        kinds = {f.kind for f in flows}
        assert {"cpu-mem", "cpu-nic", "gpu-hbm"} <= kinds

    def test_gpu_hbm_bandwidth_scales_with_gpus(self):
        engine = PlacementEngine()
        placement = engine.place(JobRequest("j", gpus=3,
                                            memory_gbyte=0.0))
        flows = [f for f in engine.flows_for(placement)
                 if f.kind == "gpu-hbm"]
        total = sum(f.gbps for f in flows)
        assert total == pytest.approx(3 * 1555.2 * 8.0)

    def test_memory_only_job_has_no_gpu_flows(self):
        engine = PlacementEngine()
        placement = engine.place(JobRequest("j", cpus=1,
                                            memory_gbyte=64.0))
        flows = engine.flows_for(placement)
        assert all(f.kind != "gpu-hbm" for f in flows)


class TestBandwidthValidation:
    def test_modest_job_set_fully_carried(self):
        engine = PlacementEngine()
        jobs = [JobRequest(f"j{i}", cpus=1, gpus=2,
                           memory_gbyte=128.0, nic_gbps=100.0)
                for i in range(4)]
        report, flows = engine.validate_bandwidth(jobs)
        assert flows
        assert report.acceptance_ratio > 0.95
        # Validation must not leak placements.
        assert not engine.placements

    def test_report_counts_striped_flows(self):
        engine = PlacementEngine()
        jobs = [JobRequest("big", cpus=1, gpus=3, memory_gbyte=256.0,
                           nic_gbps=200.0)]
        report, flows = engine.validate_bandwidth(jobs)
        # GPU-HBM striping expands the offered flow count well beyond
        # the logical flows.
        assert report.offered > len(flows)
