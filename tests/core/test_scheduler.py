"""Rack scheduler over pooled resources."""

import pytest

from repro.core.allocation import DisaggregatedAllocator, JobRequest
from repro.core.scheduler import RackScheduler, ScheduledJob
from repro.rack.baseline import BaselineRack


def sched(n_nodes=4, backfill=True):
    rack = BaselineRack(n_nodes=n_nodes)
    return RackScheduler(DisaggregatedAllocator.for_rack(rack),
                         backfill=backfill)


def sjob(job_id, arrival, duration, gpus=4, memory=128.0, cpus=1):
    return ScheduledJob(
        request=JobRequest(job_id, cpus=cpus, gpus=gpus,
                           memory_gbyte=memory, nic_gbps=50.0),
        arrival_s=arrival, duration_s=duration)


class TestBasicFlow:
    def test_single_job(self):
        scheduler = sched()
        records = scheduler.run([sjob("a", 0.0, 10.0)])
        assert len(records) == 1
        assert records[0].start_s == 0.0
        assert records[0].end_s == 10.0
        assert records[0].wait_s == 0.0

    def test_parallel_jobs_share_rack(self):
        scheduler = sched(n_nodes=4)  # 16 GPUs total
        jobs = [sjob(f"j{i}", 0.0, 10.0, gpus=4) for i in range(4)]
        records = scheduler.run(jobs)
        assert all(r.start_s == 0.0 for r in records)

    def test_queueing_when_full(self):
        scheduler = sched(n_nodes=1)  # 4 GPUs
        jobs = [sjob("a", 0.0, 10.0, gpus=4),
                sjob("b", 0.0, 5.0, gpus=4)]
        records = {r.job_id: r for r in scheduler.run(jobs)}
        assert records["b"].start_s == 10.0
        assert records["b"].wait_s == 10.0

    def test_resources_released_after_run(self):
        scheduler = sched()
        scheduler.run([sjob("a", 0.0, 1.0), sjob("b", 2.0, 1.0)])
        assert scheduler.allocator.utilization()["gpus"] == 0.0


class TestBackfill:
    def test_backfill_lets_small_job_jump(self):
        scheduler = sched(n_nodes=1)
        jobs = [sjob("big1", 0.0, 10.0, gpus=4),
                sjob("big2", 1.0, 10.0, gpus=4),   # must wait
                sjob("tiny", 1.0, 2.0, gpus=0, memory=16.0, cpus=0)]
        records = {r.job_id: r for r in scheduler.run(jobs)}
        assert records["tiny"].start_s == 1.0   # backfilled
        assert records["big2"].start_s == 10.0

    def test_fcfs_blocks_without_backfill(self):
        scheduler = sched(n_nodes=1, backfill=False)
        jobs = [sjob("big1", 0.0, 10.0, gpus=4),
                sjob("big2", 1.0, 10.0, gpus=4),
                sjob("tiny", 1.0, 2.0, gpus=0, memory=16.0, cpus=0)]
        records = {r.job_id: r for r in scheduler.run(jobs)}
        assert records["tiny"].start_s >= 10.0  # stuck behind big2


class TestSimultaneousArrivals:
    def test_fcfs_ties_broken_by_job_id(self):
        """Identical arrival_s: jobs serialize in job_id order."""
        scheduler = sched(n_nodes=1)  # room for one 4-GPU job at a time
        jobs = [sjob(name, 5.0, 10.0, gpus=4)
                for name in ("c", "a", "b")]
        records = scheduler.run(jobs)
        assert [r.job_id for r in records] == ["a", "b", "c"]
        assert [r.start_s for r in records] == [5.0, 15.0, 25.0]

    def test_burst_of_simultaneous_arrivals_all_start(self):
        scheduler = sched(n_nodes=4)  # 16 GPUs: all four fit at once
        jobs = [sjob(f"j{i}", 1.0, 2.0, gpus=4) for i in (3, 0, 2, 1)]
        records = scheduler.run(jobs)
        assert [r.job_id for r in records] == ["j0", "j1", "j2", "j3"]
        assert all(r.start_s == 1.0 for r in records)

    def test_partial_start_keeps_waiters_queued(self):
        """A burst larger than the rack starts a prefix (by job_id) and
        keeps the rest queued — exercises the index-based rebuild."""
        scheduler = sched(n_nodes=2)  # 8 GPUs: two jobs at a time
        jobs = [sjob(f"j{i}", 0.0, 10.0, gpus=4) for i in range(5)]
        records = {r.job_id: r for r in scheduler.run(jobs)}
        assert records["j0"].start_s == 0.0
        assert records["j1"].start_s == 0.0
        assert records["j2"].start_s == 10.0
        assert records["j3"].start_s == 10.0
        assert records["j4"].start_s == 20.0


class TestReconfigurationRate:
    def test_rate_far_below_switch_speed(self):
        """§III-D3: job start/finish events are seconds apart, so even
        millisecond-scale reconfiguration is ample."""
        scheduler = sched(n_nodes=4)
        jobs = [sjob(f"j{i}", float(i * 3), 60.0) for i in range(20)]
        scheduler.run(jobs)
        rate = scheduler.reconfiguration_rate_hz()
        assert rate < 1000.0  # vs. >1e3 reconfigs/s a ms-switch allows

    def test_zero_jobs_zero_rate(self):
        scheduler = sched()
        assert scheduler.reconfiguration_rate_hz() == 0.0


class TestErrors:
    def test_impossible_job_raises(self):
        scheduler = sched(n_nodes=1)
        with pytest.raises(Exception):
            scheduler.run([sjob("huge", 0.0, 1.0, gpus=1000)])

    def test_bad_schedule_rejected(self):
        with pytest.raises(ValueError):
            ScheduledJob(JobRequest("x", gpus=1), arrival_s=-1.0,
                         duration_s=1.0)
