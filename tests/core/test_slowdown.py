"""Slowdown study runners (Figs. 6-11 machinery)."""

import pytest

from repro.core.slowdown import (
    cpu_gpu_rodinia_comparison,
    overall_mean,
    run_cpu_study,
    run_gpu_study,
    suite_summary,
)
from repro.workloads.cpu_suites import parsec_benchmarks


class TestRunCPUStudy:
    def test_result_count(self):
        res = run_cpu_study(35.0, benchmarks=parsec_benchmarks("large"))
        # 13 benchmarks x 2 core types.
        assert len(res) == 26

    def test_single_core_selection(self):
        res = run_cpu_study(35.0, benchmarks=parsec_benchmarks("large"),
                            cores=("inorder",))
        assert len(res) == 13
        assert all(r.core == "inorder" for r in res)

    def test_shared_trace_between_cores(self):
        res = run_cpu_study(35.0, benchmarks=parsec_benchmarks("large")[:1])
        assert res[0].llc_miss_rate == res[1].llc_miss_rate

    def test_overall_mean(self):
        res = run_cpu_study(35.0, benchmarks=parsec_benchmarks("large"))
        mean = overall_mean(res, "inorder")
        assert 0 < mean < 1
        with pytest.raises(ValueError):
            overall_mean(res, "gpu")


class TestSuiteSummary:
    def test_grouping(self):
        res = run_cpu_study(35.0, benchmarks=parsec_benchmarks("medium"))
        summary = suite_summary(res)
        assert len(summary) == 2  # (parsec, medium) x {inorder, ooo}
        for s in summary:
            assert s.suite == "parsec"
            assert s.input_size == "medium"
            assert s.n == 13
            assert s.max_slowdown >= s.mean_slowdown


class TestRunGPUStudy:
    def test_24_results(self):
        assert len(run_gpu_study(35.0)) == 24

    def test_fields(self):
        for g in run_gpu_study(35.0):
            assert g.extra_latency_ns == 35.0
            assert 0 <= g.slowdown < 1
            assert 0 <= g.llc_miss_rate <= 1

    def test_sensitivity_monotone(self):
        runs = {ns: {g.name: g.slowdown for g in run_gpu_study(ns)}
                for ns in (25.0, 30.0, 35.0)}
        for name in runs[25.0]:
            assert runs[25.0][name] <= runs[30.0][name] <= runs[35.0][name]


class TestRodiniaComparison:
    def test_intersection_covered(self):
        rows = cpu_gpu_rodinia_comparison(35.0)
        assert len(rows) == 10
        names = {r.benchmark for r in rows}
        assert "nw" in names

    def test_gpu_tolerates_best(self):
        # Fig. 11: "GPUs tolerate the additional 35 ns latency better
        # with a maximum slowdown of 12%".
        rows = cpu_gpu_rodinia_comparison(35.0)
        assert max(r.gpu for r in rows) < 0.15
        # And CPUs suffer more on the worst benchmark.
        worst = max(rows, key=lambda r: r.inorder)
        assert worst.inorder > worst.gpu
