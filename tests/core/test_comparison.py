"""Electronic-vs-photonic comparison (Fig. 12)."""

import pytest

from repro.core.comparison import SpeedupEntry, electronic_vs_photonic


@pytest.fixture(scope="module")
def comparison():
    return electronic_vs_photonic()


class TestSpeedupEntry:
    def test_speedup_formula(self):
        e = SpeedupEntry("b", "inorder", photonic_slowdown=0.10,
                         electronic_slowdown=0.32)
        assert e.speedup == pytest.approx(1.32 / 1.10 - 1.0)

    def test_equal_slowdowns_zero_speedup(self):
        e = SpeedupEntry("b", "gpu", 0.2, 0.2)
        assert e.speedup == 0.0


class TestFig12(object):
    def test_entry_counts(self, comparison):
        entries, summaries = comparison
        # 13 medium PARSEC + 24 NAS + 14 Rodinia = 51 per CPU core type,
        # plus 24 GPU apps.
        per_core = {s.core: s.n for s in summaries}
        assert per_core == {"inorder": 51, "ooo": 51, "gpu": 24}

    def test_photonics_always_wins(self, comparison):
        entries, _ = comparison
        assert all(e.speedup >= 0 for e in entries)

    def test_inorder_mean_near_paper(self, comparison):
        # Paper: "the average speedup for in-order cores is 9%".
        _, summaries = comparison
        inorder = next(s for s in summaries if s.core == "inorder")
        assert 0.05 < inorder.mean_speedup < 0.14

    def test_ooo_mean_near_paper(self, comparison):
        # Paper: "For OOO compute cores, the average is 15%".
        _, summaries = comparison
        ooo = next(s for s in summaries if s.core == "ooo")
        assert 0.08 < ooo.mean_speedup < 0.20

    def test_gpu_mean_near_paper(self, comparison):
        # Paper: "For GPUs, the average ... 61%" (bandwidth-starved
        # electronic fabric).
        _, summaries = comparison
        gpu = next(s for s in summaries if s.core == "gpu")
        assert 0.40 < gpu.mean_speedup < 0.80

    def test_max_exceeds_mean(self, comparison):
        _, summaries = comparison
        for s in summaries:
            assert s.max_speedup >= s.mean_speedup

    def test_custom_latencies_shrink_gap(self):
        entries, summaries = electronic_vs_photonic(
            photonic_ns=35.0, electronic_ns=45.0,
            gpu_bandwidth_derate=1.0)
        inorder = next(s for s in summaries if s.core == "inorder")
        base = electronic_vs_photonic()[1]
        base_inorder = next(s for s in base if s.core == "inorder")
        assert inorder.mean_speedup < base_inorder.mean_speedup

    def test_invalid_derate_rejected(self):
        with pytest.raises(ValueError):
            electronic_vs_photonic(gpu_bandwidth_derate=0.0)
