"""Bandwidth satisfaction analysis (paper §VI-A)."""

import pytest

from repro.core.bandwidth import (
    awgr_bandwidth_analysis,
    direct_bandwidth_sufficiency,
    gpu_bandwidth_budget,
)


class TestDirectSufficiency:
    def test_cpu_memory_125gbps_covers_99_5(self):
        # §VI-A: "the 125 Gbps direct bandwidth ... suffices over 99.5%
        # of the time between CPUs and main memory".
        suff = direct_bandwidth_sufficiency(direct_gbps=125.0,
                                            peak_gbps=204.8 * 8)
        assert suff.p_sufficient > 0.985

    def test_single_wavelength_covers_97(self):
        # "the bandwidth of a single AWGR wavelength of 25 Gbps
        # suffices 97% of the time".
        suff = direct_bandwidth_sufficiency(direct_gbps=125.0,
                                            peak_gbps=204.8 * 8)
        assert suff.p_single_wavelength > 0.90

    def test_nic_memory_virtually_always(self):
        suff = direct_bandwidth_sufficiency(direct_gbps=125.0,
                                            peak_gbps=200.0,
                                            resource="nic_bandwidth")
        assert suff.p_sufficient > 0.99

    def test_more_bandwidth_higher_probability(self):
        lo = direct_bandwidth_sufficiency(direct_gbps=25.0,
                                          peak_gbps=204.8 * 8)
        hi = direct_bandwidth_sufficiency(direct_gbps=125.0,
                                          peak_gbps=204.8 * 8)
        assert hi.p_sufficient > lo.p_sufficient


class TestGPUBudget:
    def test_paper_arithmetic(self):
        budget = gpu_bandwidth_budget()
        # "a single GPU can use a total of 125 x 512 = 8000 GBps".
        assert budget.indirect_total_gbyte_s == pytest.approx(8000.0)
        # "leaves 8000 - 1555.2 = 6444.8 GBps unused per GPU".
        assert budget.after_hbm_gbyte_s == pytest.approx(6444.8)
        # "12 NVLink links of 25 GBps per each of the three GPU equals
        # 900 GBps" ... "leaves 6444.8 - 900 = 5544.8 GBps per GPU".
        assert budget.gpu_gpu_demand_gbyte_s == pytest.approx(900.0)
        assert budget.after_gpu_gpu_gbyte_s == pytest.approx(5544.8)
        assert budget.satisfied

    def test_insufficient_budget_detected(self):
        budget = gpu_bandwidth_budget(direct_pair_gbps=25.0)
        assert not budget.satisfied


class TestFullAnalysis:
    def test_case_a_satisfies_everything(self):
        # The §VI-A conclusion: "case (A) with AWGRs more than
        # satisfies bandwidth demands".
        report = awgr_bandwidth_analysis()
        assert report.guaranteed_pair_gbps == 125.0
        assert report.all_satisfied

    def test_report_structure(self):
        report = awgr_bandwidth_analysis()
        assert report.cpu_memory.traffic_class == "memory_bandwidth"
        assert report.nic_memory.traffic_class == "nic_bandwidth"
