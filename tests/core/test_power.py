"""Power overhead analysis (paper §VI-C)."""

import pytest

from repro.core.power import rack_power_overhead
from repro.photonics.power import TransceiverPower
from repro.rack.baseline import BaselineRack


class TestOverhead:
    def test_paper_5_percent(self):
        # "the power overhead for our photonic solution is
        # approximately 5%".
        result = rack_power_overhead()
        assert 0.03 < result.overhead_fraction < 0.07

    def test_photonic_magnitude(self):
        result = rack_power_overhead()
        assert 9_000 < result.photonic_w < 12_000

    def test_better_transceivers_lower_overhead(self):
        result = rack_power_overhead(
            transceiver=TransceiverPower(pj_per_bit=0.25))
        assert result.overhead_fraction < rack_power_overhead(
        ).overhead_fraction

    def test_smaller_rack_scales_both_sides(self):
        small = rack_power_overhead(rack=BaselineRack(n_nodes=64))
        full = rack_power_overhead()
        # Overhead ratio stays in the same band (MCM count ~halves).
        assert small.overhead_fraction == pytest.approx(
            full.overhead_fraction, rel=0.2)

    def test_switch_power_included(self):
        without = rack_power_overhead(switch_power_w=0.0)
        with_switches = rack_power_overhead(switch_power_w=1000.0)
        assert with_switches.photonic_w - without.photonic_w == 1000.0
