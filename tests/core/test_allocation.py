"""Disaggregated and node-granular allocators."""

import pytest

from repro.core.allocation import (
    AllocationError,
    DisaggregatedAllocator,
    JobRequest,
    NodeGranularAllocator,
    ResourcePool,
)
from repro.rack.baseline import BaselineRack


def job(job_id="j1", cpus=2, gpus=4, memory_gbyte=512.0, nic_gbps=200.0):
    return JobRequest(job_id=job_id, cpus=cpus, gpus=gpus,
                      memory_gbyte=memory_gbyte, nic_gbps=nic_gbps)


class TestResourcePool:
    def test_take_give(self):
        pool = ResourcePool("x", 10.0)
        pool.take(4.0)
        assert pool.free == 6.0
        pool.give(4.0)
        assert pool.used == 0.0

    def test_overdraw_raises(self):
        pool = ResourcePool("x", 10.0)
        with pytest.raises(AllocationError):
            pool.take(11.0)

    def test_give_underflow_raises(self):
        pool = ResourcePool("x", 10.0)
        with pytest.raises(RuntimeError):
            pool.give(1.0)

    def test_utilization(self):
        pool = ResourcePool("x", 10.0)
        pool.take(5.0)
        assert pool.utilization == 0.5


class TestJobRequest:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            JobRequest("empty")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            JobRequest("bad", cpus=-1)


class TestDisaggregatedAllocator:
    def test_for_rack_capacities(self):
        alloc = DisaggregatedAllocator.for_rack()
        assert alloc.cpus.capacity == 128
        assert alloc.gpus.capacity == 512
        assert alloc.memory_gbyte.capacity == 128 * 256.0
        assert alloc.nic_gbps.capacity == 512 * 200.0

    def test_allocate_release_roundtrip(self):
        alloc = DisaggregatedAllocator.for_rack()
        alloc.allocate(job())
        assert alloc.active_jobs() == ("j1",)
        alloc.release("j1")
        assert alloc.utilization() == {
            "cpus": 0.0, "gpus": 0.0, "memory_gbyte": 0.0, "nic_gbps": 0.0}

    def test_all_or_nothing(self):
        alloc = DisaggregatedAllocator.for_rack()
        # Memory demand exceeds rack: nothing must be taken.
        huge = job(job_id="huge", memory_gbyte=1e9)
        with pytest.raises(AllocationError):
            alloc.allocate(huge)
        assert alloc.cpus.used == 0.0

    def test_double_allocate_rejected(self):
        alloc = DisaggregatedAllocator.for_rack()
        alloc.allocate(job())
        with pytest.raises(AllocationError):
            alloc.allocate(job())

    def test_release_unknown_rejected(self):
        alloc = DisaggregatedAllocator.for_rack()
        with pytest.raises(AllocationError):
            alloc.release("ghost")

    def test_can_allocate_matches_allocate(self):
        alloc = DisaggregatedAllocator.for_rack()
        request = job(gpus=512)
        assert alloc.can_allocate(request)
        alloc.allocate(request)
        assert not alloc.can_allocate(job(job_id="j2", gpus=1))

    def test_reduced_pools(self):
        alloc = DisaggregatedAllocator.for_rack(memory_reduction=4.0,
                                                nic_reduction=2.0)
        assert alloc.memory_gbyte.capacity == 128 * 256.0 / 4
        assert alloc.nic_gbps.capacity == 512 * 200.0 / 2


class TestNodeGranularBaseline:
    def test_gpu_job_maroons_memory(self):
        """A GPU-heavy, memory-light job still consumes whole nodes."""
        alloc = NodeGranularAllocator()
        request = JobRequest("gpu-job", cpus=1, gpus=8, memory_gbyte=32.0)
        assert alloc.nodes_for(request) == 2  # 8 GPUs / 4 per node
        marooned = alloc.marooned_fraction([request])
        assert marooned["memory"] > 0.9  # nearly all memory idle

    def test_memory_job_maroons_gpus(self):
        alloc = NodeGranularAllocator()
        request = JobRequest("mem-job", cpus=1, gpus=0,
                             memory_gbyte=1024.0)
        assert alloc.nodes_for(request) == 4
        marooned = alloc.marooned_fraction([request])
        assert marooned["gpus"] == 1.0

    def test_capacity_enforced(self):
        alloc = NodeGranularAllocator(rack=BaselineRack(n_nodes=2))
        alloc.allocate(JobRequest("a", gpus=8))
        with pytest.raises(AllocationError):
            alloc.allocate(JobRequest("b", gpus=4))

    def test_release(self):
        alloc = NodeGranularAllocator(rack=BaselineRack(n_nodes=2))
        alloc.allocate(JobRequest("a", gpus=8))
        alloc.release("a")
        assert alloc.nodes_used == 0

    def test_disaggregation_packs_tighter(self):
        """The headline utilization argument: pooled allocation fits a
        complementary job mix that node-granular allocation cannot."""
        rack = BaselineRack(n_nodes=2)
        pooled = DisaggregatedAllocator.for_rack(rack)
        nodal = NodeGranularAllocator(rack=rack)
        gpu_heavy = JobRequest("g", cpus=1, gpus=8, memory_gbyte=32.0)
        mem_heavy = JobRequest("m", cpus=1, gpus=0, memory_gbyte=480.0)
        pooled.allocate(gpu_heavy)
        pooled.allocate(mem_heavy)  # fits: pools are shared
        nodal.allocate(gpu_heavy)   # consumes both nodes
        with pytest.raises(AllocationError):
            nodal.allocate(mem_heavy)
