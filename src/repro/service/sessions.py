"""Live simulation sessions: a snapshot plus an epoch cursor.

A :class:`Session` is the service's unit of work — one scenario
playing against one fabric backend, advanced a few epochs at a time by
the :class:`~repro.service.pool.SessionPool`. Its durable identity is
exactly what PR 5's carry-mode chunking proved sufficient: the
scenario config, the backend's JSON-stable ``snapshot()`` at a
checkpointed epoch cursor, and the monotonic sequence of
:class:`~repro.scenarios.backends.EpochReport` payloads produced so
far. Everything else (the live backend object, locks, telemetry) is
process-local and reconstructible.

That identity buys the three service verbs for free:

* **suspend** — snapshot the live backend at the current cursor and
  serialize the whole session through a
  :class:`~repro.experiments.cache.ResultCache`-backed
  :class:`SessionStore`;
* **resume** — deserialize on *any* worker process, restore the
  snapshot onto a freshly constructed backend, and keep stepping: the
  remaining epoch stream is bit-identical to an uninterrupted run
  (per-epoch seeds make traffic position-independent, the snapshot
  carries in-flight fabric state and RNG);
* **fork** — branch a what-if child at any past epoch ``N``: the
  child restores the parent's checkpointed snapshot at ``N`` (built
  by replaying forward from the nearest checkpoint when ``N`` falls
  between two), copies the parent's first ``N`` epoch reports, and
  diverges under its own scripted events — bit-identical to the
  parent up to ``N``, sharing no mutable state after it.

Sessions advance through
:meth:`~repro.scenarios.runner.ScenarioRunner.step_epochs`, the same
reentrant core a monolithic run uses, so the service's epoch streams
are the scenario engine's, not a reimplementation.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field, replace

from repro.checks.runtime import new_condition, watch_guarded
from repro.scenarios.backends import EpochReport, make_backend
from repro.scenarios.runner import ScenarioReport, ScenarioRunner
from repro.scenarios.scenario import Scenario, ScenarioEvent

#: Bump when the serialized session record changes shape: retires
#: every suspended session in every store (the session analog of the
#: sharded runner's ``CHUNK_FORMAT``).
SESSION_FORMAT = 1

#: Lifecycle states a session moves through. ``queued`` sessions sit
#: in the pool's run queue (or have a suspend/fork pending), running
#: ones are being advanced, suspended ones live only in the store,
#: completed/failed are terminal.
SESSION_STATES = ("queued", "running", "suspended", "completed",
                  "failed")

#: States with no further epochs coming.
TERMINAL_STATES = ("completed", "failed")


def json_roundtrip(payload: dict) -> dict:
    """Deep-copy through the JSON codec.

    Used at every trust boundary (fork, suspend record assembly) so
    the copy provably shares no mutable state with the original *and*
    anything JSON-unstable fails loudly here instead of corrupting a
    resumed run later.
    """
    return json.loads(json.dumps(payload))


@dataclass
class Session:
    """One live (or suspended) scenario run inside the service.

    Construct through :meth:`create` (fresh), :meth:`from_record`
    (resume), or :meth:`fork` (branch) rather than directly: they
    maintain the invariants the pool relies on — ``reports[i]`` is
    epoch ``i``'s payload for every ``i < cursor``, and
    ``checkpoints`` always holds a snapshot at some epoch ``<=
    cursor`` once the session has ever attached a backend.
    """

    session_id: str
    scenario: Scenario
    backend_name: str = "awgr"
    backend_params: dict = field(default_factory=dict)
    base_seed: int = 0
    #: Snapshot cadence: a checkpoint is recorded every this many
    #: epochs (plus at suspend and completion). Smaller = cheaper
    #: crash recovery and finer fork granularity, more snapshot work.
    checkpoint_epochs: int = 16
    state: str = "queued"
    #: Next epoch to compute; epochs ``[0, cursor)`` are in reports.
    cursor: int = 0
    #: JSON-stable ``EpochReport.to_dict()`` payloads, one per epoch.
    reports: list = field(default_factory=list)
    #: Per-epoch ``[applied, ignored]`` event counts, aligned with
    #: ``reports`` so recovery truncation can roll totals back.
    event_counts: list = field(default_factory=list)
    events_applied: int = 0
    events_ignored: int = 0
    #: epoch -> backend snapshot at that cursor position.
    checkpoints: dict = field(default_factory=dict)
    error: str | None = None
    parent: str | None = None
    forked_at: int | None = None
    #: Successful scheduling slices run (pool fairness telemetry).
    slices: int = 0
    #: Crash-recovery count (slices re-run from a checkpoint).
    recoveries: int = 0

    def __post_init__(self) -> None:
        if self.checkpoint_epochs < 1:
            raise ValueError("checkpoint_epochs must be >= 1")
        if self.state not in SESSION_STATES:
            raise ValueError(f"unknown state {self.state!r} "
                             f"(known: {SESSION_STATES})")
        # Process-local machinery, never serialized.
        self._backend = None
        self._runner: ScenarioRunner | None = None
        #: Condition notified on every appended epoch and every state
        #: change — what SSE streams and pool waiters block on.
        self.updated = new_condition("Session.updated")
        self.suspend_requested = False
        # Telemetry (perf_counter marks, set by the pool; excluded
        # from the serialized record so records stay deterministic).
        self.submitted_s: float | None = None
        self.first_epoch_s: float | None = None
        # Under REPRO_SANITIZE, assert the lock discipline SIM005
        # checks statically: every listed attribute is written (and
        # the mutable containers also read) only under ``updated``.
        watch_guarded(
            self, self.updated,
            write_attrs=("state", "cursor", "events_applied",
                         "events_ignored", "error", "recoveries",
                         "suspend_requested", "_backend", "_runner"),
            read_attrs=("reports", "event_counts", "checkpoints"))

    # -- factories -------------------------------------------------------------

    @classmethod
    def create(cls, session_id: str, scenario: Scenario,
               backend: str = "awgr",
               backend_params: dict | None = None, base_seed: int = 0,
               checkpoint_epochs: int = 16) -> "Session":
        """Fresh session at epoch 0."""
        return cls(session_id=session_id, scenario=scenario,
                   backend_name=backend,
                   backend_params=dict(backend_params or {}),
                   base_seed=base_seed,
                   checkpoint_epochs=checkpoint_epochs)

    # -- epoch advancement -----------------------------------------------------

    @property
    def n_epochs(self) -> int:
        """The session's horizon (the scenario's epoch clock)."""
        return self.scenario.n_epochs

    @property
    def remaining(self) -> int:
        """Epochs still to compute."""
        return max(0, self.n_epochs - self.cursor)

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def _attach(self):
        """Materialize (or reuse) the live backend at ``cursor``.

        A fresh backend is constructed exactly as a monolithic
        ``ScenarioRunner`` run would build it, then restored from the
        newest checkpoint at or before the cursor and replayed forward
        to it — so attachment is exact wherever the cursor sits.
        """
        with self.updated:
            if self._backend is not None:
                return self._backend
            cursor = self.cursor
            anchors = [e for e in self.checkpoints if e <= cursor]
            at = max(anchors) if anchors else 0
            snap = (json_roundtrip(self.checkpoints[at])
                    if anchors else None)
        # Construct/restore/replay outside the lock — the expensive
        # part — then commit the attachment under it. Only the owning
        # worker attaches, so the double build this could allow never
        # happens in practice (and would be benign: last one wins).
        backend = make_backend(self.backend_name,
                               self.scenario.n_nodes,
                               seed=self.base_seed,
                               **self.backend_params)
        runner = ScenarioRunner(self.scenario, backend)
        if snap is not None:
            backend.restore(snap)
        if at < cursor:
            # Replay the gap (crash between checkpoints); reports for
            # these epochs already exist, so discard the duplicates.
            runner.step_epochs(at, cursor, seed=self.base_seed)
        with self.updated:
            if 0 not in self.checkpoints and self.cursor == 0:
                self.checkpoints[0] = backend.snapshot()
            self._backend = backend
            self._runner = runner
        return backend

    def advance(self, max_epochs: int) -> int:
        """Step up to ``max_epochs`` epochs; return how many ran.

        Commits each epoch's report (and event counts) under the
        session lock as it completes, so pollers and SSE streams see
        every epoch the moment it exists. Checkpoints the backend
        snapshot every ``checkpoint_epochs`` epochs and at the
        horizon; stops early on a suspend request.
        """
        if max_epochs < 1:
            raise ValueError("max_epochs must be >= 1")
        backend = self._attach()
        with self.updated:
            runner = self._runner
            epoch = self.cursor
            stop_requested = self.suspend_requested
        ran = 0
        while (ran < max_epochs and epoch < self.n_epochs
               and not stop_requested):
            delta = runner.step_epochs(epoch, epoch + 1,
                                       seed=self.base_seed)
            payload = delta.epochs[0].to_dict()
            with self.updated:
                self.reports.append(payload)
                self.event_counts.append([delta.events_applied,
                                          delta.events_ignored])
                self.events_applied += delta.events_applied
                self.events_ignored += delta.events_ignored
                self.cursor = epoch + 1
                if (self.cursor % self.checkpoint_epochs == 0
                        or self.cursor == self.n_epochs):
                    self.checkpoints[self.cursor] = backend.snapshot()
                self.updated.notify_all()
                epoch = self.cursor
                stop_requested = self.suspend_requested
            ran += 1
        if epoch >= self.n_epochs and not self.done:
            self._set_state("completed")
            with self.updated:
                self._backend = None
                self._runner = None
        return ran

    def recover(self) -> int:
        """Discard the live backend and roll back to the newest
        checkpoint at or before the cursor.

        The crash path: a worker died (or raised) mid-slice, so the
        in-memory backend is suspect. Epoch reports past the
        checkpoint are truncated — re-running them from the restored
        snapshot reproduces them bit-identically (the PR 5 carry
        guarantee), so nothing observable is lost. Returns how many
        epochs were rolled back.
        """
        with self.updated:
            self._backend = None
            self._runner = None
            anchors = [e for e in self.checkpoints if e <= self.cursor]
            back_to = max(anchors) if anchors else 0
            dropped = self.cursor - back_to
            if dropped:
                del self.reports[back_to:]
                rolled = self.event_counts[back_to:]
                del self.event_counts[back_to:]
                for applied, ignored in rolled:
                    self.events_applied -= applied
                    self.events_ignored -= ignored
                self.cursor = back_to
            self.recoveries += 1
            self.updated.notify_all()
        return dropped

    def _set_state(self, state: str, error: str | None = None) -> None:
        if state not in SESSION_STATES:
            raise ValueError(f"unknown state {state!r}")
        with self.updated:
            self.state = state
            if error is not None:
                self.error = error
            self.updated.notify_all()

    def fail(self, error: str) -> None:
        """Mark the session terminally failed."""
        with self.updated:
            self._backend = None
            self._runner = None
        self._set_state("failed", error=error)

    # -- suspend / resume ------------------------------------------------------

    def suspend_snapshot(self) -> None:
        """Snapshot the live backend at the cursor and go suspended.

        With no live backend attached the newest checkpoint already
        equals the cursor (the :meth:`recover` invariant), so the
        session is suspendable as-is.
        """
        with self.updated:
            if self.done:
                raise ValueError(
                    f"session {self.session_id!r} is {self.state}; "
                    "nothing to suspend")
            if self._backend is not None:
                self.checkpoints[self.cursor] = self._backend.snapshot()
            elif self.cursor not in self.checkpoints:
                # Never attached and never checkpointed: epoch 0.
                if self.cursor != 0:
                    self.recover()
                else:
                    self._attach()
                    self._backend = None
                    self._runner = None
            self._backend = None
            self._runner = None
            self.suspend_requested = False
            self.state = "suspended"
            self.updated.notify_all()

    def to_dict(self) -> dict:
        """JSON-stable session record (the suspend/store payload).

        Takes the session lock (reentrant for callers already holding
        it) so the reports/checkpoints containers can't be mutated
        mid-serialization by a worker thread.
        """
        with self.updated:
            return self._to_dict_locked()

    def _to_dict_locked(self) -> dict:
        return {
            "format": SESSION_FORMAT,
            "session_id": self.session_id,
            "scenario": self.scenario.to_config(),
            "backend": self.backend_name,
            "backend_params": dict(self.backend_params),
            "base_seed": self.base_seed,
            "checkpoint_epochs": self.checkpoint_epochs,
            "state": self.state,
            "cursor": self.cursor,
            "reports": [dict(r) for r in self.reports],
            "event_counts": [list(c) for c in self.event_counts],
            "events_applied": self.events_applied,
            "events_ignored": self.events_ignored,
            "checkpoints": {str(epoch): snap for epoch, snap
                            in sorted(self.checkpoints.items())},
            "error": self.error,
            "parent": self.parent,
            "forked_at": self.forked_at,
        }

    @classmethod
    def from_record(cls, record: dict) -> "Session":
        """Inverse of :meth:`to_dict` (accepts JSON-decoded dicts)."""
        if record.get("format") != SESSION_FORMAT:
            raise ValueError(
                f"session record format {record.get('format')!r} != "
                f"{SESSION_FORMAT}; the store predates this service")
        session = cls(
            session_id=record["session_id"],
            scenario=Scenario.from_config(record["scenario"]),
            backend_name=record["backend"],
            backend_params=dict(record["backend_params"]),
            base_seed=int(record["base_seed"]),
            checkpoint_epochs=int(record["checkpoint_epochs"]),
            state=record["state"],
            cursor=int(record["cursor"]),
            reports=[dict(r) for r in record["reports"]],
            event_counts=[list(c) for c in record["event_counts"]],
            events_applied=int(record["events_applied"]),
            events_ignored=int(record["events_ignored"]),
            checkpoints={int(epoch): snap for epoch, snap
                         in record["checkpoints"].items()},
            error=record.get("error"),
            parent=record.get("parent"),
            forked_at=record.get("forked_at"))
        return session

    # -- fork ------------------------------------------------------------------

    def snapshot_at(self, epoch: int) -> dict:
        """Backend snapshot as of epoch cursor ``epoch``.

        Never touches the live backend: a scratch backend restores the
        nearest checkpoint at or before ``epoch`` and replays forward
        (exact, by per-epoch seeding plus the snapshot guarantee), so
        this is safe while a worker is advancing the session.
        """
        if not 0 <= epoch <= self.cursor:
            raise ValueError(
                f"epoch {epoch} outside the computed range "
                f"[0, {self.cursor}]")
        with self.updated:
            anchors = [e for e in self.checkpoints if e <= epoch]
            anchor = max(anchors) if anchors else None
            snap = (json_roundtrip(self.checkpoints[anchor])
                    if anchor is not None else None)
        backend = make_backend(self.backend_name,
                               self.scenario.n_nodes,
                               seed=self.base_seed,
                               **self.backend_params)
        at = 0
        if snap is not None:
            backend.restore(snap)
            at = anchor
        if at < epoch:
            ScenarioRunner(self.scenario, backend).step_epochs(
                at, epoch, seed=self.base_seed)
        return backend.snapshot()

    def fork(self, child_id: str, at_epoch: int,
             events: tuple = (), n_epochs: int | None = None
             ) -> "Session":
        """Branch a what-if child that diverges from epoch ``at_epoch``.

        The child restores this session's state at ``at_epoch``
        (checkpointed, or rebuilt exactly from the nearest checkpoint)
        and carries a copy of the first ``at_epoch`` epoch reports, so
        it is bit-identical to the parent up to the fork point. New
        ``events`` (all scripted at or after ``at_epoch``) and an
        optional ``n_epochs`` override shape the divergent future.
        Every carried payload is deep-copied through the JSON codec:
        the child shares no mutable state with the parent.
        """
        for event in events:
            if event.epoch < at_epoch:
                raise ValueError(
                    f"fork event at epoch {event.epoch} precedes the "
                    f"fork point {at_epoch}; what-if events must land "
                    "in the divergent future")
        if n_epochs is not None and n_epochs < at_epoch:
            raise ValueError(
                f"fork horizon {n_epochs} is before the fork point "
                f"{at_epoch}")
        snapshot = self.snapshot_at(at_epoch)
        scenario = self.scenario
        if events:
            scenario = replace(scenario,
                               events=scenario.events + tuple(events))
        if n_epochs is not None:
            scenario = scenario.with_epochs(n_epochs)
        with self.updated:
            carried = json_roundtrip({
                "reports": self.reports[:at_epoch],
                "event_counts": self.event_counts[:at_epoch]})
        child = Session(
            session_id=child_id,
            scenario=scenario,
            backend_name=self.backend_name,
            backend_params=copy.deepcopy(self.backend_params),
            base_seed=self.base_seed,
            checkpoint_epochs=self.checkpoint_epochs,
            cursor=at_epoch,
            reports=carried["reports"],
            event_counts=carried["event_counts"],
            events_applied=sum(c[0] for c in carried["event_counts"]),
            events_ignored=sum(c[1] for c in carried["event_counts"]),
            checkpoints={at_epoch: json_roundtrip(snapshot)},
            parent=self.session_id,
            forked_at=at_epoch)
        return child

    # -- reporting -------------------------------------------------------------

    def report(self) -> ScenarioReport:
        """The computed epochs as a standard :class:`ScenarioReport`
        (aggregates over ``[0, cursor)``)."""
        with self.updated:
            payloads = [dict(r) for r in self.reports]
            applied, ignored = self.events_applied, self.events_ignored
        merged = ScenarioReport(scenario=self.scenario.name,
                                backend=self.backend_name)
        merged.epochs = [EpochReport.from_dict(p) for p in payloads]
        merged.events_applied = applied
        merged.events_ignored = ignored
        return merged

    def epochs_since(self, since: int) -> list:
        """Epoch payload slice ``[since, cursor)`` (incremental poll)."""
        if since < 0:
            raise ValueError("since must be >= 0")
        with self.updated:
            return [dict(r) for r in self.reports[since:]]

    def wait_for(self, predicate, timeout: float | None = None) -> bool:
        """Block until ``predicate(self)`` holds (or timeout)."""
        with self.updated:
            return self.updated.wait_for(lambda: predicate(self),
                                         timeout=timeout)


ScenarioEvent  # re-exported via service.protocol; keeps import used


# -- the ResultCache-backed session store -------------------------------------

class SessionKey:
    """Cache identity of one session record (duck-types the
    ``SweepTask`` surface :class:`~repro.experiments.cache.ResultCache`
    reads). Keyed purely by session id: the record is mutable state,
    so successive saves overwrite the same entry."""

    version = SESSION_FORMAT
    seed = 0

    def __init__(self, session_id: str) -> None:
        self.session_id = session_id
        self.spec_name = "service-session"
        self.config = {"session_id": session_id}

    @property
    def config_hash(self) -> str:
        import hashlib
        payload = json.dumps({"spec": self.spec_name,
                              "version": self.version,
                              "config": self.config},
                             sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()


class SessionStore:
    """Suspended-session persistence over a
    :class:`~repro.experiments.cache.ResultCache` directory.

    One JSON file per session, atomically replaced on every save;
    N service processes pointing at one directory can hand sessions
    to each other (suspend here, resume there) with no coordination
    beyond the filesystem.
    """

    def __init__(self, cache) -> None:
        self.cache = cache

    def save(self, session: Session) -> None:
        """Persist the session's current record (overwrites)."""
        self.cache.store(SessionKey(session.session_id),
                         session.to_dict())

    def load(self, session_id: str) -> dict | None:
        """The stored record, or None if the id is unknown."""
        return self.cache.load(SessionKey(session_id))

    def delete(self, session_id: str) -> bool:
        """Drop a stored record; True if one existed."""
        path = self.cache.path_for(SessionKey(session_id))
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        return True

    def list_ids(self) -> list:
        """Ids of every stored session (sorted)."""
        ids = []
        for path in self.cache.root.glob("service-session-*.json"):
            try:
                entry = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if entry.get("spec") != "service-session":
                continue
            session_id = entry.get("config", {}).get("session_id")
            if session_id is not None:
                ids.append(session_id)
        return sorted(ids)
