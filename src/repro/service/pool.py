"""The session multiplexer: N worker threads, M live sessions.

:class:`SessionPool` time-slices every live session over a small
fixed worker pool. Scheduling is a plain FIFO ring: a worker pops the
oldest runnable session, advances it one bounded slice
(``slice_epochs`` epochs through the reentrant
:meth:`~repro.scenarios.runner.ScenarioRunner.step_epochs`), and
pushes it to the back of the queue if it still has epochs left. FIFO
gives the starvation guarantee the service advertises for free: with
M sessions live, every session runs exactly once per M pops — the
slice-count spread across live sessions never exceeds one, which
``GET /metrics`` reports as ``max_slice_spread``.

Sessions checkpoint their backend snapshot every K epochs (their
``checkpoint_epochs``), so a worker dying mid-slice costs at most the
slice: the pool catches the failure, rolls the session back to its
newest checkpoint (:meth:`~repro.service.sessions.Session.recover` —
exact, by the snapshot guarantee), and requeues it. After
``max_retries`` consecutive failed slices the session is marked
failed rather than looping forever.

Suspend is cooperative: the pool sets the session's
``suspend_requested`` flag, the in-flight slice yields at the next
epoch boundary, and the pool serializes the session into the
:class:`~repro.service.sessions.SessionStore` and drops the live
object. Resume re-hydrates from the store (same process or a fresh
one — the store is just files) and requeues.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.checks.runtime import new_condition, watch_guarded
from repro.scenarios.library import get_scenario
from repro.scenarios.scenario import Scenario
from repro.service.sessions import (Session, SessionStore,
                                    TERMINAL_STATES)


class SessionNotFound(KeyError):
    """No live or stored session under that id."""


class SessionPool:
    """Drives many sessions fairly over a few worker threads.

    Parameters
    ----------
    workers:
        Worker-thread count. Each worker advances one session at a
        time, so this bounds simulation parallelism.
    slice_epochs:
        Epochs per scheduling slice — the fairness quantum. Small
        slices interleave sessions tightly; large ones amortize
        scheduling overhead.
    store:
        Optional :class:`~repro.service.sessions.SessionStore` for
        suspend/resume durability. Without one, suspend keeps the
        serialized record in memory only.
    max_retries:
        Consecutive failed slices tolerated per session before it is
        marked failed.
    """

    def __init__(self, workers: int = 4, slice_epochs: int = 4,
                 store: SessionStore | None = None,
                 max_retries: int = 2) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if slice_epochs < 1:
            raise ValueError("slice_epochs must be >= 1")
        self.workers = workers
        self.slice_epochs = slice_epochs
        self.store = store
        self.max_retries = max_retries
        self.sessions: dict[str, Session] = {}
        self._queue: deque[str] = deque()
        self._lock = new_condition("SessionPool._lock")
        self._threads: list[threading.Thread] = []
        self._running = False
        self._next_id = 1
        self._failures: dict[str, int] = {}
        #: Test seam: called with the session at the top of every
        #: slice; raising simulates a worker dying mid-slice.
        self.fault_hook = None
        # Fleet telemetry (monotonic clock only — SIM002).
        self._started_s: float | None = None
        self._epochs_total = 0
        self._slices_total = 0
        self._recoveries_total = 0
        # Under REPRO_SANITIZE, assert the pool's own lock discipline
        # at runtime (see repro.checks.runtime).
        watch_guarded(
            self, self._lock,
            write_attrs=("_running", "_next_id", "_started_s",
                         "_epochs_total", "_slices_total",
                         "_recoveries_total"),
            read_attrs=("sessions", "_queue", "_failures"))

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Spin up the worker threads (idempotent)."""
        with self._lock:
            if self._running:
                return
            self._running = True
            if self._started_s is None:
                self._started_s = time.perf_counter()
        for i in range(self.workers):
            thread = threading.Thread(target=self._worker_loop,
                                      name=f"session-worker-{i}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop the workers (in-flight slices finish their epoch)."""
        with self._lock:
            self._running = False
            self._lock.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    # -- submission ------------------------------------------------------------

    def _claim_id(self) -> str:
        """Next free ``s<counter>`` id (store collisions skipped)."""
        stored = set(self.store.list_ids()) if self.store else set()
        while True:
            candidate = f"s{self._next_id:04d}"
            self._next_id += 1
            if candidate not in self.sessions and candidate not in stored:
                return candidate

    def submit(self, scenario, backend: str = "awgr",
               backend_params: dict | None = None, base_seed: int = 0,
               checkpoint_epochs: int = 16, n_epochs: int | None = None,
               session_id: str | None = None) -> Session:
        """Register a new session and queue it for execution.

        ``scenario`` is a :class:`~repro.scenarios.scenario.Scenario`,
        a registered scenario name, or a ``Scenario.to_config()``
        dict; ``n_epochs`` overrides its horizon when given.
        """
        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        elif isinstance(scenario, dict):
            scenario = Scenario.from_config(scenario)
        if n_epochs is not None:
            scenario = scenario.with_epochs(n_epochs)
        with self._lock:
            if session_id is None:
                session_id = self._claim_id()
            elif session_id in self.sessions:
                raise ValueError(
                    f"session id {session_id!r} already live")
            session = Session.create(
                session_id, scenario, backend=backend,
                backend_params=backend_params, base_seed=base_seed,
                checkpoint_epochs=checkpoint_epochs)
            session.submitted_s = time.perf_counter()
            self.sessions[session_id] = session
            self._queue.append(session_id)
            self._lock.notify_all()
        return session

    def get(self, session_id: str) -> Session:
        """The live session, or the stored one re-hydrated read-only."""
        with self._lock:
            session = self.sessions.get(session_id)
        if session is not None:
            return session
        if self.store is not None:
            record = self.store.load(session_id)
            if record is not None:
                return Session.from_record(record)
        raise SessionNotFound(session_id)

    def list_ids(self) -> list[str]:
        """Live session ids plus store-only (suspended) ids."""
        with self._lock:
            ids = set(self.sessions)
        if self.store is not None:
            ids.update(self.store.list_ids())
        return sorted(ids)

    # -- suspend / resume / fork / delete --------------------------------------

    def suspend(self, session_id: str, timeout: float = 30.0) -> Session:
        """Park a live session: flag it, wait for the in-flight slice
        to yield, snapshot, persist, drop the live object."""
        with self._lock:
            session = self.sessions.get(session_id)
            if session is None:
                raise SessionNotFound(session_id)
            if session.done:
                raise ValueError(
                    f"session {session_id!r} is {session.state}; "
                    "nothing to suspend")
            if session.state == "suspended":
                return session
            # Pool lock, then session lock: the one global order
            # (never the reverse — SIM005 checks the graph).
            with session.updated:
                session.suspend_requested = True
            try:
                self._queue.remove(session_id)
            except ValueError:
                pass
        # Wait (outside the pool lock) for any in-flight slice to
        # notice the flag and park at an epoch boundary.
        session.wait_for(
            lambda s: s.state != "running" or s.done, timeout=timeout)
        with self._lock:
            if session.state == "running":
                raise TimeoutError(
                    f"session {session_id!r} did not yield within "
                    f"{timeout}s")
            if not session.done:
                session.suspend_snapshot()
            if self.store is not None:
                self.store.save(session)
                if not session.done:
                    # Durable: drop the live object, the store owns
                    # it now. Storeless pools keep it in memory (the
                    # only copy there is).
                    del self.sessions[session_id]
        return session

    def resume(self, session_id: str) -> Session:
        """Re-hydrate a suspended session and queue it again.

        Works in the suspending process or a fresh one: the record
        comes from the store (or, storeless, must still be live).
        """
        with self._lock:
            session = self.sessions.get(session_id)
            if session is not None and session.state != "suspended":
                raise ValueError(
                    f"session {session_id!r} is {session.state}, "
                    "not suspended")
        if session is None:
            if self.store is None:
                raise SessionNotFound(session_id)
            record = self.store.load(session_id)
            if record is None:
                raise SessionNotFound(session_id)
            session = Session.from_record(record)
            if session.state != "suspended":
                raise ValueError(
                    f"stored session {session_id!r} is "
                    f"{session.state}, not suspended")
        with self._lock:
            with session.updated:
                session.suspend_requested = False
            session._set_state("queued")
            session.submitted_s = time.perf_counter()
            self.sessions[session_id] = session
            if session.remaining:
                self._queue.append(session_id)
                self._lock.notify_all()
        if not session.remaining:
            session._set_state("completed")
        return session

    def fork(self, session_id: str, at_epoch: int, events: tuple = (),
             n_epochs: int | None = None) -> Session:
        """Branch a live/stored session at ``at_epoch`` and queue the
        child for execution."""
        parent = self.get(session_id)
        with self._lock:
            child_id = self._claim_id()
        child = parent.fork(child_id, at_epoch, events=events,
                            n_epochs=n_epochs)
        with self._lock:
            child.submitted_s = time.perf_counter()
            self.sessions[child_id] = child
            if child.remaining:
                self._queue.append(child_id)
                self._lock.notify_all()
        if not child.remaining:
            child._set_state("completed")
        return child

    def delete(self, session_id: str) -> bool:
        """Drop a session from memory and the store. True if it
        existed anywhere. Live running sessions are suspended-flagged
        first so their worker abandons them at the next boundary."""
        found = False
        with self._lock:
            session = self.sessions.pop(session_id, None)
            if session is not None:
                found = True
                with session.updated:
                    session.suspend_requested = True
                try:
                    self._queue.remove(session_id)
                except ValueError:
                    pass
        if self.store is not None:
            found = self.store.delete(session_id) or found
        return found

    # -- the worker loop -------------------------------------------------------

    def _pop_next(self):
        """Block for the next runnable session id (None = shutdown)."""
        with self._lock:
            while self._running and not self._queue:
                self._lock.wait(timeout=0.5)
            if not self._running:
                return None
            session_id = self._queue.popleft()
            return self.sessions.get(session_id)

    def _worker_loop(self) -> None:
        while True:
            session = self._pop_next()
            if session is None:
                return
            with session.updated:
                # Check-and-transition atomically with suspend():
                # once the flag is up (or the session was suspended/
                # deleted while queued) the worker must not claim it.
                if (session.done or session.suspend_requested
                        or session.state == "suspended"):
                    continue
                session.state = "running"
                session.updated.notify_all()
                start_cursor = session.cursor
            try:
                if self.fault_hook is not None:
                    self.fault_hook(session)
                session.advance(self.slice_epochs)
            except Exception as exc:  # noqa: BLE001 - worker survival
                session.recover()
                with session.updated:
                    cursor_now = session.cursor
                with self._lock:
                    self._recoveries_total += 1
                    # Net the books against what this slice actually
                    # kept: rollback below the slice start un-counts
                    # epochs a previous slice recorded.
                    self._epochs_total += cursor_now - start_cursor
                    count = self._failures.get(session.session_id, 0) + 1
                    self._failures[session.session_id] = count
                if count > self.max_retries:
                    session.fail(f"{type(exc).__name__}: {exc}")
                else:
                    session._set_state("queued")
                    with self._lock:
                        self._queue.append(session.session_id)
                        self._lock.notify_all()
                continue
            with session.updated:
                cursor_now = session.cursor
                suspend_pending = session.suspend_requested
            with self._lock:
                self._failures.pop(session.session_id, None)
                session.slices += 1
                self._slices_total += 1
                self._epochs_total += cursor_now - start_cursor
                if (session.first_epoch_s is None and cursor_now
                        and session.submitted_s is not None):
                    session.first_epoch_s = time.perf_counter()
            if session.done:
                continue
            session._set_state("queued")
            if suspend_pending:
                # suspend()/delete() owns the next transition; just
                # park it out of the running state.
                continue
            with self._lock:
                self._queue.append(session.session_id)
                self._lock.notify_all()

    # -- telemetry -------------------------------------------------------------

    def live_count(self) -> int:
        """Number of live (in-memory) sessions."""
        with self._lock:
            return len(self.sessions)

    def metrics(self) -> dict:
        """Fleet-wide counters for ``GET /metrics``."""
        with self._lock:
            live = list(self.sessions.values())
            queue_depth = len(self._queue)
            epochs_total = self._epochs_total
            slices_total = self._slices_total
            recoveries = self._recoveries_total
            started = self._started_s
        by_state = {state: 0 for state in
                    ("queued", "running", "suspended", "completed",
                     "failed")}
        active_slices = []
        for session in live:
            by_state[session.state] = by_state.get(session.state, 0) + 1
            if session.state not in TERMINAL_STATES:
                active_slices.append(session.slices)
        if self.store is not None:
            stored = set(self.store.list_ids())
            stored -= {s.session_id for s in live}
            by_state["suspended"] += len(stored)
        uptime = (time.perf_counter() - started) if started else 0.0
        return {
            "workers": self.workers,
            "slice_epochs": self.slice_epochs,
            "sessions_by_state": by_state,
            "sessions_total": len(live),
            "queue_depth": queue_depth,
            "epochs_total": epochs_total,
            "slices_total": slices_total,
            "recoveries_total": recoveries,
            "uptime_s": uptime,
            "epochs_per_s": (epochs_total / uptime) if uptime > 0
                            else 0.0,
            # FIFO fairness: among sessions still making progress,
            # how unevenly slices have been dealt. Round-robin keeps
            # this <= 1 (plus transients while a slice is in flight).
            "max_slice_spread": (max(active_slices)
                                 - min(active_slices))
                                if active_slices else 0,
        }
