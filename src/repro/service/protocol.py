"""Wire format of the simulation service.

Everything that crosses the HTTP boundary is shaped here, so the
gateway stays a thin router and the payload shapes are testable
without a socket. All payloads are JSON-pure (SIM004): plain dicts
with string keys, lists, strings, numbers, booleans, None.

Request bodies
--------------
``POST /sessions`` accepts either a registered scenario by name or an
inline config::

    {"scenario": "demo", "backend": "awgr", "base_seed": 3,
     "n_epochs": 48, "backend_params": {...},
     "checkpoint_epochs": 8}
    {"scenario": {<Scenario.to_config() payload>}, ...}

``POST /sessions/{id}/fork`` scripts the what-if divergence::

    {"at_epoch": 12, "n_epochs": 64,
     "events": [{"epoch": 14, "action": "fail_plane", "value": 0}]}

Streaming
---------
``GET /sessions/{id}/stream`` is Server-Sent Events: one ``epoch``
event per computed epoch (``id:`` = epoch number, ``data:`` = the
``EpochReport.to_dict()`` JSON), then a single ``end`` event whose
data carries the session's final state when it completes, suspends,
or fails.
"""

from __future__ import annotations

import json

from repro.scenarios.registry import available_backends
from repro.scenarios.scenario import EVENT_ACTIONS, ScenarioEvent
from repro.service.sessions import Session

#: SSE event names the stream endpoint emits.
STREAM_EVENTS = ("epoch", "end")


class ProtocolError(ValueError):
    """A request body the service cannot act on (HTTP 400)."""


def session_summary(session: Session) -> dict:
    """The list-view row for one session."""
    with session.updated:
        return {
            "id": session.session_id,
            "state": session.state,
            "cursor": session.cursor,
            "n_epochs": session.n_epochs,
            "scenario": session.scenario.name,
            "backend": session.backend_name,
            "base_seed": session.base_seed,
            "parent": session.parent,
            "forked_at": session.forked_at,
            "slices": session.slices,
            "recoveries": session.recoveries,
            "events_applied": session.events_applied,
            "events_ignored": session.events_ignored,
            "error": session.error,
        }


def session_detail(session: Session) -> dict:
    """Summary plus the aggregate metrics over computed epochs."""
    payload = session_summary(session)
    payload["aggregates"] = session.report().as_dict()
    payload["checkpoint_epochs"] = session.checkpoint_epochs
    payload["checkpointed_at"] = sorted(session.checkpoints)
    return payload


def _require(body: dict, key: str):
    if key not in body:
        raise ProtocolError(f"missing required field {key!r}")
    return body[key]


def _optional_int(body: dict, key: str, default=None):
    value = body.get(key, default)
    if value is default:
        return default
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"field {key!r} must be an integer")
    return value


def parse_submit(body: dict) -> dict:
    """``POST /sessions`` body -> :meth:`SessionPool.submit` kwargs."""
    if not isinstance(body, dict):
        raise ProtocolError("submit body must be a JSON object")
    scenario = _require(body, "scenario")
    if not isinstance(scenario, (str, dict)):
        raise ProtocolError(
            "scenario must be a registered name or an inline config "
            "object")
    backend = body.get("backend", "awgr")
    if not isinstance(backend, str):
        raise ProtocolError("backend must be a string")
    if backend not in available_backends():
        # Reject unknown names at the boundary (HTTP 400) instead of
        # letting the worker's make_backend KeyError fail the session.
        raise ProtocolError(
            f"unknown backend {backend!r} "
            f"(known: {sorted(available_backends())})")
    params = body.get("backend_params", {})
    if not isinstance(params, dict):
        raise ProtocolError("backend_params must be an object")
    kwargs = {
        "scenario": scenario,
        "backend": backend,
        "backend_params": params,
        "base_seed": _optional_int(body, "base_seed", 0),
        "checkpoint_epochs": _optional_int(body, "checkpoint_epochs",
                                           16),
    }
    n_epochs = _optional_int(body, "n_epochs")
    if n_epochs is not None:
        kwargs["n_epochs"] = n_epochs
    unknown = set(body) - {"scenario", "backend", "backend_params",
                           "base_seed", "checkpoint_epochs",
                           "n_epochs"}
    if unknown:
        raise ProtocolError(
            f"unknown submit fields: {sorted(unknown)}")
    return kwargs


def parse_events(payload) -> tuple:
    """Event dicts -> :class:`ScenarioEvent` tuple (validated)."""
    if not isinstance(payload, (list, tuple)):
        raise ProtocolError("events must be a list")
    events = []
    for entry in payload:
        if not isinstance(entry, dict):
            raise ProtocolError("each event must be an object")
        epoch = entry.get("epoch")
        action = entry.get("action")
        if isinstance(epoch, bool) or not isinstance(epoch, int):
            raise ProtocolError("event epoch must be an integer")
        if action not in EVENT_ACTIONS:
            raise ProtocolError(
                f"unknown event action {action!r} "
                f"(known: {EVENT_ACTIONS})")
        events.append(ScenarioEvent(epoch=epoch, action=action,
                                    value=entry.get("value")))
    return tuple(events)


def parse_fork(body: dict) -> dict:
    """``POST /sessions/{id}/fork`` body -> ``SessionPool.fork``
    kwargs (minus the parent id)."""
    if not isinstance(body, dict):
        raise ProtocolError("fork body must be a JSON object")
    at_epoch = _require(body, "at_epoch")
    if isinstance(at_epoch, bool) or not isinstance(at_epoch, int):
        raise ProtocolError("at_epoch must be an integer")
    kwargs = {
        "at_epoch": at_epoch,
        "events": parse_events(body.get("events", [])),
        "n_epochs": _optional_int(body, "n_epochs"),
    }
    unknown = set(body) - {"at_epoch", "events", "n_epochs"}
    if unknown:
        raise ProtocolError(f"unknown fork fields: {sorted(unknown)}")
    return kwargs


def encode_json(payload: dict) -> bytes:
    """Canonical response encoding (sorted keys, compact)."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode()


def sse_frame(event: str, data: dict, event_id: int | None = None
              ) -> bytes:
    """One Server-Sent-Events frame (``event``/``id``/``data`` lines
    plus the blank-line terminator)."""
    lines = [f"event: {event}"]
    if event_id is not None:
        lines.append(f"id: {event_id}")
    lines.append("data: " + json.dumps(data, sort_keys=True))
    return ("\n".join(lines) + "\n\n").encode()
