"""Stdlib client for the simulation service.

:class:`ServiceClient` wraps the gateway's JSON API in plain
``urllib`` (no third-party HTTP stack — the same constraint the
gateway honors), and :meth:`ServiceClient.stream` consumes the SSE
endpoint incrementally: ``urllib`` de-chunks the transfer encoding,
so the generator just parses ``event:``/``id:``/``data:`` frames off
the line iterator as each epoch lands. Tests, the examples, the
throughput benchmark, and the ``repro submit`` CLI verb all go
through this class, so the wire format has exactly one client-side
decoding.
"""

from __future__ import annotations

import json
from urllib.error import HTTPError
from urllib.request import Request, urlopen

from repro.service.protocol import STREAM_EVENTS


class ServiceError(RuntimeError):
    """A non-2xx answer from the gateway, with its decoded payload."""

    def __init__(self, status: int, payload: dict) -> None:
        message = payload.get("error", f"HTTP {status}")
        super().__init__(f"{message} (HTTP {status})")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Talks to one gateway at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> dict:
        data = (json.dumps(body).encode()
                if body is not None else None)
        request = Request(self.base_url + path, data=data,
                          method=method)
        if data is not None:
            request.add_header("Content-Type", "application/json")
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except HTTPError as exc:
            try:
                payload = json.loads(exc.read())
            except (json.JSONDecodeError, OSError):
                payload = {}
            raise ServiceError(exc.code, payload) from exc

    # -- fleet -----------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def shutdown(self) -> dict:
        """Ask the gateway to stop (it answers before it exits)."""
        return self._request("POST", "/shutdown")

    # -- sessions --------------------------------------------------------------

    def submit(self, scenario, backend: str = "awgr",
               base_seed: int = 0, n_epochs: int | None = None,
               backend_params: dict | None = None,
               checkpoint_epochs: int | None = None) -> dict:
        """Create a session; returns its summary (with ``id``)."""
        body = {"scenario": scenario, "backend": backend,
                "base_seed": base_seed}
        if n_epochs is not None:
            body["n_epochs"] = n_epochs
        if backend_params:
            body["backend_params"] = backend_params
        if checkpoint_epochs is not None:
            body["checkpoint_epochs"] = checkpoint_epochs
        return self._request("POST", "/sessions", body)

    def sessions(self) -> list:
        return self._request("GET", "/sessions")["sessions"]

    def session(self, session_id: str) -> dict:
        return self._request("GET", f"/sessions/{session_id}")

    def epochs(self, session_id: str, since: int = 0) -> dict:
        return self._request(
            "GET", f"/sessions/{session_id}/epochs?since={since}")

    def suspend(self, session_id: str) -> dict:
        return self._request("POST",
                             f"/sessions/{session_id}/suspend")

    def resume(self, session_id: str) -> dict:
        return self._request("POST",
                             f"/sessions/{session_id}/resume")

    def fork(self, session_id: str, at_epoch: int,
             events: list | None = None,
             n_epochs: int | None = None) -> dict:
        body = {"at_epoch": at_epoch}
        if events:
            body["events"] = events
        if n_epochs is not None:
            body["n_epochs"] = n_epochs
        return self._request("POST",
                             f"/sessions/{session_id}/fork", body)

    def delete(self, session_id: str) -> dict:
        return self._request("DELETE", f"/sessions/{session_id}")

    # -- streaming -------------------------------------------------------------

    def stream(self, session_id: str, since: int = 0,
               max_events: int | None = None):
        """Yield ``(event, id, data)`` SSE tuples as epochs compute.

        ``event`` is ``"epoch"`` (data = one
        ``EpochReport.to_dict()`` payload, id = its epoch number) or
        ``"end"`` (data = final state; the stream closes after it).
        ``max_events`` stops early — the generator also stops cleanly
        if the caller breaks out of the loop.
        """
        url = (f"{self.base_url}/sessions/{session_id}/stream"
               f"?since={since}")
        yielded = 0
        with urlopen(Request(url), timeout=self.timeout) as response:
            event, event_id, data_lines = None, None, []
            for raw in response:
                line = raw.decode().rstrip("\n").rstrip("\r")
                if line.startswith("event: "):
                    event = line[len("event: "):]
                elif line.startswith("id: "):
                    event_id = int(line[len("id: "):])
                elif line.startswith("data: "):
                    data_lines.append(line[len("data: "):])
                elif not line and event is not None:
                    data = (json.loads("\n".join(data_lines))
                            if data_lines else None)
                    if event not in STREAM_EVENTS:
                        raise ServiceError(
                            502, {"error": f"unknown SSE event "
                                           f"{event!r}"})
                    yield event, event_id, data
                    yielded += 1
                    if event == "end":
                        return
                    if (max_events is not None
                            and yielded >= max_events):
                        return
                    event, event_id, data_lines = None, None, []

    def stream_epochs(self, session_id: str, since: int = 0,
                      max_epochs: int | None = None) -> list:
        """Collect streamed epoch payloads into a list (ends at the
        ``end`` frame or after ``max_epochs`` epochs)."""
        epochs = []
        for event, _, data in self.stream(session_id, since=since):
            if event == "epoch":
                epochs.append(data)
                if (max_epochs is not None
                        and len(epochs) >= max_epochs):
                    break
        return epochs

    def wait(self, session_id: str, states=("completed", "failed",
                                            "suspended")) -> dict:
        """Stream until the session parks, then return its detail."""
        for event, _, _ in self.stream(session_id):
            if event == "end":
                break
        detail = self.session(session_id)
        if detail["state"] not in states:
            raise ServiceError(
                409, {"error": f"session {session_id} parked in "
                               f"{detail['state']!r}"})
        return detail
