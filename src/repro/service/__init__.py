"""Fabric-sim-as-a-service: sessions, pooling, HTTP gateway, client.

The service layer turns the batch scenario engine into a long-running
multiplexed simulator: a :class:`~repro.service.sessions.Session` is
a scenario config + backend snapshot + epoch cursor, a
:class:`~repro.service.pool.SessionPool` time-slices many of them
fairly over a few worker threads, and
:class:`~repro.service.gateway.ServiceGateway` exposes the whole
thing over a dependency-free stdlib HTTP API with SSE epoch
streaming. Suspend/resume/fork all reduce to the PR 5 snapshot
guarantee: restore + step is bit-identical to never stopping.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.gateway import ServiceGateway
from repro.service.pool import SessionNotFound, SessionPool
from repro.service.sessions import (SESSION_FORMAT, SESSION_STATES,
                                    Session, SessionStore)

__all__ = [
    "SESSION_FORMAT",
    "SESSION_STATES",
    "ServiceClient",
    "ServiceError",
    "ServiceGateway",
    "Session",
    "SessionNotFound",
    "SessionPool",
    "SessionStore",
]
