"""The HTTP face of the service: stdlib-only JSON + SSE gateway.

:class:`ServiceGateway` wraps a :class:`http.server.ThreadingHTTPServer`
around one :class:`~repro.service.pool.SessionPool`. Every handler
thread is independent, so a long-lived SSE stream never blocks other
requests; the server speaks HTTP/1.1 with explicit ``Content-Length``
on JSON responses and chunked transfer encoding on streams (which is
what lets ``urllib``/``curl`` consume the SSE feed with no client
dependencies).

Endpoints::

    GET    /healthz                    liveness probe
    GET    /metrics                    fleet counters (pool.metrics)
    GET    /sessions                   summaries of every session
    POST   /sessions                   submit (protocol.parse_submit)
    GET    /sessions/{id}              status + aggregates
    DELETE /sessions/{id}              drop live + stored state
    GET    /sessions/{id}/epochs?since=N   incremental epoch poll
    GET    /sessions/{id}/stream[?since=N] SSE epoch stream
    POST   /sessions/{id}/suspend      park + persist
    POST   /sessions/{id}/resume       re-hydrate + requeue
    POST   /sessions/{id}/fork         what-if branch (parse_fork)
    POST   /shutdown                   graceful stop (CI hook)
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.service.pool import SessionNotFound, SessionPool
from repro.service.protocol import (ProtocolError, encode_json,
                                    parse_fork, parse_submit,
                                    session_detail, session_summary,
                                    sse_frame)
from repro.service.sessions import TERMINAL_STATES

#: Seconds an SSE stream waits for the next epoch before re-checking
#: session state (bounds shutdown latency, not a client timeout).
STREAM_POLL_S = 0.25


class _Handler(BaseHTTPRequestHandler):
    """Routes one request against the owning gateway's pool."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service"

    # The ThreadingHTTPServer subclass carries .gateway (set below).
    @property
    def pool(self) -> SessionPool:
        return self.server.gateway.pool

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        if self.server.gateway.verbose:
            super().log_message(format, *args)

    # -- plumbing --------------------------------------------------------------

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = encode_json(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"request body is not JSON: {exc}")
        if not isinstance(body, dict):
            raise ProtocolError("request body must be a JSON object")
        return body

    def _route(self):
        """(path segments, query dict) of the current request."""
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        return parts, query

    def _dispatch(self, method: str) -> None:
        parts, query = self._route()
        try:
            handler = self._resolve(method, parts)
            if handler is None:
                self._send_error_json(
                    404, f"no route {method} {self.path!r}")
                return
            handler(parts, query)
        except ProtocolError as exc:
            self._send_error_json(400, str(exc))
        except SessionNotFound as exc:
            self._send_error_json(
                404, f"unknown session {exc.args[0]!r}")
        except KeyError as exc:
            # e.g. get_scenario() on an unknown scenario name
            self._send_error_json(400, str(exc.args[0]))
        except (ValueError, TimeoutError) as exc:
            self._send_error_json(409, str(exc))
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up; nothing to answer
        except Exception as exc:  # a dropped connection would hide it
            self._send_error_json(
                500, f"{type(exc).__name__}: {exc}")

    def _resolve(self, method: str, parts: list):
        if method == "GET":
            if parts == ["healthz"]:
                return self._get_healthz
            if parts == ["metrics"]:
                return self._get_metrics
            if parts == ["sessions"]:
                return self._get_sessions
            if len(parts) == 2 and parts[0] == "sessions":
                return self._get_session
            if (len(parts) == 3 and parts[0] == "sessions"
                    and parts[2] == "epochs"):
                return self._get_epochs
            if (len(parts) == 3 and parts[0] == "sessions"
                    and parts[2] == "stream"):
                return self._get_stream
        elif method == "POST":
            if parts == ["sessions"]:
                return self._post_sessions
            if parts == ["shutdown"]:
                return self._post_shutdown
            if (len(parts) == 3 and parts[0] == "sessions"
                    and parts[2] in ("suspend", "resume", "fork")):
                return getattr(self, f"_post_{parts[2]}")
        elif method == "DELETE":
            if len(parts) == 2 and parts[0] == "sessions":
                return self._delete_session
        return None

    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch names
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    # -- fleet endpoints -------------------------------------------------------

    def _get_healthz(self, parts, query) -> None:
        self._send_json({"status": "ok",
                         "sessions": self.pool.live_count()})

    def _get_metrics(self, parts, query) -> None:
        self._send_json(self.pool.metrics())

    def _post_shutdown(self, parts, query) -> None:
        self._send_json({"status": "shutting down"})
        # shutdown() must come from outside the serve_forever thread;
        # a handler thread qualifies, but do it after responding.
        threading.Thread(target=self.server.gateway.stop,
                         daemon=True).start()

    # -- session collection ----------------------------------------------------

    def _get_sessions(self, parts, query) -> None:
        summaries = [session_summary(self.pool.get(sid))
                     for sid in self.pool.list_ids()]
        self._send_json({"sessions": summaries})

    def _post_sessions(self, parts, query) -> None:
        kwargs = parse_submit(self._read_body())
        session = self.pool.submit(**kwargs)
        self._send_json(session_summary(session), status=201)

    # -- one session -----------------------------------------------------------

    def _get_session(self, parts, query) -> None:
        self._send_json(session_detail(self.pool.get(parts[1])))

    def _delete_session(self, parts, query) -> None:
        if not self.pool.delete(parts[1]):
            raise SessionNotFound(parts[1])
        self._send_json({"deleted": parts[1]})

    def _post_suspend(self, parts, query) -> None:
        session = self.pool.suspend(parts[1])
        self._send_json(session_summary(session))

    def _post_resume(self, parts, query) -> None:
        session = self.pool.resume(parts[1])
        self._send_json(session_summary(session))

    def _post_fork(self, parts, query) -> None:
        kwargs = parse_fork(self._read_body())
        child = self.pool.fork(parts[1], **kwargs)
        self._send_json(session_summary(child), status=201)

    def _get_epochs(self, parts, query) -> None:
        session = self.pool.get(parts[1])
        since = int(query.get("since", 0))
        self._send_json({
            "id": session.session_id,
            "since": since,
            "cursor": session.cursor,
            "state": session.state,
            "epochs": session.epochs_since(since),
        })

    # -- SSE -------------------------------------------------------------------

    def _write_chunk(self, frame: bytes) -> None:
        self.wfile.write(f"{len(frame):x}\r\n".encode() + frame
                         + b"\r\n")
        self.wfile.flush()

    def _get_stream(self, parts, query) -> None:
        session = self.pool.get(parts[1])
        cursor = int(query.get("since", 0))
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            while True:
                batch = session.epochs_since(cursor)
                for payload in batch:
                    self._write_chunk(sse_frame("epoch", payload,
                                                event_id=cursor))
                    cursor += 1
                with session.updated:
                    drained = (session.cursor <= cursor)
                    state = session.state
                    parked = (state in TERMINAL_STATES
                              or state == "suspended")
                    if drained and not parked:
                        session.updated.wait(timeout=STREAM_POLL_S)
                        continue
                if drained and parked:
                    self._write_chunk(sse_frame("end", {
                        "state": state,
                        "cursor": cursor,
                        "error": session.error,
                    }))
                    break
            self.wfile.write(b"0\r\n\r\n")
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client closed the stream mid-flight
        self.close_connection = True


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    # socketserver's default backlog of 5 drops (RST) simultaneous
    # connects once a burst of clients — e.g. 32 SSE streamers plus
    # their submits — lands faster than accept() drains the queue.
    request_queue_size = 128


class ServiceGateway:
    """One pool behind one listening socket.

    ``port=0`` binds an ephemeral port (read it back from ``.port``
    after construction) — what every test and benchmark uses.
    """

    def __init__(self, pool: SessionPool, host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False) -> None:
        self.pool = pool
        self.verbose = verbose
        self._server = _Server((host, port), _Handler)
        self._server.gateway = self
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Start the pool workers and the listener thread."""
        self.pool.start()
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="service-gateway", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, then stop the workers."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.pool.shutdown()

    def serve_forever(self) -> None:
        """Blocking serve (the ``repro serve`` entry point)."""
        self.pool.start()
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self._server.server_close()
            self.pool.shutdown()
