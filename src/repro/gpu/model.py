"""Analytical A100 performance model (PPT-GPU substitute, §VI-B3).

The model predicts kernel cycles as::

    cycles = max(compute_cycles, bandwidth_cycles) + exposed_latency

where exposed latency is what warp-level parallelism fails to hide:
each HBM transaction's latency is divided by the latency-hiding
capacity ``occupancy * max_warps * ilp`` relative to the number of
warps needed to cover it, clamped at full hiding. Low-occupancy,
high-miss kernels expose latency and slow down when the
disaggregation adder grows; high-occupancy streaming kernels are
bandwidth-bound and barely notice — reproducing the 5.35% average /
strong-miss-rate-correlation structure of Figs. 9-10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.kernels import ApplicationSpec, KernelSpec
from repro.gpu.memory import GPUMemoryModel


@dataclass(frozen=True)
class GPUResult:
    """Predicted timing for one kernel or application."""

    name: str
    extra_latency_ns: float
    cycles: float
    compute_cycles: float
    bandwidth_cycles: float
    exposed_latency_cycles: float
    llc_miss_rate: float
    hbm_txn_per_instr: float

    @property
    def memory_bound(self) -> bool:
        """Is the kernel limited by bandwidth rather than compute?"""
        return self.bandwidth_cycles > self.compute_cycles


@dataclass(frozen=True)
class A100Model:
    """NVIDIA A100-like device model.

    Parameters
    ----------
    sm_count:
        Streaming multiprocessors (108 for A100).
    max_warps_per_sm:
        Resident warp slots per SM (64).
    ipc_per_sm:
        Peak warp-instructions per cycle per SM.
    hiding_efficiency:
        Fraction of theoretical warp-level hiding achieved (scheduling
        imperfections).
    memory:
        Baseline memory model (zero adder).
    """

    sm_count: int = 108
    max_warps_per_sm: int = 64
    ipc_per_sm: float = 2.0
    hiding_efficiency: float = 0.95
    memory: GPUMemoryModel = field(default_factory=GPUMemoryModel)

    def __post_init__(self) -> None:
        if self.sm_count <= 0 or self.max_warps_per_sm <= 0:
            raise ValueError("device dimensions must be positive")
        if self.ipc_per_sm <= 0:
            raise ValueError("ipc_per_sm must be positive")
        if not 0 < self.hiding_efficiency <= 1:
            raise ValueError("hiding_efficiency must be in (0, 1]")

    # -- core timing -----------------------------------------------------------

    def kernel_cycles(self, kernel: KernelSpec,
                      memory: GPUMemoryModel | None = None) -> GPUResult:
        """Predict cycles for one kernel under a memory model."""
        memory = memory if memory is not None else self.memory
        per_sm_instr = kernel.instructions / self.sm_count
        compute = per_sm_instr / self.ipc_per_sm
        hbm_txns = kernel.hbm_transactions
        bandwidth = memory.bandwidth_cycles(hbm_txns)

        # Latency exposure: each miss stalls its warp for the full HBM
        # latency; with W warps resident the scheduler overlaps other
        # warps' work. The fraction of latency left exposed falls with
        # the resident-warp count and per-warp ILP.
        warps = kernel.occupancy * self.max_warps_per_sm
        hiding = max(1.0, warps * kernel.ilp * self.hiding_efficiency)
        per_sm_misses = hbm_txns / self.sm_count
        exposed = per_sm_misses * memory.total_hbm_latency_cycles / hiding

        cycles = max(compute, bandwidth) + exposed
        return GPUResult(
            name=kernel.name,
            extra_latency_ns=memory.extra_latency_ns,
            cycles=cycles,
            compute_cycles=compute,
            bandwidth_cycles=bandwidth,
            exposed_latency_cycles=exposed,
            llc_miss_rate=kernel.llc_miss_rate,
            hbm_txn_per_instr=kernel.hbm_txn_per_instr)

    def application_cycles(self, app: ApplicationSpec,
                           memory: GPUMemoryModel | None = None) -> GPUResult:
        """Predict cycles for an application (sum over kernels)."""
        memory = memory if memory is not None else self.memory
        results = [self.kernel_cycles(k, memory) for k in app.kernels]
        return GPUResult(
            name=app.name,
            extra_latency_ns=memory.extra_latency_ns,
            cycles=sum(r.cycles for r in results),
            compute_cycles=sum(r.compute_cycles for r in results),
            bandwidth_cycles=sum(r.bandwidth_cycles for r in results),
            exposed_latency_cycles=sum(r.exposed_latency_cycles
                                       for r in results),
            llc_miss_rate=app.llc_miss_rate,
            hbm_txn_per_instr=app.hbm_txn_per_instr)

    def slowdown(self, app: ApplicationSpec, extra_latency_ns: float) -> float:
        """Relative predicted-cycle increase from a disaggregation adder.

        Matches the paper's metric: "we compare performance in terms of
        the total predicted cycles".
        """
        base = self.application_cycles(app, self.memory)
        disagg = self.application_cycles(
            app, self.memory.with_extra(extra_latency_ns))
        return disagg.cycles / base.cycles - 1.0
