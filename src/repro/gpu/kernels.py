"""GPU kernel and application descriptors.

PPT-GPU consumes per-kernel SASS instruction/memory traces; our
substitute consumes the per-kernel aggregates those traces reduce to
in an analytical model: instruction count, memory transactions per
instruction, LLC miss rate, and achieved occupancy. An application is
a weighted bag of kernels (the paper's 24 apps span 1525 kernels).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KernelSpec:
    """Aggregate characterization of one GPU kernel.

    Parameters
    ----------
    name:
        Kernel identifier.
    instructions:
        Total executed warp-instructions.
    mem_txn_per_instr:
        L2/LLC transactions per warp-instruction (coalesced).
    llc_miss_rate:
        Fraction of LLC transactions serviced by HBM.
    occupancy:
        Achieved occupancy (active warps / maximum), in (0, 1].
    ilp:
        Instruction-level parallelism factor within a warp (mildly
        increases latency hiding).
    """

    name: str
    instructions: int
    mem_txn_per_instr: float
    llc_miss_rate: float
    occupancy: float
    ilp: float = 1.0

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ValueError(f"{self.name}: instructions must be positive")
        if self.mem_txn_per_instr < 0:
            raise ValueError(f"{self.name}: mem_txn_per_instr must be >= 0")
        if not 0 <= self.llc_miss_rate <= 1:
            raise ValueError(f"{self.name}: llc_miss_rate must be in [0, 1]")
        if not 0 < self.occupancy <= 1:
            raise ValueError(f"{self.name}: occupancy must be in (0, 1]")
        if self.ilp < 1:
            raise ValueError(f"{self.name}: ilp must be >= 1")

    @property
    def hbm_txn_per_instr(self) -> float:
        """HBM transactions per instruction (the Fig. 10 x-axis)."""
        return self.mem_txn_per_instr * self.llc_miss_rate

    @property
    def hbm_transactions(self) -> float:
        """Total HBM transactions of the kernel."""
        return self.instructions * self.hbm_txn_per_instr


@dataclass(frozen=True)
class ApplicationSpec:
    """An application as a bag of kernels.

    Parameters
    ----------
    name:
        Application identifier ("rodinia.gaussian").
    suite:
        Benchmark suite label ("rodinia-gpu", "polybench", "tango").
    kernels:
        The kernels the application launches (weights folded into each
        kernel's instruction count).
    """

    name: str
    suite: str
    kernels: tuple[KernelSpec, ...]

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError(f"{self.name}: needs at least one kernel")

    @property
    def instructions(self) -> int:
        """Total instructions across kernels."""
        return sum(k.instructions for k in self.kernels)

    @property
    def llc_miss_rate(self) -> float:
        """Transaction-weighted LLC miss rate."""
        txns = sum(k.instructions * k.mem_txn_per_instr for k in self.kernels)
        if txns == 0:
            return 0.0
        missed = sum(k.instructions * k.mem_txn_per_instr * k.llc_miss_rate
                     for k in self.kernels)
        return missed / txns

    @property
    def hbm_txn_per_instr(self) -> float:
        """Application-level HBM transactions per instruction."""
        return (sum(k.hbm_transactions for k in self.kernels)
                / self.instructions)

    def single_kernel(self) -> KernelSpec:
        """Collapse to one equivalent kernel (instruction-weighted)."""
        total = self.instructions
        mem = sum(k.instructions * k.mem_txn_per_instr
                  for k in self.kernels) / total
        occ = sum(k.instructions * k.occupancy for k in self.kernels) / total
        ilp = sum(k.instructions * k.ilp for k in self.kernels) / total
        return KernelSpec(name=self.name, instructions=total,
                          mem_txn_per_instr=mem,
                          llc_miss_rate=self.llc_miss_rate,
                          occupancy=occ, ilp=ilp)
