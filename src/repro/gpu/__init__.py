"""GPU performance substrate (PPT-GPU substitute).

An analytical NVIDIA-A100-like model in the style of PPT-GPU [121]:
kernels are characterized by instruction counts, memory-transaction
rates, LLC miss rates, and achieved occupancy; the model composes
compute throughput, HBM bandwidth, and *exposed* memory latency (what
the warp scheduler fails to hide) into predicted cycles. The paper's
§VI-B3 study adds 25/30/35 ns between the GPU LLC and HBM and reports
the predicted-cycle inflation; we reproduce that path.
"""

from repro.gpu.kernels import KernelSpec, ApplicationSpec
from repro.gpu.memory import GPUMemoryModel
from repro.gpu.model import A100Model, GPUResult

__all__ = ["KernelSpec", "ApplicationSpec", "GPUMemoryModel",
           "A100Model", "GPUResult"]
