"""GPU memory-system model (A100-like HBM behind a device LLC)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import ns_to_cycles


@dataclass(frozen=True)
class GPUMemoryModel:
    """HBM latency/bandwidth as seen past the GPU LLC.

    Parameters
    ----------
    hbm_latency_ns:
        Loaded LLC-miss-to-HBM-data latency in the baseline (A100 HBM2e
        measures ~290-480 cycles; we use the loaded mid-range).
    extra_latency_ns:
        Disaggregation adder between LLC and HBM (the study's knob).
    hbm_bandwidth_gbyte_s:
        Peak HBM bandwidth (1555.2 for A100-40GB).
    llc_latency_ns:
        LLC hit service time (exposed part folded into the model).
    clock_ghz:
        SM clock (1.41 GHz for A100).
    txn_bytes:
        Bytes per memory transaction (one 32B sector x 2 in practice;
        we use a 64 B effective transaction).
    """

    hbm_latency_ns: float = 220.0
    extra_latency_ns: float = 0.0
    hbm_bandwidth_gbyte_s: float = 1555.2
    llc_latency_ns: float = 140.0
    clock_ghz: float = 1.41
    txn_bytes: int = 64

    def __post_init__(self) -> None:
        if self.hbm_latency_ns <= 0 or self.llc_latency_ns < 0:
            raise ValueError("latencies must be positive")
        if self.extra_latency_ns < 0:
            raise ValueError("extra latency must be >= 0")
        if self.hbm_bandwidth_gbyte_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.clock_ghz <= 0:
            raise ValueError("clock must be positive")

    @property
    def total_hbm_latency_ns(self) -> float:
        """HBM service latency including the adder."""
        return self.hbm_latency_ns + self.extra_latency_ns

    @property
    def total_hbm_latency_cycles(self) -> float:
        """As SM cycles."""
        return ns_to_cycles(self.total_hbm_latency_ns, self.clock_ghz)

    @property
    def llc_latency_cycles(self) -> float:
        """LLC service latency in SM cycles."""
        return ns_to_cycles(self.llc_latency_ns, self.clock_ghz)

    def with_extra(self, extra_latency_ns: float) -> "GPUMemoryModel":
        """Copy with a different disaggregation adder."""
        return GPUMemoryModel(
            hbm_latency_ns=self.hbm_latency_ns,
            extra_latency_ns=extra_latency_ns,
            hbm_bandwidth_gbyte_s=self.hbm_bandwidth_gbyte_s,
            llc_latency_ns=self.llc_latency_ns,
            clock_ghz=self.clock_ghz,
            txn_bytes=self.txn_bytes)

    def bandwidth_cycles(self, hbm_transactions: float) -> float:
        """Wall-clock cycles to stream ``hbm_transactions`` at peak BW.

        Device-wide: the transactions share the full HBM bandwidth, so
        the time is bytes / bandwidth converted to SM-clock cycles.
        """
        bytes_total = hbm_transactions * self.txn_bytes
        seconds = bytes_total / (self.hbm_bandwidth_gbyte_s * 1e9)
        return seconds * self.clock_ghz * 1e9
