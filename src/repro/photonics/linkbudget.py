"""Optical link-budget analysis.

Whether a photonic path closes is a power-budget question: the laser
power per wavelength, minus every loss along the path (coupling in and
out of the package, the switch's insertion loss, fiber attenuation,
connectors), must still exceed the receiver's sensitivity — with
margin for crosstalk-induced penalties. The paper leans on this
implicitly when it quotes insertion losses for each switch family
(Table II) and limits AWGR cascades to ~15 dB; this module makes the
budget explicit so fabric feasibility can be *checked*, not assumed.

All power quantities are in dBm, losses/penalties in dB.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.photonics.switches import SWITCH_CATALOG, SwitchTechnology


def crosstalk_power_penalty_db(crosstalk_db: float | None) -> float:
    """Receiver power penalty caused by in-band crosstalk.

    Standard first-order model for a single dominant interferer: the
    eye closes by ``10*log10(1 - 2*sqrt(eps))`` with ``eps`` the
    crosstalk power ratio. Crosstalk below -50 dB is negligible;
    ``None`` (unreported) is charged a conservative 0.5 dB.
    """
    if crosstalk_db is None:
        return 0.5
    if crosstalk_db >= 0:
        raise ValueError("crosstalk must be negative dB")
    eps = 10.0 ** (crosstalk_db / 10.0)
    closure = 1.0 - 2.0 * math.sqrt(eps)
    if closure <= 0:
        return math.inf
    return -10.0 * math.log10(closure)


@dataclass(frozen=True)
class LinkBudget:
    """Power budget of one wavelength path through the fabric.

    Parameters
    ----------
    laser_dbm_per_wavelength:
        Optical power launched per comb line (after demux).
    coupling_loss_db:
        Fiber-to-chip coupling loss, charged twice (in and out).
    fiber_db_per_km:
        Fiber attenuation (negligible intra-rack, kept for generality).
    connector_loss_db:
        Per-connector loss; two connectors per path assumed.
    receiver_sensitivity_dbm:
        Minimum received power for the target BER at 25 Gbps.
    design_margin_db:
        Engineering margin demanded on top of sensitivity.
    """

    laser_dbm_per_wavelength: float = 10.0
    coupling_loss_db: float = 1.5
    fiber_db_per_km: float = 0.4
    connector_loss_db: float = 0.25
    receiver_sensitivity_dbm: float = -17.0
    design_margin_db: float = 3.0

    def __post_init__(self) -> None:
        for name in ("coupling_loss_db", "fiber_db_per_km",
                     "connector_loss_db", "design_margin_db"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def path_loss_db(self, switch_insertion_db: float,
                     fiber_m: float = 4.0,
                     crosstalk_db: float | None = None) -> float:
        """Total loss plus penalties along one path."""
        if switch_insertion_db < 0 or fiber_m < 0:
            raise ValueError("losses and lengths must be >= 0")
        return (2 * self.coupling_loss_db
                + 2 * self.connector_loss_db
                + self.fiber_db_per_km * fiber_m / 1000.0
                + switch_insertion_db
                + crosstalk_power_penalty_db(crosstalk_db))

    def received_dbm(self, switch_insertion_db: float,
                     fiber_m: float = 4.0,
                     crosstalk_db: float | None = None) -> float:
        """Optical power arriving at the photodetector."""
        return self.laser_dbm_per_wavelength - self.path_loss_db(
            switch_insertion_db, fiber_m, crosstalk_db)

    def margin_db(self, switch_insertion_db: float,
                  fiber_m: float = 4.0,
                  crosstalk_db: float | None = None) -> float:
        """Margin above sensitivity + design margin (>=0 closes)."""
        return (self.received_dbm(switch_insertion_db, fiber_m,
                                  crosstalk_db)
                - self.receiver_sensitivity_dbm - self.design_margin_db)

    def closes(self, switch_insertion_db: float, fiber_m: float = 4.0,
               crosstalk_db: float | None = None) -> bool:
        """Does the link close with the demanded margin?"""
        return self.margin_db(switch_insertion_db, fiber_m,
                              crosstalk_db) >= 0.0

    def max_insertion_loss_db(self, fiber_m: float = 4.0,
                              crosstalk_db: float | None = None) -> float:
        """Largest switch insertion loss this budget tolerates."""
        other = self.path_loss_db(0.0, fiber_m, crosstalk_db)
        return (self.laser_dbm_per_wavelength - other
                - self.receiver_sensitivity_dbm - self.design_margin_db)


def fabric_feasibility(budget: LinkBudget | None = None,
                       fiber_m: float = 4.0) -> list[dict]:
    """Check every Table II switch family against a link budget.

    Returns one row per catalog entry with its path loss, margin, and
    verdict — the quantitative backing for the paper's implicit claim
    that all three families are usable intra-rack.
    """
    budget = budget if budget is not None else LinkBudget()
    rows = []
    for tech in SWITCH_CATALOG:
        margin = budget.margin_db(tech.insertion_loss_db, fiber_m,
                                  tech.crosstalk_db)
        rows.append({
            "switch": tech.name,
            "insertion_loss_db": tech.insertion_loss_db,
            "crosstalk_db": tech.crosstalk_db,
            "path_loss_db": budget.path_loss_db(
                tech.insertion_loss_db, fiber_m, tech.crosstalk_db),
            "margin_db": margin,
            "closes": margin >= 0.0,
        })
    return rows


def cascade_depth_limit(budget: LinkBudget,
                        stage_loss_db: float,
                        fiber_m: float = 4.0) -> int:
    """How many switch stages a budget supports (indirect routing cost).

    Each indirect hop re-enters the fabric and pays another stage of
    insertion loss (the OEO-free case); this bounds how deep multi-hop
    indirect routing could go before regeneration is needed. The paper
    keeps to <= 2 intermediate hops, comfortably within budget.
    """
    if stage_loss_db <= 0:
        raise ValueError("stage loss must be positive")
    depth = 0
    while budget.closes(stage_loss_db * (depth + 1), fiber_m):
        depth += 1
        if depth > 64:  # guard: budget effectively unbounded
            break
    return depth


def switch_budget_report(tech: SwitchTechnology,
                         budget: LinkBudget | None = None) -> dict:
    """Single-switch budget summary used by tests and examples."""
    budget = budget if budget is not None else LinkBudget()
    return {
        "switch": tech.name,
        "margin_db": budget.margin_db(tech.insertion_loss_db,
                                      crosstalk_db=tech.crosstalk_db),
        "max_tolerable_il_db": budget.max_insertion_loss_db(
            crosstalk_db=tech.crosstalk_db),
        "closes": budget.closes(tech.insertion_loss_db,
                                crosstalk_db=tech.crosstalk_db),
    }
