"""Optical switch technology models (paper Tables II and IV).

The paper considers three families of all-optical switches for the
disaggregated rack:

* **Spatial** switches (MEMS-actuated, MZI-based): broadband, one
  logical channel per port, require reconfiguration to change the
  input->output mapping.
* **Wavelength-selective** switches (microring based): can steer any
  subset of wavelengths to a given destination; the large-radix entry
  is a model projected from demonstrated building blocks.
* **AWGRs** (arrayed waveguide grating routers): passive, no
  reconfiguration; wavelength w entering port p always exits the same
  port (see :mod:`repro.photonics.awgr`).

Table II rows are represented as :class:`SwitchTechnology` instances;
Table IV (the configurations the study actually uses) is derived from
the same catalog.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from enum import Enum


class SwitchKind(Enum):
    """Switching mechanism families from §III-D."""

    SPATIAL = "spatial"
    WAVE_SELECTIVE = "wave-selective"
    AWGR = "awgr"


@dataclass(frozen=True)
class SwitchTechnology:
    """One optical switch family (a row of paper Table II).

    Parameters
    ----------
    name:
        Catalog identifier.
    kind:
        Switching mechanism family.
    radix:
        Port count (N for an N x N switch).
    wavelengths_per_port:
        Number of wavelengths each port carries. 1 for purely spatial
        switches; equal to radix for AWGRs.
    gbps_per_wavelength:
        Line rate per wavelength channel.
    insertion_loss_db:
        Worst-case optical insertion loss through the switch.
    crosstalk_db:
        Worst-case crosstalk suppression (negative dB; more negative is
        better). ``None`` when the source does not report it.
    reconfig_time_ns:
        Time to change the switch configuration. ``0`` (and
        ``reconfigurable=False``) for passive AWGRs.
    reconfigurable:
        Whether the fabric itself can be reconfigured.
    reference:
        Citation tag from the paper.
    """

    name: str
    kind: SwitchKind
    radix: int
    wavelengths_per_port: int
    gbps_per_wavelength: float
    insertion_loss_db: float
    crosstalk_db: float | None
    reconfig_time_ns: float
    reconfigurable: bool
    reference: str = ""

    def __post_init__(self) -> None:
        if self.radix <= 1:
            raise ValueError(f"{self.name}: radix must exceed 1")
        if self.wavelengths_per_port <= 0:
            raise ValueError(f"{self.name}: wavelengths/port must be positive")
        if self.gbps_per_wavelength <= 0:
            raise ValueError(f"{self.name}: Gbps/wavelength must be positive")
        if self.insertion_loss_db < 0:
            raise ValueError(f"{self.name}: insertion loss must be >= 0 dB")
        if self.kind is SwitchKind.AWGR and self.reconfigurable:
            raise ValueError(f"{self.name}: AWGRs are passive and cannot "
                             "be reconfigurable")

    # -- derived quantities -------------------------------------------------

    @property
    def port_bandwidth_gbps(self) -> float:
        """Aggregate bandwidth through one port."""
        return self.wavelengths_per_port * self.gbps_per_wavelength

    @property
    def bisection_bandwidth_gbps(self) -> float:
        """Total bandwidth through the switch with all ports driven."""
        return self.radix * self.port_bandwidth_gbps

    def with_conservative_rate(self, gbps_per_wavelength: float = 25.0
                               ) -> "SwitchTechnology":
        """Return a copy clamped to the study's conservative line rate.

        §V-B: even though spatial and wave-selective devices demonstrated
        100 Gbps/wavelength, the study assumes 25 Gbps everywhere because
        widely available links do not exceed that (Table I).
        """
        if gbps_per_wavelength > self.gbps_per_wavelength:
            raise ValueError(
                f"{self.name}: conservative rate {gbps_per_wavelength} exceeds "
                f"demonstrated {self.gbps_per_wavelength}")
        return replace(self, gbps_per_wavelength=gbps_per_wavelength)


#: Table II device catalog. The MZI and MEMS rows are demonstrated
#: devices; the large microring entry is the paper's 128x128 projection;
#: the cascaded-AWGR row is the Sato-style construction (§III-D2).
SWITCH_CATALOG: tuple[SwitchTechnology, ...] = (
    SwitchTechnology(
        name="mzi-32",
        kind=SwitchKind.SPATIAL,
        radix=32, wavelengths_per_port=1, gbps_per_wavelength=439.0,
        insertion_loss_db=12.8, crosstalk_db=-26.6,
        reconfig_time_ns=1e3, reconfigurable=True, reference="[85]"),
    SwitchTechnology(
        name="mems-240",
        kind=SwitchKind.SPATIAL,
        radix=240, wavelengths_per_port=1, gbps_per_wavelength=100.0,
        insertion_loss_db=9.8, crosstalk_db=-70.0,
        reconfig_time_ns=1e6, reconfigurable=True, reference="[86]"),
    SwitchTechnology(
        name="microring-8",
        kind=SwitchKind.WAVE_SELECTIVE,
        radix=8, wavelengths_per_port=8, gbps_per_wavelength=100.0,
        insertion_loss_db=5.0, crosstalk_db=None,
        reconfig_time_ns=100.0, reconfigurable=True, reference="[87]"),
    SwitchTechnology(
        name="microring-128",
        kind=SwitchKind.WAVE_SELECTIVE,
        radix=128, wavelengths_per_port=128, gbps_per_wavelength=42.0,
        insertion_loss_db=10.0, crosstalk_db=-35.0,
        reconfig_time_ns=100.0, reconfigurable=True, reference="[88]"),
    SwitchTechnology(
        name="cascaded-awgr-370",
        kind=SwitchKind.AWGR,
        radix=370, wavelengths_per_port=370, gbps_per_wavelength=25.0,
        insertion_loss_db=15.0, crosstalk_db=-35.0,
        reconfig_time_ns=0.0, reconfigurable=False, reference="[89]"),
)


def switch_by_name(name: str) -> SwitchTechnology:
    """Look up a catalog entry by name (KeyError if absent)."""
    for tech in SWITCH_CATALOG:
        if tech.name == name:
            return tech
    raise KeyError(f"unknown switch technology {name!r}; "
                   f"known: {[t.name for t in SWITCH_CATALOG]}")


def project_wave_selective(target_radix: int = 256,
                           base: str = "microring-128",
                           il_per_doubling_db: float = 1.0,
                           crosstalk_penalty_db: float = 1.0,
                           ) -> SwitchTechnology:
    """Project a larger wave-selective switch from a demonstrated block.

    §III-D2: wave-selective switching at large radix "is a relatively
    new technology, [so] we constructed a model ... that projects the
    performance of a larger radix switch comprised of smaller
    demonstrated building blocks". The projection doubles the radix by
    composing switch-and-select stages; each doubling adds roughly one
    stage of insertion loss and slightly worsens crosstalk.

    Parameters
    ----------
    target_radix:
        Desired port count; must be ``base.radix * 2**k`` for integer k.
    base:
        Name of the demonstrated building block in the catalog.
    il_per_doubling_db, crosstalk_penalty_db:
        Loss/crosstalk penalty added per radix doubling.
    """
    block = switch_by_name(base)
    if target_radix < block.radix:
        raise ValueError(f"target radix {target_radix} below base {block.radix}")
    ratio = target_radix / block.radix
    doublings = math.log2(ratio)
    if abs(doublings - round(doublings)) > 1e-9:
        raise ValueError(f"target radix {target_radix} must be a power-of-two "
                         f"multiple of base radix {block.radix}")
    doublings = int(round(doublings))
    crosstalk = block.crosstalk_db
    if crosstalk is not None:
        crosstalk = crosstalk + crosstalk_penalty_db * doublings
    return SwitchTechnology(
        name=f"wave-selective-{target_radix}",
        kind=SwitchKind.WAVE_SELECTIVE,
        radix=target_radix,
        wavelengths_per_port=target_radix,
        gbps_per_wavelength=block.gbps_per_wavelength,
        insertion_loss_db=block.insertion_loss_db + il_per_doubling_db * doublings,
        crosstalk_db=crosstalk,
        reconfig_time_ns=block.reconfig_time_ns,
        reconfigurable=True,
        reference="[39] projected",
    )


def table2_rows() -> list[dict]:
    """Regenerate paper Table II as a list of row dicts."""
    rows = []
    for tech in SWITCH_CATALOG:
        rows.append({
            "name": tech.name,
            "type": tech.kind.value,
            "radix": f"{tech.radix} x {tech.radix}",
            "wavelengths_per_port": tech.wavelengths_per_port,
            "gbps_per_wavelength": tech.gbps_per_wavelength,
            "insertion_loss_db": tech.insertion_loss_db,
            "crosstalk_db": tech.crosstalk_db,
            "reference": tech.reference,
        })
    return rows


#: The conservative per-wavelength rate every switch is operated at in
#: the study (§V-B / Table IV).
STUDY_GBPS_PER_WAVELENGTH: float = 25.0


def study_switch_configs() -> dict[str, SwitchTechnology]:
    """The three switch configurations of paper Table IV.

    All are clamped to 25 Gbps/wavelength. The spatial entry is modeled
    with one wavelength per port times 240 ports but — following §V-B,
    which treats spatial and wave-selective alike as "256 ports with
    256 wavelengths per port" — the returned spatial config carries 240
    wavelengths so that per-port bandwidth claims stay conservative.
    """
    awgr = switch_by_name("cascaded-awgr-370")
    spatial_base = switch_by_name("mems-240")
    # Table IV lists the spatial switch with 240 wavelengths per port:
    # a broadband spatial path carries whatever WDM signal enters it, so
    # its per-port wavelength count is set by the attached link.
    spatial = replace(spatial_base, wavelengths_per_port=spatial_base.radix,
                      gbps_per_wavelength=STUDY_GBPS_PER_WAVELENGTH)
    wss = project_wave_selective(256).with_conservative_rate(
        STUDY_GBPS_PER_WAVELENGTH)
    return {"awgr": awgr, "spatial": spatial, "wave-selective": wss}


def table4_rows() -> list[dict]:
    """Regenerate paper Table IV as a list of row dicts."""
    rows = []
    for label, tech in study_switch_configs().items():
        rows.append({
            "switch_type": label,
            "radix": tech.radix,
            "gbps_per_wavelength": tech.gbps_per_wavelength,
            "wavelengths_per_port": tech.wavelengths_per_port,
        })
    return rows
