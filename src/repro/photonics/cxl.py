"""CXL-over-photonics link protocol model (paper §III-C1, §V-A).

The disaggregated rack runs CXL as the link protocol: "an overlay on
the PCIe-Gen6 physical layer; it includes guaranteed ordering of
events". Each MCM's controller chip translates the resource's native
protocol (DDR, HBM) into CXL flits that ride the DWDM wavelengths.
The paper states "CXL's overhead and its associated FEC is included in
our architecture model"; this module makes that overhead explicit:

* **flit efficiency** — a 256 B CXL flit carries 238 B of payload
  (header, CRC, and FEC fields take the rest);
* **request/response accounting** — a 64 B memory read moves one
  request flit slot plus a data response, so effective data bandwidth
  is below wire rate;
* **latency** — controller traversal plus FEC on both ends, which is
  part of the 15 ns EOE budget of §III-C2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.photonics.fec import CXL_LIGHTWEIGHT_FEC, FECModel


@dataclass(frozen=True)
class CXLFlit:
    """CXL flit geometry.

    Defaults follow the CXL 3.x 256-byte flit: 238 bytes of slot
    payload, the rest header/CRC/FEC.
    """

    flit_bytes: int = 256
    payload_bytes: int = 238

    def __post_init__(self) -> None:
        if self.flit_bytes <= 0:
            raise ValueError("flit_bytes must be positive")
        if not 0 < self.payload_bytes <= self.flit_bytes:
            raise ValueError("payload must fit the flit")

    @property
    def efficiency(self) -> float:
        """Payload fraction of wire bits (~0.93)."""
        return self.payload_bytes / self.flit_bytes

    def flits_for_payload(self, payload_bytes: int) -> int:
        """Flits needed to carry a payload."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")
        if payload_bytes == 0:
            return 0
        return -(-payload_bytes // self.payload_bytes)  # ceil div


@dataclass(frozen=True)
class CXLLink:
    """A CXL session over one photonic path.

    Parameters
    ----------
    wire_gbps:
        Raw wavelength bandwidth under the session.
    flit:
        Flit geometry.
    fec:
        FEC scheme (latency + bandwidth cost).
    controller_latency_ns:
        One-way latency through the MCM's protocol-translation
        controller (each side).
    read_request_bytes:
        Size of a read-request message (its flit slots travel on the
        opposite direction's wire, but the controller occupancy is
        still charged as protocol overhead on small-transfer rates).
    """

    wire_gbps: float = 25.0
    flit: CXLFlit = field(default_factory=CXLFlit)
    fec: FECModel = field(default_factory=lambda: CXL_LIGHTWEIGHT_FEC)
    controller_latency_ns: float = 5.0
    read_request_bytes: int = 16

    def __post_init__(self) -> None:
        if self.wire_gbps <= 0:
            raise ValueError("wire_gbps must be positive")
        if self.controller_latency_ns < 0:
            raise ValueError("controller latency must be >= 0")

    # -- bandwidth ---------------------------------------------------------

    def effective_gbps(self, raw_ber: float = 1e-6) -> float:
        """Payload bandwidth after flit framing, FEC, retransmission."""
        wire_after_fec = self.fec.effective_bandwidth_gbps(
            self.wire_gbps, raw_ber)
        return wire_after_fec * self.flit.efficiency

    def protocol_overhead_fraction(self, raw_ber: float = 1e-6) -> float:
        """Fraction of wire bandwidth lost to the protocol stack."""
        return 1.0 - self.effective_gbps(raw_ber) / self.wire_gbps

    def transfer_time_ns(self, payload_bytes: int) -> float:
        """Serialization time of a payload across the session."""
        flits = self.flit.flits_for_payload(payload_bytes)
        bits = flits * self.flit.flit_bytes * 8
        return bits / self.wire_gbps

    # -- latency -----------------------------------------------------------

    def one_way_latency_ns(self, payload_bytes: int = 64) -> float:
        """Controller + FEC + serialization for one message."""
        return (self.controller_latency_ns
                + self.fec.fec_latency_ns
                + self.transfer_time_ns(payload_bytes))

    def read_latency_ns(self, line_bytes: int = 64,
                        fabric_latency_ns: float = 20.0) -> float:
        """Round-trip latency of one memory read over the link.

        request out (controller + FEC + small flit) + fabric propagation
        + response back (controller + FEC + data flit) + propagation.
        ``fabric_latency_ns`` is the one-way photonic path (propagation
        only; the conversion costs live in this model).
        """
        if fabric_latency_ns < 0:
            raise ValueError("fabric latency must be >= 0")
        request = self.one_way_latency_ns(self.read_request_bytes)
        response = self.one_way_latency_ns(line_bytes)
        return request + response + 2 * fabric_latency_ns


def memory_channel_over_cxl(channel_gbyte_s: float = 25.6,
                            link: CXLLink | None = None,
                            raw_ber: float = 1e-6) -> dict:
    """Wavelengths needed to carry one DDR4 channel through CXL.

    The §V-A packing gives each chip its native escape bandwidth in
    *wire* wavelengths; this helper reports how much of that is payload
    after protocol overhead — the quantitative form of "CXL's overhead
    ... is included in our architecture model".
    """
    link = link if link is not None else CXLLink()
    needed_gbps = channel_gbyte_s * 8.0
    effective_per_wavelength = link.effective_gbps(raw_ber)
    wavelengths = -(-needed_gbps // effective_per_wavelength)
    return {
        "channel_gbyte_s": channel_gbyte_s,
        "wire_gbps_per_wavelength": link.wire_gbps,
        "payload_gbps_per_wavelength": effective_per_wavelength,
        "overhead_fraction": link.protocol_overhead_fraction(raw_ber),
        "wavelengths_needed": int(wavelengths),
    }
