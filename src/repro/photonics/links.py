"""DWDM photonic link technology models (paper Table I).

Each :class:`LinkTechnology` describes one WDM link family by its
per-link bandwidth, energy per bit, and channel structure
(``gbps_per_channel`` x ``channels``). From those we derive the two
computed columns of Table I: the number of links needed to provide a
2 TB/s escape bandwidth and the aggregate power those links draw.

The catalog entries are the five rows of Table I:

======== ========= ===================== ==========================
BW(Gbps) pJ/bit    channel structure     source
======== ========= ===================== ==========================
100      30        25 x 4                100G Ethernet [80][81]
400      30        100 x 4               400G Ethernet [82]
768      <1 (0.9)  32 x 24               Ayar TeraPHY [73]
1024     0.45      16 x 64               comb-driven DWDM [83]
2048     0.3       16 x 128              comb-driven DWDM [83]
======== ========= ===================== ==========================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.units import pj_per_bit_to_watts, tbyte_s_to_gbps

#: Escape bandwidth target used for the computed columns of Table I.
TABLE1_ESCAPE_TBYTE_S: float = 2.0


@dataclass(frozen=True)
class LinkTechnology:
    """One WDM photonic link technology (a row of paper Table I).

    Parameters
    ----------
    name:
        Human-readable identifier (unique within the catalog).
    gbps:
        Total bandwidth of one link in Gbps.
    pj_per_bit:
        Wall-plug energy per transmitted bit, in picojoules.
    gbps_per_channel:
        Line rate of one wavelength channel.
    channels:
        Number of DWDM channels multiplexed on the link.
    co_packaged:
        Whether the technology requires co-packaging with the compute
        die to reach its bandwidth density (true for the DWDM entries).
    reference:
        Citation tag from the paper.
    """

    name: str
    gbps: float
    pj_per_bit: float
    gbps_per_channel: float
    channels: int
    co_packaged: bool = True
    reference: str = ""

    def __post_init__(self) -> None:
        if self.gbps <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")
        if self.pj_per_bit < 0:
            raise ValueError(f"{self.name}: energy must be non-negative")
        if self.channels <= 0:
            raise ValueError(f"{self.name}: channels must be positive")
        expected = self.gbps_per_channel * self.channels
        if not math.isclose(expected, self.gbps, rel_tol=1e-9):
            raise ValueError(
                f"{self.name}: channel structure {self.gbps_per_channel} x "
                f"{self.channels} = {expected} Gbps != link rate {self.gbps}")

    # -- derived quantities -------------------------------------------------

    def links_for_escape(self, escape_tbyte_s: float = TABLE1_ESCAPE_TBYTE_S) -> int:
        """Number of links needed to reach ``escape_tbyte_s`` TB/s escape."""
        need_gbps = tbyte_s_to_gbps(escape_tbyte_s)
        return math.ceil(need_gbps / self.gbps)

    def aggregate_power_w(self, escape_tbyte_s: float = TABLE1_ESCAPE_TBYTE_S) -> float:
        """Aggregate power (W) of the links providing the escape bandwidth.

        Matches the paper's "Agg. Ws" column: power is charged for the
        full escape bandwidth at the technology's pJ/bit.
        """
        need_gbps = tbyte_s_to_gbps(escape_tbyte_s)
        return pj_per_bit_to_watts(self.pj_per_bit, need_gbps)

    def power_w(self) -> float:
        """Power (W) of a single link driven at full rate."""
        return pj_per_bit_to_watts(self.pj_per_bit, self.gbps)

    def serialization_ns(self, payload_bits: float) -> float:
        """Time to serialize a payload across the whole link."""
        return payload_bits / self.gbps


#: The five link technologies of paper Table I, in table order.
LINK_CATALOG: tuple[LinkTechnology, ...] = (
    LinkTechnology("100G-ethernet", 100.0, 30.0, 25.0, 4,
                   co_packaged=False, reference="[80],[81]"),
    LinkTechnology("400G-ethernet", 400.0, 30.0, 100.0, 4,
                   co_packaged=False, reference="[82]"),
    LinkTechnology("ayar-teraphy", 768.0, 0.9, 32.0, 24, reference="[73]"),
    LinkTechnology("dwdm-1tbps", 1024.0, 0.45, 16.0, 64, reference="[83]"),
    LinkTechnology("dwdm-2tbps", 2048.0, 0.30, 16.0, 128, reference="[83]"),
)


def link_by_name(name: str) -> LinkTechnology:
    """Look up a catalog entry by name.

    Raises
    ------
    KeyError
        If no technology with that name exists.
    """
    for tech in LINK_CATALOG:
        if tech.name == name:
            return tech
    raise KeyError(f"unknown link technology {name!r}; "
                   f"known: {[t.name for t in LINK_CATALOG]}")


def links_for_escape_bandwidth(escape_tbyte_s: float = TABLE1_ESCAPE_TBYTE_S,
                               ) -> dict[str, int]:
    """Number of links of each technology needed for a given escape BW."""
    return {t.name: t.links_for_escape(escape_tbyte_s) for t in LINK_CATALOG}


def table1_rows(escape_tbyte_s: float = TABLE1_ESCAPE_TBYTE_S) -> list[dict]:
    """Regenerate paper Table I as a list of row dicts.

    The ``links`` and ``aggregate_w`` columns are computed from the
    device parameters, not transcribed, so they serve as a consistency
    check against the published table (160/40/21/16/8 links and
    480/197/14.4/7.2/4.8 W — the paper rounds 0.9 pJ/bit to "<1").
    """
    rows = []
    for tech in LINK_CATALOG:
        rows.append({
            "name": tech.name,
            "gbps": tech.gbps,
            "pj_per_bit": tech.pj_per_bit,
            "channel_structure": f"{tech.gbps_per_channel:g} x {tech.channels}",
            "links": tech.links_for_escape(escape_tbyte_s),
            "aggregate_w": tech.aggregate_power_w(escape_tbyte_s),
            "reference": tech.reference,
        })
    return rows
