"""Arrayed waveguide grating router (AWGR) models (paper §III-D2).

An N x N AWGR is a *passive* wavelength router: light of wavelength
``w`` entering input port ``p`` always exits output port
``(p + w) mod N``. Equivalently, between any (source, destination) port
pair there is exactly one wavelength that connects them. This cyclic
permutation property is what the indirect-routing control logic of
§IV relies on, and what :func:`awgr_output_port` /
:func:`awgr_wavelength_for_pair` encode.

Large port counts are built from small AWGRs with the cascaded
construction of Sato [89]: N front M x M AWGRs feed M rear N x N
AWGRs to act as one MN x MN AWGR, and K x K delivery-coupling (DC)
switches scale that to KMN x KMN. The paper instantiates
K, M, N = 3, 12, 11 => 396, yielding the practical 370-port device of
Table II. :class:`CascadedAWGR` reproduces that construction, including
the insertion-loss-aware interconnect optimization hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def awgr_output_port(n_ports: int, input_port: int, wavelength: int) -> int:
    """Output port reached by ``wavelength`` injected at ``input_port``.

    Implements the cyclic AWGR routing function
    ``out = (in + wavelength) mod N``.
    """
    _check_port(n_ports, input_port, "input_port")
    _check_port(n_ports, wavelength, "wavelength")
    return (input_port + wavelength) % n_ports


def awgr_wavelength_for_pair(n_ports: int, src: int, dst: int) -> int:
    """The unique wavelength connecting ``src`` to ``dst``.

    Inverse of :func:`awgr_output_port`: exactly one wavelength routes
    between any port pair, the defining AWGR property.
    """
    _check_port(n_ports, src, "src")
    _check_port(n_ports, dst, "dst")
    return (dst - src) % n_ports


def _check_port(n_ports: int, value: int, what: str) -> None:
    if n_ports <= 0:
        raise ValueError(f"n_ports must be positive, got {n_ports}")
    if not 0 <= value < n_ports:
        raise ValueError(f"{what} {value} out of range [0, {n_ports})")


@dataclass(frozen=True)
class AWGR:
    """A single monolithic N x N AWGR.

    Parameters
    ----------
    n_ports:
        Port count N. Each port carries N wavelengths.
    gbps_per_wavelength:
        Line rate per wavelength (the study assumes 25 Gbps from the
        50 GHz grid / 25 GHz optical bandwidth with PAM4, §III-D2).
    insertion_loss_db:
        End-to-end insertion loss.
    """

    n_ports: int
    gbps_per_wavelength: float = 25.0
    insertion_loss_db: float = 5.0

    def __post_init__(self) -> None:
        if self.n_ports <= 1:
            raise ValueError("AWGR needs at least 2 ports")
        if self.gbps_per_wavelength <= 0:
            raise ValueError("gbps_per_wavelength must be positive")

    def output_port(self, input_port: int, wavelength: int) -> int:
        """Routing function of this device."""
        return awgr_output_port(self.n_ports, input_port, wavelength)

    def wavelength_for(self, src: int, dst: int) -> int:
        """Unique wavelength connecting ``src`` -> ``dst``."""
        return awgr_wavelength_for_pair(self.n_ports, src, dst)

    def routing_matrix(self) -> np.ndarray:
        """(N, N) matrix R with R[src, dst] = wavelength for the pair."""
        idx = np.arange(self.n_ports)
        return (idx[None, :] - idx[:, None]) % self.n_ports

    @property
    def port_bandwidth_gbps(self) -> float:
        """Aggregate bandwidth of one port (all wavelengths)."""
        return self.n_ports * self.gbps_per_wavelength

    def pair_bandwidth_gbps(self) -> float:
        """Direct (single-hop) bandwidth between any port pair."""
        return self.gbps_per_wavelength


@dataclass(frozen=True)
class CascadedAWGR:
    """Sato-style cascaded AWGR (§III-D2, [89]).

    ``k`` delivery-coupling switch planes x ``m`` front-AWGR size x
    ``n`` rear-AWGR size give a (k*m*n)-port device, of which
    ``usable_ports`` are practical after guard-band walk-off (the paper
    uses 370 of the 396 built from 3 x 12 x 11).

    Parameters
    ----------
    k, m, n:
        Construction parameters: K x K DC switches, M x M front AWGRs,
        N x N rear AWGRs.
    usable_ports:
        Ports actually usable (<= k*m*n). Defaults to all ports.
    gbps_per_wavelength:
        Per-wavelength line rate.
    front_loss_db, rear_loss_db, dc_loss_db:
        Per-stage insertion losses; the total is their sum. Defaults
        reproduce the ~15 dB of Table II.
    crosstalk_db:
        End-to-end crosstalk suppression.
    """

    k: int = 3
    m: int = 12
    n: int = 11
    usable_ports: int | None = None
    gbps_per_wavelength: float = 25.0
    front_loss_db: float = 5.0
    rear_loss_db: float = 6.0
    dc_loss_db: float = 4.0
    crosstalk_db: float = -35.0
    # populated in __post_init__
    ports: int = field(init=False)

    def __post_init__(self) -> None:
        for name, v in (("k", self.k), ("m", self.m), ("n", self.n)):
            if v <= 0:
                raise ValueError(f"{name} must be positive, got {v}")
        built = self.k * self.m * self.n
        usable = built if self.usable_ports is None else self.usable_ports
        if not 0 < usable <= built:
            raise ValueError(
                f"usable_ports {usable} must be in (0, {built}]")
        object.__setattr__(self, "usable_ports", usable)
        object.__setattr__(self, "ports", usable)

    @classmethod
    def paper_config(cls) -> "CascadedAWGR":
        """The rack-scale 370-port configuration used in the study."""
        return cls(k=3, m=12, n=11, usable_ports=370)

    @property
    def built_ports(self) -> int:
        """Ports of the raw construction before derating (k*m*n)."""
        return self.k * self.m * self.n

    @property
    def insertion_loss_db(self) -> float:
        """Total worst-case insertion loss through all three stages."""
        return self.front_loss_db + self.rear_loss_db + self.dc_loss_db

    @property
    def wavelengths_per_port(self) -> int:
        """One wavelength per (usable) destination — AWGR property."""
        return self.ports

    def as_awgr(self) -> AWGR:
        """Collapse to an equivalent monolithic AWGR over usable ports.

        The cascade behaves externally as one large AWGR (that is its
        purpose), so routing-level code can treat it as such.
        """
        return AWGR(n_ports=self.ports,
                    gbps_per_wavelength=self.gbps_per_wavelength,
                    insertion_loss_db=self.insertion_loss_db)

    def front_awgr_count(self) -> int:
        """Number of front M x M AWGRs per DC plane (= n)."""
        return self.n

    def rear_awgr_count(self) -> int:
        """Number of rear N x N AWGRs per DC plane (= m)."""
        return self.m

    def optimize_interconnect(self, front_port_loss_db: np.ndarray,
                              rear_port_loss_db: np.ndarray) -> np.ndarray:
        """Pair front outputs with rear inputs to minimize worst-case loss.

        §III-D2: "the interconnection pattern can be optimized with
        knowledge of port-specific insertion losses to minimize the
        worst-case end-to-end insertion loss." The optimal pairing for
        a min-max objective is to sort one side ascending and the other
        descending (a classic rearrangement argument: pairing the
        lossiest front port with the least lossy rear port minimizes
        the maximum sum).

        Parameters
        ----------
        front_port_loss_db, rear_port_loss_db:
            1-D arrays of equal length with the per-port losses.

        Returns
        -------
        np.ndarray
            ``perm`` such that front output ``i`` connects to rear
            input ``perm[i]``.
        """
        front = np.asarray(front_port_loss_db, dtype=float)
        rear = np.asarray(rear_port_loss_db, dtype=float)
        if front.ndim != 1 or rear.ndim != 1 or front.size != rear.size:
            raise ValueError("loss arrays must be 1-D and of equal length")
        front_order = np.argsort(front)           # ascending front loss
        rear_order = np.argsort(rear)[::-1]       # descending rear loss
        perm = np.empty(front.size, dtype=int)
        perm[front_order] = rear_order
        return perm

    def worst_case_loss_db(self, front_port_loss_db: np.ndarray,
                           rear_port_loss_db: np.ndarray,
                           perm: np.ndarray | None = None) -> float:
        """Worst-case end-to-end loss under a given (or optimal) pairing."""
        front = np.asarray(front_port_loss_db, dtype=float)
        rear = np.asarray(rear_port_loss_db, dtype=float)
        if perm is None:
            perm = self.optimize_interconnect(front, rear)
        return float(np.max(front + rear[perm]) + self.dc_loss_db)
