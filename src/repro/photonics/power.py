"""Photonic power models (paper §VI-C).

The rack-level overhead combines:

* comb-laser transceiver pairs at ~0.5 pJ/bit including laser power
  [125][126], charged pessimistically as always-on at full line rate;
* all parallel optical switches together drawing <= 1 kW;

against the baseline compute power (A100 ~300 W, Milan ~250 W, 512 GB
DDR4 per node ~192 W), giving ~11 kW of photonics for a 128-node rack:
an ~5% overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import pj_per_bit_to_watts


@dataclass(frozen=True)
class TransceiverPower:
    """Energy model of a DWDM transceiver pair.

    Parameters
    ----------
    pj_per_bit:
        Wall-plug energy per bit including the laser share (0.5 pJ/bit
        for demonstrated comb-driven transceivers [125][126]).
    always_on:
        If true (the paper's pessimistic assumption), power is charged
        at full line rate regardless of utilization.
    """

    pj_per_bit: float = 0.5
    always_on: bool = True

    def __post_init__(self) -> None:
        if self.pj_per_bit < 0:
            raise ValueError("pj_per_bit must be >= 0")

    def power_w(self, gbps: float, utilization: float = 1.0) -> float:
        """Power of one transceiver at ``gbps`` and a given utilization."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        effective = 1.0 if self.always_on else utilization
        return pj_per_bit_to_watts(self.pj_per_bit, gbps * effective)


@dataclass(frozen=True)
class CombLaserModel:
    """Comb laser source shared across DWDM channels (§III-B).

    Quantum-dot / soliton comb sources emit hundreds of usable lines
    from one device with wall-plug efficiency up to 41% [70]. The model
    apportions a per-line optical power requirement through that
    efficiency.

    Parameters
    ----------
    lines:
        Number of usable comb lines.
    mw_per_line_optical:
        Required optical power per line at the modulator, in mW.
    wall_plug_efficiency:
        Electrical-to-optical conversion efficiency, in (0, 1].
    """

    lines: int = 64
    mw_per_line_optical: float = 1.0
    wall_plug_efficiency: float = 0.41

    def __post_init__(self) -> None:
        if self.lines <= 0:
            raise ValueError("lines must be positive")
        if self.mw_per_line_optical <= 0:
            raise ValueError("mw_per_line_optical must be positive")
        if not 0.0 < self.wall_plug_efficiency <= 1.0:
            raise ValueError("wall_plug_efficiency must be in (0, 1]")

    def electrical_power_w(self) -> float:
        """Electrical power of one comb source feeding all lines."""
        optical_w = self.lines * self.mw_per_line_optical * 1e-3
        return optical_w / self.wall_plug_efficiency


def photonic_rack_power_w(n_mcms: int = 350,
                          wavelengths_per_mcm: int = 2048,
                          gbps_per_wavelength: float = 25.0,
                          transceiver: TransceiverPower | None = None,
                          switch_power_w: float = 1000.0) -> float:
    """Total added photonic power for the disaggregated rack (§VI-C).

    Parameters mirror the paper's accounting: 350 MCMs each with 2048
    escape wavelengths at 25 Gbps, 0.5 pJ/bit transceivers assumed
    always on, and at most 1 kW for all parallel switches. With those
    defaults this returns ~9.96 kW, which the paper rounds to
    "approximately 11 kW".
    """
    if n_mcms <= 0 or wavelengths_per_mcm <= 0:
        raise ValueError("counts must be positive")
    if switch_power_w < 0:
        raise ValueError("switch_power_w must be >= 0")
    tx = transceiver if transceiver is not None else TransceiverPower()
    per_mcm_gbps = wavelengths_per_mcm * gbps_per_wavelength
    transceiver_w = n_mcms * tx.power_w(per_mcm_gbps)
    return transceiver_w + switch_power_w
