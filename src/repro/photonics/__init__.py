"""Photonic device models: DWDM links, optical switches, AWGRs, FEC, power.

This subpackage implements the device-level substrate of the paper
(§III): the Table I link-technology catalog, the Table II switch
catalog including the cascaded-AWGR construction, the PCIe/CXL-style
FEC and BER model of §III-C3, and the transceiver/laser/switch power
models used in §VI-C.
"""

from repro.photonics.links import (
    LinkTechnology,
    LINK_CATALOG,
    link_by_name,
    links_for_escape_bandwidth,
    table1_rows,
)
from repro.photonics.switches import (
    SwitchTechnology,
    SWITCH_CATALOG,
    switch_by_name,
    project_wave_selective,
    table2_rows,
    table4_rows,
)
from repro.photonics.awgr import (
    AWGR,
    CascadedAWGR,
    awgr_output_port,
    awgr_wavelength_for_pair,
)
from repro.photonics.fec import (
    FECModel,
    CXL_LIGHTWEIGHT_FEC,
    flit_error_rate,
    effective_ber_after_fec,
    retransmission_overhead,
)
from repro.photonics.power import (
    TransceiverPower,
    CombLaserModel,
    photonic_rack_power_w,
)
from repro.photonics.linkbudget import (
    LinkBudget,
    fabric_feasibility,
    crosstalk_power_penalty_db,
    cascade_depth_limit,
)
from repro.photonics.cxl import (
    CXLFlit,
    CXLLink,
    memory_channel_over_cxl,
)

__all__ = [
    "LinkTechnology", "LINK_CATALOG", "link_by_name",
    "links_for_escape_bandwidth", "table1_rows",
    "SwitchTechnology", "SWITCH_CATALOG", "switch_by_name",
    "project_wave_selective", "table2_rows", "table4_rows",
    "AWGR", "CascadedAWGR", "awgr_output_port", "awgr_wavelength_for_pair",
    "FECModel", "CXL_LIGHTWEIGHT_FEC", "flit_error_rate",
    "effective_ber_after_fec", "retransmission_overhead",
    "TransceiverPower", "CombLaserModel", "photonic_rack_power_w",
    "LinkBudget", "fabric_feasibility", "crosstalk_power_penalty_db",
    "cascade_depth_limit",
    "CXLFlit", "CXLLink", "memory_channel_over_cxl",
]
