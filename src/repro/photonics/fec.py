"""Forward error correction and BER model (paper §III-A, §III-C3).

Server-class memory needs a bit error rate below 1e-18 to keep FIT
rates tolerable with SEC-DED protection. Raw photonic links are far
worse, so the architecture runs a lightweight PCIe-Gen6/CXL-style FEC
under a strong per-flit CRC:

* the FEC corrects any single error burst of up to 16 bits per flit;
* a flit fails only when it suffers two (or more) independent bursts,
  so the flit failure probability falls quadratically with the raw
  flit error probability ("a flit BER of 1e-6 becomes 1e-12");
* CRC escapes (undetected corrupted flits) are suppressed by a 64-flit
  CRC to well under one part per billion of flit failures;
* detected failures become link retransmissions, so the ASIC-to-ASIC
  connection sees close to zero errors at a small bandwidth cost.

This module provides both the closed-form arithmetic used by the paper
and a Monte Carlo cross-check (:func:`simulate_flit_errors`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def flit_error_rate(raw_ber: float, flit_bits: int = 256,
                    correctable_bursts: int = 1) -> float:
    """Probability a flit still fails after burst-correcting FEC.

    Models bursts as independent events whose per-flit count is
    binomial with per-bit probability ``raw_ber`` (each burst counted
    once at its first bit). A flit fails when it contains more than
    ``correctable_bursts`` bursts. With one correctable burst the
    leading term is C(n,2) * p^2 — the quadratic suppression quoted by
    the paper.

    Parameters
    ----------
    raw_ber:
        Raw (pre-FEC) bit/burst error probability per bit slot.
    flit_bits:
        Flit size in bits (256 for CXL flits).
    correctable_bursts:
        Number of bursts the FEC corrects per flit.
    """
    if not 0.0 <= raw_ber <= 1.0:
        raise ValueError(f"raw_ber must be in [0, 1], got {raw_ber}")
    if flit_bits <= 0:
        raise ValueError("flit_bits must be positive")
    if correctable_bursts < 0:
        raise ValueError("correctable_bursts must be >= 0")
    # P(flit fails) = P(#bursts > correctable) for Binomial(n, p).
    # Use the survival function via the complement of the CDF sum; for
    # tiny p the sum is dominated by its first omitted term, which keeps
    # this numerically exact where the paper's quadratic rule applies.
    n, p = flit_bits, raw_ber
    if p == 0.0:
        return 0.0
    prob_le = 0.0
    log_q = n * math.log1p(-p)
    for k in range(correctable_bursts + 1):
        # log C(n,k) p^k (1-p)^(n-k)
        log_term = (math.lgamma(n + 1) - math.lgamma(k + 1)
                    - math.lgamma(n - k + 1)
                    + k * math.log(p) + (n - k) * math.log1p(-p))
        prob_le += math.exp(log_term)
    # Guard against floating cancellation for minuscule p: fall back to
    # the dominant-term approximation when the complement underflows.
    fail = 1.0 - prob_le
    if fail <= 0.0:
        k = correctable_bursts + 1
        log_term = (math.lgamma(n + 1) - math.lgamma(k + 1)
                    - math.lgamma(n - k + 1)
                    + k * math.log(p) + (n - k) * math.log1p(-p))
        fail = math.exp(log_term)
    del log_q
    return min(fail, 1.0)


def effective_ber_after_fec(raw_ber: float, flit_bits: int = 256,
                            crc_escape_rate: float = 1e-9) -> float:
    """Residual *undetected* error rate per bit after FEC + CRC.

    Detected flit failures are retransmitted and therefore harmless;
    only CRC escapes corrupt data. The per-bit residual rate is::

        flit_fail_prob * crc_escape_rate / flit_bits

    Parameters
    ----------
    crc_escape_rate:
        Fraction of failed flits whose corruption the 64-flit CRC fails
        to detect; the paper bounds this "significantly less than one
        part per billion".
    """
    if not 0.0 <= crc_escape_rate <= 1.0:
        raise ValueError("crc_escape_rate must be in [0, 1]")
    fer = flit_error_rate(raw_ber, flit_bits)
    return fer * crc_escape_rate / flit_bits


def retransmission_overhead(raw_ber: float, flit_bits: int = 256) -> float:
    """Fraction of link bandwidth consumed by FEC-escape retransmissions.

    Every detected flit failure costs one extra flit transmission, so
    the overhead equals the flit failure probability (to first order in
    that probability). The paper notes this stays below 0.1% for the
    BERs of interest.
    """
    fer = flit_error_rate(raw_ber, flit_bits)
    # Expected transmissions per flit = 1 / (1 - fer); overhead is the excess.
    if fer >= 1.0:
        return math.inf
    return fer / (1.0 - fer)


@dataclass(frozen=True)
class FECModel:
    """A concrete FEC scheme with its latency/bandwidth costs (§III-C3).

    Parameters
    ----------
    name:
        Identifier.
    fec_latency_ns:
        All-inclusive FEC encode+decode latency ("as low as 2 ns" for
        the CXL/PCIe-Gen6 lightweight scheme; we default to the upper
        end of the paper's 2-3 ns).
    flit_bits:
        Protected flit size.
    bandwidth_overhead:
        Fraction of raw bandwidth spent on FEC parity (<0.1%).
    crc_escape_rate:
        See :func:`effective_ber_after_fec`.
    """

    name: str = "cxl-lightweight"
    fec_latency_ns: float = 3.0
    flit_bits: int = 256
    bandwidth_overhead: float = 0.001
    crc_escape_rate: float = 1e-9

    def __post_init__(self) -> None:
        if self.fec_latency_ns < 0:
            raise ValueError("fec_latency_ns must be >= 0")
        if not 0 <= self.bandwidth_overhead < 1:
            raise ValueError("bandwidth_overhead must be in [0, 1)")

    def serialization_ns(self, link_gbps: float) -> float:
        """Time to serialize one flit at ``link_gbps``.

        §III-C3 example: at 200 Gbps a 256-bit flit (plus header
        framing, which the paper folds into "10 ns") serializes in
        ~10 ns... The paper quotes serialization for the whole FEC
        block; we expose the flit-level figure and let callers choose
        block sizes.
        """
        if link_gbps <= 0:
            raise ValueError("link_gbps must be positive")
        return self.flit_bits / link_gbps

    def total_latency_ns(self, link_gbps: float) -> float:
        """FEC latency plus flit serialization at the given line rate."""
        return self.fec_latency_ns + self.serialization_ns(link_gbps)

    def residual_ber(self, raw_ber: float) -> float:
        """Undetected post-FEC BER for a raw link BER."""
        return effective_ber_after_fec(raw_ber, self.flit_bits,
                                       self.crc_escape_rate)

    def meets_memory_ber(self, raw_ber: float,
                         target_ber: float = 1e-18) -> bool:
        """Does this scheme reach the server-memory BER target?"""
        return self.residual_ber(raw_ber) <= target_ber

    def effective_bandwidth_gbps(self, link_gbps: float,
                                 raw_ber: float = 1e-6) -> float:
        """Usable bandwidth after parity and retransmission overheads."""
        retx = retransmission_overhead(raw_ber, self.flit_bits)
        return link_gbps * (1.0 - self.bandwidth_overhead) / (1.0 + retx)


#: The scheme the paper adopts.
CXL_LIGHTWEIGHT_FEC = FECModel()


def simulate_flit_errors(raw_ber: float, flit_bits: int = 256,
                         n_flits: int = 100_000,
                         correctable_bursts: int = 1,
                         rng: np.random.Generator | None = None) -> float:
    """Monte Carlo estimate of the flit failure probability.

    Draws per-flit burst counts from Binomial(flit_bits, raw_ber) and
    counts flits whose bursts exceed the FEC's correction capability.
    Used by tests to validate :func:`flit_error_rate` at moderate BERs
    (the 1e-18 regime is only reachable in closed form).
    """
    if n_flits <= 0:
        raise ValueError("n_flits must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    bursts = rng.binomial(flit_bits, raw_ber, size=n_flits)
    return float(np.mean(bursts > correctable_bursts))
