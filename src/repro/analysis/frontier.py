"""Iso-performance / iso-power frontiers for topology bake-offs.

Generalizes the paper's §VI-E iso-comparison arithmetic
(:func:`repro.core.isoperf.iso_performance_comparison` scales module
counts linearly to match a bandwidth target;
:func:`repro.core.power.rack_power_overhead` prices the provisioned
fabric) from one photonic-vs-electronic data point to any set of
arena contenders:

* **iso-performance** — fix the delivered bandwidth at the best
  contender's (or an explicit target) and ask what provisioned power
  each topology needs to match it, scaling capacity — and with it
  power, both linear in provisioned links — by
  ``target / carried``;
* **iso-power** — fix the power budget at the leanest contender's
  (or an explicit budget) and ask what each topology carries inside
  it, scaling carried bandwidth by ``budget / power``.

Both are first-order frontiers: they assume carried bandwidth and
provisioned power scale together, which matches how every backend's
``power_w()`` is built (capacity times an energy-per-bit constant,
plus per-switch constants that scale with the same fabric size).
A contender that carried nothing cannot reach any positive target;
its iso-performance power is reported as ``None`` rather than a
fake infinity so the JSON stays finite and sortable.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "FrontierPoint",
    "iso_performance_frontier",
    "iso_power_frontier",
]


@dataclass(frozen=True)
class FrontierPoint:
    """One contender's measured (bandwidth, power) operating point."""

    backend: str
    carried_gbps: float
    power_w: float

    def __post_init__(self) -> None:
        if self.carried_gbps < 0:
            raise ValueError("carried_gbps must be >= 0")
        if self.power_w <= 0:
            raise ValueError("power_w must be positive")

    @property
    def gbps_per_watt(self) -> float:
        """Delivered efficiency at the measured operating point."""
        return self.carried_gbps / self.power_w

    def as_dict(self) -> dict:
        """JSON-stable row."""
        return {"backend": self.backend,
                "carried_gbps": self.carried_gbps,
                "power_w": self.power_w,
                "gbps_per_watt": self.gbps_per_watt}


def _check_points(points: list[FrontierPoint]) -> None:
    if not points:
        raise ValueError("need at least one frontier point")
    names = [p.backend for p in points]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate backends in frontier: {names}")


def iso_performance_frontier(points: list[FrontierPoint],
                             target_gbps: float | None = None,
                             ) -> list[dict]:
    """Power each contender needs to match a bandwidth target.

    ``target_gbps`` defaults to the best measured carried bandwidth.
    Each contender's provisioning is scaled by ``target / carried``
    (the §VI-E move), so its iso-performance power is
    ``power_w * target / carried`` — ``None`` when it carried
    nothing. Rows come back cheapest-first: the frontier order.
    """
    _check_points(points)
    if target_gbps is None:
        target_gbps = max(p.carried_gbps for p in points)
    if target_gbps < 0:
        raise ValueError("target_gbps must be >= 0")
    rows = []
    for p in points:
        scale = (target_gbps / p.carried_gbps
                 if p.carried_gbps > 0 else None)
        rows.append({
            **p.as_dict(),
            "target_gbps": float(target_gbps),
            "scale": scale,
            "iso_power_w": (p.power_w * scale
                            if scale is not None else None),
        })
    return sorted(rows, key=lambda r: (r["iso_power_w"] is None,
                                       r["iso_power_w"]))


def iso_power_frontier(points: list[FrontierPoint],
                       budget_w: float | None = None) -> list[dict]:
    """Bandwidth each contender carries inside a power budget.

    ``budget_w`` defaults to the leanest measured contender's power.
    Each contender's provisioning is scaled by ``budget / power``, so
    its iso-power bandwidth is ``carried_gbps * budget / power``.
    Rows come back fastest-first: the frontier order.
    """
    _check_points(points)
    if budget_w is None:
        budget_w = min(p.power_w for p in points)
    if budget_w <= 0:
        raise ValueError("budget_w must be positive")
    rows = []
    for p in points:
        scale = budget_w / p.power_w
        rows.append({
            **p.as_dict(),
            "budget_w": float(budget_w),
            "scale": scale,
            "iso_carried_gbps": p.carried_gbps * scale,
        })
    return sorted(rows, key=lambda r: -r["iso_carried_gbps"])
