"""Small statistics helpers used by the studies and benches."""

from __future__ import annotations

import math

import numpy as np


def pearson(x, y) -> float:
    """Pearson product-moment correlation coefficient.

    The paper uses this to relate slowdown to LLC miss rate (Fig. 7:
    0.89 Parsec-large, 0.76 Rodinia; Fig. 10: 0.87/0.79 for GPUs).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("pearson needs two equal-length 1-D arrays")
    if x.size < 2:
        raise ValueError("pearson needs at least two points")
    sx = x.std()
    sy = y.std()
    if sx == 0 or sy == 0:
        raise ValueError("pearson undefined for constant input")
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))


def summarize(values) -> dict[str, float]:
    """Mean/max/min/std summary of a sequence."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize empty input")
    return {
        "n": float(arr.size),
        "mean": float(arr.mean()),
        "max": float(arr.max()),
        "min": float(arr.min()),
        "std": float(arr.std()),
    }


def quantiles(values, qs=(0.5, 0.75, 0.95, 0.99)) -> dict[float, float]:
    """Selected quantiles of a sequence."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take quantiles of empty input")
    return {float(q): float(np.quantile(arr, q)) for q in qs}


def mean_ci(values, confidence: float = 0.95) -> dict[str, float]:
    """Mean with a normal-approximation confidence interval.

    The half-width is ``z * s / sqrt(n)`` with the sample standard
    deviation (``ddof=1``); a single observation yields a zero-width
    interval. This is the cross-seed summary the multi-repeat sweeps
    and scenario runs report.
    """
    from scipy import stats as sstats

    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize empty input")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    n = int(arr.size)
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if n > 1 else 0.0
    z = float(sstats.norm.ppf(0.5 + confidence / 2.0))
    half = z * std / math.sqrt(n)
    return {
        "n": float(n),
        "mean": mean,
        "std": std,
        "ci_low": mean - half,
        "ci_high": mean + half,
        "half_width": half,
    }
