"""Statistics helpers and plain-text report rendering."""

from repro.analysis.stats import pearson, summarize, quantiles
from repro.analysis.report import render_table, render_kv
from repro.analysis.frontier import (
    FrontierPoint,
    iso_performance_frontier,
    iso_power_frontier,
)

__all__ = [
    "FrontierPoint",
    "iso_performance_frontier",
    "iso_power_frontier",
    "pearson",
    "summarize",
    "quantiles",
    "render_table",
    "render_kv",
]
