"""Statistics helpers and plain-text report rendering."""

from repro.analysis.stats import pearson, summarize, quantiles
from repro.analysis.report import render_table, render_kv

__all__ = ["pearson", "summarize", "quantiles", "render_table", "render_kv"]
