"""Plain-text table rendering for benches and examples.

Keeps the benchmark harness output comparable with the paper's tables
without any plotting dependency.
"""

from __future__ import annotations


def _fmt(value, precision: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(rows: list[dict], columns: list[str] | None = None,
                 precision: int = 3, title: str | None = None) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        raise ValueError("no rows to render")
    cols = columns if columns is not None else list(rows[0].keys())
    cells = [[_fmt(row.get(c), precision) for c in cols] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in cells))
              for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_kv(pairs: dict, precision: int = 3,
              title: str | None = None) -> str:
    """Render a mapping as aligned key: value lines."""
    if not pairs:
        raise ValueError("no pairs to render")
    width = max(len(str(k)) for k in pairs)
    lines = []
    if title:
        lines.append(title)
    for key, value in pairs.items():
        lines.append(f"{str(key).ljust(width)} : {_fmt(value, precision)}")
    return "\n".join(lines)


# -- sweep aggregation ---------------------------------------------------------

def sweep_rows(sweep_result, columns: list[str] | None = None
               ) -> list[dict]:
    """Flatten a sweep's task results into table rows.

    ``sweep_result`` is any object with ``rows()`` (duck-typed to
    avoid importing the experiments package here); ``columns`` selects
    and orders a subset of the merged config+metric keys.
    """
    rows = sweep_result.rows()
    if columns is None:
        return rows
    return [{c: row.get(c) for c in columns} for row in rows]


def aggregate_rows(rows: list[dict], by: str,
                   metrics: list[str]) -> list[dict]:
    """Group sweep rows by one config column and reduce each metric
    to mean/min/max — the cross-seed / cross-repeat summary view."""
    if not rows:
        raise ValueError("no rows to aggregate")
    groups: dict = {}
    for row in rows:
        groups.setdefault(row.get(by), []).append(row)
    out = []
    for key, members in groups.items():
        entry: dict = {by: key, "n": len(members)}
        for metric in metrics:
            values = [m[metric] for m in members
                      if isinstance(m.get(metric), (int, float))
                      and not isinstance(m.get(metric), bool)]
            if not values:
                continue
            entry[f"{metric}_mean"] = sum(values) / len(values)
            entry[f"{metric}_min"] = min(values)
            entry[f"{metric}_max"] = max(values)
        out.append(entry)
    return out


def aggregate_ci(rows: list[dict], by: str, metrics: list[str],
                 confidence: float = 0.95) -> list[dict]:
    """Group sweep rows by one config column and reduce each metric to
    a mean with a normal-approximation CI — the multi-seed / repeats
    summary view (see :func:`repro.analysis.stats.mean_ci`)."""
    from repro.analysis.stats import mean_ci

    if not rows:
        raise ValueError("no rows to aggregate")
    groups: dict = {}
    for row in rows:
        groups.setdefault(row.get(by), []).append(row)
    out = []
    for key, members in groups.items():
        entry: dict = {by: key, "n": len(members)}
        for metric in metrics:
            values = [m[metric] for m in members
                      if isinstance(m.get(metric), (int, float))
                      and not isinstance(m.get(metric), bool)]
            if not values:
                continue
            ci = mean_ci(values, confidence)
            entry[f"{metric}_mean"] = ci["mean"]
            entry[f"{metric}_ci_low"] = ci["ci_low"]
            entry[f"{metric}_ci_high"] = ci["ci_high"]
        out.append(entry)
    return out


def render_sweep(sweep_result, columns: list[str] | None = None,
                 precision: int = 3) -> str:
    """Render a sweep result as a table plus its one-line summary.

    Sweeps where every task failed (or a shard ran an empty slice)
    have no metric rows; the summary line still renders.
    """
    rows = sweep_rows(sweep_result, columns)
    if not rows:
        return f"Sweep: {sweep_result.spec_name} (no completed " \
               f"tasks)\n\n{sweep_result.summary()}"
    table = render_table(rows, precision=precision,
                         title=f"Sweep: {sweep_result.spec_name}")
    return f"{table}\n\n{sweep_result.summary()}"
