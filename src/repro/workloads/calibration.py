"""Calibration solver: published targets -> substrate parameters.

The paper characterizes each benchmark by observables — LLC miss rate
and measured slowdown under the 35 ns adder (Figs. 6-7). Our substrate
needs physical parameters: per-level reuse fractions, base CPI, and
OOO memory-level parallelism. This module inverts the timing models to
find parameters that land on the observables; the studies then run the
full trace -> cache -> core pipeline with those parameters, so every
reported number still flows through the simulators (with the sampling
noise of real synthetic traces).

Closed forms inverted here (cycles per instruction, Delta = adder in
cycles, x = DRAM accesses per instruction):

* in-order:  S = Delta*x / (cpi + r*h2*P2 + r*h3*P3 + x*(P3 + M))
* OOO:       S = (Delta/mlp)*x / (cpi' + sigma*(...) + x*E/mlp),
  with E = max(0, P3 + M - W) the exposed base miss latency.

Feasibility falls out naturally: a benchmark with a tiny LLC miss rate
*cannot* exhibit a large slowdown (the denominator's LLC-hit term
grows as 1/q), which is exactly the correlation structure of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.caches import CacheHierarchy
from repro.cpu.memory import MemoryModel


class CalibrationError(ValueError):
    """Raised when a target combination is physically infeasible."""


@dataclass(frozen=True)
class TraceFractions:
    """Solved reuse fractions plus the in-order CPI that hits the target."""

    l1_fraction: float
    l2_fraction: float
    llc_fraction: float
    dram_fraction: float
    cpi_inorder: float


def solve_trace_fractions(target_slowdown: float,
                          llc_miss_rate: float,
                          mem_ratio: float,
                          extra_latency_ns: float = 35.0,
                          cpi_inorder: float = 1.0,
                          l2_fraction: float = 0.05,
                          hierarchy: CacheHierarchy | None = None,
                          memory: MemoryModel | None = None,
                          ) -> TraceFractions:
    """Solve reuse fractions so the in-order core hits a slowdown target.

    Parameters
    ----------
    target_slowdown:
        Desired relative slowdown at ``extra_latency_ns`` (e.g. 0.57
        for streamcluster-large).
    llc_miss_rate:
        Desired LLC misses / LLC accesses (Fig. 7 x-axis).
    mem_ratio:
        Memory accesses per instruction.
    cpi_inorder:
        Base (perfect-memory) CPI of the in-order core. When the
        target is unreachable with this CPI the solver *raises*; pick
        the CPI per suite so marquee benchmarks fit.
    l2_fraction:
        Fixed fraction of memory accesses serviced by L2.

    Returns
    -------
    TraceFractions
        Fractions for :class:`~repro.cpu.trace.TraceSpec` plus the CPI.
    """
    hierarchy = hierarchy if hierarchy is not None else CacheHierarchy()
    memory = memory if memory is not None else MemoryModel()
    if not 0 <= target_slowdown:
        raise CalibrationError("target slowdown must be >= 0")
    if not 0 < llc_miss_rate <= 1:
        raise CalibrationError("llc_miss_rate must be in (0, 1]")
    if not 0 < mem_ratio <= 1:
        raise CalibrationError("mem_ratio must be in (0, 1]")

    p2 = hierarchy.l2.hit_penalty_cycles
    p3 = hierarchy.llc.hit_penalty_cycles
    mem_cycles = memory.total_latency_cycles             # base DRAM
    delta = MemoryModel(extra_latency_ns=extra_latency_ns,
                        base_latency_ns=0.0,
                        clock_ghz=memory.clock_ghz).total_latency_cycles
    miss_path = p3 + mem_cycles                          # base LLC-miss cycles
    q = llc_miss_rate

    if target_slowdown == 0:
        # No DRAM traffic at all; park everything in L1/L2.
        return TraceFractions(1.0 - l2_fraction, l2_fraction, 0.0, 0.0,
                              cpi_inorder)

    # S*(cpi + r*h2*P2 + (1-q)/q * x * P3 + x*miss_path) = delta*x
    # => x*(delta - S*(P3*(1-q)/q + miss_path)) = S*(cpi + r*h2*P2)
    coeff = delta - target_slowdown * (p3 * (1 - q) / q + miss_path)
    if coeff <= 0:
        max_s = delta / (p3 * (1 - q) / q + miss_path)
        raise CalibrationError(
            f"slowdown {target_slowdown:.2f} infeasible at LLC miss rate "
            f"{q:.2f}: the model caps it at {max_s:.2f} (raise the miss "
            "rate or lower the target)")
    fixed = cpi_inorder + mem_ratio * l2_fraction * p2
    x = target_slowdown * fixed / coeff                  # DRAM per instr
    dram_fraction = x / mem_ratio
    llc_fraction = dram_fraction * (1 - q) / q
    l1_fraction = 1.0 - l2_fraction - llc_fraction - dram_fraction
    if l1_fraction < 0:
        raise CalibrationError(
            f"target needs {dram_fraction + llc_fraction:.2f} of accesses "
            f"beyond L2 (> available); raise mem_ratio or cpi_inorder")
    return TraceFractions(l1_fraction, l2_fraction, llc_fraction,
                          dram_fraction, cpi_inorder)


def solve_ooo_mlp(target_slowdown_ooo: float,
                  fractions: TraceFractions,
                  mem_ratio: float,
                  extra_latency_ns: float = 35.0,
                  cpi_ooo: float = 0.5,
                  partial_exposure: float = 0.35,
                  hide_cycles: float = 24.0,
                  hierarchy: CacheHierarchy | None = None,
                  memory: MemoryModel | None = None,
                  mlp_bounds: tuple[float, float] = (1.0, 16.0)) -> float:
    """Solve the OOO core's MLP so it hits the OOO slowdown target.

    The trace (and therefore ``fractions``) is shared with the in-order
    solve; only the core differs. When the required MLP falls outside
    ``mlp_bounds`` it is clamped — the achieved slowdown then deviates
    from the target, which the calibration tests tolerate within their
    bands (physics over exact replay).
    """
    hierarchy = hierarchy if hierarchy is not None else CacheHierarchy()
    memory = memory if memory is not None else MemoryModel()
    if target_slowdown_ooo < 0:
        raise CalibrationError("target slowdown must be >= 0")
    x = fractions.dram_fraction * mem_ratio
    if x <= 0 or target_slowdown_ooo == 0:
        return mlp_bounds[0]

    p2 = hierarchy.l2.hit_penalty_cycles
    p3 = hierarchy.llc.hit_penalty_cycles
    delta = MemoryModel(extra_latency_ns=extra_latency_ns,
                        base_latency_ns=0.0,
                        clock_ghz=memory.clock_ghz).total_latency_cycles
    exposed_base = max(0.0, p3 + memory.total_latency_cycles - hide_cycles)
    sigma_cost = partial_exposure * mem_ratio * (
        fractions.l2_fraction * p2 + fractions.llc_fraction * p3)

    # S = (delta/mlp)*x / (cpi' + sigma + x*exposed_base/mlp)
    # => mlp = x*(delta - S*exposed_base) / (S*(cpi' + sigma))
    numerator = x * (delta - target_slowdown_ooo * exposed_base)
    if numerator <= 0:
        # Target exceeds what even fully-serialized misses produce;
        # clamp to the most-exposed configuration.
        return mlp_bounds[0]
    mlp = numerator / (target_slowdown_ooo * (cpi_ooo + sigma_cost))
    return float(min(max(mlp, mlp_bounds[0]), mlp_bounds[1]))
