"""Workload characterizations: CPU suites, GPU suites, production traces.

The CPU and GPU benchmark tables record, for every benchmark the paper
runs, the observable characteristics the paper reports or implies
(LLC miss rate, slowdown at 35 ns, memory intensity). The calibration
solver converts those into the substrate's physical parameters (reuse
fractions, CPI, MLP), so the simulators *reproduce* the published
behaviour mechanistically rather than merely replaying numbers — the
same structure as calibrating a simulator against hardware counters.

``cori`` synthesizes production utilization traces whose marginal
distributions match the NERSC Cori quantiles of §II-A, feeding the
iso-performance analysis.
"""

from repro.workloads.calibration import (
    CalibrationError,
    solve_trace_fractions,
    solve_ooo_mlp,
)
from repro.workloads.cpu_suites import (
    CPUBenchmark,
    parsec_benchmarks,
    nas_benchmarks,
    rodinia_cpu_benchmarks,
    all_cpu_benchmarks,
    benchmarks_by_suite,
)
from repro.workloads.gpu_suites import (
    gpu_applications,
    rodinia_gpu_applications,
    polybench_applications,
    tango_applications,
)
from repro.workloads.cori import (
    UtilizationProfile,
    CORI_PROFILES,
    sample_node_utilization,
    rack_demand_quantile,
)
from repro.workloads.jobs import (
    JobMixConfig,
    generate_job_stream,
    stream_statistics,
)

__all__ = [
    "CalibrationError", "solve_trace_fractions", "solve_ooo_mlp",
    "CPUBenchmark", "parsec_benchmarks", "nas_benchmarks",
    "rodinia_cpu_benchmarks", "all_cpu_benchmarks", "benchmarks_by_suite",
    "gpu_applications", "rodinia_gpu_applications",
    "polybench_applications", "tango_applications",
    "UtilizationProfile", "CORI_PROFILES", "sample_node_utilization",
    "rack_demand_quantile",
    "JobMixConfig", "generate_job_stream", "stream_statistics",
]
