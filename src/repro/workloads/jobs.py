"""Production job-mix generator (paper §III-D3 dynamics).

"In production HPC systems, multi-node jobs start every few seconds
and last from minutes to hours. Also, job resource usage ... become[s]
predictable early, do[es] not change fast, and typically remain[s]
predictable throughout a job's execution time." This module generates
job streams with those dynamics, plus per-job resource shapes drawn
from the Cori-like utilization profiles, for the scheduler and
reconfiguration-feasibility studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.allocation import JobRequest
from repro.core.scheduler import ScheduledJob
from repro.rack.node import PERLMUTTER_NODE, NodeConfig
from repro.workloads.cori import CORI_PROFILES


@dataclass(frozen=True)
class JobMixConfig:
    """Knobs of the synthetic production job stream.

    Parameters
    ----------
    mean_interarrival_s:
        Jobs start "every few seconds" — default 5 s, exponential.
    min_duration_s / max_duration_s:
        Jobs "last from minutes to hours" — lognormal clipped to this
        range (default 2 minutes to 6 hours).
    duration_median_s:
        Median job duration.
    gpu_job_fraction:
        Fraction of jobs requesting GPUs.
    max_nodes_equivalent:
        Cap on a job's size in node-equivalents (rack-scale jobs).
    """

    mean_interarrival_s: float = 5.0
    min_duration_s: float = 120.0
    max_duration_s: float = 6 * 3600.0
    duration_median_s: float = 1800.0
    duration_sigma: float = 1.0
    gpu_job_fraction: float = 0.5
    max_nodes_equivalent: int = 16

    def __post_init__(self) -> None:
        if self.mean_interarrival_s <= 0:
            raise ValueError("interarrival must be positive")
        if not 0 < self.min_duration_s < self.max_duration_s:
            raise ValueError("need 0 < min_duration < max_duration")
        if not 0.0 <= self.gpu_job_fraction <= 1.0:
            raise ValueError("gpu_job_fraction must be in [0, 1]")
        if self.max_nodes_equivalent < 1:
            raise ValueError("max_nodes_equivalent must be >= 1")


def generate_job_stream(n_jobs: int,
                        config: JobMixConfig | None = None,
                        node: NodeConfig | None = None,
                        rng: np.random.Generator | None = None,
                        ) -> list[ScheduledJob]:
    """Generate ``n_jobs`` jobs with production-like dynamics.

    Per-job resource shapes scale a node-equivalent footprint by
    utilization draws from the Cori profiles — so most jobs request a
    small fraction of the memory/NIC their node count implies, which
    is precisely the marooning the disaggregated rack recovers.
    """
    if n_jobs <= 0:
        raise ValueError("n_jobs must be positive")
    config = config if config is not None else JobMixConfig()
    node = node if node is not None else PERLMUTTER_NODE
    rng = rng if rng is not None else np.random.default_rng(0)

    mem_profile = CORI_PROFILES["memory_capacity"]
    nic_profile = CORI_PROFILES["nic_bandwidth"]
    cores_profile = CORI_PROFILES["cores"]

    jobs: list[ScheduledJob] = []
    now = 0.0
    mu = np.log(config.duration_median_s)
    for i in range(n_jobs):
        now += float(rng.exponential(config.mean_interarrival_s))
        duration = float(np.clip(
            rng.lognormal(mu, config.duration_sigma),
            config.min_duration_s, config.max_duration_s))
        nodes_eq = int(rng.integers(1, config.max_nodes_equivalent + 1))
        wants_gpus = rng.random() < config.gpu_job_fraction

        cpu_util = float(cores_profile.sample(1, rng)[0])
        mem_util = float(mem_profile.sample(1, rng)[0])
        nic_util = float(nic_profile.sample(1, rng)[0])

        cpus = max(1, round(nodes_eq * node.cpus * cpu_util))
        gpus = (max(1, round(nodes_eq * node.gpus * cpu_util))
                if wants_gpus else 0)
        memory = max(1.0, nodes_eq * node.memory_capacity_gbyte * mem_util)
        nic = max(0.1, nodes_eq * node.nics * node.nic_gbps * nic_util)

        jobs.append(ScheduledJob(
            request=JobRequest(f"job-{i:05d}", cpus=cpus, gpus=gpus,
                               memory_gbyte=memory, nic_gbps=nic),
            arrival_s=now,
            duration_s=duration))
    return jobs


def stream_statistics(jobs: list[ScheduledJob]) -> dict:
    """Summary statistics used by tests and the scheduling example."""
    if not jobs:
        raise ValueError("empty job stream")
    arrivals = np.array([j.arrival_s for j in jobs])
    durations = np.array([j.duration_s for j in jobs])
    inter = np.diff(np.sort(arrivals))
    return {
        "jobs": len(jobs),
        "mean_interarrival_s": float(inter.mean()) if inter.size else 0.0,
        "median_duration_s": float(np.median(durations)),
        "max_duration_s": float(durations.max()),
        "gpu_job_fraction": float(np.mean(
            [j.request.gpus > 0 for j in jobs])),
        "event_rate_hz": (2.0 * len(jobs)
                          / float(arrivals.max() - arrivals.min() + 1.0)),
    }
