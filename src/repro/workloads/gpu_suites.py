"""GPU application characterizations (§VI-B3).

24 applications: 11 Rodinia, 10 Polybench, 3 Tango — the paper's
composition ("we run 11 applications from Rodinia and ten applications
from Polybench ... AlexNet, GRU, and LSTM from the Tango deep network
benchmark suite"), totalling ~1525 kernels whose aggregates we fold
into one-to-three representative kernels per application.

The characterization drives the Fig. 9/10 structure: Polybench's
linear-algebra kernels "stress the GPU cache and main memory" (high
LLC miss rates, large HBM transaction rates), Rodinia is mixed, the
Tango networks are compute-heavy with modest memory pressure. Slowdown
averages ~5.35% at 35 ns with strong LLC-miss-rate correlation.
"""

from __future__ import annotations

from functools import lru_cache

from repro.gpu.kernels import ApplicationSpec, KernelSpec

#: Instructions per synthesized application (arbitrary scale; ratios
#: cancel in slowdowns).
_BASE_INSTR = 10_000_000


def _app(name: str, suite: str,
         kernels: list[tuple[str, float, float, float, float, float]],
         ) -> ApplicationSpec:
    """Rows: (kernel, weight, mem_txn_per_instr, miss, occupancy, ilp)."""
    specs = tuple(
        KernelSpec(name=f"{name}.{kname}",
                   instructions=max(1, int(_BASE_INSTR * weight)),
                   mem_txn_per_instr=txn, llc_miss_rate=miss,
                   occupancy=occ, ilp=ilp)
        for kname, weight, txn, miss, occ, ilp in kernels)
    return ApplicationSpec(name=f"{suite}.{name}", suite=suite,
                           kernels=specs)


@lru_cache(maxsize=None)
def rodinia_gpu_applications() -> tuple[ApplicationSpec, ...]:
    """11 Rodinia GPU applications (default inputs)."""
    return (
        _app("backprop", "rodinia-gpu",
             [("layerforward", 0.6, 0.10, 0.30, 0.55, 1.2),
              ("adjust_weights", 0.4, 0.12, 0.35, 0.50, 1.1)]),
        _app("bfs", "rodinia-gpu",
             [("kernel1", 0.7, 0.14, 0.45, 0.42, 1.0),
              ("kernel2", 0.3, 0.10, 0.40, 0.42, 1.0)]),
        _app("gaussian", "rodinia-gpu",
             [("fan1", 0.3, 0.06, 0.25, 0.30, 1.0),
              ("fan2", 0.7, 0.08, 0.30, 0.30, 1.0)]),
        _app("hotspot", "rodinia-gpu",
             [("calculate_temp", 1.0, 0.07, 0.18, 0.45, 1.1)]),
        _app("nn", "rodinia-gpu",
             [("euclid", 1.0, 0.12, 0.50, 0.48, 1.0)]),
        _app("nw", "rodinia-gpu",
             [("needle1", 0.5, 0.13, 0.60, 0.27, 1.0),
              ("needle2", 0.5, 0.13, 0.58, 0.27, 1.0)]),
        _app("pathfinder", "rodinia-gpu",
             [("dynproc", 1.0, 0.08, 0.22, 0.42, 1.1)]),
        _app("particlefilter", "rodinia-gpu",
             [("likelihood", 0.8, 0.05, 0.12, 0.40, 1.0),
              ("normalize", 0.2, 0.04, 0.10, 0.40, 1.0)]),
        _app("srad", "rodinia-gpu",
             [("srad1", 0.5, 0.11, 0.35, 0.50, 1.1),
              ("srad2", 0.5, 0.11, 0.33, 0.50, 1.1)]),
        _app("lavamd", "rodinia-gpu",
             [("kernel_gpu", 1.0, 0.03, 0.08, 0.70, 1.4)]),
        _app("myocyte", "rodinia-gpu",
             [("solver", 1.0, 0.02, 0.06, 0.25, 1.0)]),
    )


@lru_cache(maxsize=None)
def polybench_applications() -> tuple[ApplicationSpec, ...]:
    """10 Polybench linear-algebra applications."""
    return (
        _app("2mm", "polybench",
             [("mm1", 0.5, 0.05, 0.20, 0.55, 1.3),
              ("mm2", 0.5, 0.05, 0.20, 0.55, 1.3)]),
        _app("3mm", "polybench",
             [("mm", 1.0, 0.05, 0.18, 0.55, 1.3)]),
        _app("atax", "polybench",
             [("atax1", 0.5, 0.16, 0.70, 0.33, 1.0),
              ("atax2", 0.5, 0.16, 0.68, 0.33, 1.0)]),
        _app("bicg", "polybench",
             [("bicg1", 0.5, 0.15, 0.66, 0.42, 1.0),
              ("bicg2", 0.5, 0.15, 0.64, 0.42, 1.0)]),
        _app("gemm", "polybench",
             [("gemm", 1.0, 0.04, 0.15, 0.60, 1.4)]),
        _app("gesummv", "polybench",
             [("gesummv", 1.0, 0.17, 0.72, 0.36, 1.0)]),
        _app("mvt", "polybench",
             [("mvt1", 0.5, 0.15, 0.65, 0.40, 1.0),
              ("mvt2", 0.5, 0.15, 0.63, 0.40, 1.0)]),
        _app("syrk", "polybench",
             [("syrk", 1.0, 0.06, 0.22, 0.50, 1.2)]),
        _app("syr2k", "polybench",
             [("syr2k", 1.0, 0.07, 0.26, 0.50, 1.2)]),
        _app("correlation", "polybench",
             [("corr", 0.7, 0.10, 0.40, 0.45, 1.1),
              ("reduce", 0.3, 0.08, 0.35, 0.45, 1.1)]),
    )


@lru_cache(maxsize=None)
def tango_applications() -> tuple[ApplicationSpec, ...]:
    """3 Tango deep-network applications."""
    return (
        _app("alexnet", "tango",
             [("conv", 0.7, 0.05, 0.22, 0.70, 1.5),
              ("fc", 0.3, 0.12, 0.45, 0.45, 1.1)]),
        _app("gru", "tango",
             [("gemv", 0.8, 0.11, 0.42, 0.40, 1.1),
              ("pointwise", 0.2, 0.04, 0.12, 0.60, 1.3)]),
        _app("lstm", "tango",
             [("gemv", 0.8, 0.12, 0.45, 0.38, 1.1),
              ("pointwise", 0.2, 0.04, 0.12, 0.60, 1.3)]),
    )


def gpu_applications() -> tuple[ApplicationSpec, ...]:
    """All 24 applications of the study."""
    return (rodinia_gpu_applications() + polybench_applications()
            + tango_applications())


#: Rodinia applications present in both the CPU and GPU studies, used
#: for the Fig. 11 comparison ("the intersection of Rodinia benchmarks
#: that correctly complete on both CPUs and GPUs").
RODINIA_INTERSECTION: tuple[str, ...] = (
    "backprop", "bfs", "hotspot", "nn", "nw",
    "pathfinder", "particlefilter", "srad", "lavamd", "myocyte",
)
