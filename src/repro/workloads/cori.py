"""Synthetic production-utilization traces (Cori-like, §II-A).

The iso-performance analysis of §VI-E rests on observed resource
under-utilization in NERSC's Cori (and similar systems): most of the
time nodes use a small fraction of their memory capacity, memory
bandwidth, NIC bandwidth, and cores. The paper consumes these as
distribution quantiles; we synthesize per-node utilization samples
whose marginals match the quoted quantiles:

* memory capacity: 75% of the time below 17.4% (Haswell nodes);
* memory bandwidth: 75% of the time below 0.46 GB/s (~0.2% of peak);
* NIC bandwidth: 75% of the time below 1.25% of peak;
* cores: half the time no more than half the cores in use.

A lognormal clipped to [0, 1] is fit to two quantiles per resource;
heavy upper tails (jobs that *do* saturate) emerge from the fit, which
is what makes naive provisioning wasteful and pooled (disaggregated)
provisioning effective.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class UtilizationProfile:
    """Lognormal utilization profile fit to two quantiles.

    Parameters
    ----------
    resource:
        Label ("memory_capacity", ...).
    q1, v1:
        First quantile: P(U <= v1) = q1 (e.g. 0.75, 0.174).
    q2, v2:
        Second quantile, further out in the tail.
    """

    resource: str
    q1: float
    v1: float
    q2: float
    v2: float

    def __post_init__(self) -> None:
        if not (0 < self.q1 < self.q2 < 1):
            raise ValueError(f"{self.resource}: need 0 < q1 < q2 < 1")
        if not (0 < self.v1 < self.v2 <= 1):
            raise ValueError(f"{self.resource}: need 0 < v1 < v2 <= 1")

    @property
    def lognormal_params(self) -> tuple[float, float]:
        """(mu, sigma) of the underlying normal in log-utilization."""
        z1 = stats.norm.ppf(self.q1)
        z2 = stats.norm.ppf(self.q2)
        sigma = (math.log(self.v2) - math.log(self.v1)) / (z2 - z1)
        mu = math.log(self.v1) - z1 * sigma
        return mu, sigma

    def sample(self, n: int, rng: np.random.Generator | None = None
               ) -> np.ndarray:
        """Draw ``n`` utilization samples in [0, 1]."""
        if n <= 0:
            raise ValueError("n must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        mu, sigma = self.lognormal_params
        return np.clip(rng.lognormal(mu, sigma, size=n), 0.0, 1.0)

    def quantile(self, q: float) -> float:
        """Closed-form quantile of the (unclipped) fit."""
        mu, sigma = self.lognormal_params
        return float(min(1.0, math.exp(mu + sigma * stats.norm.ppf(q))))


#: Profiles fit to the §II-A quantiles. The second quantile encodes the
#: tail the text implies (saturating jobs exist but are rare).
CORI_PROFILES: dict[str, UtilizationProfile] = {
    # 75% of the time < 17.4% of memory capacity; ~99% below 80%.
    "memory_capacity": UtilizationProfile("memory_capacity",
                                          0.75, 0.174, 0.99, 0.80),
    # 75% of the time < 0.46 GB/s of ~137 GB/s peak (~0.34%); 99.5%
    # below the 125 Gbps (~11%) figure used in §VI-A.
    "memory_bandwidth": UtilizationProfile("memory_bandwidth",
                                           0.75, 0.0034, 0.995, 0.114),
    # 75% of the time < 1.25% of NIC bandwidth; 99.5% below 50%.
    "nic_bandwidth": UtilizationProfile("nic_bandwidth",
                                        0.75, 0.0125, 0.995, 0.50),
    # Half the time <= 50% of cores; 95% below 100% (clipped).
    "cores": UtilizationProfile("cores", 0.50, 0.50, 0.95, 1.0),
}


def sample_node_utilization(resource: str, n_nodes: int,
                            rng: np.random.Generator | None = None,
                            ) -> np.ndarray:
    """Per-node utilization snapshot for one resource."""
    try:
        profile = CORI_PROFILES[resource]
    except KeyError:
        raise KeyError(f"unknown resource {resource!r}; "
                       f"known: {sorted(CORI_PROFILES)}") from None
    return profile.sample(n_nodes, rng)


def rack_demand_quantile(resource: str, n_nodes: int = 128,
                         quantile: float = 0.99,
                         n_snapshots: int = 2000,
                         rng: np.random.Generator | None = None) -> float:
    """Quantile of *rack-aggregate* utilization for one resource.

    The pooling argument of disaggregation: per-node demand is heavy
    tailed, but the rack-level sum concentrates (independent nodes), so
    provisioning the rack for a high quantile of aggregate demand needs
    far fewer resources than provisioning every node for its own tail.
    Returns the quantile of mean-per-node utilization.
    """
    if not 0 < quantile < 1:
        raise ValueError("quantile must be in (0, 1)")
    rng = rng if rng is not None else np.random.default_rng(0)
    profile = CORI_PROFILES[resource]
    totals = np.empty(n_snapshots)
    for i in range(n_snapshots):
        totals[i] = profile.sample(n_nodes, rng).mean()
    return float(np.quantile(totals, quantile))
