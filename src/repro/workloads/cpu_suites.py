"""CPU benchmark characterizations: PARSEC 3.1, NAS, Rodinia (§VI-B1).

Each entry records the observables the paper reports or implies for
the benchmark under the 35 ns adder — LLC miss rate (Fig. 7) and
in-order / OOO slowdown targets (Figs. 6-7) — together with a memory
intensity and per-suite core parameters. The calibration solver turns
those into reuse fractions and MLP; the studies then run the full
synthetic-trace pipeline.

Values are read off the paper's figures where per-benchmark data is
shown (Fig. 7: Parsec-large and Rodinia) and distributed to match the
stated suite aggregates elsewhere (Fig. 6: suite averages/maxima; §VI-B1
prose: NAS negligible; streamcluster input-size cliff; "only three
benchmarks exceed a 25% slowdown in each of Rodinia and Parsec (large)").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.cpu.trace import TraceSpec
from repro.workloads.calibration import (
    CalibrationError,
    solve_ooo_mlp,
    solve_trace_fractions,
)

#: Instructions per synthesized benchmark window. Large enough that
#: trace sampling noise stays ~1%, small enough that the full 77-run
#: sweep is fast.
DEFAULT_INSTRUCTIONS = 200_000


@dataclass(frozen=True)
class CPUBenchmark:
    """One benchmark run (benchmark x input size), fully calibrated."""

    name: str
    suite: str                    # "parsec" | "nas" | "rodinia"
    input_size: str               # "small"/"medium"/"large" or "A"/"B"/"C"
    mem_ratio: float
    llc_miss_rate: float          # target misses / LLC accesses
    target_inorder: float         # target slowdown @ 35 ns, in-order
    target_ooo: float             # target slowdown @ 35 ns, OOO
    cpi_inorder: float
    cpi_ooo: float
    instructions: int = DEFAULT_INSTRUCTIONS

    @property
    def full_name(self) -> str:
        """Qualified name, e.g. "parsec.canneal.large"."""
        return f"{self.suite}.{self.name}.{self.input_size}"

    def trace_spec(self) -> TraceSpec:
        """Calibrated trace specification for this run."""
        frac = self._fractions()
        return TraceSpec(
            name=self.full_name,
            instructions=self.instructions,
            mem_ratio=self.mem_ratio,
            l1_fraction=frac.l1_fraction,
            l2_fraction=frac.l2_fraction,
            llc_fraction=frac.llc_fraction)

    def mlp(self) -> float:
        """Calibrated OOO memory-level parallelism."""
        return solve_ooo_mlp(self.target_ooo, self._fractions(),
                             self.mem_ratio, cpi_ooo=self.cpi_ooo)

    def _fractions(self):
        return solve_trace_fractions(
            self.target_inorder, self.llc_miss_rate, self.mem_ratio,
            cpi_inorder=self.cpi_inorder)


def _mk(suite: str, name: str, size: str, mem_ratio: float, miss: float,
        s_in: float, s_ooo: float, cpi_in: float = 1.0,
        cpi_ooo: float = 0.5) -> CPUBenchmark:
    bench = CPUBenchmark(name=name, suite=suite, input_size=size,
                         mem_ratio=mem_ratio, llc_miss_rate=miss,
                         target_inorder=s_in, target_ooo=s_ooo,
                         cpi_inorder=cpi_in, cpi_ooo=cpi_ooo)
    # Fail fast at table-definition time if a row is infeasible.
    try:
        bench.trace_spec()
    except CalibrationError as exc:  # pragma: no cover - table bug guard
        raise CalibrationError(f"{bench.full_name}: {exc}") from exc
    return bench


# ---------------------------------------------------------------------------
# PARSEC 3.1 — 13 benchmarks x {small, medium, large}
# (name, miss_rate, s_inorder, s_ooo) per input size. Large-input rows
# follow Fig. 7 (slowdown tracks LLC miss rate, Pearson ~0.89); medium
# and small shrink working sets so more benchmarks fit in the LLC
# (suite averages 13%/24% medium vs 23%/41% large, §VI-B1).
# ---------------------------------------------------------------------------

_PARSEC_ROWS: dict[str, dict[str, tuple[float, float, float]]] = {
    #                 miss   S_in   S_ooo
    "blackscholes": {"small": (0.04, 0.014, 0.020),
                     "medium": (0.05, 0.015, 0.025),
                     "large": (0.06, 0.030, 0.050)},
    "bodytrack":    {"small": (0.08, 0.058, 0.081),
                     "medium": (0.10, 0.060, 0.100),
                     "large": (0.13, 0.100, 0.170)},
    "canneal":      {"small": (0.38, 0.400, 0.610),
                     "medium": (0.48, 0.420, 0.750),
                     "large": (0.58, 0.500, 0.880)},
    "dedup":        {"small": (0.22, 0.200, 0.310),
                     "medium": (0.28, 0.210, 0.380),
                     "large": (0.34, 0.250, 0.480)},
    "facesim":      {"small": (0.25, 0.230, 0.360),
                     "medium": (0.32, 0.240, 0.440),
                     "large": (0.42, 0.420, 0.760)},
    "ferret":       {"small": (0.16, 0.144, 0.210),
                     "medium": (0.20, 0.150, 0.260),
                     "large": (0.26, 0.220, 0.400)},
    "fluidanimate": {"small": (0.15, 0.134, 0.200),
                     "medium": (0.19, 0.140, 0.250),
                     "large": (0.28, 0.240, 0.460)},
    "freqmine":     {"small": (0.12, 0.106, 0.154),
                     "medium": (0.15, 0.110, 0.190),
                     "large": (0.20, 0.160, 0.280)},
    "raytrace":     {"small": (0.10, 0.086, 0.122),
                     "medium": (0.13, 0.090, 0.150),
                     "large": (0.17, 0.130, 0.220)},
    "streamcluster": {"small": (0.004, 0.002, 0.003),
                      "medium": (0.005, 0.003, 0.004),
                      "large": (0.65, 0.570, 0.950)},
    "swaptions":    {"small": (0.03, 0.011, 0.015),
                     "medium": (0.04, 0.012, 0.018),
                     "large": (0.05, 0.020, 0.030)},
    "vips":         {"small": (0.13, 0.125, 0.186),
                     "medium": (0.17, 0.130, 0.230),
                     "large": (0.22, 0.180, 0.340)},
    "x264":         {"small": (0.09, 0.077, 0.113),
                     "medium": (0.12, 0.080, 0.140),
                     "large": (0.15, 0.110, 0.190)},
}

#: Per-benchmark memory intensity (loads+stores per instruction).
_PARSEC_MEM_RATIO: dict[str, float] = {
    "blackscholes": 0.24, "bodytrack": 0.28, "canneal": 0.36,
    "dedup": 0.30, "facesim": 0.38, "ferret": 0.32, "fluidanimate": 0.34,
    "freqmine": 0.35, "raytrace": 0.30, "streamcluster": 0.27,
    "swaptions": 0.25, "vips": 0.29, "x264": 0.31,
}


@lru_cache(maxsize=None)
def parsec_benchmarks(size: str = "large") -> tuple[CPUBenchmark, ...]:
    """The 13 PARSEC 3.1 benchmarks at one input size."""
    if size not in ("small", "medium", "large"):
        raise ValueError(f"unknown PARSEC input size {size!r}")
    out = []
    for name, sizes in _PARSEC_ROWS.items():
        miss, s_in, s_ooo = sizes[size]
        out.append(_mk("parsec", name, size, _PARSEC_MEM_RATIO[name],
                       miss, s_in, s_ooo))
    return tuple(out)


# ---------------------------------------------------------------------------
# NAS parallel benchmarks 3.4.1 — 8 kernels x classes {A, B, C}.
# "NAS benchmarks are negligibly affected" (§VI-B1): single-digit miss
# rates and sub-5% slowdowns throughout, growing slightly with class.
# ---------------------------------------------------------------------------

_NAS_ROWS: dict[str, dict[str, tuple[float, float, float]]] = {
    "bt": {"A": (0.03, 0.004, 0.005), "B": (0.04, 0.006, 0.008),
           "C": (0.05, 0.009, 0.012)},
    "cg": {"A": (0.10, 0.020, 0.028), "B": (0.12, 0.028, 0.040),
           "C": (0.14, 0.038, 0.055)},
    "ep": {"A": (0.01, 0.001, 0.001), "B": (0.01, 0.001, 0.001),
           "C": (0.01, 0.001, 0.001)},
    "ft": {"A": (0.06, 0.010, 0.013), "B": (0.07, 0.014, 0.019),
           "C": (0.08, 0.018, 0.026)},
    "is": {"A": (0.07, 0.012, 0.015), "B": (0.08, 0.015, 0.020),
           "C": (0.09, 0.019, 0.027)},
    "lu": {"A": (0.04, 0.006, 0.007), "B": (0.05, 0.008, 0.010),
           "C": (0.06, 0.011, 0.015)},
    "mg": {"A": (0.08, 0.015, 0.020), "B": (0.09, 0.019, 0.027),
           "C": (0.11, 0.026, 0.038)},
    "sp": {"A": (0.04, 0.006, 0.008), "B": (0.05, 0.009, 0.012),
           "C": (0.06, 0.012, 0.017)},
}

_NAS_MEM_RATIO: dict[str, float] = {
    "bt": 0.33, "cg": 0.36, "ep": 0.20, "ft": 0.34,
    "is": 0.30, "lu": 0.32, "mg": 0.35, "sp": 0.33,
}


@lru_cache(maxsize=None)
def nas_benchmarks(input_class: str = "C") -> tuple[CPUBenchmark, ...]:
    """The 8 NAS kernels at one input class."""
    if input_class not in ("A", "B", "C"):
        raise ValueError(f"unknown NAS class {input_class!r}")
    out = []
    for name, classes in _NAS_ROWS.items():
        miss, s_in, s_ooo = classes[input_class]
        out.append(_mk("nas", name, input_class, _NAS_MEM_RATIO[name],
                       miss, s_in, s_ooo))
    return tuple(out)


# ---------------------------------------------------------------------------
# Rodinia (CPU/OpenMP) — 14 benchmarks, default input sets.
# NW dominates (79% in-order / 55% OOO); exactly three benchmarks
# exceed 25% in-order (nw, bfs, srad) and two exceed 25% OOO (nw, bfs);
# suite averages ~16% for both core types (§VI-B1). NW's OOO slowdown
# being *below* in-order reflects its serial dependence chains
# (cpi_ooo close to cpi_inorder).
# ---------------------------------------------------------------------------

_RODINIA_ROWS: dict[str, tuple[float, float, float, float, float, float]] = {
    #            mem_r  miss   S_in   S_ooo  cpi_in cpi_ooo
    "backprop":       (0.30, 0.17, 0.100, 0.130, 1.0, 0.50),
    "bfs":            (0.33, 0.45, 0.280, 0.270, 1.0, 0.80),
    "b+tree":         (0.31, 0.20, 0.120, 0.150, 1.0, 0.55),
    "cfd":            (0.36, 0.33, 0.220, 0.300, 1.0, 0.50),
    "hotspot":        (0.32, 0.12, 0.080, 0.110, 1.0, 0.45),
    "kmeans":         (0.34, 0.16, 0.100, 0.140, 1.0, 0.45),
    "lavamd":         (0.30, 0.04, 0.020, 0.026, 1.0, 0.45),
    "lud":            (0.33, 0.10, 0.060, 0.080, 1.0, 0.45),
    "myocyte":        (0.25, 0.02, 0.010, 0.012, 1.2, 0.60),
    "nn":             (0.30, 0.26, 0.140, 0.180, 1.0, 0.50),
    "nw":             (0.35, 0.75, 0.790, 0.550, 1.0, 0.90),
    "particlefilter": (0.28, 0.06, 0.040, 0.050, 1.0, 0.45),
    "pathfinder":     (0.31, 0.15, 0.100, 0.130, 1.0, 0.45),
    "srad":           (0.34, 0.40, 0.270, 0.240, 1.0, 0.70),
}


@lru_cache(maxsize=None)
def rodinia_cpu_benchmarks() -> tuple[CPUBenchmark, ...]:
    """The 14 Rodinia OpenMP benchmarks (default inputs)."""
    out = []
    for name, row in _RODINIA_ROWS.items():
        mem_ratio, miss, s_in, s_ooo, cpi_in, cpi_ooo = row
        out.append(_mk("rodinia", name, "default", mem_ratio, miss,
                       s_in, s_ooo, cpi_in, cpi_ooo))
    return tuple(out)


def all_cpu_benchmarks() -> tuple[CPUBenchmark, ...]:
    """Every run of the study: 13x3 PARSEC + 8x3 NAS + 14 Rodinia = 77."""
    runs: list[CPUBenchmark] = []
    for size in ("small", "medium", "large"):
        runs.extend(parsec_benchmarks(size))
    for cls in ("A", "B", "C"):
        runs.extend(nas_benchmarks(cls))
    runs.extend(rodinia_cpu_benchmarks())
    return tuple(runs)


def benchmarks_by_suite(suite: str, size: str | None = None
                        ) -> tuple[CPUBenchmark, ...]:
    """Select one suite (optionally one input size/class)."""
    if suite == "parsec":
        sizes = (size,) if size else ("small", "medium", "large")
        out: list[CPUBenchmark] = []
        for s in sizes:
            out.extend(parsec_benchmarks(s))
        return tuple(out)
    if suite == "nas":
        classes = (size,) if size else ("A", "B", "C")
        out = []
        for c in classes:
            out.extend(nas_benchmarks(c))
        return tuple(out)
    if suite == "rodinia":
        return rodinia_cpu_benchmarks()
    raise ValueError(f"unknown suite {suite!r}")
