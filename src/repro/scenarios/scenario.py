"""Scenario model: episodes + events over a discrete epoch clock.

A :class:`Scenario` composes :class:`~repro.scenarios.episodes.Episode`
phases into one time-varying workload over ``n_epochs`` discrete
epochs, plus a script of :class:`ScenarioEvent` interventions (plane
failures, repairs, reconfiguration-lag changes) that the fabric
backends apply mid-run. Scenarios are pure descriptions — all
randomness comes from the generator the caller supplies — and
round-trip losslessly through ``to_config``/``from_config`` so they
can ride inside :class:`~repro.experiments.spec.ExperimentSpec`
configs and hash stably into the result cache.

Epoch randomness comes in two flavors:

* **counter-based per-epoch seeds** (:func:`derive_epoch_seed`,
  :meth:`Scenario.batch_at`) — every epoch owns an independent RNG
  derived from (scenario name, base seed, epoch counter), so epoch
  ``k``'s flows never depend on epochs ``0..k-1`` having been drawn.
  This is what makes epoch ranges *shardable*: any worker can
  generate any ``[start, stop)`` slice bit-identically to the full
  run. The default everywhere since the sharded runner landed.
* **one sequential generator** (:meth:`Scenario.batch` /
  :meth:`Scenario.batches`) — the historical mode, where a single
  RNG threads through all epochs in order. Kept as an explicit
  compatibility path (``seeding="sequential"`` on the runners) for
  replaying results pinned before per-epoch seeding; its streams are
  *not* bit-compatible with the per-epoch mode.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, replace

import numpy as np

from repro.network.traffic import Flow, FlowBatch, as_generator
from repro.scenarios.episodes import Episode

#: Seeding modes the runners accept.
SEEDING_MODES = ("per-epoch", "sequential")


def derive_epoch_seed(scenario: "Scenario | str", epoch: int,
                      base_seed: int = 0,
                      stream: str = "episodes") -> int:
    """Deterministic 63-bit seed for one epoch of one scenario.

    Counter-based (hash of scenario name, base seed, epoch, stream
    label): no draw depends on any other epoch's draws, so epoch
    ranges can be generated independently and still match the full
    run bit for bit. ``stream`` separates independent consumers —
    ``"episodes"`` for traffic generation, ``"backend"`` for the
    fabric RNG a chunk runner constructs.

    Implemented with :mod:`hashlib` directly (mirroring
    ``repro.experiments.spec.stable_hash``) so this package keeps its
    one-directional no-``repro.experiments``-import rule.
    """
    name = scenario if isinstance(scenario, str) else scenario.name
    payload = (f"repro.scenarios.epoch:{stream}:{name}:"
               f"{int(base_seed)}:{int(epoch)}")
    digest = hashlib.sha256(payload.encode()).hexdigest()
    return int(digest[:16], 16) & (2**63 - 1)

#: Event actions the backends understand. Unknown actions are carried
#: (for forward compatibility) but reported as ignored by the runner.
EVENT_ACTIONS = ("fail_plane", "repair_plane", "set_reconfig_period",
                 "set_reconfig_time")


@dataclass(frozen=True)
class ScenarioEvent:
    """One scripted intervention, applied before its epoch's traffic.

    Parameters
    ----------
    epoch:
        Epoch at whose start the event fires.
    action:
        What to do — "fail_plane" / "repair_plane" (AWGR plane index,
        or a WSS switch index on that backend), "set_reconfig_period"
        (slots between scheduler runs), "set_reconfig_time" (seconds
        one reconfiguration takes, i.e. reconfiguration lag).
    value:
        Action argument (plane index, period, or seconds).
    """

    epoch: int
    action: str
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError("event epoch must be >= 0")
        if not self.action:
            raise ValueError("event needs an action")


@dataclass(frozen=True)
class Scenario:
    """A named, composable, time-varying workload description."""

    name: str
    n_nodes: int
    n_epochs: int
    episodes: tuple[Episode, ...]
    events: tuple[ScenarioEvent, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.n_nodes < 2:
            raise ValueError("need at least two nodes")
        if self.n_epochs < 1:
            raise ValueError("need at least one epoch")
        if not self.episodes:
            raise ValueError("scenario needs at least one episode")
        # Tolerate lists from JSON configs; store as tuples.
        if not isinstance(self.episodes, tuple):
            object.__setattr__(self, "episodes", tuple(self.episodes))
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))

    def with_epochs(self, n_epochs: int) -> "Scenario":
        """Same scenario on a shorter/longer clock (CLI override).

        Events scripted at or beyond the new horizon never fire.
        """
        return replace(self, n_epochs=n_epochs)

    def events_at(self, epoch: int) -> list[ScenarioEvent]:
        """Events scripted for the start of ``epoch``, in order."""
        return [e for e in self.events if e.epoch == epoch]

    def batch(self, epoch: int, rng: np.random.Generator) -> list[Flow]:
        """All active episodes' flows for one epoch, concatenated.

        Draws from the caller's ``rng`` in place — the *sequential*
        seeding mode. Use :meth:`batch_at` for the shardable
        per-epoch-seed mode. Object-path compatibility view over
        :meth:`flow_batch` (same flows, same RNG consumption).
        """
        return self.flow_batch(epoch, rng).to_flows()

    def flow_batch(self, epoch: int,
                   rng: np.random.Generator) -> FlowBatch:
        """All active episodes' flows for one epoch as one
        structure-of-arrays :class:`~repro.network.traffic.FlowBatch`
        (the object-free hot path the runner feeds backends)."""
        return FlowBatch.concat([
            episode.generate_batch(epoch, self.n_epochs,
                                   self.n_nodes, rng)
            for episode in self.episodes])

    def batches(self, rng) -> list[list[Flow]]:
        """Materialize every epoch's batch from one threaded generator
        (seed-like or Generator; the *sequential* seeding mode)."""
        rng = as_generator(rng)
        return [self.batch(epoch, rng) for epoch in range(self.n_epochs)]

    def epoch_rng(self, epoch: int,
                  base_seed: int = 0) -> np.random.Generator:
        """Fresh generator for one epoch's independent seed stream."""
        return np.random.default_rng(
            derive_epoch_seed(self, epoch, base_seed))

    def batch_at(self, epoch: int, base_seed: int = 0) -> list[Flow]:
        """One epoch's flows under counter-based per-epoch seeding.

        Independent of every other epoch: ``batch_at(k)`` is
        bit-identical whether or not any other epoch was generated,
        in this process or another.
        """
        return self.batch(epoch, self.epoch_rng(epoch, base_seed))

    def flow_batch_at(self, epoch: int,
                      base_seed: int = 0) -> FlowBatch:
        """One epoch's :class:`FlowBatch` under counter-based
        per-epoch seeding (object-free twin of :meth:`batch_at`)."""
        return self.flow_batch(epoch, self.epoch_rng(epoch, base_seed))

    def batches_range(self, start: int, stop: int,
                      base_seed: int = 0) -> list[list[Flow]]:
        """Epoch batches for ``[start, stop)`` under per-epoch seeds —
        the unit of work one scenario shard generates."""
        if not 0 <= start <= stop <= self.n_epochs:
            raise ValueError(
                f"epoch range [{start}, {stop}) outside "
                f"[0, {self.n_epochs})")
        return [self.batch_at(epoch, base_seed)
                for epoch in range(start, stop)]

    # -- JSON-stable round trip ------------------------------------------------

    def to_config(self) -> dict:
        """Plain-dict form, safe for sweep-config hashing and JSON."""
        return asdict(self)

    @classmethod
    def from_config(cls, config: dict) -> "Scenario":
        """Inverse of :meth:`to_config` (accepts JSON-decoded dicts)."""
        episodes = tuple(
            ep if isinstance(ep, Episode) else Episode(**ep)
            for ep in config["episodes"])
        events = tuple(
            ev if isinstance(ev, ScenarioEvent) else ScenarioEvent(**ev)
            for ev in config.get("events", ()))
        return cls(name=config["name"], n_nodes=int(config["n_nodes"]),
                   n_epochs=int(config["n_epochs"]), episodes=episodes,
                   events=events,
                   description=config.get("description", ""))
