"""Scenario model: episodes + events over a discrete epoch clock.

A :class:`Scenario` composes :class:`~repro.scenarios.episodes.Episode`
phases into one time-varying workload over ``n_epochs`` discrete
epochs, plus a script of :class:`ScenarioEvent` interventions (plane
failures, repairs, reconfiguration-lag changes) that the fabric
backends apply mid-run. Scenarios are pure descriptions — all
randomness comes from the generator the runner threads through — and
round-trip losslessly through ``to_config``/``from_config`` so they
can ride inside :class:`~repro.experiments.spec.ExperimentSpec`
configs and hash stably into the result cache.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

import numpy as np

from repro.network.traffic import Flow, as_generator
from repro.scenarios.episodes import Episode

#: Event actions the backends understand. Unknown actions are carried
#: (for forward compatibility) but reported as ignored by the runner.
EVENT_ACTIONS = ("fail_plane", "repair_plane", "set_reconfig_period",
                 "set_reconfig_time")


@dataclass(frozen=True)
class ScenarioEvent:
    """One scripted intervention, applied before its epoch's traffic.

    Parameters
    ----------
    epoch:
        Epoch at whose start the event fires.
    action:
        What to do — "fail_plane" / "repair_plane" (AWGR plane index,
        or a WSS switch index on that backend), "set_reconfig_period"
        (slots between scheduler runs), "set_reconfig_time" (seconds
        one reconfiguration takes, i.e. reconfiguration lag).
    value:
        Action argument (plane index, period, or seconds).
    """

    epoch: int
    action: str
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError("event epoch must be >= 0")
        if not self.action:
            raise ValueError("event needs an action")


@dataclass(frozen=True)
class Scenario:
    """A named, composable, time-varying workload description."""

    name: str
    n_nodes: int
    n_epochs: int
    episodes: tuple[Episode, ...]
    events: tuple[ScenarioEvent, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.n_nodes < 2:
            raise ValueError("need at least two nodes")
        if self.n_epochs < 1:
            raise ValueError("need at least one epoch")
        if not self.episodes:
            raise ValueError("scenario needs at least one episode")
        # Tolerate lists from JSON configs; store as tuples.
        if not isinstance(self.episodes, tuple):
            object.__setattr__(self, "episodes", tuple(self.episodes))
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))

    def with_epochs(self, n_epochs: int) -> "Scenario":
        """Same scenario on a shorter/longer clock (CLI override).

        Events scripted at or beyond the new horizon never fire.
        """
        return replace(self, n_epochs=n_epochs)

    def events_at(self, epoch: int) -> list[ScenarioEvent]:
        """Events scripted for the start of ``epoch``, in order."""
        return [e for e in self.events if e.epoch == epoch]

    def batch(self, epoch: int, rng: np.random.Generator) -> list[Flow]:
        """All active episodes' flows for one epoch, concatenated."""
        flows: list[Flow] = []
        for episode in self.episodes:
            flows.extend(episode.generate(epoch, self.n_epochs,
                                          self.n_nodes, rng))
        return flows

    def batches(self, rng) -> list[list[Flow]]:
        """Materialize every epoch's batch (seed-like or Generator)."""
        rng = as_generator(rng)
        return [self.batch(epoch, rng) for epoch in range(self.n_epochs)]

    # -- JSON-stable round trip ------------------------------------------------

    def to_config(self) -> dict:
        """Plain-dict form, safe for sweep-config hashing and JSON."""
        return asdict(self)

    @classmethod
    def from_config(cls, config: dict) -> "Scenario":
        """Inverse of :meth:`to_config` (accepts JSON-decoded dicts)."""
        episodes = tuple(
            ep if isinstance(ep, Episode) else Episode(**ep)
            for ep in config["episodes"])
        events = tuple(
            ev if isinstance(ev, ScenarioEvent) else ScenarioEvent(**ev)
            for ev in config.get("events", ()))
        return cls(name=config["name"], n_nodes=int(config["n_nodes"]),
                   n_epochs=int(config["n_epochs"]), episodes=episodes,
                   events=events,
                   description=config.get("description", ""))
