"""One-pass topology bake-off: one scenario, M backends, one stream.

The paper's Fig. 12 compares the photonic fabric against one
electronic baseline at one operating point. The arena generalizes
that into a standing harness: every registered backend races the
*same* scenario stream in a single pass — each epoch's events are
applied to every contender, the epoch's :class:`FlowBatch` is
generated **once** (counter-seeded
:meth:`~repro.scenarios.scenario.Scenario.flow_batch_at`, so traffic
is a pure function of ``(epoch, seed)``), and every backend steps on
the shared batch. Because a backend only ever reads the batch and
the per-epoch order (events, then traffic) matches
:meth:`~repro.scenarios.runner.ScenarioRunner.step_epochs` exactly,
the per-backend report streams are bit-identical to M independent
``ScenarioRunner`` runs — proven by test — while generating and
validating the traffic exactly once instead of M times.

On top of the race, :class:`ArenaReport` places every contender with
a power model on the §VI-E iso-performance / iso-power frontiers
(:mod:`repro.analysis.frontier`): what would each topology burn to
match the fastest, and what would each carry inside the leanest
contender's power budget.

Entry points: ``python -m repro arena <scenario> --backends a,b,c``,
the ``arena_frontiers`` sweep spec, and
``benchmarks/bench_arena.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.frontier import (
    FrontierPoint,
    iso_performance_frontier,
    iso_power_frontier,
)
from repro.scenarios.registry import (
    available_backends,
    backend_info,
    make_backend,
)
from repro.scenarios.runner import ScenarioReport
from repro.scenarios.scenario import Scenario

__all__ = ["ArenaReport", "run_arena"]


@dataclass
class ArenaReport:
    """Everything one arena pass produced, per contender."""

    scenario: str
    seed: int
    #: name -> per-backend scenario report, in requested race order.
    reports: dict[str, ScenarioReport] = field(default_factory=dict)
    #: name -> provisioned fabric power, or None for contenders
    #: registered without a power model (excluded from frontiers).
    power_w: dict[str, float | None] = field(default_factory=dict)

    @property
    def backends(self) -> tuple[str, ...]:
        """Contenders in race order."""
        return tuple(self.reports)

    def frontier_points(self) -> list[FrontierPoint]:
        """Measured (bandwidth, power) point per powered contender."""
        return [FrontierPoint(backend=name,
                              carried_gbps=report.carried_gbps,
                              power_w=self.power_w[name])
                for name, report in self.reports.items()
                if self.power_w[name] is not None]

    def iso_performance(self) -> list[dict]:
        """Power to match the fastest contender, cheapest-first."""
        return iso_performance_frontier(self.frontier_points())

    def iso_power(self) -> list[dict]:
        """Bandwidth inside the leanest power budget, fastest-first."""
        return iso_power_frontier(self.frontier_points())

    def rows(self) -> list[dict]:
        """Per-backend summary rows (race order) for tables."""
        out = []
        for name, report in self.reports.items():
            row = report.as_dict()
            row["power_w"] = self.power_w[name]
            row["gbps_per_watt"] = (
                report.carried_gbps / self.power_w[name]
                if self.power_w[name] else None)
            out.append(row)
        return out

    def as_dict(self) -> dict:
        """JSON-stable arena summary (sweep-cacheable)."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "backends": list(self.backends),
            "rows": self.rows(),
            "iso_performance": self.iso_performance(),
            "iso_power": self.iso_power(),
        }


def run_arena(scenario: Scenario,
              backends: tuple[str, ...] | list[str] | None = None,
              seed: int = 0,
              backend_params: dict[str, dict] | None = None,
              ) -> ArenaReport:
    """Race one scenario through M backends in a single pass.

    Parameters
    ----------
    scenario:
        What every contender plays. Trim with
        :meth:`~repro.scenarios.scenario.Scenario.with_epochs` first
        for a shorter race.
    backends:
        Contender names (race order); defaults to every registered
        backend. Duplicates are rejected — one entry per topology.
    seed:
        Base seed for both per-epoch traffic derivation and each
        backend's own RNG (every contender gets the same seed, as it
        would in an independent ``ScenarioRunner`` run).
    backend_params:
        Optional per-backend constructor overrides,
        ``{name: {param: value}}``; keys must name raced backends.

    Uses per-epoch counter seeding only (the mode where traffic is
    position-independent, which is what makes sharing one generated
    batch across contenders exact).
    """
    names = tuple(backends) if backends is not None \
        else available_backends()
    if not names:
        raise ValueError("no backends to race")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate backends in race: {names}")
    params = dict(backend_params or {})
    unknown = sorted(set(params) - set(names))
    if unknown:
        raise ValueError(
            f"backend_params for backends not in the race: {unknown}")
    contenders = {
        name: make_backend(name, scenario.n_nodes, seed=seed,
                           **params.get(name, {}))
        for name in names}
    arena = ArenaReport(scenario=scenario.name, seed=seed)
    for name in names:
        arena.reports[name] = ScenarioReport(
            scenario=scenario.name, backend=name)
    for epoch in range(scenario.n_epochs):
        events = scenario.events_at(epoch)
        for name in names:
            report = arena.reports[name]
            for event in events:
                if contenders[name].apply_event(event):
                    report.events_applied += 1
                else:
                    report.events_ignored += 1
        batch = scenario.flow_batch_at(epoch, base_seed=seed)
        for name in names:
            arena.reports[name].epochs.append(
                contenders[name].step(batch))
    for name in names:
        arena.power_w[name] = (
            float(contenders[name].power_w())
            if backend_info(name).power else None)
    return arena
