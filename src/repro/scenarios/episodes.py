"""Composable workload episodes: phase-based, time-varying traffic.

An :class:`Episode` describes one application phase that is active for
a window of scenario epochs and emits a flow batch each epoch it is
active: uniform background chatter, a converging hotspot, CPU<->DDR4
demand, GPU<->HBM streaming, ring collectives, or a Cori-trace replay
that resamples per-node utilization from the §II-A profiles
(:mod:`repro.workloads.cori`) every epoch.

Two knobs make episodes *time-varying* and *heavy-tailed* rather than
the static hand-built batches the simulators used to receive:

* an intensity **envelope** — a declarative modulation of offered load
  over the episode's lifetime (constant, linear ramp, diurnal cosine,
  on/off burst);
* a flow-count **sampler** — per-epoch flow counts drawn from a fixed,
  Poisson, lognormal, or Pareto distribution, so episode sizes follow
  the heavy-tailed job/flow-size statistics production traces show
  rather than a fixed count.

Everything here is a frozen dataclass over JSON-stable fields, so a
whole scenario round-trips through ``to_config``/``from_config`` and
hashes stably into the sweep engine's result cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.network.traffic import (
    Flow,
    FlowBatch,
    cpu_memory_batch,
    gpu_allreduce_batch,
    hotspot_batch,
    uniform_batch,
)

#: Episode kinds and the traffic class each one emits.
EPISODE_KINDS = ("uniform", "hotspot", "cpu-mem", "gpu-hbm",
                 "collective", "cori-replay")


# -- flow-count samplers -------------------------------------------------------

def sample_count(spec: int | dict, rng: np.random.Generator) -> int:
    """Draw one per-epoch flow count from a declarative sampler spec.

    ``spec`` is either a plain int (fixed count) or a dict naming a
    distribution: ``{"dist": "fixed", "value": n}``,
    ``{"dist": "poisson", "mean": m}``,
    ``{"dist": "lognormal", "median": m, "sigma": s}``, or
    ``{"dist": "pareto", "minimum": m, "alpha": a}`` (heavy-tailed;
    smaller ``alpha`` = heavier tail).
    """
    if isinstance(spec, (int, np.integer)):
        if spec < 0:
            raise ValueError("flow count must be >= 0")
        return int(spec)
    dist = spec.get("dist")
    if dist == "fixed":
        return int(spec["value"])
    if dist == "poisson":
        return int(rng.poisson(spec["mean"]))
    if dist == "lognormal":
        sigma = float(spec.get("sigma", 1.0))
        draw = rng.lognormal(math.log(spec["median"]), sigma)
        return int(round(draw))
    if dist == "pareto":
        minimum = float(spec.get("minimum", 1.0))
        alpha = float(spec.get("alpha", 1.5))
        draw = minimum * (1.0 + rng.pareto(alpha))
        return int(round(draw))
    raise ValueError(f"unknown count sampler {spec!r}")


# -- intensity envelopes -------------------------------------------------------

def envelope_value(spec: dict | None, t: int, duration: int) -> float:
    """Intensity multiplier at episode-relative epoch ``t``.

    ``spec`` is ``None`` (constant 1.0) or a dict:
    ``{"kind": "constant", "value": v}``;
    ``{"kind": "ramp", "start": a, "end": b}`` — linear over the
    episode's ``duration``;
    ``{"kind": "diurnal", "period": p, "low": a, "high": b,
    "phase": k}`` — raised cosine, trough at phase 0;
    ``{"kind": "burst", "period": p, "duty": d, "low": a,
    "high": b}`` — ``high`` for the first ``d`` fraction of each
    period, ``low`` otherwise.
    """
    if spec is None:
        return 1.0
    kind = spec.get("kind")
    if kind == "constant":
        return float(spec["value"])
    if kind == "ramp":
        start = float(spec.get("start", 0.0))
        end = float(spec.get("end", 1.0))
        if duration <= 1:
            return end
        return start + (end - start) * (t / (duration - 1))
    if kind == "diurnal":
        period = float(spec.get("period", 24))
        low = float(spec.get("low", 0.2))
        high = float(spec.get("high", 1.0))
        phase = float(spec.get("phase", 0.0))
        wave = 0.5 - 0.5 * math.cos(2.0 * math.pi * (t + phase) / period)
        return low + (high - low) * wave
    if kind == "burst":
        period = int(spec.get("period", 4))
        duty = float(spec.get("duty", 0.25))
        low = float(spec.get("low", 0.0))
        high = float(spec.get("high", 1.0))
        return high if (t % period) < duty * period else low
    raise ValueError(f"unknown envelope {spec!r}")


# -- episodes ------------------------------------------------------------------

@dataclass(frozen=True)
class Episode:
    """One phase of an application's traffic over a scenario window.

    Parameters
    ----------
    kind:
        One of :data:`EPISODE_KINDS`.
    start:
        First scenario epoch the episode is active in.
    duration:
        Active epochs; ``None`` runs to the end of the scenario.
    flows:
        Per-epoch flow-count sampler (int or sampler dict, see
        :func:`sample_count`). Ignored by the "collective", "cpu-mem",
        "gpu-hbm" and "cori-replay" kinds, whose flow count follows
        their node sets.
    gbps:
        Per-flow offered load before the envelope is applied.
    envelope:
        Intensity envelope spec (see :func:`envelope_value`). Scales
        the flow count for count-based kinds and the per-flow Gbps for
        node-set kinds.
    params:
        Kind-specific settings: ``hotspot`` (destination node),
        ``nodes`` / ``memory_nodes`` (node subsets), ``resource`` and
        ``peak_gbps`` for "cori-replay".
    """

    kind: str
    start: int = 0
    duration: int | None = None
    flows: int | dict = 8
    gbps: float = 25.0
    envelope: dict | None = None
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EPISODE_KINDS:
            raise ValueError(f"unknown episode kind {self.kind!r}; "
                             f"known: {EPISODE_KINDS}")
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if self.duration is not None and self.duration < 1:
            raise ValueError("duration must be >= 1 (or None)")
        if self.gbps <= 0:
            raise ValueError("gbps must be positive")

    def active(self, epoch: int) -> bool:
        """Is the episode emitting traffic at this scenario epoch?"""
        if epoch < self.start:
            return False
        return self.duration is None or epoch < self.start + self.duration

    def intensity(self, epoch: int, n_epochs: int) -> float:
        """Envelope multiplier at an absolute scenario epoch."""
        duration = (self.duration if self.duration is not None
                    else n_epochs - self.start)
        return max(0.0, envelope_value(self.envelope, epoch - self.start,
                                       duration))

    def generate(self, epoch: int, n_epochs: int, n_nodes: int,
                 rng: np.random.Generator) -> list[Flow]:
        """Emit this episode's flow batch for one epoch as objects.

        Thin compatibility view over :meth:`generate_batch` — same
        flows, same RNG consumption.
        """
        return self.generate_batch(epoch, n_epochs, n_nodes,
                                   rng).to_flows()

    def generate_batch(self, epoch: int, n_epochs: int, n_nodes: int,
                       rng: np.random.Generator) -> FlowBatch:
        """Emit this episode's flow batch for one epoch.

        The structure-of-arrays hot path: flows come back as a
        :class:`~repro.network.traffic.FlowBatch` with no per-flow
        Python objects, bit-identical (values and RNG stream) to what
        the historical object-building loop produced.
        """
        if not self.active(epoch):
            return FlowBatch.empty(self.kind)
        scale = self.intensity(epoch, n_epochs)
        if scale <= 0.0:
            return FlowBatch.empty(self.kind)
        if self.kind in ("uniform", "hotspot"):
            count = int(round(sample_count(self.flows, rng) * scale))
            if count <= 0:
                return FlowBatch.empty(self.kind)
            if self.kind == "uniform":
                return uniform_batch(n_nodes, count, gbps=self.gbps,
                                     rng=rng)
            return hotspot_batch(n_nodes,
                                 int(self.params.get("hotspot", 0)),
                                 count, gbps=self.gbps, rng=rng)
        gbps = max(0.01, self.gbps * scale)
        if self.kind == "collective":
            nodes = self._nodes(n_nodes, minimum=2)
            return gpu_allreduce_batch(nodes, gbps_per_pair=gbps)
        if self.kind == "gpu-hbm":
            nodes = self._nodes(n_nodes)
            mem = np.asarray(self._memory_nodes(n_nodes, nodes),
                             dtype=np.int64)
            return FlowBatch(
                src=np.asarray(nodes, dtype=np.int64),
                dst=mem[np.arange(len(nodes)) % len(mem)],
                gbps=np.full(len(nodes), gbps), kinds=["gpu-hbm"])
        if self.kind == "cpu-mem":
            nodes = self._nodes(n_nodes)
            mem = self._memory_nodes(n_nodes, nodes)
            base = cpu_memory_batch(nodes, mem, rng=rng)
            return FlowBatch(src=base.src, dst=base.dst,
                             gbps=np.maximum(0.01, base.gbps * scale),
                             kinds=base.kinds,
                             kind_codes=base.kind_codes)
        # "cori-replay": resample per-node utilization each epoch and
        # convert it to CPU->memory Gbps against the resource's peak.
        from repro.workloads.cori import CORI_PROFILES
        resource = self.params.get("resource", "memory_bandwidth")
        profile = CORI_PROFILES[resource]
        peak_gbps = float(self.params.get("peak_gbps", 1096.0))
        nodes = self._nodes(n_nodes)
        mem = np.asarray(self._memory_nodes(n_nodes, nodes),
                         dtype=np.int64)
        utilization = np.asarray(profile.sample(len(nodes), rng),
                                 dtype=np.float64)
        return FlowBatch(
            src=np.asarray(nodes, dtype=np.int64),
            dst=mem[np.arange(len(nodes)) % len(mem)],
            gbps=np.maximum(0.01, utilization * peak_gbps * scale),
            kinds=["cori-replay"])

    # -- node-set helpers ------------------------------------------------------

    def _nodes(self, n_nodes: int, minimum: int = 1) -> list[int]:
        """Primary node set (defaults to the lower half of the rack)."""
        nodes = self.params.get("nodes")
        if nodes is not None:
            return [int(n) for n in nodes]
        return list(range(min(n_nodes, max(minimum, n_nodes // 2))))

    def _memory_nodes(self, n_nodes: int, primary: list[int]) -> list[int]:
        """Peer node set (defaults to everything not in ``primary``).

        Raises when no peer exists: every flow needs distinct
        endpoints, so a primary set covering the whole rack cannot be
        paired.
        """
        nodes = self.params.get("memory_nodes")
        if nodes is not None:
            return [int(n) for n in nodes]
        rest = [n for n in range(n_nodes) if n not in set(primary)]
        if not rest:
            raise ValueError(
                f"{self.kind} episode's node set covers the whole "
                "rack; no peer nodes left to pair with (set "
                "params['memory_nodes'])")
        return rest
