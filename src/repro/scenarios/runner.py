"""Scenario execution: epochs in, streamed metrics out.

:class:`ScenarioRunner` advances a scenario's epoch clock against one
fabric backend: each epoch it first applies the events scripted for
that epoch (plane failures, repairs, reconfiguration-lag changes),
then generates the epoch's flow batch from the active episodes and
feeds it to the backend. The per-epoch
:class:`~repro.scenarios.backends.EpochReport` stream accumulates into
a :class:`ScenarioReport` whose aggregates (accepted / blocked Gbps,
indirect-route fraction, p50/p99 per-flow slowdown) reduce through
:mod:`repro.analysis.stats` and flatten to the JSON-stable metrics
dict the sweep engine caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.stats import mean_ci, quantiles
from repro.network.traffic import as_generator
from repro.scenarios.backends import EpochReport, FabricBackend
from repro.scenarios.scenario import SEEDING_MODES, Scenario


@dataclass
class ScenarioReport:
    """Everything one scenario run produced."""

    scenario: str
    backend: str
    epochs: list[EpochReport] = field(default_factory=list)
    events_applied: int = 0
    events_ignored: int = 0

    # -- aggregates ------------------------------------------------------------

    @property
    def offered_gbps(self) -> float:
        """Total offered bandwidth across all epochs."""
        return sum(e.offered_gbps for e in self.epochs)

    @property
    def carried_gbps(self) -> float:
        """Total accepted bandwidth across all epochs."""
        return sum(e.carried_gbps for e in self.epochs)

    @property
    def blocked_gbps(self) -> float:
        """Total offered bandwidth the fabric failed to carry."""
        return sum(e.blocked_gbps for e in self.epochs)

    @property
    def throughput_ratio(self) -> float:
        """Accepted / offered bandwidth over the whole run.

        A zero-offered run reports 0.0, not 1.0 — an idle scenario
        must never read as "perfect fabric" in aggregated CI tables.
        """
        offered = self.offered_gbps
        return self.carried_gbps / offered if offered > 0 else 0.0

    @property
    def acceptance_ratio(self) -> float:
        """Carried / offered flow count over the whole run.

        A zero-offered run reports 0.0, not 1.0, mirroring
        :attr:`throughput_ratio` — an idle scenario must never read as
        "perfect fabric" in aggregated CI tables.
        """
        offered = sum(e.offered for e in self.epochs)
        carried = sum(e.carried for e in self.epochs)
        return carried / offered if offered else 0.0

    @property
    def indirect_fraction(self) -> float:
        """Carried-flow fraction that needed indirection (AWGR)."""
        carried = sum(e.carried for e in self.epochs)
        indirect = sum(e.indirect for e in self.epochs)
        return indirect / carried if carried else 0.0

    @property
    def slowdowns(self) -> list[float]:
        """Per-flow slowdown samples pooled across epochs."""
        return [s for e in self.epochs for s in e.slowdowns]

    def slowdown_quantiles(self, qs=(0.5, 0.99)) -> dict[float, float]:
        """p50/p99 (by default) of the per-flow slowdown distribution."""
        pooled = self.slowdowns
        if not pooled:
            return {float(q): 1.0 for q in qs}
        return quantiles(pooled, qs=qs)

    def as_dict(self) -> dict:
        """Flat aggregate metrics (sweep-cacheable)."""
        slow = self.slowdown_quantiles()
        return {
            "scenario": self.scenario,
            "fabric": self.backend,
            "epochs": len(self.epochs),
            "offered_gbps": self.offered_gbps,
            "carried_gbps": self.carried_gbps,
            "blocked_gbps": self.blocked_gbps,
            "throughput_ratio": self.throughput_ratio,
            "acceptance_ratio": self.acceptance_ratio,
            "indirect_fraction": self.indirect_fraction,
            "slowdown_p50": slow[0.5],
            "slowdown_p99": slow[0.99],
            "events_applied": self.events_applied,
            "events_ignored": self.events_ignored,
        }

    def rows(self) -> list[dict]:
        """Per-epoch table rows (the streaming metrics view)."""
        return [e.as_row() for e in self.epochs]


@dataclass
class ScenarioRunner:
    """Drives one scenario through one fabric backend.

    Parameters
    ----------
    scenario, backend:
        What to play and what to play it against.
    seeding:
        ``"per-epoch"`` (default) derives an independent counter-based
        seed per epoch via
        :func:`~repro.scenarios.scenario.derive_epoch_seed`, so the
        epoch stream is bit-identical to what
        :class:`~repro.scenarios.sharding.ShardedScenarioRunner`
        workers generate for their slices. ``"sequential"`` restores
        the historical single threaded generator (not bit-compatible
        with per-epoch mode — see the module docstring of
        :mod:`repro.scenarios.scenario` for the bit-exactness story).
    """

    scenario: Scenario
    backend: FabricBackend
    seeding: str = "per-epoch"

    def run(self, seed: int = 0) -> ScenarioReport:
        """Play the scenario end to end and aggregate the epochs."""
        rng = (as_generator(seed) if self.seeding == "sequential"
               else None)
        return self.step_epochs(0, self.scenario.n_epochs, seed=seed,
                                rng=rng)

    def step_epochs(self, start: int, stop: int, seed: int = 0,
                    report: ScenarioReport | None = None,
                    rng=None) -> ScenarioReport:
        """Advance epochs ``[start, stop)`` against the live backend.

        The reentrant core of :meth:`run`: because the backend carries
        all fabric state and per-epoch seeding derives each epoch's
        traffic independently, N successive calls advancing one epoch
        each are bit-identical to one call advancing N — this is what
        lets the service pool time-slice a live session across
        scheduling rounds (and suspend it between any two epochs)
        without perturbing the stream. Events scripted for an epoch
        are applied before that epoch's traffic, exactly as in a
        monolithic run.

        ``report`` accumulates across calls (a fresh one is created
        when omitted). ``rng`` is required for — and only used by —
        ``"sequential"`` seeding, where the caller owns the threaded
        generator; thread the *same* generator through successive
        calls to match a monolithic sequential run.
        """
        if self.seeding not in SEEDING_MODES:
            raise ValueError(f"unknown seeding {self.seeding!r} "
                             f"(known: {SEEDING_MODES})")
        if not 0 <= start <= stop <= self.scenario.n_epochs:
            raise ValueError(
                f"epoch range [{start}, {stop}) outside "
                f"[0, {self.scenario.n_epochs}]")
        if self.seeding == "sequential" and rng is None:
            raise ValueError(
                "sequential seeding threads one generator through "
                "every epoch; pass the caller-owned rng")
        if report is None:
            report = ScenarioReport(scenario=self.scenario.name,
                                    backend=self.backend.name)
        for epoch in range(start, stop):
            for event in self.scenario.events_at(epoch):
                if self.backend.apply_event(event):
                    report.events_applied += 1
                else:
                    report.events_ignored += 1
            if self.seeding == "sequential":
                batch = self.scenario.flow_batch(epoch, rng)
            else:
                batch = self.scenario.flow_batch_at(epoch,
                                                    base_seed=seed)
            report.epochs.append(self.backend.step(batch))
        return report


def run_replicated(scenario: Scenario, make_backend_fn, repeats: int,
                   base_seed: int = 0, confidence: float = 0.95,
                   seeding: str = "per-epoch"
                   ) -> dict[str, dict[str, float]]:
    """Run a scenario ``repeats`` times at seeds ``base_seed + i`` and
    reduce each aggregate metric to a mean with a normal-approx CI.

    ``make_backend_fn(seed)`` must build a *fresh* backend per repeat
    (backends are stateful). Returns {metric: mean_ci dict}.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    runs = []
    for i in range(repeats):
        seed = base_seed + i
        backend = make_backend_fn(seed)
        runs.append(ScenarioRunner(scenario, backend, seeding=seeding)
                    .run(seed=seed).as_dict())
    numeric = [k for k, v in runs[0].items()
               if isinstance(v, (int, float)) and not isinstance(v, bool)]
    return {k: mean_ci([r[k] for r in runs], confidence)
            for k in numeric}
