"""Topology contenders for the bake-off arena.

Two electronic reference topologies joining the registry next to the
paper's fabrics (:mod:`repro.scenarios.backends`):

* :class:`FullMeshBackend` — FM16-style full mesh (SNIPPETS Snippet
  1): every ordered node pair owns ``links_per_pair`` dedicated link
  planes, so there is no admission contention at all — congestion
  only appears when one pair's own demand exceeds its private
  capacity. The throughput upper bound every switched fabric is
  measured against, paid for with N² provisioned links (which is
  exactly why it loses the iso-power frontier at scale).
* :class:`DragonflyBackend` — Slingshot-style dragonfly (SNIPPETS
  Snippet 3): nodes are partitioned into groups with all-to-all
  intra-group connectivity (one Rosetta-class switch per group) and
  ``global_links`` parallel global-link planes between every group
  pair. Inter-group traffic routes minimally (one global hop) or via
  a uniform-random Valiant intermediate group (two global hops,
  congestion-spreading) — the classic trade the arena makes visible
  under hotspot scenarios.

Both implement the full :class:`~repro.scenarios.backends.FabricBackend`
surface — ``step`` (scalar oracle + vectorized ``batch_step`` twin,
bit-identical), ``apply_event`` (``fail_plane`` / ``repair_plane``
reinterpreted per topology), JSON-stable ``snapshot`` / ``restore`` —
so the SIM003/SIM004/SIM006 gates, the Hypothesis round-trip property,
carry-mode sharding, and the service layer all cover them with zero
special cases.

Slowdown semantics: service stretch times path stretch — intra-group
and full-mesh flows count 1 hop, minimally-routed global flows 2,
Valiant detours 3; each divided by the flow's served fraction.
Valiant detours are reported as ``indirect`` (the dragonfly analogue
of AWGR indirection).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.simulator import sequential_sum
from repro.network.traffic import Flow, FlowBatch, as_flow_list
from repro.network.wss_simulator import WSSNetworkSimulator
from repro.photonics.power import TransceiverPower
from repro.scenarios.backends import EpochReport
from repro.scenarios.registry import register_backend
from repro.scenarios.scenario import ScenarioEvent

__all__ = ["DragonflyBackend", "FullMeshBackend", "ROUTING_MODES"]

#: Point-to-point copper/retimer energy per bit for the full mesh's
#: dedicated links — cheaper per bit than a switched traversal (no
#: crossbar), but provisioned N² times over.
FULL_MESH_PJ_PER_BIT = 5.0

#: Switched electrical traversal energy for intra-group (Rosetta-
#: class) dragonfly links.
DRAGONFLY_INTRA_PJ_PER_BIT = 10.0

#: Long-reach global dragonfly links (electrical-optical-electrical).
DRAGONFLY_GLOBAL_PJ_PER_BIT = 15.0

#: Fixed per-group switch power (crossbar + arbitration).
DRAGONFLY_SWITCH_W = 150.0

#: Global-routing policies accepted by :class:`DragonflyBackend`.
ROUTING_MODES = ("minimal", "valiant")


@register_backend(
    "full_mesh",
    description="FM16-style full mesh: N^2 dedicated link planes, "
                "zero admission contention (upper bound)")
@dataclass
class FullMeshBackend:
    """Full mesh of dedicated per-pair links (SNIPPETS Snippet 1).

    Every ordered (src, dst) pair owns ``links_per_pair`` parallel
    link planes of ``gbps_per_link`` each; a flow is only slowed by
    its *own pair's* aggregate demand. Events: "fail_plane" /
    "repair_plane" with the link-plane index as ``value`` — failing a
    plane removes one link from **every** pair (a rack-wide retimer
    bank dying), mirroring the AWGR plane-failure semantics.

    ``batch_step=True`` (the default) serves the epoch with one
    demand-matrix scatter + gather; ``batch_step=False`` keeps the
    per-flow reference loop for bit-identity tests.
    """

    n_nodes: int
    links_per_pair: int = 4
    gbps_per_link: float = 112.0
    batch_step: bool = True
    name: str = "full_mesh"

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("n_nodes must be >= 2")
        if self.links_per_pair < 1:
            raise ValueError("links_per_pair must be >= 1")
        if self.gbps_per_link <= 0:
            raise ValueError("gbps_per_link must be positive")
        self._epoch = 0
        self._failed_planes: list[int] = []

    @property
    def healthy_link_planes(self) -> int:
        """Link planes currently serving every pair."""
        return self.links_per_pair - len(self._failed_planes)

    def step(self, flows: FlowBatch | list[Flow]) -> EpochReport:
        if self.batch_step:
            report = self._step_batched(FlowBatch.from_flows(flows))
        else:
            report = self._step_scalar(as_flow_list(flows))
        report.extras["healthy_link_planes"] = self.healthy_link_planes
        self._epoch += 1
        return report

    def _step_scalar(self, flows: list[Flow]) -> EpochReport:
        """Reference per-flow loop (the vectorized path's oracle)."""
        report = EpochReport(epoch=self._epoch)
        capacity = self.healthy_link_planes * self.gbps_per_link
        demand = WSSNetworkSimulator.demand_matrix(flows, self.n_nodes)
        for flow in flows:
            report.offered += 1
            report.offered_gbps += flow.gbps
            # The pair's own demand includes this flow, so the divisor
            # is always positive; capacity hits 0.0 only with every
            # plane failed, which blocks the flow outright.
            share = float(min(
                1.0, capacity / demand[flow.src, flow.dst]))
            if share <= 0.0:
                report.blocked += 1
                continue
            report.carried += 1
            report.carried_gbps += flow.gbps * share
            report.slowdowns.append(1.0 / share)
        return report

    def _step_batched(self, batch: FlowBatch) -> EpochReport:
        """Vectorized epoch: demand-matrix scatter, one gather.

        Bit-identical to :meth:`_step_scalar`: the demand matrix
        accumulates in flow order (unbuffered ``np.add.at``), each
        share is the same elementwise IEEE min/division, and the Gbps
        aggregates fold strictly left to right.
        """
        report = EpochReport(epoch=self._epoch)
        capacity = self.healthy_link_planes * self.gbps_per_link
        demand = WSSNetworkSimulator.demand_matrix(batch, self.n_nodes)
        n = len(batch)
        report.offered = n
        report.offered_gbps = sequential_sum(0.0, batch.gbps)
        share = np.minimum(
            1.0, capacity / demand[batch.src, batch.dst])
        carried = share > 0.0
        report.carried = int(np.count_nonzero(carried))
        report.blocked = n - report.carried
        report.carried_gbps = sequential_sum(
            0.0, (batch.gbps * share)[carried])
        report.slowdowns = (1.0 / share[carried]).tolist()
        return report

    def apply_event(self, event: ScenarioEvent) -> bool:
        if event.action == "fail_plane":
            plane = int(event.value)
            if not 0 <= plane < self.links_per_pair:
                raise ValueError(
                    f"link plane {plane} out of range "
                    f"(0..{self.links_per_pair - 1})")
            if plane not in self._failed_planes:  # idempotent
                self._failed_planes.append(plane)
            return True
        if event.action == "repair_plane":
            plane = int(event.value)
            if plane in self._failed_planes:
                self._failed_planes.remove(plane)
            return True
        return False

    def power_w(self) -> float:
        """Provisioned fabric power (W) for frontier comparisons.

        N * (N - 1) ordered pairs times ``links_per_pair`` always-on
        dedicated links at the point-to-point electrical budget — the
        N² provisioning that makes the full mesh the iso-performance
        winner and the iso-power loser.
        """
        capacity = (self.n_nodes * (self.n_nodes - 1)
                    * self.links_per_pair * self.gbps_per_link)
        return TransceiverPower(
            pj_per_bit=FULL_MESH_PJ_PER_BIT).power_w(capacity)

    def snapshot(self) -> dict:
        return {"backend": self.name, "epoch": self._epoch,
                "failed_planes": sorted(
                    int(p) for p in self._failed_planes)}

    def restore(self, state: dict) -> None:
        if state.get("backend") != self.name:
            raise ValueError(
                f"snapshot is for backend {state.get('backend')!r}, "
                f"not {self.name!r}")
        self._epoch = int(state["epoch"])
        self._failed_planes = [int(p) for p in state["failed_planes"]]


@register_backend(
    "dragonfly",
    description="Slingshot-style dragonfly: grouped all-to-all + "
                "global links, minimal or Valiant routing",
    seed_param="rng_seed")
@dataclass
class DragonflyBackend:
    """Grouped dragonfly with global-link planes (SNIPPETS Snippet 3).

    Nodes are partitioned into ``n_groups`` contiguous groups of
    ``ceil(n_nodes / n_groups)``. Intra-group pairs ride the group
    switch's all-to-all at ``intra_gbps`` per ordered pair.
    Inter-group flows cross ``global_links`` parallel global-link
    planes of ``gbps_per_global_link`` between each ordered group
    pair, contended per epoch:

    * ``routing="minimal"`` — one global hop on the (src group, dst
      group) channel;
    * ``routing="valiant"`` — a uniform-random intermediate group per
      inter-group flow (router RNG, flow order); a draw landing on
      either endpoint group degenerates to the minimal path,
      otherwise the flow loads *two* global channels and its share is
      the tighter of the two.

    Events: "fail_plane" / "repair_plane" with the global-link plane
    index as ``value`` (intra-group capacity is unaffected — exactly
    the failure mode where Valiant's spreading starts to matter).

    ``batch_step=True`` (the default) routes and serves the whole
    epoch with masked gathers and a single broadcast-bound RNG draw;
    ``batch_step=False`` keeps the per-flow reference loop for
    bit-identity tests.
    """

    n_nodes: int
    n_groups: int = 4
    intra_gbps: float = 100.0
    global_links: int = 2
    gbps_per_global_link: float = 50.0
    routing: str = "minimal"
    rng_seed: int = 0
    batch_step: bool = True
    name: str = "dragonfly"

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("n_nodes must be >= 2")
        if not 1 <= self.n_groups <= self.n_nodes:
            raise ValueError(
                "n_groups must be in [1, n_nodes] "
                f"(got {self.n_groups} for {self.n_nodes} nodes)")
        if self.intra_gbps <= 0:
            raise ValueError("intra_gbps must be positive")
        if self.global_links < 1:
            raise ValueError("global_links must be >= 1")
        if self.gbps_per_global_link <= 0:
            raise ValueError("gbps_per_global_link must be positive")
        if self.routing not in ROUTING_MODES:
            raise ValueError(
                f"unknown routing {self.routing!r} "
                f"(known: {ROUTING_MODES})")
        group_size = -(-self.n_nodes // self.n_groups)
        self._node_group = (np.arange(self.n_nodes, dtype=np.int64)
                            // group_size)  # repro-check: derived
        self._rng = np.random.default_rng(self.rng_seed)
        self._epoch = 0
        self._failed_planes: list[int] = []

    @property
    def healthy_global_links(self) -> int:
        """Global-link planes currently up between every group pair."""
        return self.global_links - len(self._failed_planes)

    def step(self, flows: FlowBatch | list[Flow]) -> EpochReport:
        if self.batch_step:
            report = self._step_batched(FlowBatch.from_flows(flows))
        else:
            report = self._step_scalar(as_flow_list(flows))
        report.extras["healthy_global_links"] = self.healthy_global_links
        report.extras["routing"] = self.routing
        self._epoch += 1
        return report

    def _step_scalar(self, flows: list[Flow]) -> EpochReport:
        """Reference per-flow loop (the vectorized path's oracle).

        Channel loads accumulate hop-major — every flow's first hop,
        then every detour's second hop, flow order within each pass —
        matching the batched path's two ``np.add.at`` scatters, so
        both paths see bit-identical channel totals.
        """
        report = EpochReport(epoch=self._epoch)
        gcap = self.healthy_global_links * self.gbps_per_global_link
        groups = self._node_group
        # Route: consumes the router RNG once per inter-group flow, in
        # flow order (Valiant only). ``via`` is None for intra-group
        # flows, else the intermediate group (== dst group: minimal).
        routed: list[tuple[int, int, int | None]] = []
        for flow in flows:
            g_src = int(groups[flow.src])
            g_dst = int(groups[flow.dst])
            if g_src == g_dst:
                routed.append((g_src, g_dst, None))
                continue
            via = g_dst
            if self.routing == "valiant":
                draw = int(self._rng.integers(0, self.n_groups))
                if draw not in (g_src, g_dst):
                    via = draw
            routed.append((g_src, g_dst, via))
        intra = np.zeros((self.n_nodes, self.n_nodes))
        glob = np.zeros((self.n_groups, self.n_groups))
        for flow, (g_src, g_dst, via) in zip(flows, routed):
            if via is None:
                intra[flow.src, flow.dst] += flow.gbps
            else:
                glob[g_src, via] += flow.gbps
        for flow, (g_src, g_dst, via) in zip(flows, routed):
            if via is not None and via != g_dst:
                glob[via, g_dst] += flow.gbps
        for flow, (g_src, g_dst, via) in zip(flows, routed):
            report.offered += 1
            report.offered_gbps += flow.gbps
            if via is None:
                share = float(min(
                    1.0, self.intra_gbps / intra[flow.src, flow.dst]))
                hops = 1.0
            elif via == g_dst:
                share = float(min(1.0, gcap / glob[g_src, g_dst]))
                hops = 2.0
            else:
                share = float(min(1.0, gcap / glob[g_src, via],
                                  gcap / glob[via, g_dst]))
                hops = 3.0
            if share <= 0.0:
                report.blocked += 1
                continue
            report.carried += 1
            report.carried_gbps += flow.gbps * share
            if hops > 2.0:
                report.indirect += 1
            report.slowdowns.append(hops / share)
        return report

    def _step_batched(self, batch: FlowBatch) -> EpochReport:
        """Vectorized epoch: masked scatters, one RNG draw, gathers.

        Bit-identical to :meth:`_step_scalar`: the broadcast-bound
        ``integers`` call draws the same Lemire-bounded stream as the
        per-flow scalar draws (see :mod:`repro.network.traffic`),
        ``np.add.at`` accumulates each channel matrix in the oracle's
        hop-major flow order, shares are the same elementwise IEEE
        arithmetic, and the Gbps aggregates fold strictly left to
        right.
        """
        report = EpochReport(epoch=self._epoch)
        n = len(batch)
        gcap = self.healthy_global_links * self.gbps_per_global_link
        g_src = self._node_group[batch.src]
        g_dst = self._node_group[batch.dst]
        inter = g_src != g_dst
        via = g_dst.copy()
        if self.routing == "valiant":
            idx = np.flatnonzero(inter)
            if idx.size:
                draws = self._rng.integers(
                    0, np.full(idx.size, self.n_groups, dtype=np.int64))
                keep = (draws != g_src[idx]) & (draws != g_dst[idx])
                via[idx[keep]] = draws[keep]
        detour = inter & (via != g_dst)
        local = ~inter
        intra = np.zeros((self.n_nodes, self.n_nodes))
        glob = np.zeros((self.n_groups, self.n_groups))
        np.add.at(intra, (batch.src[local], batch.dst[local]),
                  batch.gbps[local])
        np.add.at(glob, (g_src[inter], via[inter]), batch.gbps[inter])
        np.add.at(glob, (via[detour], g_dst[detour]),
                  batch.gbps[detour])
        ratio = np.empty(n)
        ratio[local] = (self.intra_gbps
                        / intra[batch.src[local], batch.dst[local]])
        ratio[inter] = gcap / glob[g_src[inter], via[inter]]
        ratio[detour] = np.minimum(
            ratio[detour], gcap / glob[via[detour], g_dst[detour]])
        share = np.minimum(1.0, ratio)
        hops = np.where(local, 1.0, np.where(detour, 3.0, 2.0))
        carried = share > 0.0
        report.offered = n
        report.offered_gbps = sequential_sum(0.0, batch.gbps)
        report.carried = int(np.count_nonzero(carried))
        report.blocked = n - report.carried
        report.indirect = int(np.count_nonzero(carried & detour))
        report.carried_gbps = sequential_sum(
            0.0, (batch.gbps * share)[carried])
        report.slowdowns = (hops[carried] / share[carried]).tolist()
        return report

    def apply_event(self, event: ScenarioEvent) -> bool:
        if event.action == "fail_plane":
            plane = int(event.value)
            if not 0 <= plane < self.global_links:
                raise ValueError(
                    f"global-link plane {plane} out of range "
                    f"(0..{self.global_links - 1})")
            if plane not in self._failed_planes:  # idempotent
                self._failed_planes.append(plane)
            return True
        if event.action == "repair_plane":
            plane = int(event.value)
            if plane in self._failed_planes:
                self._failed_planes.remove(plane)
            return True
        return False

    def power_w(self) -> float:
        """Provisioned fabric power (W) for frontier comparisons.

        Intra-group all-to-all capacity at the switched electrical
        budget, global-link planes at the long-reach budget, plus one
        fixed switch per group. Scales with group size and group
        count, not N² — the dragonfly's whole reason to exist.
        """
        counts = np.bincount(self._node_group,
                             minlength=self.n_groups)
        intra_capacity = float(
            np.sum(counts * (counts - 1)) * self.intra_gbps)
        global_capacity = (self.n_groups * (self.n_groups - 1)
                           * self.global_links
                           * self.gbps_per_global_link)
        return (TransceiverPower(
                    pj_per_bit=DRAGONFLY_INTRA_PJ_PER_BIT,
                ).power_w(intra_capacity)
                + TransceiverPower(
                    pj_per_bit=DRAGONFLY_GLOBAL_PJ_PER_BIT,
                ).power_w(global_capacity)
                + DRAGONFLY_SWITCH_W * self.n_groups)

    def snapshot(self) -> dict:
        # The Valiant intermediate draw consumes the router RNG per
        # inter-group flow, so carry-mode resume needs the exact
        # generator state (a plain dict of ints, JSON-lossless).
        return {"backend": self.name, "epoch": self._epoch,
                "failed_planes": sorted(
                    int(p) for p in self._failed_planes),
                "rng": self._rng.bit_generator.state}

    def restore(self, state: dict) -> None:
        if state.get("backend") != self.name:
            raise ValueError(
                f"snapshot is for backend {state.get('backend')!r}, "
                f"not {self.name!r}")
        self._epoch = int(state["epoch"])
        self._failed_planes = [int(p) for p in state["failed_planes"]]
        self._rng.bit_generator.state = state["rng"]
