"""Time-varying scenario engine for the fabric simulators.

The static ``flow_batches`` the simulators were built around cannot
express how a disaggregated rack behaves under *production* load —
time-varying utilization (§II-A Cori profiles), failure transients, or
reconfiguration lag. This package turns composable workload
descriptions into dynamic, per-epoch flow batches and drives any
fabric through them:

* :class:`~repro.scenarios.episodes.Episode` — one phase of traffic
  (uniform, hotspot, cpu-mem, gpu-hbm, collective, cori-replay) with
  an intensity envelope (constant / ramp / diurnal / burst) and
  heavy-tailed flow-count samplers (fixed / Poisson / lognormal /
  Pareto);
* :class:`~repro.scenarios.scenario.Scenario` — episodes plus scripted
  :class:`~repro.scenarios.scenario.ScenarioEvent` interventions
  (plane failure/repair, reconfiguration lag) on a discrete epoch
  clock, JSON round-trippable for cache-stable sweep configs;
* :class:`~repro.scenarios.backends.FabricBackend` — the
  ``step(flows) -> EpochReport`` protocol adapting
  ``AWGRNetworkSimulator``, the WSS fabric, and the electronic
  comparator behind one interface, with the topology contenders
  (:mod:`repro.scenarios.topologies`: full mesh, dragonfly) joining
  through the :mod:`repro.scenarios.registry` plugin registry;
* :mod:`repro.scenarios.arena` — one-pass bake-off: one scenario's
  flow stream through every registered backend, with iso-performance
  / iso-power frontiers per scenario;
* :class:`~repro.scenarios.runner.ScenarioRunner` — plays a scenario
  against a backend, streaming per-epoch metrics (accepted / blocked
  Gbps, indirect-route fraction, p50/p99 per-flow slowdown) and
  aggregating them for :mod:`repro.analysis`;
* :mod:`repro.scenarios.library` — registered scenarios (diurnal Cori
  replay with a noon plane failure, reconfiguration-lag transients)
  and their :class:`~repro.experiments.spec.ExperimentSpec` bindings,
  so ``repro sweep`` and the result cache work unchanged.

Entry points: ``python -m repro scenario`` and
``examples/scenario_demo.py``.
"""

# Import order matters: the registry must exist before the backend
# modules self-register, and every backend module must have run before
# BACKENDS is derived below. Any entry path sees the full registry
# because importing a submodule always executes this package
# __init__ first.
from repro.scenarios.registry import (
    BackendInfo,
    available_backends,
    backend_info,
    make_backend,
    register_backend,
)
from repro.scenarios.backends import (
    AWGRBackend,
    ElectronicBackend,
    EpochReport,
    FabricBackend,
    WSSBackend,
)
from repro.scenarios.topologies import (
    DragonflyBackend,
    FullMeshBackend,
)
from repro.scenarios.arena import (
    ArenaReport,
    run_arena,
)
from repro.scenarios.episodes import (
    EPISODE_KINDS,
    Episode,
    envelope_value,
    sample_count,
)
from repro.scenarios.library import (
    SCENARIOS,
    arena_metrics,
    arena_task,
    demo_scenario,
    diurnal_cori_scenario,
    get_scenario,
    reconfig_lag_scenario,
    scenario_metrics,
    scenario_task,
    week_cori_scenario,
)
from repro.scenarios.runner import (
    ScenarioReport,
    ScenarioRunner,
    run_replicated,
)
from repro.scenarios.scenario import (
    SEEDING_MODES,
    Scenario,
    ScenarioEvent,
    derive_epoch_seed,
)
from repro.scenarios.sharding import (
    BOUNDARY_MODES,
    ChunkKey,
    ChunkStatus,
    ShardedScenarioResult,
    ShardedScenarioRunner,
    chunk_backend_seed,
    chunk_ranges,
    execute_chunk,
)

#: Names of every backend registered at import time, sorted. Kept as
#: a tuple for parametrized tests; :func:`available_backends` is the
#: live view (it also sees backends registered later).
BACKENDS = available_backends()

__all__ = [
    "ArenaReport",
    "AWGRBackend",
    "BACKENDS",
    "BackendInfo",
    "BOUNDARY_MODES",
    "ChunkKey",
    "ChunkStatus",
    "DragonflyBackend",
    "ElectronicBackend",
    "EPISODE_KINDS",
    "Episode",
    "EpochReport",
    "FabricBackend",
    "FullMeshBackend",
    "SCENARIOS",
    "SEEDING_MODES",
    "Scenario",
    "ScenarioEvent",
    "ScenarioReport",
    "ScenarioRunner",
    "ShardedScenarioResult",
    "ShardedScenarioRunner",
    "WSSBackend",
    "arena_metrics",
    "arena_task",
    "available_backends",
    "backend_info",
    "chunk_backend_seed",
    "chunk_ranges",
    "demo_scenario",
    "derive_epoch_seed",
    "diurnal_cori_scenario",
    "envelope_value",
    "execute_chunk",
    "get_scenario",
    "make_backend",
    "reconfig_lag_scenario",
    "register_backend",
    "run_arena",
    "run_replicated",
    "sample_count",
    "scenario_metrics",
    "scenario_task",
    "week_cori_scenario",
]
