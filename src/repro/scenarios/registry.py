"""Backend plugin registry: one source of truth for fabric names.

Every fabric backend registers itself with the
:func:`register_backend` decorator; everything that used to
string-match backend names — CLI ``--backend`` choices, scenario
sweeps, service submit validation, the Hypothesis snapshot
round-trip property — derives its name list from
:func:`available_backends` instead. Adding a topology is therefore
one decorated class: it appears in the CLI, the arena, the sweeps,
and the conformance gates with no other wiring.

The registry records per-backend *capabilities* so callers can ask
what a contender supports instead of special-casing names:

* ``batch_step`` — has a vectorized epoch path twinned with a
  per-flow scalar oracle (the SIM006 discipline);
* ``fail_plane`` — honours ``fail_plane`` / ``repair_plane``
  scripted events (backends without it return ``False`` from
  ``apply_event`` and the runner counts the event as ignored);
* ``power`` — models provisioned fabric power via ``power_w()`` so
  the arena can place it on iso-performance / iso-power frontiers.

``defaults`` carries per-backend default config applied by
:func:`make_backend` before caller overrides, and ``seed_param``
names the constructor keyword (if any) that receives the caller's
``seed`` — the registry's replacement for the old if/elif chain
that knew ``awgr`` wanted ``rng_seed``.

This module deliberately imports nothing from the backend modules:
``backends`` and ``topologies`` import *it* and self-register, and
the package ``__init__`` imports them in order so any entry path
(``import repro.scenarios.registry`` included — the package
``__init__`` always runs first) sees the full registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, TypeVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scenarios.backends import FabricBackend

_ClassT = TypeVar("_ClassT", bound=type)

#: name -> BackendInfo, in registration order.
_REGISTRY: dict[str, "BackendInfo"] = {}


@dataclass(frozen=True)
class BackendInfo:
    """Everything the rest of the system knows about one backend."""

    name: str
    cls: type
    description: str
    #: Vectorized epoch path with a scalar twin oracle (SIM006).
    batch_step: bool = True
    #: Honours fail_plane / repair_plane scripted events.
    fail_plane: bool = True
    #: Exposes ``power_w()`` for iso-perf / iso-power frontiers.
    power: bool = True
    #: Constructor keyword that receives ``make_backend``'s seed, or
    #: None for backends that are deterministic given their inputs.
    seed_param: str | None = None
    #: Default config merged under caller overrides.
    defaults: dict = field(default_factory=dict)

    def capabilities(self) -> dict:
        """JSON-stable capability flags for tables and ``/backends``."""
        return {"batch_step": self.batch_step,
                "fail_plane": self.fail_plane,
                "power": self.power}


def register_backend(name: str, *, description: str = "",
                     batch_step: bool = True, fail_plane: bool = True,
                     power: bool = True, seed_param: str | None = None,
                     defaults: dict | None = None,
                     ) -> Callable[[_ClassT], _ClassT]:
    """Class decorator adding a backend to the global registry.

    The decorated class must implement the full
    :class:`~repro.scenarios.backends.FabricBackend` surface
    (``step`` / ``apply_event`` / ``snapshot`` / ``restore`` and a
    ``name`` attribute) and take ``n_nodes`` as a keyword — that is
    the entire contract; registration is what wires it into the CLI,
    sweeps, the arena, and the conformance test gates.
    """

    def decorate(cls: _ClassT) -> _ClassT:
        if name in _REGISTRY:
            raise ValueError(
                f"backend {name!r} already registered "
                f"(by {_REGISTRY[name].cls.__name__})")
        _REGISTRY[name] = BackendInfo(
            name=name, cls=cls, description=description,
            batch_step=batch_step, fail_plane=fail_plane, power=power,
            seed_param=seed_param, defaults=dict(defaults or {}))
        return cls

    return decorate


def available_backends() -> tuple[str, ...]:
    """Sorted names of every registered backend (the live view —
    unlike the frozen ``BACKENDS`` re-export, this sees backends
    registered after :mod:`repro.scenarios` was imported)."""
    return tuple(sorted(_REGISTRY))


def backend_info(name: str) -> BackendInfo:
    """Registry record for ``name``; KeyError lists known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r} "
            f"(known: {sorted(available_backends())})") from None


def make_backend(name: str, n_nodes: int, seed: int = 0,
                 **params) -> "FabricBackend":
    """Construct a registered backend by name with keyword overrides.

    Registry defaults apply first, then ``seed`` (routed to the
    backend's declared ``seed_param``, ignored by deterministic
    backends), then caller ``params`` — so an explicit RNG-seed
    override in ``params`` beats the positional ``seed``.
    """
    info = backend_info(name)
    kwargs = dict(info.defaults)
    if info.seed_param is not None:
        kwargs[info.seed_param] = seed
    kwargs.update(params)
    return info.cls(n_nodes=n_nodes, **kwargs)
