"""Sharded, checkpointed scenario execution for week-scale replays.

:class:`ShardedScenarioRunner` splits a scenario's epoch stream into
fixed-size *chunks* (e.g. one day of 1-minute epochs), runs each chunk
on a fresh backend with counter-based per-epoch seeds, and checkpoints
every chunk's :class:`~repro.scenarios.backends.EpochReport` list
through a content-addressed result cache. Because per-epoch seeding
(:func:`~repro.scenarios.scenario.derive_epoch_seed`) makes every
chunk's traffic independent of every other chunk's draws, the chunk
decomposition is exact: any worker can compute any chunk, in any
order, bit-identically.

That buys three things at once:

* **sharding** — N processes (or machines) pointed at the same cache
  directory each own the ``index % shards == shard_index`` slice of
  the chunk list and converge on the full replay without any
  coordination service;
* **resume** — an interrupted week-scale replay restarts from the
  last completed chunk: cached chunks load instantly, only the
  missing tail is recomputed;
* **identical aggregates** — a run is fully determined by (scenario,
  backend, chunk size, base seed), never by how many shards computed
  it or how often it was interrupted.

Chunk-boundary semantics come in two modes (``boundary=``):

* ``"reset"`` — each chunk starts a *fresh* backend, first replaying
  the events scripted before the chunk (so persistent state — failed
  planes, reconfiguration settings — carries over), then stepping its
  epoch range. In-flight flows admitted in the previous chunk do not
  survive the boundary; this is the checkpoint granularity, exactly
  like restarting a simulation from a checkpoint file, and it is why
  ``chunk_epochs`` is part of the run's cache identity. Chunks are
  mutually independent, so any shard can compute any chunk in any
  order — the coordination-free story above.
* ``"carry"`` — each chunk checkpoint also stores the end-of-chunk
  backend ``snapshot()``, and chunk ``k`` *restores* chunk ``k-1``'s
  snapshot instead of replaying pre-chunk events: in-flight flows,
  wavelength occupancy, and RNG state all cross the boundary, so the
  merged aggregates are **bit-identical to a monolithic**
  :class:`~repro.scenarios.runner.ScenarioRunner` run at any chunk
  size — and the boundary costs O(state) restore instead of the
  reset mode's O(events x chunk index) replay. The price is
  sequential dependence: chunks pipeline in index order through the
  shared cache (a shard can only compute a chunk once its
  predecessor's checkpoint exists), so carry mode trades reset
  mode's any-chunk-anywhere sharding for exactness. Resume still
  works chunk-by-chunk: an interrupted run picks up from the last
  checkpointed snapshot.

In both modes a single-chunk run is bit-identical to a monolithic
per-epoch-seeded :class:`~repro.scenarios.runner.ScenarioRunner` run
whose backend was seeded with :func:`chunk_backend_seed`.

This module deliberately never imports ``repro.experiments`` (the
dependency stays one-directional): the checkpoint store is duck-typed
to :class:`~repro.experiments.cache.ResultCache` — anything with
``load(key) -> dict | None`` and ``store(key, metrics)`` that reads
the key's ``spec_name`` / ``version`` / ``config`` / ``seed`` /
``config_hash`` attributes works.
"""

from __future__ import annotations

import hashlib
import json
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

from repro.scenarios.backends import EpochReport, make_backend
from repro.scenarios.runner import ScenarioReport
from repro.scenarios.scenario import Scenario, derive_epoch_seed

#: Bump when chunk-execution semantics change: invalidates every
#: checkpointed chunk (the chunk analog of a spec's ``version``).
#: v2: payloads carry the boundary mode (plus, in carry mode, the
#: end-of-chunk backend snapshot) and ``events_replayed`` counts only
#: events the backend actually applied.
CHUNK_FORMAT = 2

#: Chunk-boundary modes :class:`ShardedScenarioRunner` accepts.
BOUNDARY_MODES = ("reset", "carry")


def chunk_ranges(n_epochs: int,
                 chunk_epochs: int) -> list[tuple[int, int]]:
    """Split ``[0, n_epochs)`` into ``chunk_epochs``-sized ranges
    (the last one ragged)."""
    if n_epochs < 1:
        raise ValueError("n_epochs must be >= 1")
    if chunk_epochs < 1:
        raise ValueError("chunk_epochs must be >= 1")
    return [(start, min(start + chunk_epochs, n_epochs))
            for start in range(0, n_epochs, chunk_epochs)]


def chunk_backend_seed(scenario: Scenario | str, start: int,
                       base_seed: int = 0) -> int:
    """RNG seed for the fresh backend a chunk starting at ``start``
    constructs — a pure function of the chunk's identity, so any
    shard computing the chunk agrees.

    The chunk at epoch 0 uses ``base_seed`` directly: a single-chunk
    replay is then bit-identical to the monolithic per-epoch-seeded
    :class:`~repro.scenarios.runner.ScenarioRunner` run with a
    ``seed=base_seed`` backend (what ``repro scenario`` without
    ``--shards`` builds). Later chunks derive theirs counter-style.
    """
    if start == 0:
        return base_seed
    return derive_epoch_seed(scenario, start, base_seed,
                             stream="backend")


def _stable_chunk_hash(config: dict) -> str:
    """Deterministic hex digest of a chunk config (sorted-key JSON;
    mirrors ``repro.experiments.spec.stable_hash`` without importing
    it, preserving the one-directional dependency rule)."""
    payload = json.dumps(config, sort_keys=True,
                         separators=(",", ":"), default=list)
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class ChunkKey:
    """Checkpoint-cache identity of one chunk (duck-types the
    ``SweepTask`` surface :class:`~repro.experiments.cache.ResultCache`
    reads: ``spec_name`` / ``version`` / ``config`` / ``seed`` /
    ``config_hash``)."""

    spec_name: str
    version: int
    config: dict
    seed: int

    @property
    def config_hash(self) -> str:
        return _stable_chunk_hash({"spec": self.spec_name,
                                   "version": self.version,
                                   "config": self.config})


def execute_chunk(scenario_config: dict, backend: str,
                  backend_params: dict, start: int, stop: int,
                  base_seed: int, boundary: str = "reset",
                  snapshot: dict | None = None) -> dict:
    """Run epochs ``[start, stop)``; return the JSON-stable checkpoint
    payload (module-level so it pickles into worker processes).

    In ``"reset"`` mode events scripted before ``start`` are replayed
    on a fresh backend first, so persistent backend state (failed
    planes, reconfiguration lag) matches the full run; only events the
    backend actually *applies* count as replayed, and only events
    firing inside the chunk count toward the applied/ignored totals,
    so chunk sums equal the monolithic run's.

    In ``"carry"`` mode the previous chunk's end-of-chunk ``snapshot``
    is restored instead (nothing is replayed — in-flight flows,
    occupancy, and RNG state arrive via the snapshot) and the payload
    gains a ``"snapshot"`` key holding this chunk's own end state for
    the next chunk to restore.
    """
    if boundary not in BOUNDARY_MODES:
        raise ValueError(f"unknown boundary {boundary!r} "
                         f"(known: {BOUNDARY_MODES})")
    if boundary == "carry" and start > 0 and snapshot is None:
        raise ValueError(
            f"carry-mode chunk starting at epoch {start} needs the "
            "previous chunk's snapshot")
    t0 = time.perf_counter()
    scenario = Scenario.from_config(scenario_config)
    fabric = make_backend(
        backend, scenario.n_nodes,
        seed=chunk_backend_seed(scenario, start, base_seed),
        **backend_params)
    replayed = 0
    if boundary == "carry":
        if snapshot is not None:
            try:
                fabric.restore(snapshot)
            except ValueError as exc:
                raise ValueError(
                    f"scenario {scenario.name!r} epochs "
                    f"[{start}, {stop}): cannot restore the carried "
                    f"snapshot: {exc}") from exc
    else:
        for epoch in range(start):
            for event in scenario.events_at(epoch):
                if fabric.apply_event(event):
                    replayed += 1
    applied = ignored = 0
    reports: list[EpochReport] = []
    for epoch in range(start, stop):
        for event in scenario.events_at(epoch):
            if fabric.apply_event(event):
                applied += 1
            else:
                ignored += 1
        report = fabric.step(scenario.flow_batch_at(epoch, base_seed))
        report.epoch = epoch  # absolute, not chunk-relative
        reports.append(report)
    end_state = fabric.snapshot() if boundary == "carry" else None
    payload = {"start": start, "stop": stop, "boundary": boundary,
               "events_applied": applied, "events_ignored": ignored,
               "events_replayed": replayed,
               "duration_s": time.perf_counter() - t0,
               "epochs": [r.to_dict() for r in reports]}
    if end_state is not None:
        payload["snapshot"] = end_state
    return payload


@dataclass(frozen=True)
class ChunkStatus:
    """How one chunk was satisfied in a sharded run."""

    index: int
    start: int
    stop: int
    #: "cached" (loaded from a checkpoint), "computed" (ran here),
    #: "pending" (owned by another shard and not yet checkpointed —
    #: or, in carry mode, waiting on a predecessor chunk's snapshot),
    #: or "failed" (raised here; ``error`` holds the message).
    state: str
    duration_s: float = 0.0
    error: str | None = None


@dataclass
class ShardedScenarioResult:
    """Everything one sharded run (or one shard of it) produced."""

    scenario: str
    backend: str
    chunk_epochs: int
    shards: int
    shard_index: int | None
    boundary: str = "reset"
    chunks: list[ChunkStatus] = field(default_factory=list)
    payloads: dict[int, dict] = field(default_factory=dict)
    wall_s: float = 0.0

    @property
    def n_cached(self) -> int:
        return sum(1 for c in self.chunks if c.state == "cached")

    @property
    def n_computed(self) -> int:
        return sum(1 for c in self.chunks if c.state == "computed")

    @property
    def n_pending(self) -> int:
        return sum(1 for c in self.chunks if c.state == "pending")

    @property
    def n_failed(self) -> int:
        return sum(1 for c in self.chunks if c.state == "failed")

    @property
    def complete(self) -> bool:
        """Does every chunk have a payload (cached or computed)?"""
        return len(self.payloads) == len(self.chunks)

    def report(self) -> ScenarioReport:
        """Merge all chunk payloads into one :class:`ScenarioReport`.

        Raises when chunks are pending or failed — aggregate over a
        partial replay would silently misreport the horizon.
        """
        if not self.complete:
            missing = [c.index for c in self.chunks
                       if c.index not in self.payloads]
            raise RuntimeError(
                f"sharded run incomplete: chunks {missing} pending or "
                "failed (run the owning shards, or rerun with "
                "resume=True once their checkpoints exist)")
        merged = ScenarioReport(scenario=self.scenario,
                                backend=self.backend)
        for index in sorted(self.payloads):
            payload = self.payloads[index]
            merged.epochs.extend(EpochReport.from_dict(e)
                                 for e in payload["epochs"])
            merged.events_applied += int(payload["events_applied"])
            merged.events_ignored += int(payload["events_ignored"])
        return merged

    def rows(self) -> list[dict]:
        """Per-chunk status table (the shard progress view).

        ``events_replayed`` surfaces the reset-mode boundary cost —
        how many pre-chunk events each chunk re-applied to rebuild
        persistent state (always 0 in carry mode, where state arrives
        via the restored snapshot; blank for chunks without a payload).
        """
        return [{"chunk": c.index, "epochs": f"[{c.start}, {c.stop})",
                 "state": c.state, "duration_s": c.duration_s,
                 "events_replayed": self.payloads.get(
                     c.index, {}).get("events_replayed", "")}
                for c in self.chunks]

    def summary(self) -> str:
        """One-line human summary of the sharded run."""
        where = ("all shards" if self.shard_index is None
                 else f"shard {self.shard_index}/{self.shards}")
        failed = f", {self.n_failed} FAILED" if self.n_failed else ""
        return (f"{self.scenario} on {self.backend} "
                f"[{self.boundary} boundaries]: "
                f"{len(self.chunks)} chunk(s) of {self.chunk_epochs} "
                f"epoch(s) ({self.n_cached} cached, "
                f"{self.n_computed} computed, {self.n_pending} pending"
                f"{failed}) as {where} in {self.wall_s:.2f}s")


@dataclass
class ShardedScenarioRunner:
    """Chunked, shardable, resumable scenario execution.

    Parameters
    ----------
    scenario:
        The scenario to replay.
    backend:
        Backend name (any entry in
        :func:`~repro.scenarios.registry.available_backends`).
    backend_params:
        Keyword overrides for the backend constructor (must be
        JSON-stable: they are part of every chunk's cache identity).
    chunk_epochs:
        Checkpoint granularity. 1440 = one day of 1-minute epochs.
        Part of the run's identity: runs with different chunk sizes
        have different (both valid) chunk-boundary semantics.
    boundary:
        Chunk-boundary mode (:data:`BOUNDARY_MODES`). ``"reset"``
        (default) starts every chunk on a fresh backend with pre-chunk
        events replayed — coordination-free, but in-flight flows are
        dropped at boundaries. ``"carry"`` restores the previous
        chunk's checkpointed backend snapshot, making the merged run
        bit-identical to a monolithic one at the cost of sequential
        chunk dependence (see the module docstring).
    shards, shard_index:
        ``shard_index=None`` (default) drives every chunk from this
        process. An integer runs only the ``index % shards ==
        shard_index`` slice, leaving the rest ``pending`` — launch one
        process per index against a shared ``cache`` and any of them
        (or a final ``shard_index=None`` pass with ``resume=True``)
        can assemble the full report from the checkpoints. In carry
        mode shards *pipeline*: a shard computes its chunks in index
        order as predecessors' checkpoints appear in the shared cache,
        so shard processes alternate (or simply re-run with
        ``resume=True``) until the replay converges instead of each
        owning an arbitrary slice up front.
    base_seed:
        Stirred into every per-epoch episode seed and every chunk's
        backend seed.
    cache:
        Checkpoint store (duck-typed
        :class:`~repro.experiments.cache.ResultCache`); ``None``
        disables checkpointing (and therefore resume).
    workers:
        Process-pool width for this process's chunks; 1 runs inline.
        Reset mode only — carry-mode chunks are sequentially
        dependent and always run inline, in index order.
    """

    scenario: Scenario
    backend: str = "awgr"
    backend_params: dict = field(default_factory=dict)
    chunk_epochs: int = 1440
    boundary: str = "reset"
    shards: int = 1
    shard_index: int | None = None
    base_seed: int = 0
    cache: object | None = None
    workers: int = 1

    def __post_init__(self) -> None:
        if self.boundary not in BOUNDARY_MODES:
            raise ValueError(f"unknown boundary {self.boundary!r} "
                             f"(known: {BOUNDARY_MODES})")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if (self.shard_index is not None
                and not 0 <= self.shard_index < self.shards):
            raise ValueError("shard_index must be in [0, shards)")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    # -- chunk identity --------------------------------------------------------

    def ranges(self) -> list[tuple[int, int]]:
        """The run's chunk decomposition (shard-independent)."""
        return chunk_ranges(self.scenario.n_epochs, self.chunk_epochs)

    def chunk_key(self, start: int, stop: int) -> ChunkKey:
        """Checkpoint identity of one chunk. Deliberately excludes
        ``shards``/``shard_index`` — any shard may reuse any other
        shard's checkpoint. Includes ``boundary``: reset and carry
        chunks have different semantics (and carry payloads hold
        snapshots), so the modes never reuse each other's entries."""
        return ChunkKey(
            spec_name=f"scenario-chunk-{self.scenario.name}",
            version=CHUNK_FORMAT,
            config={"scenario": self.scenario.to_config(),
                    "backend": self.backend,
                    "params": dict(self.backend_params),
                    "start": start, "stop": stop,
                    "base_seed": self.base_seed,
                    "boundary": self.boundary,
                    "seeding": "per-epoch"},
            seed=chunk_backend_seed(self.scenario, start,
                                    self.base_seed))

    def _owns(self, index: int) -> bool:
        return (self.shard_index is None
                or index % self.shards == self.shard_index)

    # -- execution -------------------------------------------------------------

    def run(self, resume: bool = True) -> ShardedScenarioResult:
        """Play (or finish playing) the scenario's chunk list.

        With ``resume`` (default) chunks already checkpointed in the
        cache are loaded instead of recomputed — the interrupted-run /
        multi-shard convergence path. ``resume=False`` recomputes this
        shard's chunks and refreshes their checkpoints in place.

        Carry mode runs chunks inline in index order (each needs its
        predecessor's snapshot); chunks whose predecessor state is not
        available — owned by another shard and not yet checkpointed —
        are left ``pending`` for a later pass to pick up.
        """
        if self.boundary == "carry":
            return self._run_carry(resume)
        t0 = time.perf_counter()
        ranges = self.ranges()
        result = ShardedScenarioResult(
            scenario=self.scenario.name, backend=self.backend,
            chunk_epochs=self.chunk_epochs, shards=self.shards,
            shard_index=self.shard_index, boundary=self.boundary)
        statuses: dict[int, ChunkStatus] = {}
        todo: list[int] = []
        for index, (start, stop) in enumerate(ranges):
            hit = None
            if self.cache is not None and resume:
                hit = self.cache.load(self.chunk_key(start, stop))
            if hit is not None:
                result.payloads[index] = hit
                statuses[index] = ChunkStatus(index, start, stop,
                                              "cached")
            elif self._owns(index):
                todo.append(index)
            else:
                statuses[index] = ChunkStatus(index, start, stop,
                                              "pending")

        for index, payload, error in self._execute(ranges, todo):
            start, stop = ranges[index]
            if error is not None:
                statuses[index] = ChunkStatus(index, start, stop,
                                              "failed", error=error)
                continue
            if self.cache is not None:
                self.cache.store(self.chunk_key(start, stop), payload)
            result.payloads[index] = payload
            statuses[index] = ChunkStatus(
                index, start, stop, "computed",
                duration_s=float(payload.get("duration_s", 0.0)))

        result.chunks = [statuses[i] for i in sorted(statuses)]
        result.wall_s = time.perf_counter() - t0
        return result

    def _run_carry(self, resume: bool) -> ShardedScenarioResult:
        """Carry-mode execution: chunks pipeline in index order, each
        restoring its predecessor's checkpointed snapshot.

        The carried state forms a chain, so this never fans out over a
        process pool: chunk ``k`` cannot start before chunk ``k-1``
        finished. Sharding still composes — a shard computes its owned
        chunks whenever the predecessor's checkpoint is already in the
        shared cache and leaves the rest ``pending``; alternating
        shard passes (or one ``shard_index=None`` resume) converge on
        the full replay. A failed or unavailable chunk invalidates the
        carried snapshot, so every later chunk without its own
        checkpoint stays pending rather than continuing from wrong
        state.
        """
        t0 = time.perf_counter()
        result = ShardedScenarioResult(
            scenario=self.scenario.name, backend=self.backend,
            chunk_epochs=self.chunk_epochs, shards=self.shards,
            shard_index=self.shard_index, boundary=self.boundary)
        scenario_config = self.scenario.to_config()
        carried: dict | None = None
        for index, (start, stop) in enumerate(self.ranges()):
            hit = None
            if self.cache is not None and resume:
                hit = self.cache.load(self.chunk_key(start, stop))
            if hit is not None:
                result.payloads[index] = hit
                result.chunks.append(
                    ChunkStatus(index, start, stop, "cached"))
                carried = hit.get("snapshot")
                continue
            if not self._owns(index) or (index > 0 and carried is None):
                result.chunks.append(
                    ChunkStatus(index, start, stop, "pending"))
                carried = None
                continue
            try:
                payload = execute_chunk(
                    scenario_config, self.backend,
                    dict(self.backend_params), start, stop,
                    self.base_seed, boundary="carry",
                    snapshot=carried)
            except Exception as exc:
                result.chunks.append(ChunkStatus(
                    index, start, stop, "failed",
                    error=f"chunk {index} of scenario "
                          f"{self.scenario.name!r}: "
                          f"{type(exc).__name__}: {exc}"))
                carried = None
                continue
            if self.cache is not None:
                self.cache.store(self.chunk_key(start, stop), payload)
            result.payloads[index] = payload
            result.chunks.append(ChunkStatus(
                index, start, stop, "computed",
                duration_s=float(payload.get("duration_s", 0.0))))
            carried = payload["snapshot"]
        result.wall_s = time.perf_counter() - t0
        return result

    def _execute(self, ranges, todo: list[int]):
        """Yield ``(index, payload, error)`` per owned chunk, in
        completion order under a pool, so the caller checkpoints each
        chunk the moment it exists and an interrupt (or a chunk
        failure) never loses finished chunks."""
        scenario_config = self.scenario.to_config()

        def args_for(index: int):
            start, stop = ranges[index]
            return (scenario_config, self.backend,
                    dict(self.backend_params), start, stop,
                    self.base_seed)

        if self.workers == 1 or len(todo) <= 1:
            for index in todo:
                try:
                    payload = execute_chunk(*args_for(index))
                except Exception as exc:
                    yield index, None, (
                        f"chunk {index} of scenario "
                        f"{self.scenario.name!r}: "
                        f"{type(exc).__name__}: {exc}")
                    continue
                yield index, payload, None
            return
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {pool.submit(execute_chunk, *args_for(i)): i
                       for i in todo}
            for future in as_completed(futures):
                index = futures[future]
                try:
                    payload = future.result()
                except Exception as exc:
                    yield index, None, (
                        f"chunk {index} of scenario "
                        f"{self.scenario.name!r}: "
                        f"{type(exc).__name__}: {exc}")
                    continue
                yield index, payload, None
