"""Registered scenarios and their sweep-engine task functions.

Scenario *builders* compose the episode/event vocabulary into the
dynamic workloads the ROADMAP asks for; the :data:`SCENARIOS` registry
names the canonical instances the CLI serves. :func:`scenario_task` /
:func:`scenario_metrics` are the module-level factory pair the sweep
engine fans out over worker processes — the
:class:`~repro.experiments.spec.ExperimentSpec` grids built on them
are registered in :mod:`repro.experiments.library` (which imports this
module; this package deliberately never imports ``repro.experiments``
so the dependency stays one-directional).
"""

from __future__ import annotations

from repro.scenarios.arena import run_arena
from repro.scenarios.episodes import Episode
from repro.scenarios.registry import make_backend
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.scenario import Scenario, ScenarioEvent

#: Flat config keys forwarded to the backend constructor by
#: :func:`scenario_task` (so sweep grids get clean columns).
BACKEND_PARAM_KEYS = ("planes", "flows_per_wavelength",
                      "state_update_period", "duration_slots",
                      "n_switches", "wavelengths_per_port",
                      "reconfig_period", "slot_time_s",
                      "technology", "lanes_per_endpoint",
                      "links_per_pair", "gbps_per_link",
                      "n_groups", "intra_gbps", "global_links",
                      "gbps_per_global_link", "routing")


# -- scenario builders ---------------------------------------------------------

def demo_scenario(n_nodes: int = 8, n_epochs: int = 6) -> Scenario:
    """Small, fast scenario for smoke tests and the CLI ``--demo``."""
    return Scenario(
        name="demo",
        n_nodes=n_nodes,
        n_epochs=n_epochs,
        description="uniform background + a bursty hotspot + a "
                    "mid-run plane failure",
        episodes=(
            Episode(kind="uniform", flows={"dist": "poisson", "mean": 6},
                    gbps=25.0),
            Episode(kind="hotspot", start=1,
                    flows={"dist": "pareto", "minimum": 2, "alpha": 1.5},
                    gbps=25.0,
                    envelope={"kind": "burst", "period": 3, "duty": 0.4},
                    params={"hotspot": 0}),
        ),
        events=(
            # Epoch 1, not midway: the CI smoke step truncates the
            # demo to 3 epochs and must still exercise apply_event.
            ScenarioEvent(epoch=1, action="fail_plane", value=0),
        ))


def diurnal_cori_scenario(n_nodes: int = 16, n_epochs: int = 24,
                          failure_epoch: int = 12,
                          repair_epoch: int = 20) -> Scenario:
    """Diurnal Cori replay with a mid-run AWGR plane failure.

    One epoch is one hour: CPU->memory demand replays the §II-A Cori
    memory-bandwidth profile against a *pooled* memory subset (the
    disaggregation premise — several CPUs share each memory module)
    under a day-shaped envelope; diurnal uniform chatter rides
    underneath; a checkpoint burst converges on one I/O node late
    morning and a GPU collective occupies the afternoon. A fabric
    plane dies at ``failure_epoch`` (noon — peak load, mid-checkpoint,
    the worst case) and is repaired at ``repair_epoch``.
    """
    cpu_nodes = list(range(n_nodes // 2))
    mem_nodes = list(range(n_nodes // 2, n_nodes - n_nodes // 4))
    gpu_nodes = cpu_nodes[:4]
    io_node = n_nodes - 1
    return Scenario(
        name="diurnal_cori",
        n_nodes=n_nodes,
        n_epochs=n_epochs,
        description="diurnal Cori memory-bandwidth replay + checkpoint "
                    "and collective bursts, with a plane failure at "
                    "noon",
        episodes=(
            Episode(kind="cori-replay",
                    envelope={"kind": "diurnal", "period": 24,
                              "low": 0.15, "high": 1.0},
                    params={"nodes": cpu_nodes,
                            "memory_nodes": mem_nodes,
                            "resource": "memory_bandwidth",
                            "peak_gbps": 1096.0}),
            Episode(kind="uniform",
                    flows={"dist": "poisson", "mean": 10},
                    gbps=25.0,
                    envelope={"kind": "diurnal", "period": 24,
                              "low": 0.3, "high": 1.0}),
            Episode(kind="hotspot", start=10, duration=4,
                    flows={"dist": "pareto", "minimum": 18,
                           "alpha": 1.6},
                    gbps=25.0, params={"hotspot": io_node}),
            Episode(kind="collective", start=13, duration=6,
                    gbps=75.0,
                    params={"nodes": gpu_nodes}),
        ),
        events=(
            ScenarioEvent(epoch=failure_epoch, action="fail_plane",
                          value=0),
            ScenarioEvent(epoch=repair_epoch, action="repair_plane",
                          value=0),
        ))


def reconfig_lag_scenario(n_nodes: int = 12,
                          n_epochs: int = 12) -> Scenario:
    """Reconfiguration-lag transient for the WSS backend.

    Steady uniform load plus a hotspot that switches on mid-run; at the
    same epoch the centralized scheduler's reconfiguration slows to a
    50 ms lag, modeling a controller under stress — the §IV-B overhead
    source the paper charges against case (B). Sweeping the backend's
    ``reconfig_period`` over this scenario trades per-slot downtime
    (frequent reconfiguration) against stale configurations (rare
    reconfiguration) around the demand shift.
    """
    return Scenario(
        name="reconfig_lag",
        n_nodes=n_nodes,
        n_epochs=n_epochs,
        description="demand shift meets a slowed central scheduler",
        episodes=(
            Episode(kind="uniform",
                    flows={"dist": "poisson", "mean": 8},
                    gbps=25.0),
            Episode(kind="hotspot", start=n_epochs // 2,
                    flows=6, gbps=25.0, params={"hotspot": 1}),
        ),
        events=(
            ScenarioEvent(epoch=n_epochs // 2,
                          action="set_reconfig_time", value=0.05),
        ))


def week_cori_scenario(n_nodes: int = 16, days: int = 7,
                       epochs_per_day: int = 1440) -> Scenario:
    """Week-scale diurnal Cori replay at 1-minute epochs.

    The sharded runner's flagship workload: seven diurnal cycles of
    the §II-A Cori memory-bandwidth replay plus uniform chatter, a
    nightly checkpoint burst toward the I/O node, and a mid-week
    plane-failure transient (fails Wednesday noon, repaired eight
    hours later). At 10080 epochs this is meant to be driven through
    :class:`~repro.scenarios.sharding.ShardedScenarioRunner` with
    per-day chunks (``chunk_epochs=1440``), one checkpoint per
    simulated day.
    """
    n_epochs = days * epochs_per_day
    cpu_nodes = list(range(n_nodes // 2))
    mem_nodes = list(range(n_nodes // 2, n_nodes - n_nodes // 4))
    io_node = n_nodes - 1
    noon_wednesday = 3 * epochs_per_day + epochs_per_day // 2
    repair = noon_wednesday + epochs_per_day // 3
    return Scenario(
        name="week_cori",
        n_nodes=n_nodes,
        n_epochs=n_epochs,
        description=f"{days}-day diurnal Cori replay at 1-minute "
                    "epochs with a mid-week plane failure (run "
                    "sharded, per-day checkpoints)",
        episodes=(
            Episode(kind="cori-replay",
                    envelope={"kind": "diurnal",
                              "period": epochs_per_day,
                              "low": 0.15, "high": 1.0},
                    params={"nodes": cpu_nodes,
                            "memory_nodes": mem_nodes,
                            "resource": "memory_bandwidth",
                            "peak_gbps": 1096.0}),
            Episode(kind="uniform",
                    flows={"dist": "poisson", "mean": 6},
                    gbps=25.0,
                    envelope={"kind": "diurnal",
                              "period": epochs_per_day,
                              "low": 0.3, "high": 1.0}),
            # Nightly checkpoint: a burst converging on the I/O node
            # for the first ~5% of every day (phase 0 = midnight).
            Episode(kind="hotspot",
                    flows={"dist": "pareto", "minimum": 12,
                           "alpha": 1.6},
                    gbps=25.0,
                    envelope={"kind": "burst",
                              "period": epochs_per_day,
                              "duty": 0.05},
                    params={"hotspot": io_node}),
        ),
        events=(
            ScenarioEvent(epoch=noon_wednesday, action="fail_plane",
                          value=0),
            ScenarioEvent(epoch=repair, action="repair_plane",
                          value=0),
        ))


#: Canonical instances served by ``repro scenario`` and the tests.
SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (demo_scenario(), diurnal_cori_scenario(),
              reconfig_lag_scenario(), week_cori_scenario())
}


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(
            f"unknown scenario {name!r} (known: {known})") from None


# -- sweep-engine bindings -----------------------------------------------------

def scenario_task(config: dict, seed: int):
    """Sweep factory: one (scenario, backend) run to a ScenarioReport.

    ``config["scenario"]`` is a :meth:`Scenario.to_config` dict (or a
    registered scenario name), ``config["backend"]`` any name in
    :func:`~repro.scenarios.registry.available_backends`; flat
    backend-parameter
    keys (:data:`BACKEND_PARAM_KEYS`) pass through to the constructor.
    ``config["rng_seed"]`` pins the run for bit-identical replays;
    omit it to let the engine-derived ``seed`` resample per task (the
    ``repeated()`` multi-seed path). ``config["seeding"]`` selects the
    epoch-seed mode ("per-epoch" default; "sequential" replays the
    pre-sharding threaded-generator streams).
    """
    described = config["scenario"]
    scenario = (get_scenario(described) if isinstance(described, str)
                else Scenario.from_config(described))
    if "n_epochs" in config:
        scenario = scenario.with_epochs(int(config["n_epochs"]))
    run_seed = int(config.get("rng_seed", seed))
    params = {k: config[k] for k in BACKEND_PARAM_KEYS if k in config}
    backend = make_backend(config["backend"], scenario.n_nodes,
                           seed=run_seed, **params)
    return ScenarioRunner(
        scenario, backend,
        seeding=config.get("seeding", "per-epoch")).run(seed=run_seed)


def scenario_metrics(report) -> dict:
    """Aggregate-metrics extraction for scenario sweep tasks."""
    return report.as_dict()


def arena_task(config: dict, seed: int):
    """Sweep factory: one one-pass arena race to an ArenaReport.

    ``config["scenario"]`` is a registered name or a
    :meth:`Scenario.to_config` dict; ``config["backends"]`` an
    optional list (or comma-joined string) of contenders, defaulting
    to every registered backend; ``config["rng_seed"]`` pins the run
    (falling back to the engine-derived ``seed``); ``n_epochs``
    trims the race.
    """
    described = config["scenario"]
    scenario = (get_scenario(described) if isinstance(described, str)
                else Scenario.from_config(described))
    if "n_epochs" in config:
        scenario = scenario.with_epochs(int(config["n_epochs"]))
    backends = config.get("backends")
    if isinstance(backends, str):
        backends = tuple(part.strip() for part in backends.split(",")
                         if part.strip())
    return run_arena(scenario, backends=backends,
                     seed=int(config.get("rng_seed", seed)))


def arena_metrics(arena) -> dict:
    """Flattened arena metrics (per-backend columns + frontiers)."""
    out: dict = {"scenario": arena.scenario,
                 "backends": list(arena.backends)}
    for row in arena.rows():
        name = row["fabric"]
        for key in ("carried_gbps", "throughput_ratio",
                    "slowdown_p99", "power_w", "gbps_per_watt"):
            out[f"{name}_{key}"] = row[key]
    iso_perf = arena.iso_performance()
    iso_power = arena.iso_power()
    out["iso_perf_winner"] = iso_perf[0]["backend"]
    out["iso_power_winner"] = iso_power[0]["backend"]
    out["iso_performance"] = iso_perf
    out["iso_power"] = iso_power
    return out
