"""Fabric backends: one epoch-step interface over every simulator.

The scenario engine drives fabrics through the :class:`FabricBackend`
protocol — ``step(flows) -> EpochReport`` plus an event hook — so one
scenario runs unchanged against the paper's case (A) AWGR fabric
(:class:`~repro.network.simulator.AWGRNetworkSimulator`), the case (B)
reconfigurable WSS fabric (the per-slot logic of
:class:`~repro.network.wss_simulator.WSSNetworkSimulator`), or the
§VI-D electronic comparator
(:class:`~repro.network.electronic.ElectronicSwitch`).

Per-flow *slowdown* is the backend-appropriate service stretch:

* AWGR — photonic hops taken (1.0 direct, 2.0 one intermediate, 3.0
  stale-state fallback): indirection spends extra wavelength capacity
  and serialization on the same bytes;
* WSS — offered/served ratio of the flow's (src, dst) pair under the
  current switch configuration and reconfiguration downtime;
* electronic — offered/served ratio under per-endpoint lane caps.

Blocked flows (no capacity / zero configured service) are excluded
from the slowdown distribution and accounted as blocked Gbps instead.

Backends self-register with
:func:`~repro.scenarios.registry.register_backend`; the topology
contenders (full mesh, dragonfly) live in
:mod:`repro.scenarios.topologies` and join the same registry. Each
backend also exposes ``power_w()`` — the provisioned fabric power the
arena's iso-performance / iso-power frontiers compare (§VI-C
transceiver accounting for the photonic fabrics, electrical pJ/bit
budgets for the comparators).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.network.electronic import (
    ELECTRONIC_CATALOG,
    electronic_disaggregation_latency_ns,
)
from repro.network.reconfig import ReconfigurableFabric, SwitchConfiguration
from repro.network.routing import RouteKind
from repro.network.simulator import (
    DIRECT,
    AWGRNetworkSimulator,
    sequential_sum,
)
from repro.network.traffic import Flow, FlowBatch, as_flow_list
from repro.network.wss_simulator import WSSNetworkSimulator
from repro.photonics.power import TransceiverPower
from repro.scenarios.registry import make_backend, register_backend
from repro.scenarios.scenario import ScenarioEvent

__all__ = [
    "AWGRBackend", "ElectronicBackend", "EpochReport", "FabricBackend",
    "WSSBackend", "make_backend",
]

#: Electrical SerDes + switch-traversal energy charged to the
#: electronic comparators' provisioned capacity (vs. the 0.5 pJ/bit
#: photonic transceiver budget of §VI-C) — the same order the paper
#: cites for electrical interconnect in §II-B.
ELECTRICAL_PJ_PER_BIT = 10.0

#: Active power of one WSS switch plus its share of the centralized
#: scheduler, within the paper's <= 1 kW bound for all parallel
#: switches (§VI-C).
WSS_SWITCH_W = 200.0


@dataclass
class EpochReport:
    """What one fabric epoch did with one flow batch."""

    epoch: int
    offered: int = 0
    carried: int = 0
    blocked: int = 0
    indirect: int = 0
    offered_gbps: float = 0.0
    carried_gbps: float = 0.0
    slowdowns: list[float] = field(default_factory=list)
    extras: dict = field(default_factory=dict)

    @property
    def blocked_gbps(self) -> float:
        """Offered bandwidth the fabric could not carry this epoch."""
        return max(0.0, self.offered_gbps - self.carried_gbps)

    @property
    def acceptance_ratio(self) -> float:
        """Fraction of offered flows carried.

        A zero-offered epoch reports 0.0, not 1.0 — an idle epoch must
        never read as "perfect fabric" in aggregated tables (the same
        bug :attr:`ScenarioReport.throughput_ratio` had).
        """
        return self.carried / self.offered if self.offered else 0.0

    @property
    def indirect_fraction(self) -> float:
        """Fraction of carried flows that needed any indirection."""
        return self.indirect / self.carried if self.carried else 0.0

    def as_row(self) -> dict:
        """Flat per-epoch row for tables and streaming metrics."""
        return {
            "epoch": self.epoch,
            "offered": self.offered,
            "carried": self.carried,
            "blocked": self.blocked,
            "offered_gbps": self.offered_gbps,
            "carried_gbps": self.carried_gbps,
            "blocked_gbps": self.blocked_gbps,
            "indirect_fraction": self.indirect_fraction,
            **self.extras,
        }

    def to_dict(self) -> dict:
        """Lossless JSON-stable form (unlike :meth:`as_row`, keeps the
        raw slowdown samples) — the sharded runner's checkpoint unit."""
        return {
            "epoch": self.epoch,
            "offered": self.offered,
            "carried": self.carried,
            "blocked": self.blocked,
            "indirect": self.indirect,
            "offered_gbps": self.offered_gbps,
            "carried_gbps": self.carried_gbps,
            "slowdowns": [float(s) for s in self.slowdowns],
            "extras": dict(self.extras),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EpochReport":
        """Inverse of :meth:`to_dict` (accepts JSON-decoded dicts)."""
        return cls(
            epoch=int(payload["epoch"]),
            offered=int(payload["offered"]),
            carried=int(payload["carried"]),
            blocked=int(payload["blocked"]),
            indirect=int(payload["indirect"]),
            offered_gbps=float(payload["offered_gbps"]),
            carried_gbps=float(payload["carried_gbps"]),
            slowdowns=[float(s) for s in payload["slowdowns"]],
            extras=dict(payload.get("extras", {})))


@runtime_checkable
class FabricBackend(Protocol):
    """Anything the scenario runner can drive through epochs.

    ``step`` accepts either representation of an epoch's traffic — a
    :class:`~repro.network.traffic.FlowBatch` (the object-free hot
    path the runner and service pool feed) or a ``list[Flow]`` — and
    must produce a bit-identical :class:`EpochReport` for both forms
    of the same flows.
    """

    name: str

    def step(self, flows: FlowBatch | list[Flow]) -> EpochReport:
        """Serve one epoch's flow batch and report what happened."""
        ...

    def apply_event(self, event: ScenarioEvent) -> bool:
        """Apply a scripted event; return False if unsupported."""
        ...

    def snapshot(self) -> dict:
        """JSON-stable capture of all mutable run state.

        Must round-trip losslessly through the result cache's JSON
        encoding: ``restore(snapshot())`` on an identically configured
        fresh instance, then N epochs, is bit-identical to stepping
        the original instance N epochs. This is what carry-mode
        chunked replays checkpoint at chunk boundaries.
        """
        ...

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot` (accepts JSON-decoded dicts)."""
        ...


@register_backend(
    "awgr",
    description="case (A): passive AWGR planes + indirect routing",
    seed_param="rng_seed")
@dataclass
class AWGRBackend:
    """Case (A): passive AWGR planes + distributed indirect routing.

    Events: "fail_plane" / "repair_plane" with the plane index as
    ``value`` (active flows riding a failed plane are dropped, exactly
    as :meth:`~repro.network.wavelength.WavelengthAllocator.fail_plane`
    models).

    Epochs are admitted through the simulator's vectorized
    :meth:`~repro.network.simulator.AWGRNetworkSimulator.offer_batch`
    hot path by default; ``batch_admission=False`` restores the
    per-flow reference loop. Both produce bit-identical
    :class:`EpochReport` streams for the same seed, so registered
    scenario sweeps replay unchanged.
    """

    n_nodes: int
    planes: int = 5
    flows_per_wavelength: int = 1
    gbps_per_wavelength: float = 25.0
    state_update_period: int = 1
    #: Epochs a flow stays resident once admitted. The default of 2
    #: makes consecutive epochs overlap on the wavelengths, so
    #: sustained per-pair load exhausts direct capacity and exercises
    #: indirection the way long-lived production flows do.
    duration_slots: int = 2
    rng_seed: int = 0
    batch_admission: bool = True
    #: False runs the §VI-A feasibility configuration (no piggybacked
    #: staleness model): routing sees ground-truth occupancy and the
    #: per-epoch status broadcast is skipped entirely.
    track_state: bool = True
    name: str = "awgr"

    def __post_init__(self) -> None:
        self.sim = AWGRNetworkSimulator(
            n_nodes=self.n_nodes, planes=self.planes,
            flows_per_wavelength=self.flows_per_wavelength,
            gbps_per_wavelength=self.gbps_per_wavelength,
            state_update_period=self.state_update_period,
            rng_seed=self.rng_seed,
            batch_admission=self.batch_admission,
            track_state=self.track_state)
        self._epoch = 0

    def step(self, flows: FlowBatch | list[Flow]) -> EpochReport:
        if self.batch_admission:
            report = self._step_batched(flows)
        else:
            report = self._step_scalar(flows)
        self.sim.step()
        report.extras["healthy_planes"] = (
            self.sim.allocator.healthy_planes)
        self._epoch += 1
        return report

    def _step_scalar(self, flows: FlowBatch | list[Flow]) -> EpochReport:
        report = EpochReport(epoch=self._epoch)
        for flow in as_flow_list(flows):
            decision = self.sim.offer(flow, self.duration_slots)
            report.offered += 1
            report.offered_gbps += flow.gbps
            if decision.kind is RouteKind.BLOCKED:
                report.blocked += 1
                continue
            report.carried += 1
            report.carried_gbps += flow.gbps
            if decision.kind is not RouteKind.DIRECT:
                report.indirect += 1
            report.slowdowns.append(float(decision.hops))
        return report

    def _step_batched(self, flows: FlowBatch | list[Flow]
                      ) -> EpochReport:
        report = EpochReport(epoch=self._epoch)
        decisions = self.sim.offer_batch(flows, self.duration_slots)
        carried = decisions.carried_mask
        report.offered = len(flows)
        report.carried = int(np.count_nonzero(carried))
        report.blocked = report.offered - report.carried
        report.indirect = int(np.count_nonzero(
            carried & (decisions.kinds != DIRECT)))
        report.offered_gbps = sequential_sum(0.0, decisions.gbps)
        report.carried_gbps = sequential_sum(0.0, decisions.gbps[carried])
        report.slowdowns = decisions.hops[carried].astype(float).tolist()
        return report

    def apply_event(self, event: ScenarioEvent) -> bool:
        failed = self.sim.allocator.failed_planes
        if event.action == "fail_plane":
            plane = int(event.value)
            if plane not in failed:  # idempotent within a run
                self.sim.fail_plane(plane)
            return True
        if event.action == "repair_plane":
            plane = int(event.value)
            if plane in failed:
                self.sim.repair_plane(plane)
            return True
        return False

    def power_w(self) -> float:
        """Provisioned fabric power (W) for frontier comparisons.

        The AWGR itself is passive (§III), so the budget is the §VI-C
        transceiver accounting: one always-on 0.5 pJ/bit transceiver
        per provisioned wavelength — ``n_nodes * (n_nodes - 1)``
        source-destination wavelengths per plane. Config-level by
        design: plane failures change carried bandwidth, not the
        provisioned power draw.
        """
        capacity = (self.n_nodes * (self.n_nodes - 1) * self.planes
                    * self.gbps_per_wavelength)
        return TransceiverPower().power_w(capacity)

    def snapshot(self) -> dict:
        return {"backend": self.name, "epoch": self._epoch,
                "sim": self.sim.snapshot()}

    def restore(self, state: dict) -> None:
        if state.get("backend") != self.name:
            raise ValueError(
                f"snapshot is for backend {state.get('backend')!r}, "
                f"not {self.name!r}")
        self._epoch = int(state["epoch"])
        self.sim.restore(state["sim"])


@register_backend(
    "wss",
    description="case (B): reconfigurable WSS bank + scheduler")
@dataclass
class WSSBackend:
    """Case (B): reconfigurable WSS bank + centralized scheduler.

    The per-epoch logic mirrors one loop iteration of
    :meth:`~repro.network.wss_simulator.WSSNetworkSimulator.run`, with
    per-flow service resolved per (src, dst) pair so the runner gets a
    slowdown distribution. Events: "set_reconfig_period" (slots),
    "set_reconfig_time" (seconds of reconfiguration lag), and
    "fail_plane" / "repair_plane" reinterpreted as losing / regaining
    one parallel WSS switch.

    ``batch_step=True`` (the default) serves the whole epoch with
    array gathers over the demand/served matrices; the per-flow loop
    survives as the seeded bit-identical reference oracle
    (``batch_step=False``), mirroring the AWGR backend's
    ``batch_admission`` switch.
    """

    n_nodes: int
    n_switches: int = 5
    wavelengths_per_port: int = 16
    gbps_per_wavelength: float = 25.0
    reconfig_period: int = 1
    slot_time_s: float = 1.0
    batch_step: bool = True
    name: str = "wss"

    def __post_init__(self) -> None:
        if self.reconfig_period < 1:
            raise ValueError("reconfig_period must be >= 1")
        self.fabric = ReconfigurableFabric(
            n_switches=self.n_switches, radix=self.n_nodes,
            wavelengths_per_port=self.wavelengths_per_port,
            gbps_per_wavelength=self.gbps_per_wavelength)
        self._epoch = 0
        self._since_reconfig = 0

    def _serve(self, demand: np.ndarray
               ) -> tuple[np.ndarray, bool, float]:
        """Reconfigure if due and compute the (N, N) served matrix.

        Shared verbatim by the scalar and batched paths so the
        scheduler/downtime behavior cannot drift between them.
        """
        downtime_fraction = 0.0
        reconfigured = False
        if self._since_reconfig % self.reconfig_period == 0:
            self.fabric.reconfigure(demand)
            reconfigured = True
            downtime = (self.fabric.reconfig_time_s
                        + self.fabric.scheduler_latency_s)
            downtime_fraction = min(1.0, downtime / self.slot_time_s)
        configured = sum(
            cfg.assignment.astype(float) * self.gbps_per_wavelength
            for cfg in self.fabric.configs)
        served = (np.minimum(demand, configured)
                  * (1.0 - downtime_fraction))
        return served, reconfigured, downtime_fraction

    def step(self, flows: FlowBatch | list[Flow]) -> EpochReport:
        if self.batch_step:
            report = self._step_batched(FlowBatch.from_flows(flows))
        else:
            report = self._step_scalar(as_flow_list(flows))
        report.extras["healthy_switches"] = len(self.fabric.configs)
        self._epoch += 1
        self._since_reconfig += 1
        return report

    def _step_scalar(self, flows: list[Flow]) -> EpochReport:
        """Reference per-flow loop (the pre-vectorization path)."""
        report = EpochReport(epoch=self._epoch)
        demand = WSSNetworkSimulator.demand_matrix(flows, self.n_nodes)
        served, reconfigured, downtime_fraction = self._serve(demand)
        for flow in flows:
            report.offered += 1
            report.offered_gbps += flow.gbps
            pair_demand = demand[flow.src, flow.dst]
            fraction = (float(served[flow.src, flow.dst] / pair_demand)
                        if pair_demand > 0 else 0.0)
            if fraction <= 0.0:
                report.blocked += 1
                continue
            report.carried += 1
            report.carried_gbps += flow.gbps * fraction
            report.slowdowns.append(1.0 / fraction)
        report.extras["reconfigured"] = reconfigured
        report.extras["downtime_fraction"] = downtime_fraction
        return report

    def _step_batched(self, batch: FlowBatch) -> EpochReport:
        """Vectorized epoch: one gather per flow array, no objects.

        Bit-identical to :meth:`_step_scalar`: the demand matrix
        accumulates in flow order (unbuffered ``np.add.at``), each
        flow's service fraction is the same elementwise IEEE division,
        and the Gbps aggregates fold strictly left to right.
        """
        report = EpochReport(epoch=self._epoch)
        demand = WSSNetworkSimulator.demand_matrix(batch, self.n_nodes)
        served, reconfigured, downtime_fraction = self._serve(demand)
        n = len(batch)
        report.offered = n
        report.offered_gbps = sequential_sum(0.0, batch.gbps)
        pair_demand = demand[batch.src, batch.dst]
        fraction = np.zeros(n)
        np.divide(served[batch.src, batch.dst], pair_demand,
                  out=fraction, where=pair_demand > 0)
        carried = fraction > 0.0
        report.carried = int(np.count_nonzero(carried))
        report.blocked = n - report.carried
        report.carried_gbps = sequential_sum(
            0.0, (batch.gbps * fraction)[carried])
        report.slowdowns = (1.0 / fraction[carried]).tolist()
        report.extras["reconfigured"] = reconfigured
        report.extras["downtime_fraction"] = downtime_fraction
        return report

    def apply_event(self, event: ScenarioEvent) -> bool:
        fabric = self.fabric
        if event.action == "set_reconfig_period":
            period = int(event.value)
            if period < 1:
                raise ValueError("reconfig period must be >= 1")
            self.reconfig_period = period
            self._since_reconfig = 0
            return True
        if event.action == "set_reconfig_time":
            if event.value < 0:
                raise ValueError("reconfig time must be >= 0")
            fabric.reconfig_time_s = float(event.value)
            return True
        if event.action == "fail_plane":
            if len(fabric.configs) <= 1:
                raise RuntimeError("cannot fail the last WSS switch")
            fabric.configs.pop()
            fabric.n_switches -= 1
            return True
        if event.action == "repair_plane":
            fabric.configs.append(SwitchConfiguration(
                fabric.radix, fabric.wavelengths_per_port))
            fabric.n_switches += 1
            return True
        return False

    def power_w(self) -> float:
        """Provisioned fabric power (W) for frontier comparisons.

        0.5 pJ/bit transceivers on every provisioned switch-port
        wavelength, plus the active WSS switches themselves (the
        paper's <= 1 kW all-switches bound, apportioned per switch).
        Config-level: uses the provisioned ``n_switches``, not the
        currently healthy bank.
        """
        capacity = (self.n_switches * self.n_nodes
                    * self.wavelengths_per_port
                    * self.gbps_per_wavelength)
        return (TransceiverPower().power_w(capacity)
                + WSS_SWITCH_W * self.n_switches)

    def snapshot(self) -> dict:
        # reconfig_period lives on the backend (events mutate it) and
        # the switch bank / lag settings on the fabric.
        return {"backend": self.name, "epoch": self._epoch,
                "since_reconfig": self._since_reconfig,
                "reconfig_period": self.reconfig_period,
                "fabric": self.fabric.snapshot()}

    def restore(self, state: dict) -> None:
        if state.get("backend") != self.name:
            raise ValueError(
                f"snapshot is for backend {state.get('backend')!r}, "
                f"not {self.name!r}")
        self._epoch = int(state["epoch"])
        self._since_reconfig = int(state["since_reconfig"])
        self.reconfig_period = int(state["reconfig_period"])
        self.fabric.restore(state["fabric"])


@register_backend(
    "electronic",
    description="§VI-D comparator: per-endpoint electronic lane caps",
    fail_plane=False)
@dataclass
class ElectronicBackend:
    """§VI-D comparator: electronic tree with per-endpoint lane caps.

    Every endpoint owns ``lanes_per_endpoint`` lanes of the chosen
    technology; an epoch serves each flow at the most-congested of its
    source-egress and destination-ingress caps (max-min style shares
    are overkill for a comparator — proportional sharing matches the
    optimistic-for-electronics stance of §VI-D). Latency is reported
    as an extra, not simulated. Events are not supported.

    ``batch_step=True`` (the default) computes every flow's share with
    one scatter-add + gather; ``batch_step=False`` keeps the per-flow
    reference loop for bit-identity tests.
    """

    n_nodes: int
    technology: str = "pcie-gen5"
    lanes_per_endpoint: int = 8
    batch_step: bool = True
    name: str = "electronic"

    def __post_init__(self) -> None:
        if self.lanes_per_endpoint < 1:
            raise ValueError("lanes_per_endpoint must be >= 1")
        switch = ELECTRONIC_CATALOG[self.technology]
        self.endpoint_gbps = switch.lane_gbps * self.lanes_per_endpoint
        self.added_latency_ns = electronic_disaggregation_latency_ns(
            self.technology, endpoints=self.n_nodes)  # repro-check: derived
        self._epoch = 0

    def step(self, flows: FlowBatch | list[Flow]) -> EpochReport:
        if self.batch_step:
            report = self._step_batched(FlowBatch.from_flows(flows))
        else:
            report = self._step_scalar(as_flow_list(flows))
        report.extras["added_latency_ns"] = self.added_latency_ns
        self._epoch += 1
        return report

    def _step_scalar(self, flows: list[Flow]) -> EpochReport:
        """Reference per-flow loop (the pre-vectorization path)."""
        report = EpochReport(epoch=self._epoch)
        egress = np.zeros(self.n_nodes)
        ingress = np.zeros(self.n_nodes)
        for flow in flows:
            egress[flow.src] += flow.gbps
            ingress[flow.dst] += flow.gbps
        for flow in flows:
            report.offered += 1
            report.offered_gbps += flow.gbps
            share = float(min(
                1.0,
                self.endpoint_gbps / egress[flow.src],
                self.endpoint_gbps / ingress[flow.dst]))
            report.carried += 1
            report.carried_gbps += flow.gbps * share
            report.slowdowns.append(1.0 / share)
        return report

    def _step_batched(self, batch: FlowBatch) -> EpochReport:
        """Vectorized epoch: scatter-add endpoint loads, gather shares.

        Bit-identical to :meth:`_step_scalar`: ``np.add.at`` is
        unbuffered so repeated endpoints accumulate in flow order
        exactly like the ``+=`` loop, the share min-chain is the same
        elementwise IEEE arithmetic, and the Gbps aggregates fold
        strictly left to right.
        """
        report = EpochReport(epoch=self._epoch)
        n = len(batch)
        egress = np.zeros(self.n_nodes)
        ingress = np.zeros(self.n_nodes)
        np.add.at(egress, batch.src, batch.gbps)
        np.add.at(ingress, batch.dst, batch.gbps)
        report.offered = n
        report.offered_gbps = sequential_sum(0.0, batch.gbps)
        share = np.minimum(
            1.0, np.minimum(self.endpoint_gbps / egress[batch.src],
                            self.endpoint_gbps / ingress[batch.dst]))
        report.carried = n
        report.carried_gbps = sequential_sum(0.0, batch.gbps * share)
        report.slowdowns = (1.0 / share).tolist()
        return report

    def apply_event(self, event: ScenarioEvent) -> bool:
        return False

    def power_w(self) -> float:
        """Provisioned fabric power (W) for frontier comparisons:
        every endpoint's lanes charged at the electrical pJ/bit
        budget, always on — the mirror of the photonic accounting."""
        capacity = self.n_nodes * self.endpoint_gbps
        return TransceiverPower(
            pj_per_bit=ELECTRICAL_PJ_PER_BIT).power_w(capacity)

    def snapshot(self) -> dict:
        # Lane caps are pure functions of the configuration
        # (ELECTRONIC_CATALOG is immutable), so the epoch counter is
        # the comparator's entire mutable state.
        return {"backend": self.name, "epoch": self._epoch}

    def restore(self, state: dict) -> None:
        if state.get("backend") != self.name:
            raise ValueError(
                f"snapshot is for backend {state.get('backend')!r}, "
                f"not {self.name!r}")
        self._epoch = int(state["epoch"])
