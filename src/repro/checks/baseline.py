"""Baseline file: grandfathered findings that don't fail the gate.

The baseline is a committed JSON file mapping finding fingerprints
(line-independent — see :mod:`repro.checks.findings`) to their last
known message. ``repro check`` fails only on findings *not* in the
baseline, so a legacy violation can be ratcheted down over time while
new code is held to the full standard. Entries with multiplicity are
honored (two identical fingerprints baseline two findings); entries
that no longer match anything are reported as *stale* so the file
never rots silently.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.checks.findings import Finding

BASELINE_VERSION = 1

#: Default committed location, relative to the invocation directory.
DEFAULT_BASELINE = "repro-check.baseline.json"


@dataclass
class BaselineComparison:
    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale: list[str] = field(default_factory=list)


def load_baseline(path: str | Path) -> Counter:
    """Fingerprint multiset from a baseline file (empty if absent)."""
    path = Path(path)
    if not path.exists():
        return Counter()
    payload = json.loads(path.read_text(encoding="utf-8"))
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(f"baseline {path} has version {version!r}; "
                         f"this checker writes {BASELINE_VERSION}")
    return Counter(entry["fingerprint"]
                   for entry in payload.get("findings", []))


def write_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Write all current findings as the new baseline."""
    entries = [{"fingerprint": f.fingerprint, "rule": f.rule,
                "path": f.path, "message": f.message}
               for f in sorted(findings)]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")


def compare(findings: list[Finding],
            baseline: Counter) -> BaselineComparison:
    """Split findings into new vs. baselined; surface stale entries."""
    remaining = Counter(baseline)
    result = BaselineComparison()
    for finding in sorted(findings):
        if remaining[finding.fingerprint] > 0:
            remaining[finding.fingerprint] -= 1
            result.baselined.append(finding)
        else:
            result.new.append(finding)
    result.stale = sorted(fp for fp, count in remaining.items()
                          if count > 0 for _ in range(count))
    return result
