"""``repro.checks`` — AST-based invariant linting for the simulator.

The repo's three load-bearing invariants (complete JSON-stable
``snapshot()``/``restore()`` pairs, seeded-generator-only randomness,
full protocol conformance for backends and executors) are enforced
statically by the rules in :mod:`repro.checks.rules`, run over the
source tree by :func:`run_checks`, gated in CI through the committed
baseline in ``repro-check.baseline.json``, and exposed on the command
line as ``repro check``.
"""

from repro.checks.baseline import (
    DEFAULT_BASELINE,
    BaselineComparison,
    compare,
    load_baseline,
    write_baseline,
)
from repro.checks.concurrency import ModuleSummary, ProjectIndex
from repro.checks.context import ModuleContext
from repro.checks.engine import (
    STALE_SUPPRESSION_RULE,
    CheckReport,
    ParseError,
    check_file,
    check_source,
    display_path,
    iter_python_files,
    run_checks,
)
from repro.checks.findings import Finding
from repro.checks.report import render_json, render_rules, render_text
from repro.checks.rules import (
    PROJECT_RULES,
    RULES,
    ProjectRule,
    Rule,
    register,
    register_project,
)

__all__ = [
    "BaselineComparison",
    "CheckReport",
    "DEFAULT_BASELINE",
    "Finding",
    "ModuleContext",
    "ModuleSummary",
    "ParseError",
    "PROJECT_RULES",
    "ProjectIndex",
    "ProjectRule",
    "RULES",
    "Rule",
    "STALE_SUPPRESSION_RULE",
    "check_file",
    "check_source",
    "compare",
    "display_path",
    "iter_python_files",
    "load_baseline",
    "register",
    "register_project",
    "render_json",
    "render_rules",
    "render_text",
    "run_checks",
    "write_baseline",
]
