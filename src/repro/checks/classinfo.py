"""Shared AST analysis of class bodies for the SIM rules.

Collects, per class: its methods, class-body attributes (dataclass
fields), and every ``self.<attr>`` write in every method — classified
by where it happens (``__init__``/``__post_init__`` vs. run-time
methods) and whether the assigned value is mutable. Understands the
``object.__setattr__(self, "attr", value)`` idiom frozen dataclasses
use in ``__post_init__``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Methods treated as construction time by SIM001.
INIT_METHODS = ("__init__", "__post_init__")

#: Builtin calls whose results are immutable scalars/containers.
_IMMUTABLE_CALLS = frozenset({
    "int", "float", "str", "bool", "bytes", "tuple", "frozenset",
    "len", "min", "max", "round", "abs", "hash", "id", "repr",
})

_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass(frozen=True)
class AttrWrite:
    """One write to ``self.<attr>`` inside a method."""

    attr: str
    method: str
    node: ast.stmt
    value: ast.expr | None  #: RHS for plain assignments, else None
    direct: bool  #: plain ``self.x = ...`` (vs. aug/subscript write)


@dataclass
class ClassInfo:
    node: ast.ClassDef
    name: str
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    class_attrs: set[str] = field(default_factory=set)
    attr_writes: list[AttrWrite] = field(default_factory=list)
    is_protocol: bool = False

    def writes_in(self, *methods: str) -> list[AttrWrite]:
        return [w for w in self.attr_writes if w.method in methods]

    def writes_outside(self, *methods: str) -> list[AttrWrite]:
        return [w for w in self.attr_writes if w.method not in methods]


def self_name(func: ast.FunctionDef) -> str | None:
    """Name of the instance parameter, or None for staticmethods."""
    for deco in func.decorator_list:
        if isinstance(deco, ast.Name) and deco.id == "staticmethod":
            return None
    params = list(func.args.posonlyargs) + list(func.args.args)
    return params[0].arg if params else None


def _attr_root(node: ast.expr) -> ast.expr:
    """Strip trailing ``[...]`` subscripts: ``self.x[i]`` -> ``self.x``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def _self_attr_target(node: ast.expr, selfname: str) -> str | None:
    node = _attr_root(node)
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == selfname):
        return node.attr
    return None


def _method_attr_writes(func: ast.FunctionDef) -> list[AttrWrite]:
    selfname = self_name(func)
    if selfname is None:
        return []
    writes: list[AttrWrite] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _self_attr_target(target, selfname)
                if attr is not None:
                    writes.append(AttrWrite(
                        attr=attr, method=func.name, node=node,
                        value=node.value,
                        direct=isinstance(target, ast.Attribute)))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            attr = _self_attr_target(node.target, selfname)
            if attr is not None:
                value = (node.value
                         if isinstance(node, ast.AnnAssign) else None)
                writes.append(AttrWrite(
                    attr=attr, method=func.name, node=node, value=value,
                    direct=isinstance(node, ast.AnnAssign)
                    and isinstance(node.target, ast.Attribute)))
        elif isinstance(node, ast.Call):
            # object.__setattr__(self, "attr", value) — frozen dataclasses.
            func_expr = node.func
            if (isinstance(func_expr, ast.Attribute)
                    and func_expr.attr == "__setattr__"
                    and len(node.args) >= 3
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id == selfname
                    and isinstance(node.args[1], ast.Constant)
                    and isinstance(node.args[1].value, str)):
                writes.append(AttrWrite(
                    attr=node.args[1].value, method=func.name, node=node,
                    value=node.args[2], direct=True))
    return writes


def _is_protocol(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else "")
        if name == "Protocol":
            return True
    for deco in node.decorator_list:
        name = deco.attr if isinstance(deco, ast.Attribute) else (
            deco.id if isinstance(deco, ast.Name) else "")
        if name == "runtime_checkable":
            return True
    return False


def collect_classes(tree: ast.Module) -> list[ClassInfo]:
    """All class definitions in the module, including nested ones."""
    infos = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        info = ClassInfo(node=node, name=node.name,
                         is_protocol=_is_protocol(node))
        for stmt in node.body:
            if isinstance(stmt, _FUNC_DEFS):
                info.methods.setdefault(stmt.name, stmt)
                info.attr_writes.extend(_method_attr_writes(stmt))
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    info.class_attrs.add(stmt.target.id)
            elif isinstance(stmt, ast.Assign):
                info.class_attrs.update(
                    t.id for t in stmt.targets if isinstance(t, ast.Name))
        infos.append(info)
    return infos


def is_mutable_value(node: ast.expr | None) -> bool:
    """Heuristic: does this initializer produce mutable runtime state?

    Containers, comprehensions, and calls to anything but a known
    scalar builtin count as mutable; constants, name/attribute loads,
    and arithmetic over immutable operands do not.
    """
    if node is None:
        return False
    if isinstance(node, (ast.Constant, ast.Name, ast.Attribute,
                         ast.Subscript, ast.JoinedStr, ast.Compare)):
        return False
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp, ast.GeneratorExp,
                         ast.Lambda, ast.Await)):
        return True
    if isinstance(node, ast.Tuple):
        return any(is_mutable_value(e) for e in node.elts)
    if isinstance(node, ast.BinOp):
        return is_mutable_value(node.left) or is_mutable_value(node.right)
    if isinstance(node, ast.UnaryOp):
        return is_mutable_value(node.operand)
    if isinstance(node, ast.BoolOp):
        return any(is_mutable_value(v) for v in node.values)
    if isinstance(node, ast.IfExp):
        return is_mutable_value(node.body) or is_mutable_value(node.orelse)
    if isinstance(node, ast.Call):
        return not (isinstance(node.func, ast.Name)
                    and node.func.id in _IMMUTABLE_CALLS)
    return True


def self_attr_uses(func: ast.FunctionDef) -> set[str]:
    """Every attribute name read or written on ``self`` in ``func``."""
    selfname = self_name(func)
    if selfname is None:
        return set()
    return {node.attr for node in ast.walk(func)
            if isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == selfname}


def positional_arity(func: ast.FunctionDef) -> tuple[int, int, bool]:
    """(required positional count, total positional count, has *args)."""
    positional = list(func.args.posonlyargs) + list(func.args.args)
    total = len(positional)
    required = total - len(func.args.defaults)
    return required, total, func.args.vararg is not None


def returned_dict_keys(func: ast.FunctionDef) -> set[str] | None:
    """Union of constant-string keys over dicts ``func`` returns.

    Follows ``return {...}`` directly and the ``result = {...};
    return result`` pattern. Returns None when any returned dict is
    not statically known (non-literal return, ``**`` expansion, or a
    non-constant key) — callers must then skip key checks.
    """
    assigned: dict[str, ast.Dict] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assigned[target.id] = node.value
    keys: set[str] = set()
    saw_return = False
    for node in ast.walk(func):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        saw_return = True
        value = node.value
        if isinstance(value, ast.Name) and value.id in assigned:
            value = assigned[value.id]
        if not isinstance(value, ast.Dict):
            return None
        for key in value.keys:
            if (key is None or not isinstance(key, ast.Constant)
                    or not isinstance(key.value, str)):
                return None
            keys.add(key.value)
    return keys if saw_return else None


def state_key_reads(func: ast.FunctionDef,
                    param: str) -> dict[str, ast.expr]:
    """Constant-string keys read off ``param`` via ``param["k"]`` or
    ``param.get("k", ...)`` — mapped to the first node reading each."""
    reads: dict[str, ast.expr] = {}
    for node in ast.walk(func):
        key = None
        if (isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id == param
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)):
            key = node.slice.value
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == param
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            key = node.args[0].value
        if key is not None and key not in reads:
            reads[key] = node
    return reads


def dotted_name(node: ast.expr) -> tuple[str, ...] | None:
    """``np.random.default_rng`` -> ("np", "random", "default_rng")."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None
