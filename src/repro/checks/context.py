"""Per-file context handed to every rule: AST plus comment directives.

Directive comments (parsed with :mod:`tokenize`, so strings that merely
*contain* the text don't count):

``# repro-check: disable=SIM001`` (or ``disable=SIM001,PY001`` /
``disable=all``)
    Suppress those rules' findings anchored to this line.

``# repro-check: disable-file=SIM002``
    Suppress a rule for the whole file, wherever the comment sits.

``# repro-check: config`` / ``# repro-check: derived``
    Semantic markers for SIM001 — the attribute assigned on this line
    is configuration (never mutated after construction) or derived
    (recomputable from config), so it legitimately stays out of
    ``snapshot()``/``restore()``.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field

from repro.checks.findings import Finding

DIRECTIVE_PREFIX = "repro-check:"

#: SIM001 markers a rule may ask about via :meth:`ModuleContext.marker_in_range`.
MARKERS = ("config", "derived")


def parse_directives(source: str) -> tuple[dict[int, set[str]],
                                           dict[int, set[str]],
                                           set[str]]:
    """Extract (line suppressions, line markers, file suppressions)."""
    suppressions: dict[int, set[str]] = {}
    markers: dict[int, set[str]] = {}
    file_suppressions: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [t for t in tokens if t.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions, markers, file_suppressions
    for tok in comments:
        text = tok.string.lstrip("#").strip()
        if not text.startswith(DIRECTIVE_PREFIX):
            continue
        body = text[len(DIRECTIVE_PREFIX):].strip()
        line = tok.start[0]
        for clause in body.split(";"):
            clause = clause.strip()
            if clause.startswith("disable-file="):
                file_suppressions.update(
                    r.strip().upper()
                    for r in clause[len("disable-file="):].split(",")
                    if r.strip())
            elif clause.startswith("disable="):
                suppressions.setdefault(line, set()).update(
                    r.strip().upper()
                    for r in clause[len("disable="):].split(",")
                    if r.strip())
            elif clause in MARKERS:
                markers.setdefault(line, set()).add(clause)
    return suppressions, markers, file_suppressions


@dataclass
class ModuleContext:
    """Everything a rule needs to check one parsed source file."""

    path: str
    source: str
    tree: ast.Module
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    markers: dict[int, set[str]] = field(default_factory=dict)
    file_suppressions: set[str] = field(default_factory=set)

    @classmethod
    def parse(cls, source: str, path: str) -> "ModuleContext":
        """Build a context; propagates ``SyntaxError`` on bad source."""
        tree = ast.parse(source, filename=path)
        suppressions, markers, file_suppressions = parse_directives(source)
        return cls(path=path, source=source, tree=tree,
                   suppressions=suppressions, markers=markers,
                   file_suppressions=file_suppressions)

    def finding(self, rule: str, node: ast.AST, key: str,
                message: str) -> Finding:
        """Finding anchored at ``node``'s source position."""
        return Finding(path=self.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       rule=rule, key=key, message=message)

    def is_suppressed(self, finding: Finding) -> bool:
        rules = (self.suppressions.get(finding.line, set())
                 | self.file_suppressions)
        return finding.rule.upper() in rules or "ALL" in rules

    def marker_in_range(self, node: ast.AST, *names: str) -> bool:
        """True if any requested marker sits on a line ``node`` spans."""
        wanted = set(names) or set(MARKERS)
        start = getattr(node, "lineno", None)
        if start is None:
            return False
        end = getattr(node, "end_lineno", None) or start
        return any(self.markers.get(line, set()) & wanted
                   for line in range(start, end + 1))
