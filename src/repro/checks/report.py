"""Text and JSON renderings of a check run."""

from __future__ import annotations

import json

from repro.checks.baseline import BaselineComparison
from repro.checks.engine import STALE_SUPPRESSION_RULE, CheckReport
from repro.checks.rules import PROJECT_RULES, RULES


def render_text(report: CheckReport, comparison: BaselineComparison,
                verbose: bool = False) -> str:
    lines: list[str] = []
    for error in report.errors:
        lines.append(error.render())
    for finding in comparison.new:
        lines.append(finding.render())
    if verbose and comparison.baselined:
        lines.append("-- baselined (not failing the gate) --")
        lines.extend(f.render() for f in comparison.baselined)
    for fingerprint in comparison.stale:
        lines.append(f"stale baseline entry (no longer matches "
                     f"anything): {fingerprint}")
    summary = (f"{report.files} files checked: "
               f"{len(comparison.new)} new finding(s), "
               f"{len(comparison.baselined)} baselined, "
               f"{report.suppressed} suppressed, "
               f"{len(report.errors)} parse error(s)")
    if comparison.stale:
        summary += (f", {len(comparison.stale)} stale baseline "
                    f"entr{'y' if len(comparison.stale) == 1 else 'ies'}"
                    f" (refresh with --write-baseline)")
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: CheckReport,
                comparison: BaselineComparison) -> str:
    payload = {
        "files": report.files,
        "suppressed": report.suppressed,
        "errors": [e.to_dict() for e in report.errors],
        "findings": [f.to_dict() for f in comparison.new],
        "baselined": [f.to_dict() for f in comparison.baselined],
        "stale_baseline": list(comparison.stale),
    }
    return json.dumps(payload, indent=2)


def render_rules() -> str:
    """The rule catalog, one line per rule."""
    catalog = {rule_id: rule.summary
               for rule_id, rule in {**RULES, **PROJECT_RULES}.items()}
    catalog[STALE_SUPPRESSION_RULE] = (
        "stale suppression directives (via --strict-suppressions)")
    width = max(len(rule_id) for rule_id in catalog)
    return "\n".join(f"{rule_id:<{width}}  {summary}"
                     for rule_id, summary in sorted(catalog.items()))
