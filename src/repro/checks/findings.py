"""Findings: one rule violation at one source location.

A finding's :attr:`~Finding.fingerprint` deliberately excludes the
line number — baselines must survive unrelated edits that shift code
around, so rules provide a *semantic* ``key`` (``Class.attr``, a
dotted call name plus occurrence index, …) that only changes when the
flagged construct itself does.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One violation, sortable into stable report order."""

    path: str
    line: int
    col: int
    rule: str
    key: str
    message: str

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline file."""
        return f"{self.rule}:{self.path}:{self.key}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "key": self.key,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
