"""Runtime lock sanitizer — the dynamic counterpart of SIM005.

``repro.service`` creates its locks through the :func:`new_lock` /
:func:`new_condition` factory seam. Unarmed (the default), the
factories return plain :mod:`threading` primitives with zero
overhead. With ``REPRO_SANITIZE=1`` they return
:class:`SanitizedLock` / :class:`SanitizedCondition` wrappers that

* track each thread's lock-acquisition stack and record the global
  acquisition-order graph (nodes are lock *names*, so every
  ``Session.updated`` instance is one node, matching SIM005's
  static lock identities);
* report a **lock-order inversion** the moment two locks are ever
  taken in both orders — the deadlock is caught even if the
  interleaving that would hang never happens in this run;
* assert declared guarded attributes (see :func:`watch_guarded`) are
  only read/written with their lock held.

Violations are recorded and surfaced via
:meth:`Sanitizer.assert_clean` — raising inside a worker thread would
be swallowed by the pool's crash-recovery path, so the CI stress job
hammers a sanitized pool and asserts a clean ledger at the end.
``REPRO_SANITIZE=strict`` raises immediately instead (unit tests).
"""

from __future__ import annotations

import os
import threading


class LockDisciplineError(AssertionError):
    """A recorded lock-discipline violation (strict mode raises it)."""


def armed() -> bool:
    """True when ``REPRO_SANITIZE`` is set (and not "0")."""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


def strict() -> bool:
    return os.environ.get("REPRO_SANITIZE", "") == "strict"


class Sanitizer:
    """Acquisition-order graph + guarded-attribute violation ledger."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._local = threading.local()
        #: (held name, acquired name) -> thread name first observing it.
        self.edges: dict[tuple, str] = {}
        self._adjacency: dict[str, set] = {}
        self.violations: list[str] = []

    # -- per-thread held stack -------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def on_acquire(self, lock) -> None:
        stack = self._stack()
        if not any(held is lock for held in stack):
            outer = {held.name for held in stack
                     if held.name != lock.name}
            if outer:
                with self._mutex:
                    for name in sorted(outer):
                        self._add_edge(name, lock.name)
        stack.append(lock)

    def on_release(self, lock) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is lock:
                del stack[i]
                return

    def on_wait(self, lock) -> None:
        """``Condition.wait`` releases the lock entirely."""
        stack = self._stack()
        stack[:] = [held for held in stack if held is not lock]

    def on_wake(self, lock, count: int) -> None:
        """Reacquisition after wait — re-enters the held stack (and
        the order graph, though the edge necessarily already exists)."""
        self.on_acquire(lock)
        for _ in range(count - 1):
            self._stack().append(lock)

    # -- the order graph -------------------------------------------------------

    def _add_edge(self, outer: str, inner: str) -> None:
        # Caller holds self._mutex.
        if (outer, inner) in self.edges:
            return
        if self._reaches(inner, outer):
            first = next(
                (f"{a} -> {b} (thread {t})"
                 for (a, b), t in self.edges.items()
                 if self._on_path(inner, outer, a, b)), "earlier")
            self._record_locked(
                f"lock-order inversion: thread "
                f"{threading.current_thread().name} acquires {inner} "
                f"while holding {outer}, but the opposite order was "
                f"already observed ({first})")
        self.edges[(outer, inner)] = threading.current_thread().name
        self._adjacency.setdefault(outer, set()).add(inner)

    def _reaches(self, src: str, dst: str) -> bool:
        seen, stack = set(), [src]
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._adjacency.get(node, ()))
        return False

    def _on_path(self, src: str, dst: str, a: str, b: str) -> bool:
        return self._reaches(src, a) and self._reaches(b, dst)

    # -- the ledger ------------------------------------------------------------

    def record(self, message: str) -> None:
        with self._mutex:
            self._record_locked(message)

    def _record_locked(self, message: str) -> None:
        self.violations.append(message)
        if strict():
            raise LockDisciplineError(message)

    def assert_clean(self) -> None:
        if self.violations:
            summary = "\n  ".join(self.violations[:20])
            raise LockDisciplineError(
                f"{len(self.violations)} lock-discipline violation(s)"
                f":\n  {summary}")

    def reset(self) -> None:
        with self._mutex:
            self.edges.clear()
            self._adjacency.clear()
            self.violations.clear()


_default = Sanitizer()


def get_sanitizer() -> Sanitizer:
    """The process-wide sanitizer the factories default to."""
    return _default


class SanitizedLock:
    """Reentrant lock wrapper feeding the sanitizer."""

    def __init__(self, name: str,
                 sanitizer: Sanitizer | None = None) -> None:
        self.name = name
        self._san = sanitizer or get_sanitizer()
        self._inner = threading.RLock()
        self._owner: int | None = None
        self._count = 0

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._owner = threading.get_ident()
            self._count += 1
            self._san.on_acquire(self)
        return ok

    def release(self) -> None:
        self._count -= 1
        if self._count == 0:
            self._owner = None
        self._san.on_release(self)
        self._inner.release()

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def held_by_me(self) -> bool:
        return self._owner == threading.get_ident()


class SanitizedCondition(threading.Condition):
    """``threading.Condition`` feeding the sanitizer.

    Subclasses the real Condition (so ``wait_for``, timeouts, and the
    RLock ownership semantics are the stdlib's) and instruments the
    enter/exit/wait/notify surface.
    """

    def __init__(self, name: str,
                 sanitizer: Sanitizer | None = None) -> None:
        super().__init__()
        self.name = name
        self._san = sanitizer or get_sanitizer()
        self._owner: int | None = None
        self._count = 0

    def _note_acquired(self) -> None:
        self._owner = threading.get_ident()
        self._count += 1
        self._san.on_acquire(self)

    def _note_released(self) -> None:
        self._count -= 1
        if self._count == 0:
            self._owner = None
        self._san.on_release(self)

    def __enter__(self) -> "SanitizedCondition":
        super().__enter__()
        self._note_acquired()
        return self

    def __exit__(self, *exc):
        self._note_released()
        return super().__exit__(*exc)

    def acquire(self, *args) -> bool:
        ok = super().acquire(*args)
        if ok:
            self._note_acquired()
        return ok

    def release(self) -> None:
        self._note_released()
        super().release()

    def held_by_me(self) -> bool:
        return self._owner == threading.get_ident()

    def wait(self, timeout: float | None = None) -> bool:
        if not self.held_by_me():
            self._san.record(
                f"{self.name}.wait() without holding the lock")
        saved_count, saved_owner = self._count, self._owner
        self._owner, self._count = None, 0
        self._san.on_wait(self)
        try:
            return super().wait(timeout)
        finally:
            self._owner, self._count = saved_owner, saved_count
            self._san.on_wake(self, max(saved_count, 1))

    # wait_for() inherits and calls self.wait() — already covered.

    def notify(self, n: int = 1) -> None:
        if not self.held_by_me():
            self._san.record(
                f"{self.name}.notify called without holding the lock")
        super().notify(n)

    # notify_all() inherits and calls self.notify() — already covered.


def new_lock(name: str, sanitizer: Sanitizer | None = None):
    """A lock: plain ``threading.RLock`` unarmed, sanitized when
    ``REPRO_SANITIZE`` is set. ``name`` is the lock's identity in the
    order graph — use the static form ``Class.attr`` so runtime edges
    line up with SIM005's."""
    if armed():
        return SanitizedLock(name, sanitizer)
    return threading.RLock()


def new_condition(name: str, sanitizer: Sanitizer | None = None):
    """A condition variable: plain ``threading.Condition`` unarmed,
    sanitized when ``REPRO_SANITIZE`` is set."""
    if armed():
        return SanitizedCondition(name, sanitizer)
    return threading.Condition()


def watch_guarded(obj, lock, write_attrs=(), read_attrs=()):
    """Arm guarded-attribute assertions on ``obj`` (no-op unarmed).

    ``write_attrs`` must only be *written* with ``lock`` held;
    ``read_attrs`` (a subset — typically the mutable containers,
    where torn iteration is the hazard) must also only be *read*
    with it held. Scalar reads are atomic under the GIL and stay
    unwatched, mirroring SIM005's reachable-read scope.

    Implemented by swapping ``obj.__class__`` for a one-off subclass
    intercepting ``__setattr__``/``__getattribute__`` — isinstance
    checks still hold and the object is untouched when the sanitizer
    is unarmed (or the lock is an uninstrumented primitive).
    """
    if not armed() or not isinstance(
            lock, (SanitizedLock, SanitizedCondition)):
        return obj
    base = type(obj)
    writes = frozenset(write_attrs) | frozenset(read_attrs)
    reads = frozenset(read_attrs)
    sanitizer = lock._san

    def __setattr__(self, name, value):
        if name in writes and not lock.held_by_me():
            sanitizer.record(
                f"guarded attribute {base.__name__}.{name} written "
                f"without holding {lock.name}")
        object.__setattr__(self, name, value)

    def __getattribute__(self, name):
        if name in reads and not lock.held_by_me():
            sanitizer.record(
                f"guarded attribute {base.__name__}.{name} read "
                f"without holding {lock.name}")
        return object.__getattribute__(self, name)

    watched = type(f"_Sanitized{base.__name__}", (base,), {
        "__setattr__": __setattr__,
        "__getattribute__": __getattribute__,
    })
    obj.__class__ = watched
    return obj
