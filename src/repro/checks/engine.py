"""File discovery, per-file rule dispatch, suppression filtering.

The engine is import-light and side-effect free: it parses each file
once into a :class:`~repro.checks.context.ModuleContext`, hands that
to every (selected) registered rule, and filters findings through the
file's ``# repro-check: disable`` directives. Files that fail to
parse are reported as errors, never swallowed — the CI smoke that
"the checker parses everything under ``src/``" is just a run whose
error list must stay empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.checks.context import ModuleContext
from repro.checks.findings import Finding
from repro.checks.rules import RULES


@dataclass(frozen=True)
class ParseError:
    """One file the checker could not parse."""

    path: str
    message: str

    def render(self) -> str:
        return f"{self.path}: PARSE {self.message}"

    def to_dict(self) -> dict:
        return {"path": self.path, "message": self.message}


@dataclass
class CheckReport:
    """Outcome of one engine run over a set of files."""

    findings: list[Finding] = field(default_factory=list)
    errors: list[ParseError] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0

    def extend(self, other: "CheckReport") -> None:
        self.findings.extend(other.findings)
        self.errors.extend(other.errors)
        self.files += other.files
        self.suppressed += other.suppressed


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files,
    skipping hidden directories and ``__pycache__``."""
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                relative = candidate.relative_to(path).parts
                if any(part == "__pycache__" or part.startswith(".")
                       for part in relative):
                    continue
                out.append(candidate)
        else:
            out.append(path)
    return out


def display_path(path: str | Path) -> str:
    """Stable, cwd-relative POSIX path for reports and fingerprints."""
    path = Path(path)
    try:
        path = path.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        pass
    return path.as_posix()


def _selected_rules(rules: Sequence[str] | None):
    if rules is None:
        return list(RULES.values())
    unknown = [r for r in rules if r not in RULES]
    if unknown:
        raise KeyError(f"unknown rule(s) {unknown}; "
                       f"known: {sorted(RULES)}")
    return [RULES[r] for r in rules]


def check_source(source: str, path: str,
                 rules: Sequence[str] | None = None) -> CheckReport:
    """Run rules over one in-memory source blob."""
    report = CheckReport(files=1)
    try:
        ctx = ModuleContext.parse(source, path)
    except SyntaxError as exc:
        report.errors.append(ParseError(
            path=path, message=f"{exc.msg} (line {exc.lineno})"))
        return report
    for rule in _selected_rules(rules):
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding):
                report.suppressed += 1
            else:
                report.findings.append(finding)
    report.findings.sort()
    return report


def check_file(path: str | Path,
               rules: Sequence[str] | None = None) -> CheckReport:
    path = Path(path)
    shown = display_path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        report = CheckReport(files=1)
        report.errors.append(ParseError(path=shown, message=str(exc)))
        return report
    return check_source(source, shown, rules=rules)


def run_checks(paths: Iterable[str | Path],
               rules: Sequence[str] | None = None) -> CheckReport:
    """Check every python file under ``paths``."""
    _selected_rules(rules)  # validate names before any file work
    report = CheckReport()
    for path in iter_python_files(paths):
        report.extend(check_file(path, rules=rules))
    report.findings.sort()
    return report
